// Checkpoint-interval study: hazard-driven Young/Daly scheduling vs the
// static-interval ablation, the legacy fraction salvage model, and no
// checkpointing at all, swept over instance crash rates on PageRank L
// (long tasks — the regime where lost work bites) at the 1-minute charging
// unit.
//
// The figure of merit is total waste = lost work (progress beyond the last
// committed checkpoint, forfeited at every kill) + checkpoint I/O
// slot-seconds (execution stalls while an image writes). Young/Daly spends
// I/O in proportion to sqrt(hazard), so it should strictly beat a fixed
// 10-minute interval everywhere the crash rate is high enough that the
// static interval is no longer near its own optimum (>= 0.1/h here). The
// hazard prior is warm-started at the configured crash rate so the sweep
// isolates the interval policy itself; estimator burn-in from a cold prior
// is covered by the convergence tests.
//
// A second sweep fixes the crash rate and walks the static interval through
// the Young/Daly point, tracing the classic waste-vs-interval U-curve: too
// short burns I/O, too long forfeits work, and the hazard-driven interval
// sits at the bottom without being told the rate.
//
// `--smoke` is the CI tripwire: (a) re-runs four canonical checkpoint-OFF
// cells (quiet, legacy faults, memory+faults, ensemble) and byte-compares
// their hexfloat digests against goldens captured before the checkpoint
// subsystem existed — the disabled path must stay bit-identical; (b) asserts
// on a fast linear workflow that the Young/Daly interval strictly reduces
// waste vs static-600 under a 2/h crash rate. Exits nonzero on violation.
//
// Both modes emit machine-readable BENCH_checkpoint.json next to the CSV.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/driver.h"
#include "ensemble/report.h"
#include "exp/settings.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint64_t kSeedRoot = 717;
constexpr std::uint32_t kReps = 5;
/// 256 MB image over a 256 MB/s channel: a 1 s write cost, so the Young/Daly
/// interval at crash rate lambda is sqrt(2 * 3600 / lambda) seconds.
constexpr double kChannelMbPerS = 256.0;

enum class Arm { None, Legacy, Static, YoungDaly };

const char* arm_label(Arm arm) {
  switch (arm) {
    case Arm::None:
      return "none";
    case Arm::Legacy:
      return "legacy-0.5";
    case Arm::Static:
      return "static";
    case Arm::YoungDaly:
      return "young-daly";
  }
  return "unknown";
}

sim::CloudConfig arm_cloud(Arm arm, double crash_rate_per_hour,
                           double static_interval_s) {
  sim::CloudConfig config = exp::paper_cloud(60.0);
  config.faults.crash_rate_per_hour = crash_rate_per_hour;
  switch (arm) {
    case Arm::None:
      break;
    case Arm::Legacy:
      config.checkpoint_fraction = 0.5;
      break;
    case Arm::Static:
      config.checkpoint.channel_bandwidth_mb_per_s = kChannelMbPerS;
      config.checkpoint.interval_policy =
          sim::CheckpointConfig::IntervalPolicy::Static;
      config.checkpoint.static_interval_seconds = static_interval_s;
      break;
    case Arm::YoungDaly:
      config.checkpoint.channel_bandwidth_mb_per_s = kChannelMbPerS;
      config.checkpoint.interval_policy =
          sim::CheckpointConfig::IntervalPolicy::YoungDaly;
      // Warm prior at the true rate, heavy weight: the sweep measures the
      // interval policy, not estimator burn-in.
      config.checkpoint.hazard_prior_per_hour = crash_rate_per_hour;
      config.checkpoint.hazard_prior_weight_hours = 10.0;
      break;
  }
  return config;
}

struct Cell {
  util::RunningStats makespan;
  util::RunningStats cost;
  util::RunningStats restarts;
  util::RunningStats crashes;
  util::RunningStats lost_work_s;
  util::RunningStats ckpt_io_s;
  util::RunningStats waste_s;
  util::RunningStats ckpts_completed;
  util::RunningStats ckpts_lost;
};

void run_into(const dag::Workflow& wf, const sim::CloudConfig& config,
              std::uint64_t seed, Cell* cell) {
  core::WireController controller;
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, controller, config, options);
  cell->makespan.add(r.makespan);
  cell->cost.add(r.cost_units);
  cell->restarts.add(static_cast<double>(r.task_restarts));
  cell->crashes.add(static_cast<double>(r.instance_crashes));
  cell->lost_work_s.add(r.lost_work_seconds);
  cell->ckpt_io_s.add(r.checkpoint_io_slot_seconds);
  cell->waste_s.add(r.lost_work_seconds + r.checkpoint_io_slot_seconds);
  cell->ckpts_completed.add(static_cast<double>(r.checkpoints_completed));
  cell->ckpts_lost.add(static_cast<double>(r.checkpoints_lost));
}

struct JsonCell {
  const char* study;
  const char* policy;
  double crash_rate;
  double static_interval_s;  // 0 when not a static arm
  std::uint32_t reps;
  const Cell* cell;
};

void write_json(const std::vector<JsonCell>& cells, bool smoke,
                bool golden_identity) {
  const std::string path = bench::results_dir() + "/BENCH_checkpoint.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"checkpoint\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  if (smoke) {
    std::fprintf(f, "  \"golden_identity\": %s,\n",
                 golden_identity ? "true" : "false");
  }
  std::fprintf(f, "  \"seed_root\": %llu,\n  \"cells\": [\n",
               static_cast<unsigned long long>(kSeedRoot));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonCell& jc = cells[i];
    const Cell& c = *jc.cell;
    std::fprintf(
        f,
        "    {\"study\": \"%s\", \"policy\": \"%s\", "
        "\"crash_rate_per_hour\": %.17g, \"static_interval_s\": %.17g, "
        "\"reps\": %u, \"makespan_mean_s\": %.17g, \"cost_mean_units\": "
        "%.17g, \"restarts_mean\": %.17g, \"crashes_mean\": %.17g, "
        "\"lost_work_s_mean\": %.17g, \"ckpt_io_s_mean\": %.17g, "
        "\"waste_s_mean\": %.17g, \"ckpts_completed_mean\": %.17g, "
        "\"ckpts_lost_mean\": %.17g}%s\n",
        jc.study, jc.policy, jc.crash_rate, jc.static_interval_s, jc.reps,
        c.makespan.mean(), c.cost.mean(), c.restarts.mean(), c.crashes.mean(),
        c.lost_work_s.mean(), c.ckpt_io_s.mean(), c.waste_s.mean(),
        c.ckpts_completed.mean(), c.ckpts_lost.mean(),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(perf-trajectory series written to %s)\n", path.c_str());
}

// --- smoke: golden byte-identity -------------------------------------------
//
// Four canonical checkpoint-OFF cells, digests captured on the build
// immediately before the checkpoint scheduling subsystem landed. The
// disabled path (CheckpointConfig::enabled() == false everywhere below)
// must reproduce these bytes exactly — any drift means the subsystem leaked
// into the baseline simulation.
const char* const kGolden[4] = {
    "quiet makespan=0x1.e7fb05c36087cp+11 cost=0x1.e2p+7 "
    "busy=0x1.c58615098a2dbp+14 wasted=0x0p+0 ready=0x1.bcdb05c36087cp+13 "
    "restarts=0 faults=0 crashes=0 oom=0",
    "legacy_faults makespan=0x1.10928f149de01p+12 cost=0x1.cep+7 "
    "busy=0x1.ba54178951969p+14 wasted=0x1.0274b03983fafp+11 "
    "ready=0x1.ac7a3f46fc22cp+13 restarts=20 faults=14 crashes=6 oom=0",
    "memory_faults makespan=0x1.869cf4e947085p+12 cost=0x1.2p+3 "
    "busy=0x1.326af3cae10c2p+13 wasted=0x1.159c2f6794604p+10 "
    "ready=0x1.deed1f9545b4ap+12 restarts=2 faults=0 crashes=2 oom=35",
    "ensemble slowdown_mean=0x1.09903ce5fdb31p+0 "
    "slowdown_max=0x1.43103c1c64d77p+0 cost=0x1.b4p+6 "
    "util=0x1.2d30e57586034p-2 tput=0x1.4af5ecc80ac16p+3",
};

std::string digest_run(const char* name, const sim::RunResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s makespan=%a cost=%a busy=%a wasted=%a ready=%a "
                "restarts=%u faults=%u crashes=%u oom=%u",
                name, r.makespan, r.cost_units, r.busy_slot_seconds,
                r.wasted_slot_seconds, r.ready_instance_seconds,
                r.task_restarts, r.task_faults, r.instance_crashes,
                r.oom_kills);
  return buf;
}

std::vector<std::string> golden_digests() {
  std::vector<std::string> got;
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Large), 7);
  {  // quiet Table-I style cell
    sim::CloudConfig config = exp::paper_cloud(60.0);
    core::WireController controller;
    sim::RunOptions options;
    options.seed = util::derive_seed(kSeedRoot, 0);
    options.initial_instances = 1;
    got.push_back(
        digest_run("quiet", sim::simulate(wf, controller, config, options)));
  }
  {  // legacy checkpoint_fraction salvage under faults
    sim::CloudConfig config = exp::paper_cloud(60.0);
    config.checkpoint_fraction = 0.5;
    config.faults.crash_rate_per_hour = 2.0;
    config.faults.task_failure_prob = 0.05;
    core::WireController controller;
    sim::RunOptions options;
    options.seed = util::derive_seed(kSeedRoot, 11);
    options.initial_instances = 1;
    got.push_back(digest_run("legacy_faults",
                             sim::simulate(wf, controller, config, options)));
  }
  {  // memory dimension + faults
    const dag::Workflow mem_wf = workload::make_workflow(
        workload::epigenomics_profile(workload::Scale::Small), 3);
    sim::CloudConfig config = exp::paper_cloud(900.0);
    config.memory.instance_mem_mb = 4096.0;
    config.memory.noise_sigma = 0.2;
    config.faults.crash_rate_per_hour = 1.0;
    core::WireController controller;
    sim::RunOptions options;
    options.seed = util::derive_seed(kSeedRoot, 22);
    options.initial_instances = 1;
    got.push_back(digest_run(
        "memory_faults", sim::simulate(mem_wf, controller, config, options)));
  }
  {  // ensemble cell: demand-weighted arbitration, WIRE tenants
    ensemble::PoissonArrivalConfig stream;
    stream.mean_interarrival_seconds = 300.0;
    stream.job_count = 50;
    stream.seed = 1905;
    const std::vector<workload::WorkflowProfile> profiles = {
        workload::tpch1_profile(workload::Scale::Small),
        workload::tpch6_profile(workload::Scale::Small),
        workload::pagerank_profile(workload::Scale::Small),
        workload::epigenomics_profile(workload::Scale::Small)};
    const ensemble::ArrivalProcess arrivals =
        ensemble::ArrivalProcess::poisson(stream, profiles.size());
    const sim::CloudConfig site = exp::paper_cloud(900.0);
    ensemble::EnsembleOptions options;
    options.strategy = ensemble::ArbiterStrategy::DemandWeighted;
    options.site_cap = site.max_instances;
    ensemble::EnsembleDriver driver(profiles, arrivals,
                                    exp::policy_factory(exp::PolicyKind::Wire),
                                    site, options);
    const ensemble::EnsembleReport report = driver.run();
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "ensemble slowdown_mean=%a slowdown_max=%a cost=%a util=%a "
                  "tput=%a",
                  report.mean_slowdown, report.max_slowdown,
                  report.total_cost_units, report.site_utilization,
                  report.throughput_jobs_per_hour);
    got.emplace_back(buf);
  }
  return got;
}

int run_smoke() {
  std::printf("bench_checkpoint --smoke (seed root %llu)\n",
              static_cast<unsigned long long>(kSeedRoot));
  int rc = 0;

  std::printf("checkpoint-OFF byte-identity vs pre-subsystem goldens:\n");
  const std::vector<std::string> got = golden_digests();
  bool identity = true;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const bool ok = got[i] == kGolden[i];
    std::printf("  %s %s\n", ok ? "OK  " : "FAIL", got[i].c_str());
    if (!ok) {
      std::printf("  want %s\n", kGolden[i]);
      identity = false;
      rc = 1;
    }
  }

  // Waste-reduction tripwire: 32 x 600 s tasks, 2 crashes per instance-hour,
  // 1 s write cost. Young/Daly (warm prior) checkpoints every ~60 s; the
  // 10-minute static interval barely checkpoints inside a task at all, so
  // nearly every crash forfeits full progress.
  std::printf("young-daly vs static-600 waste (2 crashes/h):\n");
  const dag::Workflow wf = workload::linear_workflow(8, 4, 600.0);
  Cell yd, st;
  for (std::uint32_t rep = 0; rep < 3; ++rep) {
    const std::uint64_t seed = util::derive_seed(kSeedRoot, 8000 + rep);
    run_into(wf, arm_cloud(Arm::YoungDaly, 2.0, 600.0), seed, &yd);
    run_into(wf, arm_cloud(Arm::Static, 2.0, 600.0), seed, &st);
  }
  std::printf(
      "  young-daly waste=%.1fs (lost=%.1f io=%.1f ckpts=%.0f)\n"
      "  static-600 waste=%.1fs (lost=%.1f io=%.1f ckpts=%.0f)\n",
      yd.waste_s.mean(), yd.lost_work_s.mean(), yd.ckpt_io_s.mean(),
      yd.ckpts_completed.mean(), st.waste_s.mean(), st.lost_work_s.mean(),
      st.ckpt_io_s.mean(), st.ckpts_completed.mean());
  if (yd.ckpts_completed.mean() <= 0.0) {
    std::printf("  FAIL: young-daly never committed a checkpoint\n");
    rc = 1;
  }
  if (yd.waste_s.mean() >= st.waste_s.mean()) {
    std::printf("  FAIL: hazard-driven interval did not reduce waste\n");
    rc = 1;
  }

  const std::vector<JsonCell> json = {
      JsonCell{"smoke", arm_label(Arm::YoungDaly), 2.0, 0.0, 3, &yd},
      JsonCell{"smoke", arm_label(Arm::Static), 2.0, 600.0, 3, &st},
  };
  write_json(json, /*smoke=*/true, identity);
  if (rc != 0) std::printf("bench_checkpoint --smoke FAILED\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Large), 7);
  const std::vector<Arm> arms = {Arm::None, Arm::Legacy, Arm::Static,
                                 Arm::YoungDaly};
  const std::vector<double> crash_rates = {0.1, 0.5, 2.0};
  constexpr double kStaticDefault = 600.0;
  // Interval sweep at a fixed mid rate, tracing the U-curve through the
  // Young/Daly point (sqrt(2 * 1 * 3600 / 0.5) = 120 s).
  constexpr double kSweepRate = 0.5;
  const std::vector<double> intervals = {60.0,  120.0,  300.0,
                                         600.0, 1200.0, 2400.0};

  struct Job {
    const char* study;
    Arm arm;
    double crash_rate;
    double interval;
  };
  std::vector<Job> jobs;
  for (double rate : crash_rates) {
    for (Arm arm : arms) {
      jobs.push_back(Job{"policy_x_rate", arm, rate, kStaticDefault});
    }
  }
  const std::size_t sweep_begin = jobs.size();
  for (double interval : intervals) {
    jobs.push_back(Job{"interval_sweep", Arm::Static, kSweepRate, interval});
  }
  jobs.push_back(Job{"interval_sweep", Arm::YoungDaly, kSweepRate, 0.0});

  std::vector<Cell> cells(jobs.size());
  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    for (std::uint32_t rep = 0; rep < kReps; ++rep) {
      run_into(wf, arm_cloud(job.arm, job.crash_rate, job.interval),
               util::derive_seed(kSeedRoot, j * 16 + rep), &cells[j]);
    }
  });

  std::printf(
      "Checkpoint-interval study: PageRank L under WIRE, u = 1 min, 1 s "
      "write cost (%u repetitions, seed root %llu)\nwaste = lost work + "
      "checkpoint I/O slot-seconds\n\n",
      kReps, static_cast<unsigned long long>(kSeedRoot));

  util::CsvWriter csv(bench::results_dir() + "/checkpoint.csv");
  csv.write_row({"study", "policy", "crash_rate_per_hour",
                 "static_interval_s", "reps", "makespan_mean_s",
                 "cost_mean_units", "restarts_mean", "crashes_mean",
                 "lost_work_s_mean", "ckpt_io_s_mean", "waste_s_mean",
                 "ckpts_completed_mean", "ckpts_lost_mean"});
  std::vector<JsonCell> json;
  json.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    const Cell& cell = cells[j];
    csv.write_row(
        {job.study, arm_label(job.arm), util::fmt(job.crash_rate, 2),
         util::fmt(job.arm == Arm::Static ? job.interval : 0.0, 1),
         std::to_string(kReps), util::fmt(cell.makespan.mean(), 1),
         util::fmt(cell.cost.mean(), 3), util::fmt(cell.restarts.mean(), 2),
         util::fmt(cell.crashes.mean(), 2),
         util::fmt(cell.lost_work_s.mean(), 1),
         util::fmt(cell.ckpt_io_s.mean(), 1),
         util::fmt(cell.waste_s.mean(), 1),
         util::fmt(cell.ckpts_completed.mean(), 2),
         util::fmt(cell.ckpts_lost.mean(), 2)});
    json.push_back(JsonCell{job.study, arm_label(job.arm), job.crash_rate,
                            job.arm == Arm::Static ? job.interval : 0.0,
                            kReps, &cell});
  }

  util::TextTable table;
  std::vector<std::string> header{"policy \\ crash rate"};
  for (double rate : crash_rates) header.push_back(util::fmt(rate, 1) + "/h");
  table.set_header(std::move(header));
  for (std::size_t a = 0; a < arms.size(); ++a) {
    std::vector<std::string> row{arm_label(arms[a])};
    for (std::size_t r = 0; r < crash_rates.size(); ++r) {
      const Cell& cell = cells[r * arms.size() + a];
      row.push_back(util::fmt(cell.waste_s.mean(), 0) + "s waste / " +
                    util::fmt(cell.makespan.mean(), 0) + "s / " +
                    util::fmt(cell.restarts.mean(), 1) + "rst");
    }
    table.add_row(std::move(row));
  }
  std::printf("interval policy x crash rate\n%s\n", table.render().c_str());

  util::TextTable sweep;
  sweep.set_header({"static interval", "waste [s]", "lost work [s]",
                    "ckpt I/O [s]", "ckpts", "makespan [s]"});
  for (std::size_t j = sweep_begin; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    const Cell& cell = cells[j];
    sweep.add_row({job.arm == Arm::YoungDaly
                       ? std::string("young-daly")
                       : util::fmt(job.interval, 0) + "s",
                   util::fmt(cell.waste_s.mean(), 1),
                   util::fmt(cell.lost_work_s.mean(), 1),
                   util::fmt(cell.ckpt_io_s.mean(), 1),
                   util::fmt(cell.ckpts_completed.mean(), 1),
                   util::fmt(cell.makespan.mean(), 0)});
  }
  std::printf("waste vs static interval at %.1f crashes/h\n%s\n", kSweepRate,
              sweep.render().c_str());
  std::printf("series written to %s/checkpoint.csv\n",
              bench::results_dir().c_str());
  write_json(json, /*smoke=*/false, /*golden_identity=*/false);
  return 0;
}
