// Checkpointing study (extension beyond the paper).
//
// The 0.2u restart-cost threshold exists because killing a task forfeits its
// sunk work. Checkpointing salvages a fraction of that work, which should
// let the steering policy release instances more aggressively: sweep
// checkpoint fraction {0, 0.5, 0.9} × restart threshold {0.2u, 0.5u, 1.0u}
// on PageRank L (long tasks — the regime where restart costs bite) at the
// 1-minute charging unit.
//
// Expected shape: without checkpointing, loose thresholds cause costly
// restarts (wasted slot-seconds grow); with strong checkpointing, loose
// thresholds become safe and buy lower cost at similar makespan.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint32_t kReps = 5;

struct Cell {
  metrics::CellStats stats;
  util::RunningStats wasted;
};

}  // namespace

int main() {
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Large), 7);
  const std::vector<double> checkpoints = {0.0, 0.5, 0.9};
  const std::vector<double> thresholds = {0.2, 0.5, 1.0};

  std::vector<Cell> cells(checkpoints.size() * thresholds.size());
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    for (std::size_t t = 0; t < thresholds.size(); ++t) jobs.emplace_back(c, t);
  }
  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const auto [c, t] = jobs[j];
    for (std::uint32_t rep = 0; rep < kReps; ++rep) {
      sim::CloudConfig config = exp::paper_cloud(60.0);
      config.checkpoint_fraction = checkpoints[c];
      config.restart_cost_fraction = thresholds[t];
      core::WireController controller;
      sim::RunOptions options;
      options.seed = util::derive_seed(717, j * 10 + rep);
      options.initial_instances = 1;
      const sim::RunResult r =
          sim::simulate(wf, controller, config, options);
      cells[j].stats.add(r);
      cells[j].wasted.add(r.wasted_slot_seconds);
    }
  });

  std::printf(
      "Checkpointing x restart threshold: PageRank L under WIRE, u = 1 min "
      "(%u repetitions)\n\n",
      kReps);
  util::CsvWriter csv(bench::results_dir() + "/checkpoint.csv");
  csv.write_row({"checkpoint_fraction", "restart_threshold_u", "cost_mean",
                 "makespan_mean_s", "restarts_mean", "wasted_slot_s_mean"});

  util::TextTable table;
  table.set_header({"ckpt \\ threshold", "0.2u", "0.5u", "1.0u"});
  std::size_t idx = 0;
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    std::vector<std::string> row{util::fmt(checkpoints[c], 1)};
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      const Cell& cell = cells[idx++];
      row.push_back(util::fmt(cell.stats.cost_units.mean(), 0) + "u / " +
                    util::fmt(cell.stats.makespan_seconds.mean(), 0) + "s / " +
                    util::fmt(cell.stats.restarts.mean(), 1) + "rst");
      csv.write_row({util::fmt(checkpoints[c], 2), util::fmt(thresholds[t], 2),
                     util::fmt(cell.stats.cost_units.mean(), 3),
                     util::fmt(cell.stats.makespan_seconds.mean(), 1),
                     util::fmt(cell.stats.restarts.mean(), 2),
                     util::fmt(cell.wasted.mean(), 1)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n(cells: charging units / makespan / task restarts)\n\n",
              table.render().c_str());
  std::printf("series written to %s/checkpoint.csv\n",
              bench::results_dir().c_str());
  return 0;
}
