// Figure 4 — CDFs of task-performance prediction error (§IV-D).
//
// Methodology mirrors the paper: for every stage with >= 2 tasks across the
// eight Table I runs (the paper has 45 such stages), take actual execution
// times from ground-truth full-site runs (3 repetitions), replay each stage's
// completions through a fresh predictor in 5 random task orders, and record
// each task's prediction error just before it runs. Stages are classified by
// mean execution time: short (<= 10 s, true error), medium (10-30 s, true
// error), long (> 30 s, relative true error).
//
// Paper results to match in shape: average error <= 0.1 s (short),
// <= 2.15 s (medium), <= 13.1 % (long); ~93 % of short-stage and ~79 % of
// medium-stage tasks within 1 s; ~83 % of long-stage tasks within 15 %; most
// stages show small error differences across task orders.
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "bench_common.h"
#include "dag/analysis.h"
#include "exp/prediction_harness.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace {

using namespace wire;

constexpr std::uint32_t kRepetitions = 3;
constexpr std::uint32_t kOrders = 5;

struct ClassAccumulator {
  util::CdfBuilder errors;           // true error (s) or relative true error
  util::RunningStats abs_error;      // |error|
  std::uint32_t stages = 0;
  std::uint32_t replays = 0;
};

struct WorkflowAccumulators {
  std::map<dag::StageClass, ClassAccumulator> by_class;
  /// Per (stage, repetition): mean |error| per order, for the order-
  /// sensitivity statistic.
  std::vector<double> order_spread;  // max-min of per-order mean |error|
};

}  // namespace

int main() {
  const auto profiles = workload::table1_profiles();
  std::vector<WorkflowAccumulators> acc(profiles.size());
  std::mutex mutex;

  util::parallel_for(profiles.size(), [&](std::size_t w) {
    const workload::WorkflowProfile& profile = profiles[w];
    const dag::Workflow wf = workload::make_workflow(profile, /*seed=*/7);

    for (std::uint32_t rep = 0; rep < kRepetitions; ++rep) {
      // Ground truth: a full-site run supplies the actual execution times.
      policies::StaticPolicy full_site(12, "full-site");
      sim::RunOptions options;
      options.seed = util::derive_seed(1234, w * 100 + rep);
      options.initial_instances = 12;
      const sim::RunResult truth =
          sim::simulate(wf, full_site, exp::paper_cloud(900.0), options);
      std::vector<double> actual(wf.task_count());
      for (dag::TaskId t = 0; t < wf.task_count(); ++t) {
        actual[t] = truth.task_records[t].exec_time;
      }

      const auto stage_summaries = dag::summarize_stages(wf);
      for (const dag::StageSpec& stage : wf.stages()) {
        const auto members = wf.stage_tasks(stage.id);
        if (members.size() < 2) continue;

        // Classify by the declared (reference) stage mean so the class is
        // stable across repetitions.
        const dag::StageClass cls = dag::classify_stage(
            stage_summaries[stage.id].mean_ref_exec_seconds);
        const bool relative = cls == dag::StageClass::Long;

        const auto replays = exp::replay_stage_random_orders(
            wf, stage.id, actual, kOrders,
            util::derive_seed(99, w * 1000 + rep * 10 + stage.id));

        std::vector<double> order_means;
        std::lock_guard<std::mutex> lock(mutex);
        ClassAccumulator& ca = acc[w].by_class[cls];
        ca.stages += rep == 0 ? 1 : 0;
        for (const exp::StageReplay& replay : replays) {
          ++ca.replays;
          util::RunningStats order_abs;
          for (std::size_t i = 0; i < replay.actual.size(); ++i) {
            const double err =
                relative ? metrics::relative_true_error(
                               replay.predicted_ready[i], replay.actual[i])
                         : metrics::true_error(replay.predicted_ready[i],
                                               replay.actual[i]);
            ca.errors.add(err);
            ca.abs_error.add(std::abs(err));
            order_abs.add(std::abs(err));
          }
          if (!order_abs.empty()) order_means.push_back(order_abs.mean());
        }
        if (order_means.size() >= 2) {
          const auto [lo, hi] =
              std::minmax_element(order_means.begin(), order_means.end());
          acc[w].order_spread.push_back(*hi - *lo);
        }
      }
    }
  });

  std::printf(
      "Figure 4: task-performance prediction error by workflow and stage "
      "class\n(short/medium: true error in seconds; long: relative true "
      "error)\n\n");
  util::TextTable table;
  table.set_header({"Workflow", "Class", "Stages", "Samples", "Mean|err|",
                    "P50 err", "P10 err", "P90 err", "within band"});
  util::CsvWriter csv(bench::results_dir() + "/fig4.csv");
  csv.write_row({"workflow", "class", "stages", "samples", "mean_abs_error",
                 "p50", "p10", "p90", "fraction_within_band", "band"});

  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (const auto& [cls, ca] : acc[w].by_class) {
      if (ca.errors.empty()) continue;
      const bool relative = cls == dag::StageClass::Long;
      const double band = relative ? 0.15 : 1.0;  // 15 % / 1 second
      const double within = ca.errors.fraction_within(band);
      table.add_row({
          profiles[w].name,
          dag::stage_class_name(cls),
          std::to_string(ca.stages),
          std::to_string(ca.errors.count()),
          util::fmt(ca.abs_error.mean(), 3) + (relative ? "" : " s"),
          util::fmt(ca.errors.quantile(0.5), 3),
          util::fmt(ca.errors.quantile(0.1), 3),
          util::fmt(ca.errors.quantile(0.9), 3),
          util::fmt(100.0 * within, 1) + "% of " +
              (relative ? "15%" : "1s"),
      });
      csv.write_row({profiles[w].name, dag::stage_class_name(cls),
                     std::to_string(ca.stages),
                     std::to_string(ca.errors.count()),
                     util::fmt(ca.abs_error.mean(), 4),
                     util::fmt(ca.errors.quantile(0.5), 4),
                     util::fmt(ca.errors.quantile(0.1), 4),
                     util::fmt(ca.errors.quantile(0.9), 4),
                     util::fmt(within, 4), relative ? "0.15rel" : "1s"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Full CDF curves (the actual Figure 4 series): true error on
  // [-10, 10] s for short/medium stages, relative true error on [-1, 1]
  // for long stages, 81 grid points each.
  {
    util::CsvWriter curves(bench::results_dir() + "/fig4_cdf.csv");
    curves.write_row({"workflow", "class", "x", "cdf"});
    for (std::size_t w = 0; w < profiles.size(); ++w) {
      for (const auto& [cls, ca] : acc[w].by_class) {
        if (ca.errors.empty()) continue;
        const bool relative = cls == dag::StageClass::Long;
        const double lo = relative ? -1.0 : -10.0;
        const double hi = relative ? 1.0 : 10.0;
        for (const auto& [x, p] : ca.errors.curve(lo, hi, 81)) {
          curves.write_row({profiles[w].name, dag::stage_class_name(cls),
                            util::fmt(x, 4), util::fmt(p, 5)});
        }
      }
    }
  }

  // Aggregate summary vs the paper's headline numbers. The paper reports
  // per-task averages ("for a task, the average prediction error is ..."),
  // so the aggregation is sample-weighted across workflows.
  struct ClassTotal {
    double abs_sum = 0.0;
    double within_sum = 0.0;
    std::size_t samples = 0;
  };
  ClassTotal totals[3];
  std::uint32_t stage_total = 0;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (const auto& [cls, ca] : acc[w].by_class) {
      if (ca.errors.empty()) continue;
      stage_total += ca.stages;
      const double band = cls == dag::StageClass::Long ? 0.15 : 1.0;
      ClassTotal& total = totals[static_cast<int>(cls)];
      total.abs_sum += ca.abs_error.mean() * ca.abs_error.count();
      total.within_sum += ca.errors.fraction_within(band) * ca.errors.count();
      total.samples += ca.errors.count();
    }
  }
  std::printf("multi-task stages covered: %u (paper: 45)\n", stage_total);
  const ClassTotal& ts = totals[static_cast<int>(dag::StageClass::Short)];
  const ClassTotal& tm = totals[static_cast<int>(dag::StageClass::Medium)];
  const ClassTotal& tl = totals[static_cast<int>(dag::StageClass::Long)];
  if (ts.samples) {
    std::printf(
        "short:  mean |err| %.3f s, %.1f%% within 1 s   (paper: <=0.1 s, "
        "93.2%%)\n",
        ts.abs_sum / ts.samples, 100.0 * ts.within_sum / ts.samples);
  }
  if (tm.samples) {
    std::printf(
        "medium: mean |err| %.3f s, %.1f%% within 1 s   (paper: <=2.15 s, "
        "79.4%%)\n",
        tm.abs_sum / tm.samples, 100.0 * tm.within_sum / tm.samples);
  }
  if (tl.samples) {
    std::printf(
        "long:   mean |err| %.1f%%, %.1f%% within 15%%   (paper: <=13.1%%, "
        "83.2%%)\n",
        100.0 * tl.abs_sum / tl.samples, 100.0 * tl.within_sum / tl.samples);
  }

  // Order sensitivity (§IV-D's "error difference" across task orders).
  util::CdfBuilder spreads;
  for (const auto& a : acc) {
    for (double s : a.order_spread) spreads.add(s);
  }
  if (!spreads.empty()) {
    std::printf(
        "order sensitivity: median spread of per-order mean |err| = %.3f, "
        "p90 = %.3f\n",
        spreads.quantile(0.5), spreads.quantile(0.9));
  }
  std::printf("series written to %s/fig4.csv\n", bench::results_dir().c_str());
  return 0;
}
