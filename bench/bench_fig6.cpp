// Figure 6 — Relative execution time (§IV-E).
//
// Same settings matrix as Figure 5; for each workload, every (policy,
// charging unit) cell's mean makespan is normalized to the best cell of that
// workload ("normalize the times across settings and resource charging units
// to the best performance").
//
// Paper results to match in shape: full-site is the fastest (ratio 1); wire
// runs show a 1.02x–3.57x slowdown overall and 1.02x–1.65x at the 1-minute
// charging unit; performance is within 2x of optimal for most wire cells.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "exp/runner.h"
#include "metrics/report.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/profiles.h"

int main() {
  using namespace wire;

  exp::MatrixOptions options;
  options.repetitions = 3;
  const auto profiles = workload::table1_profiles();
  const auto cells = exp::run_matrix(profiles, options);

  util::CsvWriter csv(bench::results_dir() + "/fig6.csv");
  csv.write_row({"workflow", "policy", "charging_unit_s", "relative_time_mean",
                 "relative_time_std", "makespan_mean_s"});

  std::printf(
      "Figure 6: execution time relative to the best setting "
      "(mean ± std)\n\n");

  const auto units = options.charging_units;
  std::size_t idx = 0;
  double wire_slow_min = 1e18, wire_slow_max = 0.0;
  double wire_1min_min = 1e18, wire_1min_max = 0.0;
  std::uint32_t wire_within_2x = 0, wire_cells = 0;

  for (const auto& profile : profiles) {
    std::vector<std::vector<const exp::CellResult*>> grid(
        options.policies.size());
    double best = 1e300;
    for (std::size_t p = 0; p < options.policies.size(); ++p) {
      for (std::size_t u = 0; u < units.size(); ++u) {
        grid[p].push_back(&cells[idx++]);
        best = std::min(best,
                        grid[p].back()->stats.makespan_seconds.mean());
      }
    }

    util::TextTable table;
    table.set_header({"policy \\ u", "1 min", "15 min", "30 min", "60 min"});
    for (std::size_t p = 0; p < options.policies.size(); ++p) {
      std::vector<std::string> row{
          exp::policy_label(options.policies[p])};
      for (std::size_t u = 0; u < units.size(); ++u) {
        const auto& stats = grid[p][u]->stats;
        const double rel = stats.makespan_seconds.mean() / best;
        const double rel_std = stats.makespan_seconds.stddev() / best;
        row.push_back(util::fmt_mean_std(rel, rel_std, 2));
        csv.write_row({profile.name, exp::policy_label(options.policies[p]),
                       util::fmt(units[u], 0), util::fmt(rel, 4),
                       util::fmt(rel_std, 4),
                       util::fmt(stats.makespan_seconds.mean(), 1)});
        if (options.policies[p] == exp::PolicyKind::Wire) {
          wire_slow_min = std::min(wire_slow_min, rel);
          wire_slow_max = std::max(wire_slow_max, rel);
          ++wire_cells;
          if (rel <= 2.0) ++wire_within_2x;
          if (u == 0) {
            wire_1min_min = std::min(wire_1min_min, rel);
            wire_1min_max = std::max(wire_1min_max, rel);
          }
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n%s\n", profile.name.c_str(), table.render().c_str());
  }

  std::printf(
      "wire slowdown overall: %.2fx – %.2fx     (paper: 1.02x – 3.57x)\n"
      "wire slowdown at u = 1 min: %.2fx – %.2fx (paper: 1.02x – 1.65x)\n"
      "wire cells within 2x of best: %u / %u     (paper: 83.75%% of runs)\n",
      wire_slow_min, wire_slow_max, wire_1min_min, wire_1min_max,
      wire_within_2x, wire_cells);
  std::printf("series written to %s/fig6.csv\n", bench::results_dir().c_str());
  return 0;
}
