// Figure 5 — Resource cost (§IV-E).
//
// Runs the full §IV-C settings matrix: the eight Table I workloads under
// {full-site, pure-reactive, reactive-conserving, wire} × charging units
// {1, 15, 30, 60} minutes, with repeated seeded runs, and reports the mean ±
// std of charging units consumed per run.
//
// Paper results to match in shape: wire has the lowest cost in most cells;
// the other policies cost 0.93x–14.66x of wire; full-site costs
// 4.93x–14.66x of wire.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "exp/runner.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/profiles.h"

int main() {
  using namespace wire;

  exp::MatrixOptions options;
  options.repetitions = 3;
  const auto profiles = workload::table1_profiles();
  const auto cells = exp::run_matrix(profiles, options);

  util::CsvWriter csv(bench::results_dir() + "/fig5.csv");
  csv.write_row({"workflow", "policy", "charging_unit_s", "cost_mean",
                 "cost_std", "makespan_mean_s", "utilization_mean"});

  std::printf("Figure 5: resource cost in charging units (mean ± std)\n\n");

  const auto units = options.charging_units;
  std::size_t idx = 0;
  double ratio_min = 1e18, ratio_max = 0.0;      // full-site / wire
  double other_min = 1e18, other_max = 0.0;      // any baseline / wire
  std::uint32_t wire_cheapest = 0, cell_count = 0;

  for (const auto& profile : profiles) {
    util::TextTable table;
    table.set_header({"policy \\ u", "1 min", "15 min", "30 min", "60 min"});
    // cells are ordered policy-major then unit within one workflow.
    std::vector<std::vector<const exp::CellResult*>> grid(
        options.policies.size());
    for (std::size_t p = 0; p < options.policies.size(); ++p) {
      for (std::size_t u = 0; u < units.size(); ++u) {
        grid[p].push_back(&cells[idx++]);
      }
    }
    for (std::size_t p = 0; p < options.policies.size(); ++p) {
      std::vector<std::string> row{
          exp::policy_label(options.policies[p])};
      for (std::size_t u = 0; u < units.size(); ++u) {
        const auto& stats = grid[p][u]->stats;
        row.push_back(util::fmt_mean_std(stats.cost_units.mean(),
                                         stats.cost_units.stddev(), 1));
        csv.write_row({profile.name, exp::policy_label(options.policies[p]),
                       util::fmt(units[u], 0),
                       util::fmt(stats.cost_units.mean(), 3),
                       util::fmt(stats.cost_units.stddev(), 3),
                       util::fmt(stats.makespan_seconds.mean(), 1),
                       util::fmt(stats.utilization.mean(), 4)});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n%s\n", profile.name.c_str(), table.render().c_str());

    // Cost ratios vs wire (wire is the last policy in paper order).
    const std::size_t wire_row = options.policies.size() - 1;
    for (std::size_t u = 0; u < units.size(); ++u) {
      const double wire_cost = grid[wire_row][u]->stats.cost_units.mean();
      ++cell_count;
      bool cheapest = true;
      for (std::size_t p = 0; p + 1 < options.policies.size(); ++p) {
        const double ratio =
            grid[p][u]->stats.cost_units.mean() / wire_cost;
        other_min = std::min(other_min, ratio);
        other_max = std::max(other_max, ratio);
        if (p == 0) {  // full-site
          ratio_min = std::min(ratio_min, ratio);
          ratio_max = std::max(ratio_max, ratio);
        }
        if (ratio < 1.0) cheapest = false;
      }
      if (cheapest) ++wire_cheapest;
    }
  }

  std::printf(
      "wire is the cheapest policy in %u / %u cells\n"
      "full-site / wire cost ratio: %.2fx – %.2fx   (paper: 4.93x – "
      "14.66x)\n"
      "any baseline / wire ratio:   %.2fx – %.2fx   (paper: 0.93x – "
      "14.66x)\n",
      wire_cheapest, cell_count, ratio_min, ratio_max, other_min, other_max);
  std::printf("series written to %s/fig5.csv\n", bench::results_dir().c_str());
  return 0;
}
