// Bandit predictor-selection study (extension beyond the paper — the online
// analogue of the static predictor ablation matrix).
//
// bench_ablation measures each predictor variant as a fixed, whole-run
// configuration; BanditSelector instead switches the live TaskPredictor
// among a small arm set at control-tick period boundaries, scored by
// observed misprediction cost. This bench quantifies what that buys: for
// each (workload x site) cell it measures every fixed arm and both
// explorers (epsilon-greedy decay, UCB1) with the identical regret
// instrumentation — fixed arms run as degenerate single-arm selectors, so
// the cost accounting is the same code path everywhere — and reports mean
// |predicted - actual| execution-time regret per completed task. Results
// land in bandit.csv plus machine-readable BENCH_bandit.json (CI archives
// both).
//
// `--smoke` is the CI tripwire: it asserts the selector-off identity
// contract (arms == 0 and a single-default-arm selector both reproduce the
// plain WIRE run bit for bit) and the headline regret bound (the UCB1
// selector's aggregate regret lands within 10% of the best fixed arm and
// strictly below the worst), returning nonzero on any violation.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "exp/settings.h"
#include "predict/bandit.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint32_t kReps = 5;
constexpr std::uint64_t kSeedRoot = 1213;
/// Arms in play. The study set is not the default prefix: it keeps the three
/// most distinct clean variants and adds the harvest-failed arm, whose
/// contaminated statistics make it persistently bad on the crashy site — the
/// shape a selector must learn to avoid.
constexpr std::uint32_t kArms = 4;

std::vector<predict::BanditArm> study_arms() {
  const std::vector<predict::BanditArm> all = predict::default_bandit_arms();
  return {all[0], all[1], all[2], all[5]};  // median-ogd, mean-ogd,
                                            // median-stage, median-ogd-harvest
}

struct Workload {
  std::string name;
  dag::Workflow wf;
};

struct Site {
  std::string name;
  sim::CloudConfig cloud;
};

/// One (workload, site, configuration) measurement, averaged over kReps.
struct Cell {
  std::size_t workload = 0;
  std::size_t site = 0;
  /// Fixed arm index, or <0 for a live selector.
  int arm = -1;
  predict::Explorer explorer = predict::Explorer::Ucb1;
  std::string label;
  double mean_regret = 0.0;  // |predicted - actual| per completed task
  double cost_units = 0.0;
  double makespan = 0.0;
  double switches = 0.0;
};

std::vector<Workload> make_workloads() {
  return {
      {"Genome L",
       workload::make_workflow(
           workload::epigenomics_profile(workload::Scale::Large), 7)},
      {"PageRank L",
       workload::make_workflow(
           workload::pagerank_profile(workload::Scale::Large), 7)},
  };
}

std::vector<Site> make_sites() {
  // u = 15 s quadruples the control-tick count relative to the u = 60 s
  // benches: the selector needs a few dozen decision periods to amortize its
  // priming sweep, and the Table-I makespans only span ~20 ticks at u = 60.
  Site quiet{"quiet", exp::paper_cloud(15.0)};
  Site crashy{"crashy", exp::paper_cloud(15.0)};
  crashy.cloud.faults.crash_rate_per_hour = 0.6;
  crashy.cloud.faults.crash_notice_seconds = 120.0;
  crashy.cloud.faults.provision_failure_prob = 0.1;
  crashy.cloud.faults.straggler_prob = 0.15;
  crashy.cloud.faults.task_failure_prob = 0.05;
  crashy.cloud.faults.monitor_dropout_prob = 0.1;
  return {quiet, crashy};
}

/// One simulated run with the given bandit configuration; the controller
/// outlives the run so its selector statistics stay readable.
struct BanditRun {
  sim::RunResult result;
  double mean_regret = 0.0;
  std::uint64_t switches = 0;
};

BanditRun run_bandit(const dag::Workflow& wf, const sim::CloudConfig& cloud,
                     const predict::BanditOptions& bandit,
                     std::uint64_t seed) {
  core::WireOptions wire;
  wire.bandit = bandit;
  // The explorer's dedicated stream, derived from the run seed: reps see
  // independent exploration, replays of the same seed are identical.
  wire.bandit.seed = util::derive_seed(seed, 0xB17);
  core::WireController policy(wire);
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = 1;
  BanditRun out;
  out.result = sim::simulate(wf, policy, cloud, options);
  const predict::BanditSelector* selector = policy.bandit();
  if (selector != nullptr && selector->total_completions() > 0) {
    out.mean_regret = selector->total_cost() /
                      static_cast<double>(selector->total_completions());
    out.switches = selector->switches();
  }
  return out;
}

predict::BanditOptions fixed_arm(std::uint32_t index) {
  predict::BanditOptions bandit;
  bandit.arms = 1;
  bandit.arm_set = {study_arms()[index]};
  return bandit;
}

predict::BanditOptions selector_options(predict::Explorer explorer) {
  predict::BanditOptions bandit;
  bandit.arms = kArms;
  bandit.arm_set = study_arms();
  bandit.explorer = explorer;
  // Short periods and tight exploration: the Table-I horizons are a few
  // dozen decision periods, so the explorer must commit quickly after the
  // priming sweep or the run ends while it is still sampling bad arms.
  bandit.switch_period_ticks = 2;
  bandit.ucb_c = 0.1;
  bandit.epsilon0 = 0.2;
  bandit.decay = 1.0;
  return bandit;
}

void run_cell(const std::vector<Workload>& workloads,
              const std::vector<Site>& sites, Cell& cell) {
  const predict::BanditOptions bandit =
      cell.arm >= 0 ? fixed_arm(static_cast<std::uint32_t>(cell.arm))
                    : selector_options(cell.explorer);
  for (std::uint32_t rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed = util::derive_seed(
        kSeedRoot, 1 + cell.workload * 1000 + cell.site * 100 + rep);
    const BanditRun run =
        run_bandit(workloads[cell.workload].wf, sites[cell.site].cloud,
                   bandit, seed);
    cell.mean_regret += run.mean_regret / kReps;
    cell.cost_units += run.result.cost_units / kReps;
    cell.makespan += run.result.makespan / kReps;
    cell.switches += static_cast<double>(run.switches) / kReps;
  }
}

/// Bitwise run equality over every outcome field the selector could
/// perturb — the selector-off identity tripwire.
bool same_run(const sim::RunResult& a, const sim::RunResult& b) {
  if (a.makespan != b.makespan || a.cost_units != b.cost_units ||
      a.ready_instance_seconds != b.ready_instance_seconds ||
      a.busy_slot_seconds != b.busy_slot_seconds ||
      a.wasted_slot_seconds != b.wasted_slot_seconds ||
      a.utilization != b.utilization || a.peak_instances != b.peak_instances ||
      a.task_restarts != b.task_restarts ||
      a.control_ticks != b.control_ticks ||
      a.task_records.size() != b.task_records.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.task_records.size(); ++i) {
    if (a.task_records[i].completed_at != b.task_records[i].completed_at ||
        a.task_records[i].exec_time != b.task_records[i].exec_time ||
        a.task_records[i].instance != b.task_records[i].instance) {
      return false;
    }
  }
  return true;
}

/// The selector-off identity contract, checked run-for-run on both off
/// shapes (arms == 0 and a pinned default arm): returns nonzero on any
/// bitwise divergence from plain WIRE.
int check_selector_off_identity(const std::vector<Workload>& workloads,
                                const std::vector<Site>& sites) {
  int rc = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      const std::uint64_t seed = util::derive_seed(kSeedRoot, 77 + w * 10 + s);
      auto baseline = exp::make_policy(exp::PolicyKind::Wire);
      sim::RunOptions options;
      options.seed = seed;
      options.initial_instances = 1;
      const sim::RunResult reference =
          sim::simulate(workloads[w].wf, *baseline, sites[s].cloud, options);
      const sim::RunResult off =
          run_bandit(workloads[w].wf, sites[s].cloud, {}, seed).result;
      const sim::RunResult pinned =
          run_bandit(workloads[w].wf, sites[s].cloud, fixed_arm(0), seed)
              .result;
      if (!same_run(reference, off) || !same_run(reference, pinned)) {
        std::printf("FAIL: selector-off run diverged from plain WIRE on "
                    "%s/%s\n",
                    workloads[w].name.c_str(), sites[s].name.c_str());
        rc = 1;
      }
    }
  }
  return rc;
}

std::vector<Cell> make_cells(std::size_t workloads, std::size_t sites) {
  std::vector<Cell> cells;
  const std::vector<predict::BanditArm> arms = study_arms();
  for (std::size_t w = 0; w < workloads; ++w) {
    for (std::size_t s = 0; s < sites; ++s) {
      for (std::uint32_t a = 0; a < kArms; ++a) {
        Cell cell;
        cell.workload = w;
        cell.site = s;
        cell.arm = static_cast<int>(a);
        cell.label = arms[a].label;
        cells.push_back(std::move(cell));
      }
      for (predict::Explorer explorer :
           {predict::Explorer::EpsilonGreedyDecay, predict::Explorer::Ucb1}) {
        Cell cell;
        cell.workload = w;
        cell.site = s;
        cell.explorer = explorer;
        cell.label = explorer == predict::Explorer::Ucb1
                         ? "selector-ucb1"
                         : "selector-eps";
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

struct Aggregate {
  double vs_best = 0.0;   // mean over cells of selector / best fixed arm
  double vs_worst = 0.0;  // mean over cells of selector / worst fixed arm
};

/// The UCB1 selector's aggregate regret, normalized per cell against the
/// best and worst fixed arm of that cell.
Aggregate aggregate_ucb1(const std::vector<Cell>& cells, std::size_t workloads,
                         std::size_t sites) {
  Aggregate agg;
  std::size_t counted = 0;
  for (std::size_t w = 0; w < workloads; ++w) {
    for (std::size_t s = 0; s < sites; ++s) {
      double best = 0.0, worst = 0.0, selector = 0.0;
      bool seeded = false;
      for (const Cell& c : cells) {
        if (c.workload != w || c.site != s) continue;
        if (c.arm >= 0) {
          if (!seeded || c.mean_regret < best) best = c.mean_regret;
          if (!seeded || c.mean_regret > worst) worst = c.mean_regret;
          seeded = true;
        } else if (c.explorer == predict::Explorer::Ucb1) {
          selector = c.mean_regret;
        }
      }
      if (!seeded || best <= 0.0 || worst <= 0.0) continue;
      agg.vs_best += selector / best;
      agg.vs_worst += selector / worst;
      ++counted;
    }
  }
  if (counted > 0) {
    agg.vs_best /= static_cast<double>(counted);
    agg.vs_worst /= static_cast<double>(counted);
  }
  return agg;
}

/// The headline bound: within 10% of the best fixed arm, strictly below the
/// worst — on the aggregate across cells.
int check_regret_bound(const Aggregate& agg) {
  int rc = 0;
  std::printf("selector-ucb1 aggregate regret: %.3fx best fixed arm, "
              "%.3fx worst fixed arm\n",
              agg.vs_best, agg.vs_worst);
  if (agg.vs_best > 1.10) {
    std::printf("FAIL: selector regret %.3fx best fixed arm (bound 1.10x)\n",
                agg.vs_best);
    rc = 1;
  }
  if (agg.vs_worst >= 1.0) {
    std::printf(
        "FAIL: selector regret %.3fx worst fixed arm (must be < 1.0x)\n",
        agg.vs_worst);
    rc = 1;
  }
  return rc;
}

void write_json(const std::vector<Workload>& workloads,
                const std::vector<Site>& sites, const std::vector<Cell>& cells,
                const Aggregate& agg, bool smoke) {
  const std::string path = bench::results_dir() + "/BENCH_bandit.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bandit\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"seed_root\": %llu,\n  \"arms\": %u,\n",
               static_cast<unsigned long long>(kSeedRoot), kArms);
  std::fprintf(f,
               "  \"aggregate\": {\"selector_vs_best\": %.17g, "
               "\"selector_vs_worst\": %.17g},\n",
               agg.vs_best, agg.vs_worst);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"site\": \"%s\", \"config\": \"%s\", "
        "\"mean_regret_s\": %.17g, \"cost_mean\": %.17g, "
        "\"makespan_mean_s\": %.17g, \"switches_mean\": %.17g}%s\n",
        workloads[c.workload].name.c_str(), sites[c.site].name.c_str(),
        c.label.c_str(), c.mean_regret, c.cost_units, c.makespan, c.switches,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(bandit study written to %s)\n", path.c_str());
}

int run_smoke() {
  std::printf("bench_bandit --smoke: selector-off identity + regret-bound "
              "tripwire (seed root %llu, %u arms)\n",
              static_cast<unsigned long long>(kSeedRoot), kArms);
  std::vector<Workload> workloads = make_workloads();
  std::vector<Site> sites = make_sites();
  int rc = check_selector_off_identity(workloads, sites);
  std::vector<Cell> cells = make_cells(workloads.size(), sites.size());
  util::parallel_for(cells.size(), [&](std::size_t i) {
    run_cell(workloads, sites, cells[i]);
  });
  const Aggregate agg = aggregate_ucb1(cells, workloads.size(), sites.size());
  rc |= check_regret_bound(agg);
  write_json(workloads, sites, cells, agg, /*smoke=*/true);
  if (rc != 0) std::printf("bench_bandit --smoke FAILED\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  std::vector<Workload> workloads = make_workloads();
  std::vector<Site> sites = make_sites();
  std::printf(
      "Bandit predictor-selection study: fixed arms vs seeded explorers "
      "(%u-arm study set, switch period 2 ticks, %u repetitions)\n\n",
      kArms, kReps);
  int rc = check_selector_off_identity(workloads, sites);

  std::vector<Cell> cells = make_cells(workloads.size(), sites.size());
  util::parallel_for(cells.size(), [&](std::size_t i) {
    run_cell(workloads, sites, cells[i]);
  });

  util::CsvWriter csv(bench::results_dir() + "/bandit.csv");
  csv.write_row({"workload", "site", "config", "mean_regret_s", "cost_mean",
                 "makespan_mean_s", "switches_mean"});
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      util::TextTable table;
      table.set_header(
          {"config", "regret(s)", "cost", "makespan(s)", "switches"});
      for (const Cell& c : cells) {
        if (c.workload != w || c.site != s) continue;
        table.add_row({c.label, util::fmt(c.mean_regret, 2),
                       util::fmt(c.cost_units, 1), util::fmt(c.makespan, 0),
                       util::fmt(c.switches, 1)});
        csv.write_row({workloads[w].name, sites[s].name, c.label,
                       util::fmt(c.mean_regret, 4),
                       util::fmt(c.cost_units, 3), util::fmt(c.makespan, 1),
                       util::fmt(c.switches, 2)});
      }
      std::printf("%s / %s\n%s\n", workloads[w].name.c_str(),
                  sites[s].name.c_str(), table.render().c_str());
    }
  }
  const Aggregate agg = aggregate_ucb1(cells, workloads.size(), sites.size());
  rc |= check_regret_bound(agg);
  write_json(workloads, sites, cells, agg, /*smoke=*/false);
  std::printf("series written to %s/bandit.csv\n",
              bench::results_dir().c_str());
  return rc;
}
