// Figure 2 — Performance of the resource-steering policy, R > U.
//
// Paper §IV-A: single-stage linear workflows of N identical tasks of run
// time R on 1-slot instances, charging unit U, starting from P = 1. For
// N in {10, 100, 1000} and growing R/U, report the policy's resource usage
// and completion time as ratios to the optima (cost NR/U, time R).
//
// Paper result to match in shape: both ratios stay bounded (cost within
// ~1.33x, time within ~1.67x) and approach 1 as R/U grows.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace {

struct Point {
  std::uint32_t n = 0;
  double r_over_u = 0.0;
  double cost_ratio = 0.0;
  double time_ratio = 0.0;
};

Point run_point(std::uint32_t n, double r_over_u) {
  using namespace wire;
  const double u = 600.0;
  const double r = u * r_over_u;
  const dag::Workflow wf = workload::linear_workflow(1, n, r, "fig2");
  core::WireController controller;
  sim::RunOptions options;
  options.initial_instances = 1;
  const sim::RunResult result =
      sim::simulate(wf, controller, bench::idealized_cloud(r, u), options);
  Point p;
  p.n = n;
  p.r_over_u = r_over_u;
  p.cost_ratio = result.cost_units / (n * r / u);
  p.time_ratio = result.makespan / r;
  return p;
}

}  // namespace

int main() {
  using namespace wire;
  const std::vector<std::uint32_t> ns = {10, 100, 1000};
  const std::vector<double> ratios = {1.25, 1.5, 2, 4, 8, 16,
                                      32,   64,  128, 256, 400, 512};

  std::vector<Point> points(ns.size() * ratios.size());
  std::vector<std::pair<std::uint32_t, double>> jobs;
  for (std::uint32_t n : ns) {
    for (double r : ratios) jobs.emplace_back(n, r);
  }
  util::parallel_for(jobs.size(), [&](std::size_t i) {
    points[i] = run_point(jobs[i].first, jobs[i].second);
  });

  std::printf(
      "Figure 2: resource-steering policy vs optimal, R > U "
      "(ratios to cost NR/U and time R)\n\n");
  util::CsvWriter csv(bench::results_dir() + "/fig2.csv");
  csv.write_row({"N", "R_over_U", "cost_ratio", "time_ratio"});

  std::size_t idx = 0;
  for (std::uint32_t n : ns) {
    util::TextTable table;
    table.set_header({"R/U", "resource usage / optimal",
                      "completion time / optimal"});
    double worst_cost = 0.0, worst_time = 0.0;
    double paper_range_cost = 0.0, paper_range_time = 0.0;
    for (std::size_t j = 0; j < ratios.size(); ++j, ++idx) {
      const Point& p = points[idx];
      table.add_row({util::fmt(p.r_over_u, 2), util::fmt(p.cost_ratio, 3),
                     util::fmt(p.time_ratio, 3)});
      csv.write_row({std::to_string(p.n), util::fmt(p.r_over_u, 2),
                     util::fmt(p.cost_ratio, 4), util::fmt(p.time_ratio, 4)});
      worst_cost = std::max(worst_cost, p.cost_ratio);
      worst_time = std::max(worst_time, p.time_ratio);
      if (p.r_over_u >= 1.5) {
        paper_range_cost = std::max(paper_range_cost, p.cost_ratio);
        paper_range_time = std::max(paper_range_time, p.time_ratio);
      }
    }
    std::printf("N = %u tasks\n%s", n, table.render().c_str());
    std::printf(
        "worst-case: cost %.3fx, time %.3fx over the full sweep; "
        "%.3fx / %.3fx for R/U >= 1.5  (paper: ~1.33x / ~1.67x — the\n"
        "unit-fragmentation bound ceil(R/U)/(R/U), which our R/U = 1.5 "
        "point reproduces exactly)\n\n",
        worst_cost, worst_time, paper_range_cost, paper_range_time);
  }
  std::printf("series written to %s/fig2.csv\n", bench::results_dir().c_str());
  return 0;
}
