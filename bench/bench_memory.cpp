// Memory-provisioning sweep: instance memory capacity x reservation-sizing
// policy on Table-I workflows with their stage memory footprints.
//
// The sweep walks provisioning factors from heavy under-provisioning (the
// per-slot fair share is half the largest stage's mean peak — most first
// attempts OOM and retry upsized) to comfortable over-provisioning, under
// the three sizing policies of sim::MemoryConfig (Mean, Sizey-style
// Percentile, and the clairvoyant Oracle wastage floor). Each cell reports
// the two costs the sizing literature trades off: wastage (reserved vs
// clairvoyant MB-seconds) and OOM-retry churn (kills, quarantined tasks),
// alongside the makespan/cost impact of memory-aware admission.
//
// `--smoke` runs a fast tripwire subset (one workflow, Percentile + Oracle,
// one tight and one ample factor) asserting the invariants CI relies on:
// reserved MB-seconds dominate the clairvoyant integral, ample capacity
// completes every task with nothing quarantined, and the tight cells
// actually exercise the OOM-retry machinery. Exits nonzero on violation.
//
// Both modes emit machine-readable BENCH_memory.json (the repo's first
// perf-trajectory series) next to the CSV in bench_results/.
//
// All seeds are printed (DESIGN.md: randomized harnesses announce their
// seeds) so any cell reproduces standalone.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/settings.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint64_t kSeedRoot = 3307;

struct Cell {
  util::RunningStats makespan;
  util::RunningStats cost;
  util::RunningStats oom_kills;
  util::RunningStats reserved_mb_s;
  util::RunningStats used_mb_s;
  util::RunningStats quarantined;
  std::uint32_t incomplete_runs = 0;
};

const char* sizing_label(sim::MemoryConfig::Sizing sizing) {
  switch (sizing) {
    case sim::MemoryConfig::Sizing::Mean:
      return "mean";
    case sim::MemoryConfig::Sizing::Percentile:
      return "percentile";
    case sim::MemoryConfig::Sizing::Oracle:
      return "oracle";
  }
  return "unknown";
}

/// The provisioning yardstick: the largest stage mean peak of the profile.
/// A factor-f cell gives each instance f * slots * need MB, so the cold-start
/// fair share is f * need per slot — f = 1 sizes the average heavy task
/// exactly (no headroom for the lognormal tail), f < 1 under-provisions.
double per_slot_need_mb(const workload::WorkflowProfile& profile) {
  double need = 0.0;
  for (const workload::StageProfile& sp : profile.stages) {
    need = std::max(need, sp.mean_peak_mem_mb);
  }
  return need;
}

sim::CloudConfig memory_cloud(double factor, double need_mb,
                              sim::MemoryConfig::Sizing sizing) {
  sim::CloudConfig config = exp::paper_cloud(900.0);
  config.memory.instance_mem_mb =
      factor * need_mb * static_cast<double>(config.slots_per_instance);
  config.memory.noise_sigma = 0.2;
  config.memory.sizing = sizing;
  return config;
}

/// One run of a cell; returns false if any task failed to complete.
bool run_cell(const dag::Workflow& wf, double factor, double need_mb,
              sim::MemoryConfig::Sizing sizing, std::uint64_t seed,
              Cell* cell) {
  const sim::CloudConfig config = memory_cloud(factor, need_mb, sizing);
  auto policy = exp::make_policy(exp::PolicyKind::Wire);
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = exp::initial_instances(exp::PolicyKind::Wire,
                                                     config);
  options.max_sim_seconds = 10.0 * 24.0 * 3600.0;
  const sim::RunResult r = sim::simulate(wf, *policy, config, options);
  bool complete = r.quarantined_tasks.empty();
  for (const sim::TaskRuntime& rec : r.task_records) {
    if (rec.phase != sim::TaskPhase::Completed) complete = false;
  }
  if (cell != nullptr) {
    cell->makespan.add(r.makespan);
    cell->cost.add(r.cost_units);
    cell->oom_kills.add(static_cast<double>(r.oom_kills));
    cell->reserved_mb_s.add(r.mem_reserved_mb_seconds);
    cell->used_mb_s.add(r.mem_used_mb_seconds);
    cell->quarantined.add(static_cast<double>(r.quarantined_tasks.size()));
    if (!complete) ++cell->incomplete_runs;
  }
  return complete;
}

double wastage_ratio(const Cell& cell) {
  return cell.used_mb_s.mean() > 0.0
             ? cell.reserved_mb_s.mean() / cell.used_mb_s.mean()
             : 0.0;
}

struct JsonCell {
  std::string workflow;
  const char* sizing;
  double factor;
  double instance_mem_mb;
  std::uint32_t reps;
  const Cell* cell;
};

/// The perf-trajectory series: one JSON object per cell, full-precision
/// means, written next to the CSV so CI can archive and diff it across
/// commits.
void write_json(const std::vector<JsonCell>& cells, bool smoke) {
  const std::string path = bench::results_dir() + "/BENCH_memory.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"memory\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"seed_root\": %llu,\n  \"cells\": [\n",
               static_cast<unsigned long long>(kSeedRoot));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonCell& jc = cells[i];
    const Cell& c = *jc.cell;
    std::fprintf(
        f,
        "    {\"workflow\": \"%s\", \"sizing\": \"%s\", "
        "\"provisioning_factor\": %.17g, \"instance_mem_mb\": %.17g, "
        "\"reps\": %u, \"makespan_mean_s\": %.17g, \"cost_mean_units\": "
        "%.17g, \"oom_kills_mean\": %.17g, \"reserved_mb_s_mean\": %.17g, "
        "\"used_mb_s_mean\": %.17g, \"wastage_ratio\": %.17g, "
        "\"quarantined_mean\": %.17g, \"incomplete_runs\": %u}%s\n",
        jc.workflow.c_str(), jc.sizing, jc.factor, jc.instance_mem_mb,
        jc.reps, c.makespan.mean(), c.cost.mean(), c.oom_kills.mean(),
        c.reserved_mb_s.mean(), c.used_mb_s.mean(), wastage_ratio(c),
        c.quarantined.mean(), c.incomplete_runs,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(perf-trajectory series written to %s)\n", path.c_str());
}

int run_smoke() {
  std::printf(
      "bench_memory --smoke: provisioning tripwire (seed root %llu)\n",
      static_cast<unsigned long long>(kSeedRoot));
  const workload::WorkflowProfile profile =
      workload::epigenomics_profile(workload::Scale::Small);
  const dag::Workflow wf = workload::make_workflow(profile, 7);
  const double need = per_slot_need_mb(profile);
  int rc = 0;
  std::vector<Cell> cells;
  cells.reserve(4);
  std::vector<JsonCell> json;
  std::size_t idx = 0;
  for (sim::MemoryConfig::Sizing sizing :
       {sim::MemoryConfig::Sizing::Percentile,
        sim::MemoryConfig::Sizing::Oracle}) {
    // Ample capacity (2x the heaviest stage mean per slot) must complete
    // every task with nothing quarantined; the tight factor must actually
    // stress the sizing (OOM-retry churn is asserted across the subset
    // below, completion is not — quarantine past the OOM cap is the
    // designed outcome of genuine under-provisioning).
    for (double factor : {2.0, 0.75}) {
      const std::uint64_t seed = util::derive_seed(
          kSeedRoot, 9000 + idx);
      cells.emplace_back();
      Cell& cell = cells.back();
      const bool complete = run_cell(wf, factor, need, sizing, seed, &cell);
      const bool wastage_ok =
          cell.reserved_mb_s.mean() >= cell.used_mb_s.mean() &&
          cell.reserved_mb_s.mean() > 0.0;
      std::printf(
          "  sizing=%-10s factor=%.2f seed=%llu ooms=%.0f wastage=%.2fx "
          "quarantined=%.0f %s%s\n",
          sizing_label(sizing), factor,
          static_cast<unsigned long long>(seed), cell.oom_kills.mean(),
          wastage_ratio(cell), cell.quarantined.mean(),
          complete ? "complete" : "INCOMPLETE",
          wastage_ok ? "" : " WASTAGE-VIOLATION");
      if (!wastage_ok) rc = 1;
      if (factor == 2.0 && !complete) {
        std::printf("    FAIL: ample capacity stranded work\n");
        rc = 1;
      }
      json.push_back(JsonCell{profile.name, sizing_label(sizing), factor,
                              memory_cloud(factor, need, sizing)
                                  .memory.instance_mem_mb,
                              1, &cell});
      ++idx;
    }
  }
  double tight_ooms = 0.0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i].factor < 1.0) tight_ooms += cells[i].oom_kills.mean();
  }
  if (tight_ooms == 0.0) {
    std::printf(
        "  FAIL: under-provisioned cells never exercised the OOM-retry "
        "path\n");
    rc = 1;
  }
  write_json(json, /*smoke=*/true);
  if (rc != 0) std::printf("bench_memory --smoke FAILED\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  const std::vector<workload::WorkflowProfile> profiles = {
      workload::epigenomics_profile(workload::Scale::Small),
      workload::tpch6_profile(workload::Scale::Small),
  };
  const std::vector<double> factors = {0.5, 0.75, 1.0, 1.5, 2.0};
  const std::vector<sim::MemoryConfig::Sizing> sizings = {
      sim::MemoryConfig::Sizing::Mean, sim::MemoryConfig::Sizing::Percentile,
      sim::MemoryConfig::Sizing::Oracle};
  constexpr std::uint32_t kReps = 3;

  struct Job {
    std::size_t profile;
    std::size_t sizing;
    std::size_t factor;
  };
  std::vector<Job> jobs;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (std::size_t s = 0; s < sizings.size(); ++s) {
      for (std::size_t f = 0; f < factors.size(); ++f) {
        jobs.push_back(Job{w, s, f});
      }
    }
  }
  std::vector<Cell> cells(jobs.size());

  std::printf(
      "Memory-provisioning sweep: %zu workflows x %zu sizings x %zu "
      "factors, %u repetitions (seed root %llu)\n\n",
      profiles.size(), sizings.size(), factors.size(), kReps,
      static_cast<unsigned long long>(kSeedRoot));

  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    const dag::Workflow wf = workload::make_workflow(profiles[job.profile], 7);
    const double need = per_slot_need_mb(profiles[job.profile]);
    for (std::uint32_t rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = util::derive_seed(kSeedRoot, j * 16 + rep);
      run_cell(wf, factors[job.factor], need, sizings[job.sizing], seed,
               &cells[j]);
    }
  });

  util::CsvWriter csv(bench::results_dir() + "/memory.csv");
  csv.write_row({"workflow", "sizing", "provisioning_factor",
                 "instance_mem_mb", "reps", "makespan_mean_s",
                 "makespan_stddev_s", "cost_mean_units", "oom_kills_mean",
                 "reserved_mb_s_mean", "used_mb_s_mean", "wastage_ratio",
                 "quarantined_mean", "incomplete_runs"});
  std::vector<JsonCell> json;
  json.reserve(jobs.size());
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    const double need = per_slot_need_mb(profiles[w]);
    util::TextTable table;
    std::vector<std::string> header{"sizing \\ provisioning"};
    for (double f : factors) header.push_back(util::fmt(f, 2) + "x");
    table.set_header(std::move(header));
    for (std::size_t s = 0; s < sizings.size(); ++s) {
      std::vector<std::string> row{sizing_label(sizings[s])};
      for (std::size_t f = 0; f < factors.size(); ++f) {
        std::size_t j = 0;
        for (; j < jobs.size(); ++j) {
          if (jobs[j].profile == w && jobs[j].sizing == s &&
              jobs[j].factor == f) {
            break;
          }
        }
        const Cell& cell = cells[j];
        row.push_back(util::fmt(cell.oom_kills.mean(), 0) + " ooms / " +
                      util::fmt(wastage_ratio(cell), 2) + "x");
        const double mem_mb =
            memory_cloud(factors[f], need, sizings[s]).memory.instance_mem_mb;
        csv.write_row({profiles[w].name, sizing_label(sizings[s]),
                       util::fmt(factors[f], 2), util::fmt(mem_mb, 1),
                       std::to_string(kReps),
                       util::fmt(cell.makespan.mean(), 1),
                       util::fmt(cell.makespan.stddev(), 1),
                       util::fmt(cell.cost.mean(), 3),
                       util::fmt(cell.oom_kills.mean(), 2),
                       util::fmt(cell.reserved_mb_s.mean(), 1),
                       util::fmt(cell.used_mb_s.mean(), 1),
                       util::fmt(wastage_ratio(cell), 4),
                       util::fmt(cell.quarantined.mean(), 2),
                       std::to_string(cell.incomplete_runs)});
        json.push_back(JsonCell{profiles[w].name, sizing_label(sizings[s]),
                                factors[f], mem_mb, kReps, &cells[j]});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s — OOM churn / wastage vs provisioning\n%s\n",
                profiles[w].name.c_str(), table.render().c_str());
  }
  std::printf("(cells: OOM kills / reserved:used wastage; series written to "
              "%s/memory.csv)\n",
              bench::results_dir().c_str());
  write_json(json, /*smoke=*/false);
  return 0;
}
