// Ensemble scale trajectory: sequential-reference vs sharded windowed
// execution of the multi-tenant driver, swept over tenant count x shard
// count on one site.
//
// Each cell runs the identical job stream (same arrivals, same seeds, same
// arbitration) under a different execution configuration and records the
// wall-clock of the whole run plus the serial-event count. The sharded
// engine's contract is that the EnsembleReport is byte-identical to the
// shards == 0 reference for every configuration, so the sweep doubles as a
// large-scale differential check: any cell whose report diverges from its
// reference fails the bench.
//
// `--smoke` runs one reduced tenant-count column (sequential + one sharded
// configuration) as the CI tripwire: asserts byte-identical reports and
// emits the JSON series. Exits nonzero on violation.
//
// Both modes emit machine-readable BENCH_scale.json (the recorded scale
// trajectory) in bench_results/, in the same perf-trajectory idiom as
// BENCH_memory.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/driver.h"
#include "ensemble/report.h"
#include "exp/settings.h"
#include "sim/config.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint64_t kSeedRoot = 4111;

/// Deterministic quiet site (no stochastic variability) so every cell of the
/// sweep simulates the identical event sequence and wall-clock differences
/// measure the execution engine, nothing else.
sim::CloudConfig scale_site() {
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 1e12;
  return config;
}

/// A dense arrival front: `jobs` tenants land 50 ms apart, so the whole
/// stream arrives well inside the 180 s provisioning lag — before the first
/// tenant can possibly finish. The live tenant population (and with it the
/// arbitration fan-in per serial event) therefore reaches the full stream.
ensemble::ArrivalProcess dense_stream(std::uint32_t jobs) {
  std::vector<ensemble::JobArrival> trace(jobs);
  for (std::uint32_t i = 0; i < jobs; ++i) {
    trace[i].arrival_seconds = 0.05 * i;
    trace[i].profile_index = i % 2;
  }
  return ensemble::ArrivalProcess::fixed_trace(std::move(trace), kSeedRoot);
}

struct CellResult {
  std::uint32_t tenants = 0;
  std::uint32_t shards = 0;  // 0 = sequential reference loop
  double wall_ms = 0.0;
  /// Site-listener samples (serial events in windowed mode; every event in
  /// the reference loop — the cadences differ by design, so latency is
  /// compared through wall_ms, not per-sample time).
  std::uint64_t samples = 0;
  /// Largest concurrently live tenant population seen at any sample — the
  /// arbitration fan-in the cell actually sustained.
  std::uint32_t peak_live_tenants = 0;
  double speedup_vs_sequential = 0.0;
  ensemble::EnsembleReport report;
};

CellResult run_cell(std::uint32_t tenants, std::uint32_t shards) {
  ensemble::EnsembleOptions options;
  options.strategy = ensemble::ArbiterStrategy::DemandWeighted;
  // A quarter of the stream can hold instances at once: enough contention
  // that tenants queue at zero share (the population climbs), enough
  // capacity that the stream drains in bounded sim time.
  options.site_cap = std::max(8u, tenants / 4);
  options.dedicated_baseline = false;
  options.shards = shards;
  CellResult result;
  result.tenants = tenants;
  result.shards = shards;
  ensemble::EnsembleDriver driver(
      {workload::tpch6_profile(workload::Scale::Small),
       workload::pagerank_profile(workload::Scale::Small)},
      dense_stream(tenants),
      exp::policy_factory(exp::PolicyKind::PureReactive), scale_site(),
      options);
  driver.set_site_listener([&result](const ensemble::SiteSample& sample) {
    ++result.samples;
    result.peak_live_tenants =
        std::max(result.peak_live_tenants,
                 static_cast<std::uint32_t>(sample.jobs.size()));
  });
  const auto start = std::chrono::steady_clock::now();
  result.report = driver.run();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

/// The recorded scale trajectory: one JSON object per cell, written to
/// bench_results/ so CI can archive and diff it across commits.
void write_json(const std::vector<CellResult>& cells, bool smoke) {
  const std::string path = bench::results_dir() + "/BENCH_scale.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"seed_root\": %llu,\n  \"cells\": [\n",
               static_cast<unsigned long long>(kSeedRoot));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"tenants\": %u, \"shards\": %u, \"wall_ms\": %.17g, "
        "\"samples\": %llu, \"peak_live_tenants\": %u, "
        "\"speedup_vs_sequential\": %.17g, \"horizon_s\": %.17g, "
        "\"site_utilization\": %.17g}%s\n",
        c.tenants, c.shards, c.wall_ms,
        static_cast<unsigned long long>(c.samples), c.peak_live_tenants,
        c.speedup_vs_sequential, c.report.horizon_seconds,
        c.report.site_utilization, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(scale trajectory written to %s)\n", path.c_str());
}

/// Runs one tenant-count column: the sequential reference first, then every
/// sharded configuration, differentially checked against the reference.
/// Returns nonzero if any report diverged.
int run_column(std::uint32_t tenants, const std::vector<std::uint32_t>& shards,
               std::vector<CellResult>* cells) {
  int rc = 0;
  CellResult reference = run_cell(tenants, 0);
  std::printf(
      "  tenants=%-5u shards=seq  wall=%9.1f ms  samples=%llu  "
      "peak-live=%u\n",
      tenants, reference.wall_ms,
      static_cast<unsigned long long>(reference.samples),
      reference.peak_live_tenants);
  for (std::uint32_t s : shards) {
    CellResult cell = run_cell(tenants, s);
    const bool identical = cell.report == reference.report &&
                           cell.report.render() == reference.report.render();
    cell.speedup_vs_sequential =
        cell.wall_ms > 0.0 ? reference.wall_ms / cell.wall_ms : 0.0;
    std::printf(
        "  tenants=%-5u shards=%-4u wall=%9.1f ms  samples=%llu  "
        "peak-live=%u  speedup=%.2fx%s\n",
        tenants, s, cell.wall_ms,
        static_cast<unsigned long long>(cell.samples), cell.peak_live_tenants,
        cell.speedup_vs_sequential,
        identical ? "" : "  REPORT-DIVERGENCE");
    if (!identical) {
      std::printf(
          "    FAIL: shards=%u report differs from the sequential "
          "reference\n",
          s);
      rc = 1;
    }
    cells->push_back(std::move(cell));
  }
  cells->push_back(std::move(reference));
  return rc;
}

int run_smoke() {
  std::printf("bench_scale --smoke: sharding tripwire (seed root %llu)\n",
              static_cast<unsigned long long>(kSeedRoot));
  std::vector<CellResult> cells;
  int rc = run_column(192, {4}, &cells);
  write_json(cells, /*smoke=*/true);
  if (rc != 0) std::printf("bench_scale --smoke FAILED\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  std::printf(
      "Ensemble scale sweep: tenant count x shard count (seed root %llu)\n\n",
      static_cast<unsigned long long>(kSeedRoot));
  int rc = 0;
  std::vector<CellResult> cells;
  for (std::uint32_t tenants : {256u, 1024u}) {
    rc |= run_column(tenants, {1, 2, 4, 8}, &cells);
    std::printf("\n");
  }
  // The headline claim of the sweep: the big column really sustains a
  // four-digit arbitration fan-in (>= 1000 live tenants at one site event).
  std::uint32_t peak = 0;
  for (const CellResult& c : cells) {
    if (c.tenants >= 1024) peak = std::max(peak, c.peak_live_tenants);
  }
  if (peak < 1000) {
    std::printf("FAIL: peak live tenants %u < 1000 — the scale claim does "
                "not hold\n",
                peak);
    rc = 1;
  }
  write_json(cells, /*smoke=*/false);
  return rc;
}
