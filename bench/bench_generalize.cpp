// Generalization study — beyond Table I.
//
// Runs the §IV-C policy comparison on the three classic Pegasus families the
// paper's workload-characterization reference (Juve et al.) profiles but the
// paper does not evaluate: Montage (wide-narrow-wide mosaic), CyberShake
// (two masters -> huge fan-out -> tail), and LIGO Inspiral (repeated rounds).
// Checks that WIRE's cost/performance story is not an artifact of the four
// Table I shapes.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/pegasus_extra.h"

namespace {

using namespace wire;

constexpr std::uint32_t kReps = 3;

struct Cell {
  std::string workflow;
  exp::PolicyKind policy;
  double unit = 0.0;
  metrics::CellStats stats;
};

}  // namespace

int main() {
  struct Family {
    std::string name;
    dag::Workflow wf;
  };
  const std::vector<Family> families = {
      {"Montage-100", workload::montage(100, 7)},
      {"CyberShake-400", workload::cybershake(400, 7)},
      {"LIGO-100x2", workload::ligo(100, 2, 7)},
  };
  const std::vector<double> units = {60.0, 900.0};
  const auto policies = exp::all_policies();

  std::vector<Cell> cells(families.size() * policies.size() * units.size());
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> jobs;
  for (std::size_t f = 0; f < families.size(); ++f) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t u = 0; u < units.size(); ++u) jobs.push_back({f, p, u});
    }
  }
  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const auto [f, p, u] = jobs[j];
    Cell cell;
    cell.workflow = families[f].name;
    cell.policy = policies[p];
    cell.unit = units[u];
    const sim::CloudConfig config = exp::paper_cloud(units[u]);
    for (std::uint32_t rep = 0; rep < kReps; ++rep) {
      auto policy = exp::make_policy(policies[p]);
      sim::RunOptions options;
      options.seed = util::derive_seed(808, j * 10 + rep);
      options.initial_instances = exp::initial_instances(policies[p], config);
      cell.stats.add(
          sim::simulate(families[f].wf, *policy, config, options));
    }
    cells[j] = std::move(cell);
  });

  std::printf(
      "Generalization: the §IV-C comparison on Montage / CyberShake / LIGO\n"
      "(%u repetitions; u in {1, 15} min)\n\n",
      kReps);
  util::CsvWriter csv(bench::results_dir() + "/generalize.csv");
  csv.write_row({"workflow", "policy", "charging_unit_s", "cost_mean",
                 "cost_std", "makespan_mean_s", "utilization_mean"});

  std::size_t idx = 0;
  for (const Family& family : families) {
    std::printf("%s (%zu tasks, %zu stages)\n", family.name.c_str(),
                family.wf.task_count(), family.wf.stage_count());
    util::TextTable table;
    table.set_header({"policy", "u=1min cost", "u=1min time(s)",
                      "u=15min cost", "u=15min time(s)"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const Cell& c1 = cells[idx];
      const Cell& c15 = cells[idx + 1];
      idx += 2;
      table.add_row({exp::policy_label(policies[p]),
                     util::fmt_mean_std(c1.stats.cost_units.mean(),
                                        c1.stats.cost_units.stddev(), 1),
                     util::fmt(c1.stats.makespan_seconds.mean(), 0),
                     util::fmt_mean_std(c15.stats.cost_units.mean(),
                                        c15.stats.cost_units.stddev(), 1),
                     util::fmt(c15.stats.makespan_seconds.mean(), 0)});
      for (const Cell* c : {&c1, &c15}) {
        csv.write_row({c->workflow, exp::policy_label(c->policy),
                       util::fmt(c->unit, 0),
                       util::fmt(c->stats.cost_units.mean(), 3),
                       util::fmt(c->stats.cost_units.stddev(), 3),
                       util::fmt(c->stats.makespan_seconds.mean(), 1),
                       util::fmt(c->stats.utilization.mean(), 4)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("series written to %s/generalize.csv\n",
              bench::results_dir().c_str());
  return 0;
}
