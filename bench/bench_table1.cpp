// Table I — Example workflows used in the experiments.
//
// Regenerates the paper's workload characterization from our generators:
// framework, dataset size, stage count, aggregate task execution time, total
// tasks, per-stage task-count range, per-stage mean execution-time range, and
// the task-type mix (short/medium/long per the §IV-D classification).
//
// Expected to match the paper's Table I on stage/task structure exactly and
// on the timing/dataset columns approximately (our generators synthesize the
// per-task profiles statistically; see DESIGN.md).
#include <cstdio>

#include "bench_common.h"
#include "dag/analysis.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/generators.h"
#include "workload/profiles.h"

int main() {
  using namespace wire;

  util::TextTable table;
  table.set_header({"Run", "Framework", "Data(GB)", "Stages", "AggExec(h)",
                    "Tasks", "Tasks/Stage", "MeanExec/Stage(s)", "Types"});
  util::CsvWriter csv(bench::results_dir() + "/table1.csv");
  csv.write_row({"run", "framework", "data_gb", "stages", "agg_exec_hours",
                 "tasks", "min_stage_tasks", "max_stage_tasks",
                 "min_stage_mean_exec", "max_stage_mean_exec", "types"});

  for (const workload::WorkflowProfile& profile :
       workload::table1_profiles()) {
    const dag::Workflow wf = workload::make_workflow(profile, /*seed=*/7);
    const dag::WorkflowSummary s = dag::summarize_workflow(wf);
    table.add_row({
        profile.name,
        profile.framework,
        util::fmt(s.dataset_gb, 3),
        std::to_string(s.stage_count),
        util::fmt(s.aggregate_exec_hours, 3),
        std::to_string(s.task_count),
        std::to_string(s.min_stage_tasks) + "-" +
            std::to_string(s.max_stage_tasks),
        util::fmt(s.min_stage_mean_exec, 2) + "-" +
            util::fmt(s.max_stage_mean_exec, 2),
        s.task_type_mix,
    });
    csv.write_row({profile.name, profile.framework, util::fmt(s.dataset_gb, 4),
                   std::to_string(s.stage_count),
                   util::fmt(s.aggregate_exec_hours, 4),
                   std::to_string(s.task_count),
                   std::to_string(s.min_stage_tasks),
                   std::to_string(s.max_stage_tasks),
                   util::fmt(s.min_stage_mean_exec, 3),
                   util::fmt(s.max_stage_mean_exec, 3), s.task_type_mix});
  }

  std::printf("Table I: example workflows used in the experiments\n\n%s\n",
              table.render().c_str());
  std::printf(
      "paper reference: Genome 405/4005 tasks over 8 stages, TPCH-1 62/229 "
      "over 4,\nTPCH-6 33/118 over 2, PageRank 115/313 over 12; datasets "
      "0.002-29.53 GB.\n");
  std::printf("series written to %s/table1.csv\n",
              bench::results_dir().c_str());
  return 0;
}
