// Figure 3 — Performance of the resource-steering policy, R <= U.
//
// Paper §IV-A: same linear-workflow setup as Figure 2 but with the charging
// unit longer than the task run time, sweeping U/R in 1..1000 for
// N in {10, 100, 1000}.
//
// Paper result to match in shape: when the charging unit is long relative to
// task runtimes, elastic agility is inherently limited and the policy "may
// deviate widely from optimal behavior along either metric, depending on the
// specific scenario".
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace {

struct Point {
  std::uint32_t n = 0;
  double u_over_r = 0.0;
  double cost_ratio = 0.0;
  double time_ratio = 0.0;
};

Point run_point(std::uint32_t n, double u_over_r) {
  using namespace wire;
  const double r = 600.0;
  const double u = r * u_over_r;
  const dag::Workflow wf = workload::linear_workflow(1, n, r, "fig3");
  core::WireController controller;
  sim::RunOptions options;
  options.initial_instances = 1;
  const sim::RunResult result =
      sim::simulate(wf, controller, bench::idealized_cloud(r, u), options);
  Point p;
  p.n = n;
  p.u_over_r = u_over_r;
  p.cost_ratio = result.cost_units / (n * r / u);
  p.time_ratio = result.makespan / r;
  return p;
}

}  // namespace

int main() {
  using namespace wire;
  const std::vector<std::uint32_t> ns = {10, 100, 1000};
  const std::vector<double> ratios = {1, 2, 4, 8, 16, 32, 64, 125, 250,
                                      500, 1000};

  std::vector<Point> points(ns.size() * ratios.size());
  std::vector<std::pair<std::uint32_t, double>> jobs;
  for (std::uint32_t n : ns) {
    for (double r : ratios) jobs.emplace_back(n, r);
  }
  util::parallel_for(jobs.size(), [&](std::size_t i) {
    points[i] = run_point(jobs[i].first, jobs[i].second);
  });

  std::printf(
      "Figure 3: resource-steering policy vs optimal, R <= U "
      "(ratios to cost NR/U and time R)\n\n");
  util::CsvWriter csv(bench::results_dir() + "/fig3.csv");
  csv.write_row({"N", "U_over_R", "cost_ratio", "time_ratio"});

  std::size_t idx = 0;
  for (std::uint32_t n : ns) {
    util::TextTable table;
    table.set_header({"U/R", "resource usage / optimal",
                      "completion time / optimal"});
    double worst_cost = 0.0, worst_time = 0.0;
    for (std::size_t j = 0; j < ratios.size(); ++j, ++idx) {
      const Point& p = points[idx];
      table.add_row({util::fmt(p.u_over_r, 0), util::fmt(p.cost_ratio, 3),
                     util::fmt(p.time_ratio, 3)});
      csv.write_row({std::to_string(p.n), util::fmt(p.u_over_r, 2),
                     util::fmt(p.cost_ratio, 4), util::fmt(p.time_ratio, 4)});
      worst_cost = std::max(worst_cost, p.cost_ratio);
      worst_time = std::max(worst_time, p.time_ratio);
    }
    std::printf("N = %u tasks\n%s", n, table.render().c_str());
    std::printf(
        "worst-case: cost %.3fx, time %.3fx  "
        "(paper: wide deviation expected for large U/R)\n\n",
        worst_cost, worst_time);
  }
  std::printf("series written to %s/fig3.csv\n", bench::results_dir().c_str());
  return 0;
}
