// Clustering study — task clustering × charging-unit economics.
//
// Figure 3 shows WIRE's elasticity collapsing when tasks are short relative
// to the charging unit; horizontal clustering (the Pegasus lever the paper
// cites via Chen et al. [8]) lengthens tasks. This bench quantifies the
// interaction: Genome S (short, wide stages) under WIRE at each charging
// unit, for clustering factors 1 (none), 4, and 16.
//
// Expected shape: at u = 1 min clustering barely matters (tasks already ~u);
// at u = 30–60 min clustering recovers parallelism that unclustered short
// tasks cannot justify, cutting makespan at equal-or-lower cost — up to the
// point where over-clustering serializes the stage.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "dag/clustering.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint32_t kReps = 3;

}  // namespace

int main() {
  const dag::Workflow base = workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), 7);
  const std::vector<std::uint32_t> factors = {1, 4, 16};
  const std::vector<double> units = exp::paper_charging_units();

  // Materialize the clustered variants once.
  std::vector<dag::Workflow> variants;
  for (std::uint32_t f : factors) {
    dag::ClusterOptions options;
    options.factor = f;
    options.min_stage_tasks = 8;
    variants.push_back(dag::cluster_horizontal(base, options).workflow);
  }

  struct Cell {
    metrics::CellStats stats;
  };
  std::vector<Cell> cells(factors.size() * units.size());
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  for (std::size_t f = 0; f < factors.size(); ++f) {
    for (std::size_t u = 0; u < units.size(); ++u) jobs.emplace_back(f, u);
  }
  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const auto [f, u] = jobs[j];
    for (std::uint32_t rep = 0; rep < kReps; ++rep) {
      core::WireController controller;
      sim::RunOptions options;
      options.seed = util::derive_seed(606, j * 10 + rep);
      options.initial_instances = 1;
      cells[j].stats.add(sim::simulate(variants[f], controller,
                                       exp::paper_cloud(units[u]), options));
    }
  });

  std::printf(
      "Clustering x charging unit: Genome S under WIRE (%u repetitions)\n"
      "(factor 1 = unclustered; clustered jobs run members sequentially)\n\n",
      kReps);
  util::CsvWriter csv(bench::results_dir() + "/clustering.csv");
  csv.write_row({"factor", "tasks", "charging_unit_s", "cost_mean",
                 "makespan_mean_s", "utilization_mean"});

  util::TextTable table;
  table.set_header({"factor", "tasks", "u=1min cost/time", "u=15min cost/time",
                    "u=30min cost/time", "u=60min cost/time"});
  std::size_t idx = 0;
  for (std::size_t f = 0; f < factors.size(); ++f) {
    std::vector<std::string> row{std::to_string(factors[f]),
                                 std::to_string(variants[f].task_count())};
    for (std::size_t u = 0; u < units.size(); ++u) {
      const Cell& cell = cells[idx++];
      row.push_back(util::fmt(cell.stats.cost_units.mean(), 1) + " / " +
                    util::fmt(cell.stats.makespan_seconds.mean(), 0) + "s");
      csv.write_row({std::to_string(factors[f]),
                     std::to_string(variants[f].task_count()),
                     util::fmt(units[u], 0),
                     util::fmt(cell.stats.cost_units.mean(), 3),
                     util::fmt(cell.stats.makespan_seconds.mean(), 1),
                     util::fmt(cell.stats.utilization.mean(), 4)});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("series written to %s/clustering.csv\n",
              bench::results_dir().c_str());
  return 0;
}
