// §II-B motivation study — Observation 2: "for a given workflow, its task
// execution times are highly variable across runs", which undermines
// history-based predictors (Jockey, Apollo) and motivates WIRE's online
// prediction.
//
// Setup: the ground truth draws a per-run global speed factor (lognormal,
// sigma = 0.25 — different datasets / resource types / co-location per run).
// For each workload, one full-site run provides the "previous run" archive;
// five fresh runs with different factors are then (a) predicted from that
// history, Jockey-style, and (b) predicted online via the stage-replay
// harness; finally wire runs under the history estimator vs the online
// predictor, head to head.
//
// Expected shape: history's median relative error tracks the run-factor gap
// (tens of percent) while online error stays at the noise floor; the
// wire-history runs pay for it with slower or costlier executions.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "dag/analysis.h"
#include "exp/prediction_harness.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "policies/baselines.h"
#include "predict/history.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr double kRunSigma = 0.25;
constexpr std::uint32_t kNewRuns = 5;

sim::CloudConfig variable_cloud(double unit) {
  sim::CloudConfig config = exp::paper_cloud(unit);
  config.variability.run_speed_sigma = kRunSigma;
  return config;
}

struct WorkloadOutcome {
  std::string name;
  util::CdfBuilder history_err;  // |rel error| per task, across new runs
  util::CdfBuilder online_err;
  metrics::CellStats wire_online;
  metrics::CellStats wire_history;
};

WorkloadOutcome study(const workload::WorkflowProfile& profile,
                      std::uint64_t stream) {
  WorkloadOutcome out;
  out.name = profile.name;
  const dag::Workflow wf = workload::make_workflow(profile, 7);
  const sim::CloudConfig truth_config = variable_cloud(900.0);

  // The "previous run": a full-site execution whose archive feeds history.
  policies::StaticPolicy full_site(12, "full-site");
  sim::RunOptions options;
  options.seed = util::derive_seed(2024, stream);
  options.initial_instances = 12;
  const sim::RunResult prior =
      sim::simulate(wf, full_site, truth_config, options);
  const auto archive = std::make_shared<const std::vector<
      predict::HistoryRecord>>(
      predict::history_from_records(prior.task_records));
  predict::HistoryEstimator history(wf, *archive);

  sim::MonitorSnapshot blank;
  blank.tasks.assign(wf.task_count(), sim::TaskObservation{});
  blank.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());

  for (std::uint32_t run = 0; run < kNewRuns; ++run) {
    // (a) Prediction accuracy on a fresh run.
    policies::StaticPolicy fs(12, "full-site");
    sim::RunOptions new_options;
    new_options.seed = util::derive_seed(3033, stream * 100 + run);
    new_options.initial_instances = 12;
    const sim::RunResult fresh =
        sim::simulate(wf, fs, truth_config, new_options);
    std::vector<double> actual(wf.task_count());
    for (dag::TaskId t = 0; t < wf.task_count(); ++t) {
      actual[t] = fresh.task_records[t].exec_time;
      out.history_err.add(
          std::abs(history.estimate_exec(t, blank) - actual[t]) / actual[t]);
    }
    // Online: final-before-run predictions via the replay harness, over
    // every multi-task stage.
    for (const dag::StageSpec& stage : wf.stages()) {
      if (wf.stage_tasks(stage.id).size() < 2) continue;
      for (const exp::StageReplay& replay : exp::replay_stage_random_orders(
               wf, stage.id, actual, 1,
               util::derive_seed(4044, stream * 1000 + run * 20 + stage.id))) {
        for (std::size_t i = 0; i < replay.actual.size(); ++i) {
          out.online_err.add(
              std::abs(replay.predicted_ready[i] - replay.actual[i]) /
              replay.actual[i]);
        }
      }
    }

    // (b) Policy outcomes head to head at u = 15 min.
    {
      core::WireController online;
      sim::RunOptions run_options;
      run_options.seed = util::derive_seed(5055, stream * 100 + run);
      run_options.initial_instances = 1;
      out.wire_online.add(
          sim::simulate(wf, online, truth_config, run_options));

      core::WireOptions history_options;
      history_options.history = archive;
      core::WireController hist(history_options);
      out.wire_history.add(
          sim::simulate(wf, hist, truth_config, run_options));
    }
  }
  return out;
}

}  // namespace

int main() {
  const std::vector<workload::WorkflowProfile> profiles = {
      workload::epigenomics_profile(workload::Scale::Small),
      workload::tpch1_profile(workload::Scale::Large),
      workload::tpch6_profile(workload::Scale::Large),
      workload::pagerank_profile(workload::Scale::Small),
  };

  std::vector<WorkloadOutcome> outcomes(profiles.size());
  util::parallel_for(profiles.size(), [&](std::size_t i) {
    outcomes[i] = study(profiles[i], i);
  });

  std::printf(
      "Observation 2 (§II-B): across-run variability vs prediction "
      "strategy\n(per-run speed factor lognormal sigma = %.2f; %u fresh runs "
      "per workload)\n\n",
      kRunSigma, kNewRuns);

  util::TextTable table;
  table.set_header({"workload", "history med|rel err|", "online med|rel err|",
                    "history p90", "online p90", "wire cost", "wire-hist cost",
                    "wire time(s)", "wire-hist time(s)"});
  util::CsvWriter csv(bench::results_dir() + "/motivation.csv");
  csv.write_row({"workload", "history_median_rel_err", "online_median_rel_err",
                 "history_p90", "online_p90", "wire_cost_mean",
                 "wire_history_cost_mean", "wire_makespan_mean",
                 "wire_history_makespan_mean"});

  for (const WorkloadOutcome& o : outcomes) {
    table.add_row({
        o.name,
        util::fmt(100.0 * o.history_err.quantile(0.5), 1) + "%",
        util::fmt(100.0 * o.online_err.quantile(0.5), 1) + "%",
        util::fmt(100.0 * o.history_err.quantile(0.9), 1) + "%",
        util::fmt(100.0 * o.online_err.quantile(0.9), 1) + "%",
        util::fmt(o.wire_online.cost_units.mean(), 1),
        util::fmt(o.wire_history.cost_units.mean(), 1),
        util::fmt(o.wire_online.makespan_seconds.mean(), 0),
        util::fmt(o.wire_history.makespan_seconds.mean(), 0),
    });
    csv.write_row({o.name, util::fmt(o.history_err.quantile(0.5), 4),
                   util::fmt(o.online_err.quantile(0.5), 4),
                   util::fmt(o.history_err.quantile(0.9), 4),
                   util::fmt(o.online_err.quantile(0.9), 4),
                   util::fmt(o.wire_online.cost_units.mean(), 3),
                   util::fmt(o.wire_history.cost_units.mean(), 3),
                   util::fmt(o.wire_online.makespan_seconds.mean(), 1),
                   util::fmt(o.wire_history.makespan_seconds.mean(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: history's error tracks the run-to-run speed gap; the online\n"
      "policies' error stays at the within-run noise floor — the paper's\n"
      "case for predicting \"the upcoming loads with online information\".\n");
  std::printf("series written to %s/motivation.csv\n",
              bench::results_dir().c_str());
  return 0;
}
