// Budget study (extension beyond the paper) — the cost-vs-deadline Pareto
// frontier under a spend ceiling.
//
// WIRE optimizes cost with no latency or spend constraint; DeadlinePolicy
// buys latency with money. BudgetPolicy closes the triangle: it wraps WIRE
// and paces the pool so the job lands on the deadline exactly as the budget
// runs out (kDeadlineAware), or simply refuses to start units it cannot pay
// for (kHardCap). This bench sweeps budget x deadline-slack grids on two
// workloads and reports the frontier: each row is one (budget, deadline)
// operating point with its realized cost, makespan, SLO hit rate and
// overrun. Results land in budget.csv plus machine-readable
// BENCH_budget.json (CI archives both).
//
// `--smoke` is the CI tripwire: it asserts the budget-off identity contract
// (a zero-budget wrapper reproduces the unconstrained WIRE run bit for bit)
// and that the ample-budget frontier is monotone (a looser deadline never
// costs more), returning nonzero on any violation.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "policies/budget.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint32_t kReps = 3;
constexpr std::uint64_t kSeedRoot = 911;

struct Workload {
  std::string name;
  dag::Workflow wf;
  /// Unconstrained WIRE reference (probe run, seed-matched to the grid).
  double probe_cost = 0.0;
  double probe_makespan = 0.0;
};

struct Cell {
  std::size_t workload = 0;
  double budget_scale = 0.0;  // x probe cost; 0 = unconstrained reference
  double slack = 0.0;         // deadline = slack x probe makespan
  double budget_units = 0.0;
  double deadline_s = 0.0;
  metrics::CellStats stats;
  std::uint32_t met = 0;
  double over_budget_mean = 0.0;
};

sim::RunResult run_wire(const dag::Workflow& wf, std::uint64_t seed) {
  auto policy = exp::make_policy(exp::PolicyKind::Wire);
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = 1;
  return sim::simulate(wf, *policy, exp::paper_cloud(60.0), options);
}

sim::RunResult run_budgeted(const dag::Workflow& wf,
                            const policies::BudgetOptions& budget,
                            std::uint64_t seed) {
  policies::BudgetPolicy policy(exp::make_policy(exp::PolicyKind::Wire),
                                budget);
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = 1;
  return sim::simulate(wf, policy, exp::paper_cloud(60.0), options);
}

/// Bitwise run equality over every outcome field the budget wrapper could
/// perturb — the budget-off identity tripwire.
bool same_run(const sim::RunResult& a, const sim::RunResult& b) {
  if (a.makespan != b.makespan || a.cost_units != b.cost_units ||
      a.ready_instance_seconds != b.ready_instance_seconds ||
      a.busy_slot_seconds != b.busy_slot_seconds ||
      a.wasted_slot_seconds != b.wasted_slot_seconds ||
      a.utilization != b.utilization || a.peak_instances != b.peak_instances ||
      a.task_restarts != b.task_restarts ||
      a.control_ticks != b.control_ticks ||
      a.task_records.size() != b.task_records.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.task_records.size(); ++i) {
    if (a.task_records[i].completed_at != b.task_records[i].completed_at ||
        a.task_records[i].exec_time != b.task_records[i].exec_time ||
        a.task_records[i].instance != b.task_records[i].instance) {
      return false;
    }
  }
  return true;
}

std::vector<Workload> make_workloads() {
  return {
      {"Genome S",
       workload::make_workflow(
           workload::epigenomics_profile(workload::Scale::Small), 7)},
      {"PageRank L",
       workload::make_workflow(
           workload::pagerank_profile(workload::Scale::Large), 7)},
  };
}

void probe(std::vector<Workload>& workloads) {
  for (Workload& w : workloads) {
    const sim::RunResult r = run_wire(w.wf, util::derive_seed(kSeedRoot, 0));
    w.probe_cost = r.cost_units;
    w.probe_makespan = r.makespan;
  }
}

void run_cell(const std::vector<Workload>& workloads, Cell& cell) {
  const Workload& w = workloads[cell.workload];
  for (std::uint32_t rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed =
        util::derive_seed(kSeedRoot, 1 + cell.workload * 1000 + rep);
    sim::RunResult r;
    if (cell.budget_scale > 0.0) {
      policies::BudgetOptions budget;
      budget.budget_units = cell.budget_units;
      budget.mode = policies::BudgetMode::kDeadlineAware;
      budget.deadline_seconds = cell.deadline_s;
      r = run_budgeted(w.wf, budget, seed);
      cell.over_budget_mean +=
          std::max(0.0, r.cost_units - cell.budget_units) / kReps;
    } else {
      r = run_wire(w.wf, seed);
    }
    if (cell.deadline_s <= 0.0 || r.makespan <= cell.deadline_s) ++cell.met;
    cell.stats.add(r);
  }
}

void write_json(const std::vector<Workload>& workloads,
                const std::vector<Cell>& cells, bool smoke) {
  const std::string path = bench::results_dir() + "/BENCH_budget.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"budget\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"seed_root\": %llu,\n  \"cells\": [\n",
               static_cast<unsigned long long>(kSeedRoot));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"budget_units\": %.17g, "
        "\"deadline_s\": %.17g, \"cost_mean\": %.17g, "
        "\"makespan_mean_s\": %.17g, \"slo_met\": %.17g, "
        "\"over_budget_mean\": %.17g, \"peak_mean\": %.17g}%s\n",
        workloads[c.workload].name.c_str(), c.budget_units, c.deadline_s,
        c.stats.cost_units.mean(), c.stats.makespan_seconds.mean(),
        static_cast<double>(c.met) / kReps, c.over_budget_mean,
        c.stats.peak_instances.mean(), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(budget frontier written to %s)\n", path.c_str());
}

/// The budget-off identity contract, checked run-for-run: returns nonzero
/// (and prints the offending workload) on any bitwise divergence.
int check_budget_off_identity(const std::vector<Workload>& workloads) {
  int rc = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const std::uint64_t seed = util::derive_seed(kSeedRoot, 77 + i);
    const sim::RunResult reference = run_wire(workloads[i].wf, seed);
    const sim::RunResult off =
        run_budgeted(workloads[i].wf, policies::BudgetOptions{}, seed);
    if (!same_run(reference, off)) {
      std::printf("FAIL: budget-off run diverged from plain WIRE on %s\n",
                  workloads[i].name.c_str());
      rc = 1;
    }
  }
  return rc;
}

/// The ample-budget frontier must be monotone: a looser deadline never costs
/// more (small tolerance for charge-quantum discretization).
int check_monotone_frontier(const std::vector<Workload>& workloads,
                            std::vector<Cell>* cells) {
  int rc = 0;
  const std::vector<double> slacks = {1.5, 2.5, 4.0};
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    double previous = 0.0;
    for (double slack : slacks) {
      Cell cell;
      cell.workload = w;
      cell.budget_scale = 1.2;
      cell.slack = slack;
      cell.budget_units = std::ceil(1.2 * workloads[w].probe_cost);
      cell.deadline_s = slack * workloads[w].probe_makespan;
      run_cell(workloads, cell);
      const double cost = cell.stats.cost_units.mean();
      std::printf("  %-10s slack %.1fx  deadline %7.0f s  cost %7.1f  "
                  "makespan %7.0f s  met %u/%u\n",
                  workloads[w].name.c_str(), slack, cell.deadline_s, cost,
                  cell.stats.makespan_seconds.mean(), cell.met, kReps);
      if (previous > 0.0 && cost > previous * 1.05) {
        std::printf(
            "FAIL: frontier not monotone on %s (slack %.1fx cost %.2f > "
            "previous %.2f)\n",
            workloads[w].name.c_str(), slack, cost, previous);
        rc = 1;
      }
      previous = cost;
      cells->push_back(std::move(cell));
    }
  }
  return rc;
}

int run_smoke() {
  std::printf("bench_budget --smoke: budget-off identity + monotone "
              "frontier tripwire (seed root %llu)\n",
              static_cast<unsigned long long>(kSeedRoot));
  std::vector<Workload> workloads = make_workloads();
  probe(workloads);
  int rc = check_budget_off_identity(workloads);
  std::vector<Cell> cells;
  rc |= check_monotone_frontier(workloads, &cells);
  write_json(workloads, cells, /*smoke=*/true);
  if (rc != 0) std::printf("bench_budget --smoke FAILED\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  std::vector<Workload> workloads = make_workloads();
  probe(workloads);
  std::printf(
      "Budget sweep: cost-vs-deadline Pareto frontier under a spend ceiling "
      "(u = 1 min, deadline-aware pacing, %u repetitions)\n\n",
      kReps);
  int rc = check_budget_off_identity(workloads);

  const std::vector<double> budget_scales = {0.7, 1.0, 1.4};
  const std::vector<double> slacks = {1.25, 1.75, 2.5, 3.5};
  std::vector<Cell> cells;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    Cell reference;  // unconstrained WIRE operating point
    reference.workload = w;
    cells.push_back(reference);
    for (double scale : budget_scales) {
      for (double slack : slacks) {
        Cell cell;
        cell.workload = w;
        cell.budget_scale = scale;
        cell.slack = slack;
        cell.budget_units = std::ceil(scale * workloads[w].probe_cost);
        cell.deadline_s = slack * workloads[w].probe_makespan;
        cells.push_back(std::move(cell));
      }
    }
  }
  util::parallel_for(cells.size(),
                     [&](std::size_t i) { run_cell(workloads, cells[i]); });

  util::CsvWriter csv(bench::results_dir() + "/budget.csv");
  csv.write_row({"workload", "budget_units", "deadline_s", "cost_mean",
                 "makespan_mean_s", "slo_met", "over_budget_mean",
                 "peak_mean"});
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    util::TextTable table;
    table.set_header({"budget", "deadline(s)", "cost", "makespan(s)", "met",
                      "overrun", "peak"});
    for (const Cell& c : cells) {
      if (c.workload != w) continue;
      table.add_row({
          c.budget_scale > 0.0 ? util::fmt(c.budget_units, 0) : "(wire)",
          c.budget_scale > 0.0 ? util::fmt(c.deadline_s, 0) : "-",
          util::fmt(c.stats.cost_units.mean(), 1),
          util::fmt(c.stats.makespan_seconds.mean(), 0),
          std::to_string(c.met) + "/" + std::to_string(kReps),
          util::fmt(c.over_budget_mean, 2),
          util::fmt(c.stats.peak_instances.mean(), 2),
      });
      csv.write_row({workloads[w].name, util::fmt(c.budget_units, 2),
                     util::fmt(c.deadline_s, 1),
                     util::fmt(c.stats.cost_units.mean(), 3),
                     util::fmt(c.stats.makespan_seconds.mean(), 1),
                     util::fmt(static_cast<double>(c.met) / kReps, 2),
                     util::fmt(c.over_budget_mean, 3),
                     util::fmt(c.stats.peak_instances.mean(), 2)});
    }
    std::printf("%s (probe: cost %.1f units, makespan %.0f s)\n%s\n",
                workloads[w].name.c_str(), workloads[w].probe_cost,
                workloads[w].probe_makespan, table.render().c_str());
  }
  write_json(workloads, cells, /*smoke=*/false);
  std::printf("series written to %s/budget.csv\n",
              bench::results_dir().c_str());
  return rc;
}
