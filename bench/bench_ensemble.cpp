// Multi-tenant ensemble study: a Poisson stream of workflow jobs sharing one
// §IV-B site, swept over arrival rate × arbiter strategy × tenant policy
// ({wire, reactive-conserving}). For each cell: mean/max per-job slowdown vs
// the dedicated-site counterfactual, mean queue wait, total cost, and site
// utilization. The interesting comparison is how much of the batch-queue
// (fifo-exclusive) slowdown the sharing arbiters recover, and whether WIRE's
// demand signal buys anything over reactive demand under the demand-weighted
// strategy.
//
// A second study reruns the demand-weighted cell on a memory-constrained
// site at two provisioning factors (tight and ample per-slot capacity) with
// the memory-aware demand signal off vs on: tenants whose projected
// footprint cannot fit their instance-count bid lift it. The controller bids
// the footprint of the wave that can actually run concurrently at its
// planned pool size (not the whole upcoming queue — that over-claim starved
// tight sites to a 3.9x mean slowdown), so the study measures what the lift
// costs in queueing at each provisioning level, not just what it buys.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/driver.h"
#include "ensemble/report.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

struct Cell {
  double mean_interarrival = 0.0;
  ensemble::ArbiterStrategy strategy = ensemble::ArbiterStrategy::FifoExclusive;
  exp::PolicyKind policy = exp::PolicyKind::Wire;
  /// Memory-bid study knobs: 0 = memory-off site (the main sweep).
  double mem_factor = 0.0;
  bool memory_bid = false;
  ensemble::EnsembleReport report;
};

std::vector<workload::WorkflowProfile> catalogue() {
  return {workload::tpch1_profile(workload::Scale::Small),
          workload::tpch6_profile(workload::Scale::Small),
          workload::pagerank_profile(workload::Scale::Small),
          workload::epigenomics_profile(workload::Scale::Small)};
}

/// The provisioning yardstick for the memory-bid study: the largest stage
/// mean peak across the whole catalogue (same convention as bench_memory's
/// per-profile need).
double catalogue_need_mb() {
  double need = 0.0;
  for (const workload::WorkflowProfile& profile : catalogue()) {
    for (const workload::StageProfile& sp : profile.stages) {
      need = std::max(need, sp.mean_peak_mem_mb);
    }
  }
  return need;
}

void run_cell(Cell& cell) {
  ensemble::PoissonArrivalConfig stream;
  stream.mean_interarrival_seconds = cell.mean_interarrival;
  stream.job_count = 50;
  stream.seed = 1905;  // one stream per rate, shared across strategies
  const ensemble::ArrivalProcess arrivals =
      ensemble::ArrivalProcess::poisson(stream, catalogue().size());

  sim::CloudConfig site = exp::paper_cloud(900.0);
  ensemble::EnsembleOptions options;
  options.strategy = cell.strategy;
  options.site_cap = site.max_instances;

  core::WireOptions wire_options;
  if (cell.mem_factor > 0.0) {
    site.memory.instance_mem_mb =
        cell.mem_factor * catalogue_need_mb() *
        static_cast<double>(site.slots_per_instance);
    site.memory.noise_sigma = 0.2;
    // The signal is produced in both arms (controllers report projected
    // footprints); only the arbitration consumes or ignores it, so the
    // off-arm isolates the memory-aware demand lift itself.
    wire_options.report_memory_demand = true;
    options.memory_aware_demand = cell.memory_bid;
  }

  ensemble::EnsembleDriver driver(
      catalogue(), arrivals, exp::policy_factory(cell.policy, wire_options),
      site, options);
  cell.report = driver.run();
}

}  // namespace

int main() {
  const std::vector<double> rates = {900.0, 300.0, 100.0};  // mean interarrival
  const std::vector<exp::PolicyKind> policies = {
      exp::PolicyKind::Wire, exp::PolicyKind::ReactiveConserving};

  std::vector<Cell> cells;
  for (double rate : rates) {
    for (ensemble::ArbiterStrategy strategy : ensemble::all_strategies()) {
      for (exp::PolicyKind policy : policies) {
        Cell cell;
        cell.mean_interarrival = rate;
        cell.strategy = strategy;
        cell.policy = policy;
        cells.push_back(cell);
      }
    }
  }
  const std::size_t main_cells = cells.size();
  // Memory-bid study: demand-weighted WIRE tenants on a memory-constrained
  // site, tight (0.75x) and ample (1.5x) per-slot provisioning, demand
  // signal ignored vs consumed.
  const std::vector<double> mem_factors = {0.75, 1.5};
  for (double factor : mem_factors) {
    for (bool bid : {false, true}) {
      Cell cell;
      cell.mean_interarrival = 300.0;
      cell.strategy = ensemble::ArbiterStrategy::DemandWeighted;
      cell.policy = exp::PolicyKind::Wire;
      cell.mem_factor = factor;
      cell.memory_bid = bid;
      cells.push_back(cell);
    }
  }
  util::parallel_for(cells.size(), [&](std::size_t i) { run_cell(cells[i]); });

  std::printf(
      "Ensemble study: 50-job Poisson streams, 4 workflow profiles, one "
      "shared 12-instance site (u = 15 min)\nslowdown = (queue wait + "
      "makespan) / dedicated-site makespan of the identical job\n\n");

  util::CsvWriter csv(bench::results_dir() + "/ensemble.csv");
  csv.write_row({"mean_interarrival_s", "arbiter", "policy", "mem_factor",
                 "memory_aware_demand", "mean_slowdown", "max_slowdown",
                 "mean_wait_s", "total_cost_units", "site_utilization",
                 "throughput_jobs_per_h"});

  const auto csv_row = [&](const Cell& cell) {
    const ensemble::EnsembleReport& r = cell.report;
    metrics::EnsembleCellStats stats;
    for (const ensemble::JobOutcome& j : r.jobs) {
      stats.add(j.slowdown, j.queue_wait_seconds, j.cost_units);
    }
    csv.write_row({util::fmt(cell.mean_interarrival, 0), r.arbiter_strategy,
                   r.tenant_policy, util::fmt(cell.mem_factor, 2),
                   cell.mem_factor > 0.0 ? (cell.memory_bid ? "on" : "off")
                                         : "-",
                   util::fmt(r.mean_slowdown, 4), util::fmt(r.max_slowdown, 4),
                   util::fmt(stats.queue_wait_seconds.mean(), 2),
                   util::fmt(r.total_cost_units, 2),
                   util::fmt(r.site_utilization, 4),
                   util::fmt(r.throughput_jobs_per_hour, 3)});
    return stats;
  };

  std::size_t idx = 0;
  for (double rate : rates) {
    util::TextTable table;
    table.set_header({"arbiter", "policy", "slowdown mean", "slowdown max",
                      "wait mean [s]", "cost [units]", "site util",
                      "jobs/h"});
    for (std::size_t k = 0;
         k < ensemble::all_strategies().size() * policies.size();
         ++k, ++idx) {
      const Cell& cell = cells[idx];
      const ensemble::EnsembleReport& r = cell.report;
      const metrics::EnsembleCellStats stats = csv_row(cell);
      table.add_row({r.arbiter_strategy, r.tenant_policy,
                     util::fmt(r.mean_slowdown, 3),
                     util::fmt(r.max_slowdown, 3),
                     util::fmt(stats.queue_wait_seconds.mean(), 1),
                     util::fmt(r.total_cost_units, 1),
                     util::fmt(r.site_utilization, 3),
                     util::fmt(r.throughput_jobs_per_hour, 2)});
    }
    std::printf("mean interarrival %.0f s (offered load %.1f jobs/h)\n%s\n",
                rate, 3600.0 / rate, table.render().c_str());
  }

  util::TextTable mem_table;
  mem_table.set_header({"provisioning", "memory bid", "slowdown mean",
                        "slowdown max", "wait mean [s]", "cost [units]",
                        "site util", "restarts"});
  for (std::size_t i = main_cells; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const ensemble::EnsembleReport& r = cell.report;
    const metrics::EnsembleCellStats stats = csv_row(cell);
    std::uint32_t restarts = 0;
    for (const ensemble::JobOutcome& j : r.jobs) restarts += j.task_restarts;
    mem_table.add_row({util::fmt(cell.mem_factor, 2) + "x",
                       cell.memory_bid ? "on" : "off",
                       util::fmt(r.mean_slowdown, 3),
                       util::fmt(r.max_slowdown, 3),
                       util::fmt(stats.queue_wait_seconds.mean(), 1),
                       util::fmt(r.total_cost_units, 1),
                       util::fmt(r.site_utilization, 3),
                       std::to_string(restarts)});
  }
  std::printf(
      "memory-bid study: demand-weighted WIRE tenants, memory-constrained "
      "site (mean interarrival 300 s)\n%s\n",
      mem_table.render().c_str());
  std::printf("series written to %s/ensemble.csv\n",
              bench::results_dir().c_str());
  return 0;
}
