// Multi-tenant ensemble study: a Poisson stream of workflow jobs sharing one
// §IV-B site, swept over arrival rate × arbiter strategy × tenant policy
// ({wire, reactive-conserving}). For each cell: mean/max per-job slowdown vs
// the dedicated-site counterfactual, mean queue wait, total cost, and site
// utilization. The interesting comparison is how much of the batch-queue
// (fifo-exclusive) slowdown the sharing arbiters recover, and whether WIRE's
// demand signal buys anything over reactive demand under the demand-weighted
// strategy.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/driver.h"
#include "ensemble/report.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

struct Cell {
  double mean_interarrival = 0.0;
  ensemble::ArbiterStrategy strategy = ensemble::ArbiterStrategy::FifoExclusive;
  exp::PolicyKind policy = exp::PolicyKind::Wire;
  ensemble::EnsembleReport report;
};

std::vector<workload::WorkflowProfile> catalogue() {
  return {workload::tpch1_profile(workload::Scale::Small),
          workload::tpch6_profile(workload::Scale::Small),
          workload::pagerank_profile(workload::Scale::Small),
          workload::epigenomics_profile(workload::Scale::Small)};
}

void run_cell(Cell& cell) {
  ensemble::PoissonArrivalConfig stream;
  stream.mean_interarrival_seconds = cell.mean_interarrival;
  stream.job_count = 50;
  stream.seed = 1905;  // one stream per rate, shared across strategies
  const ensemble::ArrivalProcess arrivals =
      ensemble::ArrivalProcess::poisson(stream, catalogue().size());

  const sim::CloudConfig site = exp::paper_cloud(900.0);
  ensemble::EnsembleOptions options;
  options.strategy = cell.strategy;
  options.site_cap = site.max_instances;

  ensemble::EnsembleDriver driver(catalogue(), arrivals,
                                  exp::policy_factory(cell.policy), site,
                                  options);
  cell.report = driver.run();
}

}  // namespace

int main() {
  const std::vector<double> rates = {900.0, 300.0, 100.0};  // mean interarrival
  const std::vector<exp::PolicyKind> policies = {
      exp::PolicyKind::Wire, exp::PolicyKind::ReactiveConserving};

  std::vector<Cell> cells;
  for (double rate : rates) {
    for (ensemble::ArbiterStrategy strategy : ensemble::all_strategies()) {
      for (exp::PolicyKind policy : policies) {
        Cell cell;
        cell.mean_interarrival = rate;
        cell.strategy = strategy;
        cell.policy = policy;
        cells.push_back(cell);
      }
    }
  }
  util::parallel_for(cells.size(), [&](std::size_t i) { run_cell(cells[i]); });

  std::printf(
      "Ensemble study: 50-job Poisson streams, 4 workflow profiles, one "
      "shared 12-instance site (u = 15 min)\nslowdown = (queue wait + "
      "makespan) / dedicated-site makespan of the identical job\n\n");

  util::CsvWriter csv(bench::results_dir() + "/ensemble.csv");
  csv.write_row({"mean_interarrival_s", "arbiter", "policy", "mean_slowdown",
                 "max_slowdown", "mean_wait_s", "total_cost_units",
                 "site_utilization", "throughput_jobs_per_h"});

  std::size_t idx = 0;
  for (double rate : rates) {
    util::TextTable table;
    table.set_header({"arbiter", "policy", "slowdown mean", "slowdown max",
                      "wait mean [s]", "cost [units]", "site util",
                      "jobs/h"});
    for (std::size_t k = 0;
         k < ensemble::all_strategies().size() * policies.size();
         ++k, ++idx) {
      const Cell& cell = cells[idx];
      const ensemble::EnsembleReport& r = cell.report;
      metrics::EnsembleCellStats stats;
      for (const ensemble::JobOutcome& j : r.jobs) {
        stats.add(j.slowdown, j.queue_wait_seconds, j.cost_units);
      }
      table.add_row({r.arbiter_strategy, r.tenant_policy,
                     util::fmt(r.mean_slowdown, 3),
                     util::fmt(r.max_slowdown, 3),
                     util::fmt(stats.queue_wait_seconds.mean(), 1),
                     util::fmt(r.total_cost_units, 1),
                     util::fmt(r.site_utilization, 3),
                     util::fmt(r.throughput_jobs_per_hour, 2)});
      csv.write_row({util::fmt(rate, 0), r.arbiter_strategy, r.tenant_policy,
                     util::fmt(r.mean_slowdown, 4), util::fmt(r.max_slowdown, 4),
                     util::fmt(stats.queue_wait_seconds.mean(), 2),
                     util::fmt(r.total_cost_units, 2),
                     util::fmt(r.site_utilization, 4),
                     util::fmt(r.throughput_jobs_per_hour, 3)});
    }
    std::printf("mean interarrival %.0f s (offered load %.1f jobs/h)\n%s\n",
                rate, 3600.0 / rate, table.render().c_str());
  }
  std::printf("series written to %s/ensemble.csv\n",
              bench::results_dir().c_str());
  return 0;
}
