// Deadline study (extension beyond the paper) — the cost of a latency SLO.
//
// Jockey-style controllers guarantee completion time; WIRE optimizes cost.
// The DeadlinePolicy composes WIRE's predictor and load projection into an
// SLO controller; this bench sweeps the deadline on two workloads and
// reports the classic convex cost-vs-latency frontier, with WIRE's
// (deadline-free) operating point for reference.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "policies/baselines.h"
#include "policies/deadline.h"
#include "predict/history.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint32_t kReps = 3;

struct Point {
  double deadline = 0.0;  // 0 = WIRE reference
  metrics::CellStats stats;
  std::uint32_t met = 0;
};

}  // namespace

int main() {
  struct Workload {
    std::string name;
    dag::Workflow wf;
    std::vector<double> deadlines;
  };
  const std::vector<Workload> workloads = {
      {"Genome S",
       workload::make_workflow(workload::epigenomics_profile(
                                   workload::Scale::Small), 7),
       {600.0, 900.0, 1500.0, 2400.0, 3600.0}},
      {"PageRank L",
       workload::make_workflow(workload::pagerank_profile(
                                   workload::Scale::Large), 7),
       {1800.0, 2700.0, 3600.0, 5400.0, 7200.0}},
  };

  std::printf(
      "Deadline sweep: cost of a latency SLO (u = 1 min, %u repetitions; "
      "deadline 0 = plain WIRE)\n\n",
      kReps);
  util::CsvWriter csv(bench::results_dir() + "/deadline.csv");
  csv.write_row({"workload", "deadline_s", "estimates", "cost_mean",
                 "makespan_mean_s", "slo_met", "peak_mean"});

  for (const Workload& w : workloads) {
    // A prior full-site run supplies the Jockey-style history archive.
    std::shared_ptr<const std::vector<predict::HistoryRecord>> archive;
    {
      policies::StaticPolicy full_site(12, "full-site");
      sim::RunOptions options;
      options.seed = util::derive_seed(910, 1);
      options.initial_instances = 12;
      const sim::RunResult prior =
          sim::simulate(w.wf, full_site, exp::paper_cloud(60.0), options);
      archive = std::make_shared<const std::vector<predict::HistoryRecord>>(
          predict::history_from_records(prior.task_records));
    }

    // Each deadline runs in two variants: online estimates and history.
    std::vector<double> deadlines = w.deadlines;
    deadlines.push_back(0.0);  // WIRE reference last
    std::vector<Point> online_points(deadlines.size());
    std::vector<Point> history_points(deadlines.size());

    util::parallel_for(deadlines.size() * 2, [&](std::size_t job) {
      const std::size_t i = job / 2;
      const bool with_history = job % 2 == 1;
      Point& point = with_history ? history_points[i] : online_points[i];
      point.deadline = deadlines[i];
      for (std::uint32_t rep = 0; rep < kReps; ++rep) {
        const sim::CloudConfig config = exp::paper_cloud(60.0);
        sim::RunOptions options;
        options.seed = util::derive_seed(909, i * 10 + rep);
        options.initial_instances = 1;
        sim::RunResult r;
        if (deadlines[i] > 0.0) {
          policies::DeadlinePolicy policy(
              deadlines[i], with_history ? archive : nullptr);
          r = sim::simulate(w.wf, policy, config, options);
          if (r.makespan <= deadlines[i]) ++point.met;
        } else {
          core::WireController policy;
          r = sim::simulate(w.wf, policy, config, options);
        }
        point.stats.add(r);
      }
    });

    util::TextTable table;
    table.set_header({"deadline(s)", "online cost", "online time / met",
                      "history cost", "history time / met"});
    for (std::size_t i = 0; i < deadlines.size(); ++i) {
      const Point& online = online_points[i];
      const Point& hist = history_points[i];
      const auto met = [&](const Point& p) {
        return p.deadline > 0.0 ? util::fmt(p.stats.makespan_seconds.mean(),
                                            0) +
                                      "s " + std::to_string(p.met) + "/" +
                                      std::to_string(kReps)
                                : util::fmt(p.stats.makespan_seconds.mean(),
                                            0) +
                                      "s -";
      };
      table.add_row({
          online.deadline > 0.0 ? util::fmt(online.deadline, 0) : "(wire)",
          util::fmt(online.stats.cost_units.mean(), 1),
          met(online),
          util::fmt(hist.stats.cost_units.mean(), 1),
          met(hist),
      });
      for (const Point* p : {&online, &hist}) {
        csv.write_row({w.name, util::fmt(p->deadline, 0),
                       p == &hist ? "history" : "online",
                       util::fmt(p->stats.cost_units.mean(), 3),
                       util::fmt(p->stats.makespan_seconds.mean(), 1),
                       p->deadline > 0.0
                           ? util::fmt(static_cast<double>(p->met) / kReps, 2)
                           : "-1",
                       util::fmt(p->stats.peak_instances.mean(), 2)});
      }
    }
    std::printf("%s\n%s\n", w.name.c_str(), table.render().c_str());
  }
  std::printf("series written to %s/deadline.csv\n",
              bench::results_dir().c_str());
  return 0;
}
