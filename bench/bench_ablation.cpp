// Ablation bench — design choices called out in DESIGN.md.
//
// Measures each WIRE design decision by disabling or perturbing it on two
// representative workloads (TPCH-1 L: wide map/reduce; PageRank L: long
// iterative stages) at the 1-minute and 15-minute charging units:
//
//   median-vs-mean      the paper argues the median is the right centre for
//                       skewed distributions (§III-C)
//   OGD on/off          policy 5's value over falling back to stage medians
//   lookahead on/off    the DAG-driven workflow simulator vs a purely
//                       reactive load estimate with the same steering rules
//   first-five on/off   the Condor patch that feeds the predictor early
//                       observations per stage
//   oracle              clairvoyant reference-time estimates (the value of
//                       perfect prediction)
//   reclaim-draining    cancel scheduled drains instead of booting when the
//                       plan grows again
//   restart threshold   sensitivity sweep around the paper's 0.2u
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

struct Variant {
  std::string label;
  core::WireOptions wire;
  /// Overrides applied to the paper cloud.
  double restart_fraction = 0.2;
  std::uint32_t first_fire = 5;
};

struct Row {
  std::string workload;
  std::string variant;
  double charging_unit = 0.0;
  metrics::CellStats stats;
};

}  // namespace

int main() {
  const std::vector<Variant> variants = [] {
    std::vector<Variant> v;
    v.push_back({"baseline", {}, 0.2, 5});
    Variant mean;
    mean.label = "mean-estimators";
    mean.wire.predictor.use_mean = true;
    v.push_back(mean);
    Variant no_ogd;
    no_ogd.label = "no-ogd";
    no_ogd.wire.predictor.disable_ogd = true;
    v.push_back(no_ogd);
    Variant no_lookahead;
    no_lookahead.label = "no-lookahead";
    no_lookahead.wire.disable_lookahead = true;
    v.push_back(no_lookahead);
    Variant oracle;
    oracle.label = "oracle-estimator";
    oracle.wire.oracle_estimator = true;
    v.push_back(oracle);
    Variant reclaim;
    reclaim.label = "reclaim-draining";
    reclaim.wire.reclaim_draining = true;
    v.push_back(reclaim);
    Variant no_first_five;
    no_first_five.label = "no-first-five";
    no_first_five.first_fire = 0;
    v.push_back(no_first_five);
    Variant strict;
    strict.label = "restart-0.05u";
    strict.restart_fraction = 0.05;
    v.push_back(strict);
    Variant loose;
    loose.label = "restart-0.5u";
    loose.restart_fraction = 0.5;
    v.push_back(loose);
    return v;
  }();

  const std::vector<workload::WorkflowProfile> profiles = {
      workload::tpch1_profile(workload::Scale::Large),
      workload::pagerank_profile(workload::Scale::Large),
  };
  constexpr std::uint32_t kReps = 5;
  const std::vector<double> units = {60.0, 900.0};

  struct Job {
    std::size_t w, v, u;
  };
  std::vector<Job> jobs;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (std::size_t u = 0; u < units.size(); ++u) {
      for (std::size_t v = 0; v < variants.size(); ++v) {
        jobs.push_back({w, v, u});
      }
    }
  }
  std::vector<Row> rows(jobs.size());
  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const auto [w, v, u] = jobs[j];
    const dag::Workflow wf = workload::make_workflow(profiles[w], 7);
    Row row;
    row.workload = profiles[w].name;
    row.variant = variants[v].label;
    row.charging_unit = units[u];
    for (std::uint32_t rep = 0; rep < kReps; ++rep) {
      sim::CloudConfig config = exp::paper_cloud(units[u]);
      config.restart_cost_fraction = variants[v].restart_fraction;
      config.first_fire_priority = variants[v].first_fire;
      core::WireController controller(variants[v].wire);
      sim::RunOptions options;
      options.seed = util::derive_seed(31, (w * 100 + v) * 10 + rep);
      options.initial_instances = 1;
      row.stats.add(sim::simulate(wf, controller, config, options));
    }
    rows[j] = std::move(row);
  });

  std::printf(
      "Ablation: WIRE design choices (u in {1, 15} min, %u repetitions)\n\n",
      kReps);
  util::CsvWriter csv(bench::results_dir() + "/ablation.csv");
  csv.write_row({"workload", "variant", "charging_unit_s", "cost_mean",
                 "cost_std", "makespan_mean_s", "utilization_mean",
                 "restarts_mean"});
  std::size_t idx = 0;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (std::size_t u = 0; u < units.size(); ++u) {
      util::TextTable table;
      table.set_header(
          {"variant", "cost (units)", "makespan (s)", "util", "restarts"});
      for (std::size_t v = 0; v < variants.size(); ++v) {
        const Row& row = rows[idx++];
        table.add_row({row.variant,
                       util::fmt_mean_std(row.stats.cost_units.mean(),
                                          row.stats.cost_units.stddev(), 1),
                       util::fmt_mean_std(row.stats.makespan_seconds.mean(),
                                          row.stats.makespan_seconds.stddev(),
                                          0),
                       util::fmt(row.stats.utilization.mean(), 2),
                       util::fmt(row.stats.restarts.mean(), 1)});
        csv.write_row({row.workload, row.variant,
                       util::fmt(row.charging_unit, 0),
                       util::fmt(row.stats.cost_units.mean(), 3),
                       util::fmt(row.stats.cost_units.stddev(), 3),
                       util::fmt(row.stats.makespan_seconds.mean(), 1),
                       util::fmt(row.stats.utilization.mean(), 4),
                       util::fmt(row.stats.restarts.mean(), 2)});
      }
      std::printf("%s, u = %.0f min\n%s\n",
                  profiles[w].name.c_str(), units[u] / 60.0,
                  table.render().c_str());
    }
  }
  std::printf("series written to %s/ablation.csv\n",
              bench::results_dir().c_str());
  return 0;
}
