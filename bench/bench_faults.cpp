// Fault-degradation sweep: crash rate x scaling policy on Table-I workflows.
//
// The fault substrate (sim/faults.*) injects instance crashes with a short
// revocation notice; the sweep measures how gracefully each policy degrades
// as the crash rate climbs from a reliable cloud (0/h) to a hostile spot
// market (4/h): makespan and cost inflation, restart churn, and whether any
// run strands work (quarantines are impossible here — only crashes are
// injected, and crash-killed attempts retry through the restart path, not
// the bounded transient-failure budget).
//
// `--smoke` runs a 30-second tripwire subset (one workflow, WIRE +
// reactive-conserving, rates {0, 2}/h) that asserts every task completes and
// exits nonzero on violation — wired into CI next to bench_overhead --smoke.
//
// All seeds are printed (DESIGN.md: randomized harnesses announce their
// seeds) so any cell reproduces standalone.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/settings.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

constexpr std::uint64_t kSeedRoot = 2203;

struct Cell {
  util::RunningStats makespan;
  util::RunningStats cost;
  util::RunningStats crashes;
  util::RunningStats restarts;
  util::RunningStats wasted;
  std::uint32_t incomplete_runs = 0;
};

sim::CloudConfig faulty_cloud(double crash_rate_per_hour) {
  sim::CloudConfig config = exp::paper_cloud(900.0);
  config.faults.crash_rate_per_hour = crash_rate_per_hour;
  config.faults.crash_notice_seconds = 30.0;
  return config;
}

/// One run of a cell; returns false if any task failed to complete.
bool run_cell(const dag::Workflow& wf, exp::PolicyKind kind,
              double crash_rate, std::uint64_t seed, Cell* cell,
              std::string* policy_name) {
  const sim::CloudConfig config = faulty_cloud(crash_rate);
  auto policy = exp::make_policy(kind);
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = exp::initial_instances(kind, config);
  options.max_sim_seconds = 10.0 * 24.0 * 3600.0;
  const sim::RunResult r = sim::simulate(wf, *policy, config, options);
  if (policy_name != nullptr) *policy_name = r.policy_name;
  bool complete = r.quarantined_tasks.empty();
  for (const sim::TaskRuntime& rec : r.task_records) {
    if (rec.phase != sim::TaskPhase::Completed) complete = false;
  }
  if (cell != nullptr) {
    cell->makespan.add(r.makespan);
    cell->cost.add(r.cost_units);
    cell->crashes.add(static_cast<double>(r.instance_crashes));
    cell->restarts.add(static_cast<double>(r.task_restarts));
    cell->wasted.add(r.wasted_slot_seconds);
    if (!complete) ++cell->incomplete_runs;
  }
  return complete;
}

int run_smoke() {
  std::printf("bench_faults --smoke: crash-rate tripwire (seed root %llu)\n",
              static_cast<unsigned long long>(kSeedRoot));
  const dag::Workflow wf = workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), 7);
  int rc = 0;
  for (exp::PolicyKind kind :
       {exp::PolicyKind::Wire, exp::PolicyKind::ReactiveConserving}) {
    for (double rate : {0.0, 2.0}) {
      const std::uint64_t seed = util::derive_seed(
          kSeedRoot, 9000 + static_cast<std::uint64_t>(rate * 10.0));
      std::string name;
      const bool ok = run_cell(wf, kind, rate, seed, nullptr, &name);
      std::printf("  %-20s crash_rate=%.1f/h seed=%llu %s\n", name.c_str(),
                  rate, static_cast<unsigned long long>(seed),
                  ok ? "complete" : "INCOMPLETE");
      if (!ok) rc = 1;
    }
  }
  if (rc != 0) std::printf("bench_faults --smoke FAILED\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  const std::vector<workload::WorkflowProfile> profiles = {
      workload::epigenomics_profile(workload::Scale::Small),
      workload::tpch1_profile(workload::Scale::Small),
  };
  const std::vector<double> rates = {0.0, 0.5, 1.0, 2.0, 4.0};
  const std::vector<exp::PolicyKind> policies = exp::all_policies();
  constexpr std::uint32_t kReps = 3;

  struct Job {
    std::size_t profile;
    std::size_t policy;
    std::size_t rate;
  };
  std::vector<Job> jobs;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (std::size_t r = 0; r < rates.size(); ++r) {
        jobs.push_back(Job{w, p, r});
      }
    }
  }
  std::vector<Cell> cells(jobs.size());
  std::vector<std::string> names(jobs.size());

  std::printf(
      "Crash-rate degradation sweep: %zu workflows x %zu policies x %zu "
      "rates, %u repetitions (seed root %llu)\n\n",
      profiles.size(), policies.size(), rates.size(), kReps,
      static_cast<unsigned long long>(kSeedRoot));

  util::parallel_for(jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    const dag::Workflow wf = workload::make_workflow(profiles[job.profile], 7);
    for (std::uint32_t rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = util::derive_seed(kSeedRoot, j * 16 + rep);
      run_cell(wf, policies[job.policy], rates[job.rate], seed, &cells[j],
               &names[j]);
    }
  });

  util::CsvWriter csv(bench::results_dir() + "/faults.csv");
  csv.write_row({"workflow", "policy", "crash_rate_per_hour", "reps",
                 "makespan_mean_s", "makespan_stddev_s", "cost_mean_units",
                 "crashes_mean", "restarts_mean", "wasted_slot_s_mean",
                 "incomplete_runs"});
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    util::TextTable table;
    std::vector<std::string> header{"policy \\ rate"};
    for (double rate : rates) header.push_back(util::fmt(rate, 1) + "/h");
    table.set_header(std::move(header));
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::vector<std::string> row;
      for (std::size_t r = 0; r < rates.size(); ++r) {
        std::size_t j = 0;
        for (; j < jobs.size(); ++j) {
          if (jobs[j].profile == w && jobs[j].policy == p &&
              jobs[j].rate == r) {
            break;
          }
        }
        const Cell& cell = cells[j];
        if (row.empty()) row.push_back(names[j]);
        row.push_back(util::fmt(cell.cost.mean(), 0) + "u / " +
                      util::fmt(cell.makespan.mean(), 0) + "s");
        csv.write_row({profiles[w].name, names[j], util::fmt(rates[r], 2),
                       std::to_string(kReps),
                       util::fmt(cell.makespan.mean(), 1),
                       util::fmt(cell.makespan.stddev(), 1),
                       util::fmt(cell.cost.mean(), 3),
                       util::fmt(cell.crashes.mean(), 2),
                       util::fmt(cell.restarts.mean(), 2),
                       util::fmt(cell.wasted.mean(), 1),
                       std::to_string(cell.incomplete_runs)});
      }
      table.add_row(std::move(row));
    }
    std::printf("%s — degradation under instance crashes\n%s\n",
                profiles[w].name.c_str(), table.render().c_str());
  }
  std::printf("(cells: charging units / makespan; series written to %s/faults.csv)\n",
              bench::results_dir().c_str());
  return 0;
}
