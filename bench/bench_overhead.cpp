// §IV-F — Overhead of the WIRE controller.
//
// The paper reports that across 127 wire runs the controller used <= 16 KB
// of memory and consumed 0.011 % – 0.49 % of the aggregate task execution
// time. This bench measures the same quantities for our implementation:
// google-benchmark timings of each MAPE component (predictor harvest,
// lookahead simulation, steering policy, full iteration) on a mid-run
// Genome L snapshot (the largest workload: 4005 tasks), plus the controller
// state footprint and the end-to-end controller time as a fraction of
// aggregate task execution time.
// Monitor phase: the incremental MonitorStore replaced the per-tick
// from-scratch snapshot rebuild; the BM_MonitorTick* benchmarks compare the
// two paths on idle control intervals of Epigenomics S vs L. The store path
// must cost O(changes + live instances) — near-identical for S and L when
// nothing happened — while the rebuild path scales with total task count.
// `bench_overhead --smoke` runs a fast CI tripwire suite without the
// google-benchmark harness: the monitor store-vs-rebuild comparison (store
// beats the rebuild on L and stays within a small constant of S), the
// cached-analyze ratio (memoized lookahead tick < 0.25x from-scratch on
// Genome L), and the cached-plan ratio (steering off a Plan-stamped result
// < 0.5x the occupancy rebuild + re-pack).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>

#include "core/controller.h"
#include "core/lookahead.h"
#include "core/steering.h"
#include "exp/settings.h"
#include "policies/baselines.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

/// Builds a representative mid-run snapshot: run Genome L under WIRE and
/// capture the monitoring state at roughly half completion.
struct Fixture {
  dag::Workflow wf;
  sim::CloudConfig config;
  sim::MonitorSnapshot snapshot;
  std::unique_ptr<predict::TaskPredictor> predictor;

  Fixture()
      : wf(workload::make_workflow(
            workload::epigenomics_profile(workload::Scale::Large), 7)),
        config(exp::paper_cloud(900.0)) {
    // Drive a wire run and steal a snapshot mid-flight via the framework
    // master: easiest faithful route is re-simulating and capturing through
    // a wrapping policy.
    struct Capturing final : sim::ScalingPolicy {
      core::WireController inner;
      sim::MonitorSnapshot captured;
      std::size_t target_tick = 8;
      std::size_t ticks = 0;
      std::string name() const override { return "capture"; }
      void on_run_start(const dag::Workflow& w,
                        const sim::CloudConfig& c) override {
        inner.on_run_start(w, c);
      }
      sim::PoolCommand plan(const sim::MonitorSnapshot& snap) override {
        if (++ticks == target_tick) captured = snap;
        return inner.plan(snap);
      }
    };
    Capturing capture;
    sim::RunOptions options;
    options.seed = 5;
    options.initial_instances = 1;
    sim::simulate(wf, capture, config, options);
    snapshot = std::move(capture.captured);
    if (snapshot.tasks.empty()) {
      // Run finished before the target tick; take a fresh initial snapshot.
      snapshot.tasks.assign(wf.task_count(), sim::TaskObservation{});
      snapshot.incomplete_tasks =
          static_cast<std::uint32_t>(wf.task_count());
    }
    predictor = std::make_unique<predict::TaskPredictor>(wf);
    // Bootstrap with a full-scan observe (non-exact delta): the captured
    // snapshot's journal only covers the final interval, and a predictor
    // that missed the run's earlier completions has no per-stage history —
    // every prediction degrades to the uncacheable policies 1-2, which is
    // not what a mid-run controller sees.
    sim::MonitorSnapshot bootstrap = snapshot;
    bootstrap.delta = sim::MonitorDelta{};
    predictor->observe(bootstrap);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_PredictorObserve(benchmark::State& state) {
  Fixture& f = fixture();
  predict::TaskPredictor predictor(f.wf);
  for (auto _ : state) {
    predictor.observe(f.snapshot);
    benchmark::DoNotOptimize(predictor.transfer_estimate());
  }
}
BENCHMARK(BM_PredictorObserve);

// The pre-refactor harvest path: without an exact delta journal the
// predictor falls back to scanning all N task observations per tick.
void BM_PredictorObserveFullScan(benchmark::State& state) {
  Fixture& f = fixture();
  sim::MonitorSnapshot snapshot = f.snapshot;
  snapshot.delta = sim::MonitorDelta{};
  predict::TaskPredictor predictor(f.wf);
  for (auto _ : state) {
    predictor.observe(snapshot);
    benchmark::DoNotOptimize(predictor.transfer_estimate());
  }
}
BENCHMARK(BM_PredictorObserveFullScan);

void BM_LookaheadSimulation(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const core::LookaheadResult result =
        core::simulate_interval(f.wf, f.snapshot, *f.predictor, f.config);
    benchmark::DoNotOptimize(result.upcoming.size());
  }
}
BENCHMARK(BM_LookaheadSimulation);

/// An idle-tick replay of the Genome L snapshot for the incremental
/// lookahead: same fields, but an exact empty delta — the common quiet
/// control interval where the cache's fast path applies. (Replaying the
/// captured delta verbatim would re-announce its completions every tick;
/// tasks that completed before `now` are never in the forward projection, so
/// every replay would classify as a misprediction and fall back.)
struct CachedFixture {
  sim::MonitorSnapshot idle;
  core::RunState run_state;
  /// Default options: Plan stamps on — ticks carry planned_pool inline.
  core::IncrementalLookahead cache;
  /// Plan stamps off: the Analyze memo alone, for the like-for-like
  /// cached-analyze tripwire (the stamping pass's packing cost belongs to
  /// the Plan column, not the Analyze ratio).
  core::IncrementalLookahead analyze_cache;

  static core::LookaheadCacheOptions analyze_only_options() {
    core::LookaheadCacheOptions options;
    options.plan_stamps = false;
    return options;
  }

  CachedFixture() : analyze_cache(analyze_only_options()) {
    Fixture& f = fixture();
    idle = f.snapshot;
    idle.delta.exact = true;
    idle.delta.completed.clear();
    idle.delta.phase_changed.clear();
    idle.delta.failed.clear();
    idle.delta.instances_added.clear();
    idle.delta.instances_removed.clear();
    idle.delta.instances_changed.clear();
    run_state.update(f.wf, idle);
    cache.reset(f.wf);
    analyze_cache.reset(f.wf);
    // Two warm-up ticks each: the first is the kFirstTick fallback, the
    // second populates the memo; steady state begins at the third.
    tick();
    tick();
    tick_analyze_only();
    tick_analyze_only();
  }

  const core::LookaheadResult& tick() {
    Fixture& f = fixture();
    return cache.tick(f.wf, idle, *f.predictor, f.predictor.get(), f.config,
                      &run_state);
  }

  const core::LookaheadResult& tick_analyze_only() {
    Fixture& f = fixture();
    return analyze_cache.tick(f.wf, idle, *f.predictor, f.predictor.get(),
                              f.config, &run_state);
  }
};

CachedFixture& cached_fixture() {
  static CachedFixture c;
  return c;
}

void BM_LookaheadCachedTick(benchmark::State& state) {
  CachedFixture& c = cached_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.tick().upcoming.size());
  }
}
BENCHMARK(BM_LookaheadCachedTick);

// The Analyze memo alone (Plan stamping off), for comparing against
// BM_LookaheadCachedTick: the difference is the inline packing + stamp cost
// that moved out of the Plan phase.
void BM_LookaheadCachedTickAnalyzeOnly(benchmark::State& state) {
  CachedFixture& c = cached_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.tick_analyze_only().upcoming.size());
  }
}
BENCHMARK(BM_LookaheadCachedTickAnalyzeOnly);

void BM_SteeringPolicy(benchmark::State& state) {
  Fixture& f = fixture();
  const core::LookaheadResult lookahead =
      core::simulate_interval(f.wf, f.snapshot, *f.predictor, f.config);
  for (auto _ : state) {
    const sim::PoolCommand cmd =
        core::steer(lookahead, f.snapshot, f.config);
    benchmark::DoNotOptimize(cmd.grow);
  }
}
BENCHMARK(BM_SteeringPolicy);

// Steering off a Plan-stamped lookahead: Algorithm 3's size was packed
// inline during Q_task emission, so steer() skips the occupancy rebuild and
// re-pack entirely — O(instances) instead of O(|Q_task| * slots).
void BM_SteeringPolicyCached(benchmark::State& state) {
  CachedFixture& c = cached_fixture();
  Fixture& f = fixture();
  const core::LookaheadResult& stamped = c.tick();
  for (auto _ : state) {
    const sim::PoolCommand cmd =
        core::steer(stamped, c.idle, f.config, nullptr,
                    /*reclaim_draining=*/false, c.cache.scratch().get());
    benchmark::DoNotOptimize(cmd.grow);
  }
}
BENCHMARK(BM_SteeringPolicyCached);

void BM_FullMapeIteration(benchmark::State& state) {
  Fixture& f = fixture();
  core::WireController controller;
  controller.on_run_start(f.wf, f.config);
  for (auto _ : state) {
    const sim::PoolCommand cmd = controller.plan(f.snapshot);
    benchmark::DoNotOptimize(cmd.grow);
  }
}
BENCHMARK(BM_FullMapeIteration);

/// A JobEngine paused mid-run (about half the tasks complete) so the
/// monitor paths can be measured on a live pool with running tasks but no
/// pending events — an idle control interval, the common case.
struct PausedEngine {
  dag::Workflow wf;
  sim::CloudConfig config;
  policies::ReactiveConservingPolicy policy;
  std::unique_ptr<sim::JobEngine> engine;
  sim::SimTime now = 0.0;

  explicit PausedEngine(const workload::WorkflowProfile& profile)
      : wf(workload::make_workflow(profile, 7)),
        config(exp::paper_cloud(900.0)) {
    sim::RunOptions options;
    options.seed = 11;
    options.initial_instances = 1;
    engine = std::make_unique<sim::JobEngine>(wf, policy, config, options);
    engine->start();
    const std::uint32_t half =
        static_cast<std::uint32_t>(wf.task_count() / 2);
    while (!engine->done() && engine->incomplete_tasks() > half) {
      now = engine->next_event_time();
      engine->step();
    }
  }
};

PausedEngine& epi_small_engine() {
  static PausedEngine e(workload::epigenomics_profile(workload::Scale::Small));
  return e;
}

PausedEngine& epi_large_engine() {
  static PausedEngine e(workload::epigenomics_profile(workload::Scale::Large));
  return e;
}

void BM_MonitorTickStore(benchmark::State& state, PausedEngine& fixture) {
  for (auto _ : state) {
    const sim::MonitorSnapshot& snap = fixture.engine->peek_monitor(fixture.now);
    benchmark::DoNotOptimize(snap.incomplete_tasks);
  }
}
void BM_MonitorTickStore_EpiS(benchmark::State& state) {
  BM_MonitorTickStore(state, epi_small_engine());
}
BENCHMARK(BM_MonitorTickStore_EpiS);
void BM_MonitorTickStore_EpiL(benchmark::State& state) {
  BM_MonitorTickStore(state, epi_large_engine());
}
BENCHMARK(BM_MonitorTickStore_EpiL);

void BM_MonitorTickRebuild(benchmark::State& state, PausedEngine& fixture) {
  for (auto _ : state) {
    const sim::MonitorSnapshot snap =
        fixture.engine->rebuild_snapshot(fixture.now);
    benchmark::DoNotOptimize(snap.incomplete_tasks);
  }
}
void BM_MonitorTickRebuild_EpiS(benchmark::State& state) {
  BM_MonitorTickRebuild(state, epi_small_engine());
}
BENCHMARK(BM_MonitorTickRebuild_EpiS);
void BM_MonitorTickRebuild_EpiL(benchmark::State& state) {
  BM_MonitorTickRebuild(state, epi_large_engine());
}
BENCHMARK(BM_MonitorTickRebuild_EpiL);

void BM_ResizePoolAlg3(benchmark::State& state) {
  std::vector<double> load(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < load.size(); ++i) {
    load[i] = 10.0 + static_cast<double>(i % 97);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::resize_pool(load, 900.0, 4));
  }
}
BENCHMARK(BM_ResizePoolAlg3)->Arg(100)->Arg(1000)->Arg(4000);

/// Best-of-`reps` average seconds per call — robust to scheduler noise on
/// shared CI runners.
template <typename F>
double best_seconds_per_call(F&& fn, int iters, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto end = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(end - begin).count() / iters);
  }
  return best;
}

/// CI tripwire: the incremental store's idle-tick cost must (a) beat the
/// from-scratch rebuild on the largest workload by a wide margin and (b) be
/// roughly independent of total task count (Epigenomics L within a small
/// constant of S). Thresholds are loose — the honest ratios are ~1x for
/// (b) and >10x for (a) — so only a real complexity regression trips them.
int run_smoke() {
  PausedEngine& small = epi_small_engine();
  PausedEngine& large = epi_large_engine();
  const int iters = 5000;
  const int reps = 5;
  const double store_s = best_seconds_per_call(
      [&] { benchmark::DoNotOptimize(small.engine->peek_monitor(small.now)); },
      iters, reps);
  const double store_l = best_seconds_per_call(
      [&] { benchmark::DoNotOptimize(large.engine->peek_monitor(large.now)); },
      iters, reps);
  const double rebuild_l = best_seconds_per_call(
      [&] {
        const sim::MonitorSnapshot snap =
            large.engine->rebuild_snapshot(large.now);
        benchmark::DoNotOptimize(snap.incomplete_tasks);
      },
      iters, reps);

  std::printf("monitor idle tick, store path:   Epigenomics-S %8.1f ns, "
              "Epigenomics-L %8.1f ns (L/S ratio %.2f)\n",
              store_s * 1e9, store_l * 1e9, store_l / store_s);
  std::printf("monitor idle tick, rebuild path: Epigenomics-L %8.1f ns "
              "(rebuild/store ratio on L: %.1f)\n",
              rebuild_l * 1e9, rebuild_l / store_l);

  // Analyze + Plan phases on the Genome L mid-run snapshot: predictor
  // harvest, lookahead projection (from-scratch reference vs the
  // incremental cache's memoized fast path), and Algorithm 3 steering.
  Fixture& f = fixture();
  CachedFixture& c = cached_fixture();
  const int la_iters = 200;
  const double observe_s = best_seconds_per_call(
      [&] {
        f.predictor->observe(c.idle);
        benchmark::DoNotOptimize(f.predictor->transfer_estimate());
      },
      la_iters, reps);
  // The cached/scratch ratio check below has real but modest headroom
  // (~0.23 vs the 0.25 threshold); a scheduler burst on a shared runner can
  // poison one whole best-of window, so re-measure the pair up to three
  // times and only fail if every attempt does — a genuine regression fails
  // all three, transient noise does not. The cached side is the
  // analyze-only cache (Plan stamps off): the stamping pass's packing cost
  // is Plan-phase work and is measured in the plan ratio below.
  double scratch_s = 0.0;
  double cached_s = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    scratch_s = best_seconds_per_call(
        [&] {
          const core::LookaheadResult result = core::simulate_interval(
              f.wf, c.idle, *f.predictor, f.config, &c.run_state);
          benchmark::DoNotOptimize(result.upcoming.size());
        },
        la_iters, reps);
    cached_s = best_seconds_per_call(
        [&] { benchmark::DoNotOptimize(c.tick_analyze_only().upcoming.size()); },
        la_iters, reps);
    if (cached_s < 0.25 * scratch_s) break;
  }

  // Plan phase: steering off the unstamped reference (full occupancy
  // rebuild + Algorithm-3 re-pack) vs off the Plan-stamped cache result
  // (planned_pool consumed directly). Both sides borrow the same scratch
  // arena so the ratio isolates the algorithmic saving, not allocator luck.
  const core::LookaheadResult lookahead = core::simulate_interval(
      f.wf, c.idle, *f.predictor, f.config, &c.run_state);
  const core::LookaheadResult& stamped = c.tick();
  core::PlanScratch* scratch = c.cache.scratch().get();
  double steer_s = 0.0;
  double steer_cached_s = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    steer_s = best_seconds_per_call(
        [&] {
          const sim::PoolCommand cmd = core::steer(
              lookahead, c.idle, f.config, nullptr, false, scratch);
          benchmark::DoNotOptimize(cmd.grow);
        },
        la_iters, reps);
    steer_cached_s = best_seconds_per_call(
        [&] {
          const sim::PoolCommand cmd = core::steer(
              stamped, c.idle, f.config, nullptr, false, scratch);
          benchmark::DoNotOptimize(cmd.grow);
        },
        la_iters, reps);
    if (steer_cached_s < 0.5 * steer_s) break;
  }

  std::printf("analyze, predictor harvest:      Genome-L      %8.1f ns\n",
              observe_s * 1e9);
  std::printf("analyze, lookahead from-scratch: Genome-L      %8.1f ns\n",
              scratch_s * 1e9);
  std::printf("analyze, lookahead cached:       Genome-L      %8.1f ns "
              "(cached/scratch ratio %.3f)\n",
              cached_s * 1e9, cached_s / scratch_s);
  std::printf("plan, steering from-scratch:     Genome-L      %8.1f ns\n",
              steer_s * 1e9);
  std::printf("plan, steering stamped:          Genome-L      %8.1f ns "
              "(cached/scratch ratio %.3f)\n",
              steer_cached_s * 1e9, steer_cached_s / steer_s);

  bool ok = true;
  if (!stamped.plan_valid) {
    std::printf("FAIL: idle-tick replay did not produce a Plan-stamped "
                "result\n");
    ok = false;
  }
  if (steer_cached_s >= 0.5 * steer_s) {
    std::printf("FAIL: stamped steering on Genome-L is not under 50%% of the "
                "from-scratch plan (ratio %.3f)\n", steer_cached_s / steer_s);
    ok = false;
  }
  if (store_l * 2.0 >= rebuild_l) {
    std::printf("FAIL: store path on Epigenomics-L is not at least 2x faster "
                "than the from-scratch rebuild\n");
    ok = false;
  }
  if (store_l >= store_s * 8.0) {
    std::printf("FAIL: store idle-tick cost grows with task count "
                "(Epigenomics-L > 8x Epigenomics-S)\n");
    ok = false;
  }
  if (c.cache.last_path() != core::AnalyzePath::kIncremental ||
      c.analyze_cache.last_path() != core::AnalyzePath::kIncremental) {
    std::printf("FAIL: cached lookahead replay did not classify as "
                "incremental (stamped path: %s, analyze-only path: %s)\n",
                core::analyze_path_label(c.cache.last_path()),
                core::analyze_path_label(c.analyze_cache.last_path()));
    ok = false;
  }
  if (cached_s >= 0.25 * scratch_s) {
    std::printf("FAIL: cached analyze on Genome-L is not under 25%% of the "
                "from-scratch lookahead (ratio %.3f)\n", cached_s / scratch_s);
    ok = false;
  }
  std::printf(ok ? "smoke: OK\n" : "smoke: FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // End-to-end §IV-F accounting: wall-clock controller time per run vs the
  // aggregate task execution time, and the controller state footprint.
  std::printf("\n--- §IV-F overhead accounting ---\n");
  for (const workload::WorkflowProfile& profile :
       {workload::epigenomics_profile(workload::Scale::Large),
        workload::pagerank_profile(workload::Scale::Large),
        workload::tpch1_profile(workload::Scale::Small)}) {
    const dag::Workflow wf = workload::make_workflow(profile, 7);
    core::WireController controller;

    double controller_seconds = 0.0;
    std::uint32_t iterations = 0;
    struct Timing final : sim::ScalingPolicy {
      core::WireController* inner;
      double* total;
      std::uint32_t* iters;
      std::string name() const override { return "wire"; }
      void on_run_start(const dag::Workflow& w,
                        const sim::CloudConfig& c) override {
        inner->on_run_start(w, c);
      }
      sim::PoolCommand plan(const sim::MonitorSnapshot& snap) override {
        const auto begin = std::chrono::steady_clock::now();
        sim::PoolCommand cmd = inner->plan(snap);
        const auto end = std::chrono::steady_clock::now();
        *total += std::chrono::duration<double>(end - begin).count();
        ++*iters;
        return cmd;
      }
    };
    Timing timing;
    timing.inner = &controller;
    timing.total = &controller_seconds;
    timing.iters = &iterations;

    sim::RunOptions options;
    options.seed = 11;
    options.initial_instances = 1;
    sim::simulate(wf, timing, exp::paper_cloud(900.0), options);

    const double aggregate = wf.aggregate_ref_exec_seconds();
    std::printf(
        "%-12s: %u MAPE iterations, controller %.4f s total, state %.1f KB, "
        "overhead %.4f%% of aggregate task time (paper: 0.011%%-0.49%%, "
        "<=16 KB)\n",
        profile.name.c_str(), iterations, controller_seconds,
        controller.state_bytes() / 1024.0,
        100.0 * controller_seconds / aggregate);
  }
  return 0;
}
