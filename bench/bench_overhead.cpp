// §IV-F — Overhead of the WIRE controller.
//
// The paper reports that across 127 wire runs the controller used <= 16 KB
// of memory and consumed 0.011 % – 0.49 % of the aggregate task execution
// time. This bench measures the same quantities for our implementation:
// google-benchmark timings of each MAPE component (predictor harvest,
// lookahead simulation, steering policy, full iteration) on a mid-run
// Genome L snapshot (the largest workload: 4005 tasks), plus the controller
// state footprint and the end-to-end controller time as a fraction of
// aggregate task execution time.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "core/controller.h"
#include "core/lookahead.h"
#include "core/steering.h"
#include "exp/settings.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

/// Builds a representative mid-run snapshot: run Genome L under WIRE and
/// capture the monitoring state at roughly half completion.
struct Fixture {
  dag::Workflow wf;
  sim::CloudConfig config;
  sim::MonitorSnapshot snapshot;
  std::unique_ptr<predict::TaskPredictor> predictor;

  Fixture()
      : wf(workload::make_workflow(
            workload::epigenomics_profile(workload::Scale::Large), 7)),
        config(exp::paper_cloud(900.0)) {
    // Drive a wire run and steal a snapshot mid-flight via the framework
    // master: easiest faithful route is re-simulating and capturing through
    // a wrapping policy.
    struct Capturing final : sim::ScalingPolicy {
      core::WireController inner;
      sim::MonitorSnapshot captured;
      std::size_t target_tick = 8;
      std::size_t ticks = 0;
      std::string name() const override { return "capture"; }
      void on_run_start(const dag::Workflow& w,
                        const sim::CloudConfig& c) override {
        inner.on_run_start(w, c);
      }
      sim::PoolCommand plan(const sim::MonitorSnapshot& snap) override {
        if (++ticks == target_tick) captured = snap;
        return inner.plan(snap);
      }
    };
    Capturing capture;
    sim::RunOptions options;
    options.seed = 5;
    options.initial_instances = 1;
    sim::simulate(wf, capture, config, options);
    snapshot = std::move(capture.captured);
    if (snapshot.tasks.empty()) {
      // Run finished before the target tick; take a fresh initial snapshot.
      snapshot.tasks.assign(wf.task_count(), sim::TaskObservation{});
      snapshot.incomplete_tasks =
          static_cast<std::uint32_t>(wf.task_count());
    }
    predictor = std::make_unique<predict::TaskPredictor>(wf);
    predictor->observe(snapshot);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_PredictorObserve(benchmark::State& state) {
  Fixture& f = fixture();
  predict::TaskPredictor predictor(f.wf);
  for (auto _ : state) {
    predictor.observe(f.snapshot);
    benchmark::DoNotOptimize(predictor.transfer_estimate());
  }
}
BENCHMARK(BM_PredictorObserve);

void BM_LookaheadSimulation(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const core::LookaheadResult result =
        core::simulate_interval(f.wf, f.snapshot, *f.predictor, f.config);
    benchmark::DoNotOptimize(result.upcoming.size());
  }
}
BENCHMARK(BM_LookaheadSimulation);

void BM_SteeringPolicy(benchmark::State& state) {
  Fixture& f = fixture();
  const core::LookaheadResult lookahead =
      core::simulate_interval(f.wf, f.snapshot, *f.predictor, f.config);
  for (auto _ : state) {
    const sim::PoolCommand cmd =
        core::steer(lookahead, f.snapshot, f.config);
    benchmark::DoNotOptimize(cmd.grow);
  }
}
BENCHMARK(BM_SteeringPolicy);

void BM_FullMapeIteration(benchmark::State& state) {
  Fixture& f = fixture();
  core::WireController controller;
  controller.on_run_start(f.wf, f.config);
  for (auto _ : state) {
    const sim::PoolCommand cmd = controller.plan(f.snapshot);
    benchmark::DoNotOptimize(cmd.grow);
  }
}
BENCHMARK(BM_FullMapeIteration);

void BM_ResizePoolAlg3(benchmark::State& state) {
  std::vector<double> load(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < load.size(); ++i) {
    load[i] = 10.0 + static_cast<double>(i % 97);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::resize_pool(load, 900.0, 4));
  }
}
BENCHMARK(BM_ResizePoolAlg3)->Arg(100)->Arg(1000)->Arg(4000);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // End-to-end §IV-F accounting: wall-clock controller time per run vs the
  // aggregate task execution time, and the controller state footprint.
  std::printf("\n--- §IV-F overhead accounting ---\n");
  for (const workload::WorkflowProfile& profile :
       {workload::epigenomics_profile(workload::Scale::Large),
        workload::pagerank_profile(workload::Scale::Large),
        workload::tpch1_profile(workload::Scale::Small)}) {
    const dag::Workflow wf = workload::make_workflow(profile, 7);
    core::WireController controller;

    double controller_seconds = 0.0;
    std::uint32_t iterations = 0;
    struct Timing final : sim::ScalingPolicy {
      core::WireController* inner;
      double* total;
      std::uint32_t* iters;
      std::string name() const override { return "wire"; }
      void on_run_start(const dag::Workflow& w,
                        const sim::CloudConfig& c) override {
        inner->on_run_start(w, c);
      }
      sim::PoolCommand plan(const sim::MonitorSnapshot& snap) override {
        const auto begin = std::chrono::steady_clock::now();
        sim::PoolCommand cmd = inner->plan(snap);
        const auto end = std::chrono::steady_clock::now();
        *total += std::chrono::duration<double>(end - begin).count();
        ++*iters;
        return cmd;
      }
    };
    Timing timing;
    timing.inner = &controller;
    timing.total = &controller_seconds;
    timing.iters = &iterations;

    sim::RunOptions options;
    options.seed = 11;
    options.initial_instances = 1;
    sim::simulate(wf, timing, exp::paper_cloud(900.0), options);

    const double aggregate = wf.aggregate_ref_exec_seconds();
    std::printf(
        "%-12s: %u MAPE iterations, controller %.4f s total, state %.1f KB, "
        "overhead %.4f%% of aggregate task time (paper: 0.011%%-0.49%%, "
        "<=16 KB)\n",
        profile.name.c_str(), iterations, controller_seconds,
        controller.state_bytes() / 1024.0,
        100.0 * controller_seconds / aggregate);
  }
  return 0;
}
