// Shared helpers for the bench harnesses: output directory handling and the
// idealized §III-E/§IV-A cloud (1 slot per instance, no variability, control
// lag small relative to task length and charging unit).
#pragma once

#include <algorithm>
#include <filesystem>
#include <string>

#include "sim/config.h"

namespace wire::bench {

/// Directory where benches drop their CSV series (created on demand).
inline std::string results_dir() {
  const std::filesystem::path dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// The idealized linear-workflow cloud of §III-E / §IV-A: one slot per
/// instance, deterministic execution, no transfer costs, unlimited site, and
/// a control lag of min(R, U)/20 to approximate continuous monitoring.
inline sim::CloudConfig idealized_cloud(double task_seconds,
                                        double charging_unit) {
  sim::CloudConfig config;
  config.lag_seconds = std::min(task_seconds, charging_unit) / 20.0;
  config.charging_unit_seconds = charging_unit;
  config.slots_per_instance = 1;
  config.max_instances = 0;  // unlimited
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 1e12;
  return config;
}

}  // namespace wire::bench
