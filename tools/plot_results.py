#!/usr/bin/env python3
"""Plot the regenerated paper figures from bench_results/*.csv.

Usage:
    python3 tools/plot_results.py [bench_results] [output_dir]

Requires matplotlib; emits one PNG per figure. Each bench binary must have
been run first (``for b in build/bench/*; do $b; done``), which writes the
CSV series this script consumes. The script is intentionally defensive: it
skips any figure whose CSV is missing.
"""
import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def main():
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_results")
    out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "bench_results")
    out.mkdir(parents=True, exist_ok=True)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; nothing plotted", file=sys.stderr)
        return 0

    def save(fig, name):
        path = out / name
        fig.savefig(path, dpi=130, bbox_inches="tight")
        plt.close(fig)
        print(f"wrote {path}")

    # Figures 2 and 3: ratio curves per N.
    for fig_name, x_key, x_label in (
        ("fig2", "R_over_U", "R/U"),
        ("fig3", "U_over_R", "U/R"),
    ):
        path = results / f"{fig_name}.csv"
        if not path.exists():
            continue
        rows = read_csv(path)
        fig, axes = plt.subplots(1, 3, figsize=(12, 3.2), sharey=False)
        for ax, n in zip(axes, ("10", "100", "1000")):
            series = [r for r in rows if r["N"] == n]
            xs = [float(r[x_key]) for r in series]
            ax.plot(xs, [float(r["cost_ratio"]) for r in series],
                    marker="o", label="resource usage / optimal")
            ax.plot(xs, [float(r["time_ratio"]) for r in series],
                    marker="s", label="completion time / optimal")
            ax.set_xscale("log")
            ax.set_title(f"N = {n}")
            ax.set_xlabel(x_label)
            ax.grid(True, alpha=0.3)
        axes[0].set_ylabel("ratio to optimal")
        axes[0].legend(fontsize=8)
        fig.suptitle(f"Figure {fig_name[-1]}: resource-steering policy")
        save(fig, f"{fig_name}.png")

    # Figure 4: CDF curves per workflow/class.
    path = results / "fig4_cdf.csv"
    if path.exists():
        rows = read_csv(path)
        workflows = sorted({r["workflow"] for r in rows})
        classes = ("short", "medium", "long")
        fig, axes = plt.subplots(
            len(workflows), 3, figsize=(11, 2.2 * len(workflows)),
            squeeze=False)
        for i, wf in enumerate(workflows):
            for j, cls in enumerate(classes):
                ax = axes[i][j]
                series = [r for r in rows
                          if r["workflow"] == wf and r["class"] == cls]
                if series:
                    ax.plot([float(r["x"]) for r in series],
                            [float(r["cdf"]) for r in series])
                ax.set_title(f"{wf} / {cls}", fontsize=8)
                ax.grid(True, alpha=0.3)
                if j == 0:
                    ax.set_ylabel("CDF", fontsize=8)
        fig.suptitle("Figure 4: prediction-error CDFs")
        fig.tight_layout()
        save(fig, "fig4.png")

    # Figures 5 and 6: grouped bars per workflow.
    for fig_name, value_key, y_label in (
        ("fig5", "cost_mean", "charging units"),
        ("fig6", "relative_time_mean", "time / best"),
    ):
        path = results / f"{fig_name}.csv"
        if not path.exists():
            continue
        rows = read_csv(path)
        workflows = list(dict.fromkeys(r["workflow"] for r in rows))
        policies = list(dict.fromkeys(r["policy"] for r in rows))
        units = sorted({float(r["charging_unit_s"]) for r in rows})
        fig, axes = plt.subplots(2, 4, figsize=(16, 6), squeeze=False)
        for idx, wf in enumerate(workflows):
            ax = axes[idx // 4][idx % 4]
            width = 0.8 / len(policies)
            for p_idx, policy in enumerate(policies):
                ys = []
                for u in units:
                    match = [r for r in rows
                             if r["workflow"] == wf and r["policy"] == policy
                             and float(r["charging_unit_s"]) == u]
                    ys.append(float(match[0][value_key]) if match else 0.0)
                xs = [k + p_idx * width for k in range(len(units))]
                ax.bar(xs, ys, width=width, label=policy if idx == 0 else None)
            ax.set_title(wf, fontsize=9)
            ax.set_xticks([k + 0.4 for k in range(len(units))])
            ax.set_xticklabels([f"{int(u / 60)}m" for u in units], fontsize=7)
            if fig_name == "fig5":
                ax.set_yscale("log")
            ax.grid(True, axis="y", alpha=0.3)
            if idx % 4 == 0:
                ax.set_ylabel(y_label, fontsize=8)
        fig.legend(loc="lower center", ncol=4, fontsize=8)
        fig.suptitle(
            f"Figure {fig_name[-1]}: "
            + ("resource cost" if fig_name == "fig5"
               else "relative execution time"))
        save(fig, f"{fig_name}.png")

    # Fault-degradation curves: makespan and cost vs crash rate per policy.
    path = results / "faults.csv"
    if path.exists():
        rows = read_csv(path)
        workflows = list(dict.fromkeys(r["workflow"] for r in rows))
        policies = list(dict.fromkeys(r["policy"] for r in rows))
        fig, axes = plt.subplots(2, len(workflows),
                                 figsize=(5 * len(workflows), 6),
                                 squeeze=False)
        for col, wf in enumerate(workflows):
            for row_idx, (value_key, err_key, y_label) in enumerate((
                    ("makespan_mean_s", "makespan_stddev_s", "makespan (s)"),
                    ("cost_mean_units", None, "charging units"))):
                ax = axes[row_idx][col]
                for policy in policies:
                    series = sorted(
                        (r for r in rows
                         if r["workflow"] == wf and r["policy"] == policy),
                        key=lambda r: float(r["crash_rate_per_hour"]))
                    xs = [float(r["crash_rate_per_hour"]) for r in series]
                    ys = [float(r[value_key]) for r in series]
                    if err_key:
                        ax.errorbar(xs, ys,
                                    yerr=[float(r[err_key]) for r in series],
                                    marker="o", capsize=2, label=policy)
                    else:
                        ax.plot(xs, ys, marker="o", label=policy)
                if row_idx == 0:
                    ax.set_title(wf, fontsize=9)
                else:
                    ax.set_xlabel("instance crashes / hour")
                ax.grid(True, alpha=0.3)
                if col == 0:
                    ax.set_ylabel(y_label, fontsize=8)
        axes[0][0].legend(fontsize=8)
        fig.suptitle("Fault study: degradation under instance crashes")
        save(fig, "faults.png")

    # Deadline frontier.
    path = results / "deadline.csv"
    if path.exists():
        rows = [r for r in read_csv(path) if float(r["deadline_s"]) > 0]
        workflows = sorted({r["workload"] for r in rows})
        fig, axes = plt.subplots(1, len(workflows),
                                 figsize=(5 * len(workflows), 3.4),
                                 squeeze=False)
        for ax, wf in zip(axes[0], workflows):
            for estimates, marker in (("online", "o"), ("history", "s")):
                series = sorted(
                    (r for r in rows
                     if r["workload"] == wf and r["estimates"] == estimates),
                    key=lambda r: float(r["deadline_s"]))
                ax.plot([float(r["deadline_s"]) for r in series],
                        [float(r["cost_mean"]) for r in series],
                        marker=marker, label=estimates)
            ax.set_title(wf, fontsize=9)
            ax.set_xlabel("deadline (s)")
            ax.grid(True, alpha=0.3)
            ax.legend(fontsize=8)
        axes[0][0].set_ylabel("charging units")
        fig.suptitle("Deadline sweep: cost of a latency SLO")
        save(fig, "deadline.png")

    return 0


if __name__ == "__main__":
    sys.exit(main())
