#!/bin/sh
# Regenerates everything: build, tests (test_output.txt), every paper
# table/figure bench (bench_output.txt), and — when matplotlib is available —
# the PNG plots. Run from the repository root.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
python3 tools/plot_results.py || true
