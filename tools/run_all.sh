#!/bin/sh
# Regenerates everything: build, tests (test_output.txt), every paper
# table/figure bench (bench_output.txt), and — when matplotlib is available —
# the PNG plots. Run from the repository root.
set -e
if command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build --parallel
ctest --test-dir build 2>&1 | tee test_output.txt
# Every bench binary the build produced (bench_ensemble included); CMake may
# nest outputs differently across generators, so glob both layouts.
for b in build/bench/bench_* build/bench/*/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
python3 tools/plot_results.py || true
