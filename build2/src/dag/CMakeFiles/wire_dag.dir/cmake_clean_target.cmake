file(REMOVE_RECURSE
  "libwire_dag.a"
)
