# Empty dependencies file for wire_dag.
# This may be replaced when dependencies are built.
