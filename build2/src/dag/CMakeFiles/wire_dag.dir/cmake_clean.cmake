file(REMOVE_RECURSE
  "CMakeFiles/wire_dag.dir/analysis.cpp.o"
  "CMakeFiles/wire_dag.dir/analysis.cpp.o.d"
  "CMakeFiles/wire_dag.dir/clustering.cpp.o"
  "CMakeFiles/wire_dag.dir/clustering.cpp.o.d"
  "CMakeFiles/wire_dag.dir/dax.cpp.o"
  "CMakeFiles/wire_dag.dir/dax.cpp.o.d"
  "CMakeFiles/wire_dag.dir/serialize.cpp.o"
  "CMakeFiles/wire_dag.dir/serialize.cpp.o.d"
  "CMakeFiles/wire_dag.dir/workflow.cpp.o"
  "CMakeFiles/wire_dag.dir/workflow.cpp.o.d"
  "libwire_dag.a"
  "libwire_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
