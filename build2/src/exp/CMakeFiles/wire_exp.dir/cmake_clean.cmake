file(REMOVE_RECURSE
  "CMakeFiles/wire_exp.dir/prediction_harness.cpp.o"
  "CMakeFiles/wire_exp.dir/prediction_harness.cpp.o.d"
  "CMakeFiles/wire_exp.dir/runner.cpp.o"
  "CMakeFiles/wire_exp.dir/runner.cpp.o.d"
  "CMakeFiles/wire_exp.dir/settings.cpp.o"
  "CMakeFiles/wire_exp.dir/settings.cpp.o.d"
  "libwire_exp.a"
  "libwire_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
