# Empty compiler generated dependencies file for wire_exp.
# This may be replaced when dependencies are built.
