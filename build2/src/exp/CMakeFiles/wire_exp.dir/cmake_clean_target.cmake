file(REMOVE_RECURSE
  "libwire_exp.a"
)
