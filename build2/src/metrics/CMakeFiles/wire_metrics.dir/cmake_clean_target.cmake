file(REMOVE_RECURSE
  "libwire_metrics.a"
)
