file(REMOVE_RECURSE
  "CMakeFiles/wire_metrics.dir/export.cpp.o"
  "CMakeFiles/wire_metrics.dir/export.cpp.o.d"
  "CMakeFiles/wire_metrics.dir/report.cpp.o"
  "CMakeFiles/wire_metrics.dir/report.cpp.o.d"
  "libwire_metrics.a"
  "libwire_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
