# Empty dependencies file for wire_metrics.
# This may be replaced when dependencies are built.
