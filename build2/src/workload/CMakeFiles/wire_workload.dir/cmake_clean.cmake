file(REMOVE_RECURSE
  "CMakeFiles/wire_workload.dir/generators.cpp.o"
  "CMakeFiles/wire_workload.dir/generators.cpp.o.d"
  "CMakeFiles/wire_workload.dir/pegasus_extra.cpp.o"
  "CMakeFiles/wire_workload.dir/pegasus_extra.cpp.o.d"
  "CMakeFiles/wire_workload.dir/profiles.cpp.o"
  "CMakeFiles/wire_workload.dir/profiles.cpp.o.d"
  "libwire_workload.a"
  "libwire_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
