file(REMOVE_RECURSE
  "libwire_workload.a"
)
