
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cpp" "src/workload/CMakeFiles/wire_workload.dir/generators.cpp.o" "gcc" "src/workload/CMakeFiles/wire_workload.dir/generators.cpp.o.d"
  "/root/repo/src/workload/pegasus_extra.cpp" "src/workload/CMakeFiles/wire_workload.dir/pegasus_extra.cpp.o" "gcc" "src/workload/CMakeFiles/wire_workload.dir/pegasus_extra.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/workload/CMakeFiles/wire_workload.dir/profiles.cpp.o" "gcc" "src/workload/CMakeFiles/wire_workload.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/dag/CMakeFiles/wire_dag.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/wire_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
