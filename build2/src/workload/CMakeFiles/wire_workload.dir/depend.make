# Empty dependencies file for wire_workload.
# This may be replaced when dependencies are built.
