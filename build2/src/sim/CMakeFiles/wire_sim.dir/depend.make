# Empty dependencies file for wire_sim.
# This may be replaced when dependencies are built.
