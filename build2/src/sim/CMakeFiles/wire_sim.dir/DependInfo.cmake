
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cloud.cpp" "src/sim/CMakeFiles/wire_sim.dir/cloud.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/cloud.cpp.o.d"
  "/root/repo/src/sim/driver.cpp" "src/sim/CMakeFiles/wire_sim.dir/driver.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/driver.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/wire_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/wire_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/wire_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/framework.cpp" "src/sim/CMakeFiles/wire_sim.dir/framework.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/framework.cpp.o.d"
  "/root/repo/src/sim/monitor_store.cpp" "src/sim/CMakeFiles/wire_sim.dir/monitor_store.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/monitor_store.cpp.o.d"
  "/root/repo/src/sim/variability.cpp" "src/sim/CMakeFiles/wire_sim.dir/variability.cpp.o" "gcc" "src/sim/CMakeFiles/wire_sim.dir/variability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/dag/CMakeFiles/wire_dag.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/wire_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
