file(REMOVE_RECURSE
  "CMakeFiles/wire_sim.dir/cloud.cpp.o"
  "CMakeFiles/wire_sim.dir/cloud.cpp.o.d"
  "CMakeFiles/wire_sim.dir/driver.cpp.o"
  "CMakeFiles/wire_sim.dir/driver.cpp.o.d"
  "CMakeFiles/wire_sim.dir/engine.cpp.o"
  "CMakeFiles/wire_sim.dir/engine.cpp.o.d"
  "CMakeFiles/wire_sim.dir/event_queue.cpp.o"
  "CMakeFiles/wire_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/wire_sim.dir/faults.cpp.o"
  "CMakeFiles/wire_sim.dir/faults.cpp.o.d"
  "CMakeFiles/wire_sim.dir/framework.cpp.o"
  "CMakeFiles/wire_sim.dir/framework.cpp.o.d"
  "CMakeFiles/wire_sim.dir/monitor_store.cpp.o"
  "CMakeFiles/wire_sim.dir/monitor_store.cpp.o.d"
  "CMakeFiles/wire_sim.dir/variability.cpp.o"
  "CMakeFiles/wire_sim.dir/variability.cpp.o.d"
  "libwire_sim.a"
  "libwire_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
