file(REMOVE_RECURSE
  "libwire_sim.a"
)
