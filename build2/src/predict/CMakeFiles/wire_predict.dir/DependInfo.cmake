
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/history.cpp" "src/predict/CMakeFiles/wire_predict.dir/history.cpp.o" "gcc" "src/predict/CMakeFiles/wire_predict.dir/history.cpp.o.d"
  "/root/repo/src/predict/ogd.cpp" "src/predict/CMakeFiles/wire_predict.dir/ogd.cpp.o" "gcc" "src/predict/CMakeFiles/wire_predict.dir/ogd.cpp.o.d"
  "/root/repo/src/predict/oracle.cpp" "src/predict/CMakeFiles/wire_predict.dir/oracle.cpp.o" "gcc" "src/predict/CMakeFiles/wire_predict.dir/oracle.cpp.o.d"
  "/root/repo/src/predict/task_predictor.cpp" "src/predict/CMakeFiles/wire_predict.dir/task_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/wire_predict.dir/task_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/dag/CMakeFiles/wire_dag.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/wire_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/wire_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
