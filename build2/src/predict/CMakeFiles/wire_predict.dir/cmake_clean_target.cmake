file(REMOVE_RECURSE
  "libwire_predict.a"
)
