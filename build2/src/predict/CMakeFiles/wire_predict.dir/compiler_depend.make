# Empty compiler generated dependencies file for wire_predict.
# This may be replaced when dependencies are built.
