file(REMOVE_RECURSE
  "CMakeFiles/wire_predict.dir/history.cpp.o"
  "CMakeFiles/wire_predict.dir/history.cpp.o.d"
  "CMakeFiles/wire_predict.dir/ogd.cpp.o"
  "CMakeFiles/wire_predict.dir/ogd.cpp.o.d"
  "CMakeFiles/wire_predict.dir/oracle.cpp.o"
  "CMakeFiles/wire_predict.dir/oracle.cpp.o.d"
  "CMakeFiles/wire_predict.dir/task_predictor.cpp.o"
  "CMakeFiles/wire_predict.dir/task_predictor.cpp.o.d"
  "libwire_predict.a"
  "libwire_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
