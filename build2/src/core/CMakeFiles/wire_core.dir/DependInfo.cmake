
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/wire_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/wire_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/lookahead.cpp" "src/core/CMakeFiles/wire_core.dir/lookahead.cpp.o" "gcc" "src/core/CMakeFiles/wire_core.dir/lookahead.cpp.o.d"
  "/root/repo/src/core/lookahead_cache.cpp" "src/core/CMakeFiles/wire_core.dir/lookahead_cache.cpp.o" "gcc" "src/core/CMakeFiles/wire_core.dir/lookahead_cache.cpp.o.d"
  "/root/repo/src/core/run_state.cpp" "src/core/CMakeFiles/wire_core.dir/run_state.cpp.o" "gcc" "src/core/CMakeFiles/wire_core.dir/run_state.cpp.o.d"
  "/root/repo/src/core/steering.cpp" "src/core/CMakeFiles/wire_core.dir/steering.cpp.o" "gcc" "src/core/CMakeFiles/wire_core.dir/steering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/dag/CMakeFiles/wire_dag.dir/DependInfo.cmake"
  "/root/repo/build2/src/predict/CMakeFiles/wire_predict.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/wire_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/wire_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
