# Empty compiler generated dependencies file for wire_core.
# This may be replaced when dependencies are built.
