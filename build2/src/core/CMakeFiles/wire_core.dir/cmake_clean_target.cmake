file(REMOVE_RECURSE
  "libwire_core.a"
)
