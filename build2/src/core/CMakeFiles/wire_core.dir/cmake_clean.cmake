file(REMOVE_RECURSE
  "CMakeFiles/wire_core.dir/controller.cpp.o"
  "CMakeFiles/wire_core.dir/controller.cpp.o.d"
  "CMakeFiles/wire_core.dir/lookahead.cpp.o"
  "CMakeFiles/wire_core.dir/lookahead.cpp.o.d"
  "CMakeFiles/wire_core.dir/lookahead_cache.cpp.o"
  "CMakeFiles/wire_core.dir/lookahead_cache.cpp.o.d"
  "CMakeFiles/wire_core.dir/run_state.cpp.o"
  "CMakeFiles/wire_core.dir/run_state.cpp.o.d"
  "CMakeFiles/wire_core.dir/steering.cpp.o"
  "CMakeFiles/wire_core.dir/steering.cpp.o.d"
  "libwire_core.a"
  "libwire_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
