file(REMOVE_RECURSE
  "CMakeFiles/wire_policies.dir/baselines.cpp.o"
  "CMakeFiles/wire_policies.dir/baselines.cpp.o.d"
  "CMakeFiles/wire_policies.dir/deadline.cpp.o"
  "CMakeFiles/wire_policies.dir/deadline.cpp.o.d"
  "libwire_policies.a"
  "libwire_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
