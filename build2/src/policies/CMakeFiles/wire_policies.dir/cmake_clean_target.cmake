file(REMOVE_RECURSE
  "libwire_policies.a"
)
