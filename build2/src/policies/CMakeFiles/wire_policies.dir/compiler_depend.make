# Empty compiler generated dependencies file for wire_policies.
# This may be replaced when dependencies are built.
