# CMake generated Testfile for 
# Source directory: /root/repo/src/ensemble
# Build directory: /root/repo/build2/src/ensemble
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
