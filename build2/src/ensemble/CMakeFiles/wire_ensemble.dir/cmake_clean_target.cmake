file(REMOVE_RECURSE
  "libwire_ensemble.a"
)
