file(REMOVE_RECURSE
  "CMakeFiles/wire_ensemble.dir/arbiter.cpp.o"
  "CMakeFiles/wire_ensemble.dir/arbiter.cpp.o.d"
  "CMakeFiles/wire_ensemble.dir/arrival.cpp.o"
  "CMakeFiles/wire_ensemble.dir/arrival.cpp.o.d"
  "CMakeFiles/wire_ensemble.dir/driver.cpp.o"
  "CMakeFiles/wire_ensemble.dir/driver.cpp.o.d"
  "CMakeFiles/wire_ensemble.dir/report.cpp.o"
  "CMakeFiles/wire_ensemble.dir/report.cpp.o.d"
  "libwire_ensemble.a"
  "libwire_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
