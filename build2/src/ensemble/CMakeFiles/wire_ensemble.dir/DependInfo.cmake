
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ensemble/arbiter.cpp" "src/ensemble/CMakeFiles/wire_ensemble.dir/arbiter.cpp.o" "gcc" "src/ensemble/CMakeFiles/wire_ensemble.dir/arbiter.cpp.o.d"
  "/root/repo/src/ensemble/arrival.cpp" "src/ensemble/CMakeFiles/wire_ensemble.dir/arrival.cpp.o" "gcc" "src/ensemble/CMakeFiles/wire_ensemble.dir/arrival.cpp.o.d"
  "/root/repo/src/ensemble/driver.cpp" "src/ensemble/CMakeFiles/wire_ensemble.dir/driver.cpp.o" "gcc" "src/ensemble/CMakeFiles/wire_ensemble.dir/driver.cpp.o.d"
  "/root/repo/src/ensemble/report.cpp" "src/ensemble/CMakeFiles/wire_ensemble.dir/report.cpp.o" "gcc" "src/ensemble/CMakeFiles/wire_ensemble.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/dag/CMakeFiles/wire_dag.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/wire_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/wire_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/workload/CMakeFiles/wire_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
