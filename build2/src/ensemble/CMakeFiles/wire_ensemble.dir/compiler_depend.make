# Empty compiler generated dependencies file for wire_ensemble.
# This may be replaced when dependencies are built.
