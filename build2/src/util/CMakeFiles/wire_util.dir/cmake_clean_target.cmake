file(REMOVE_RECURSE
  "libwire_util.a"
)
