# Empty dependencies file for wire_util.
# This may be replaced when dependencies are built.
