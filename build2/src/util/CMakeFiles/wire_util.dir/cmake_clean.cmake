file(REMOVE_RECURSE
  "CMakeFiles/wire_util.dir/check.cpp.o"
  "CMakeFiles/wire_util.dir/check.cpp.o.d"
  "CMakeFiles/wire_util.dir/csv.cpp.o"
  "CMakeFiles/wire_util.dir/csv.cpp.o.d"
  "CMakeFiles/wire_util.dir/log.cpp.o"
  "CMakeFiles/wire_util.dir/log.cpp.o.d"
  "CMakeFiles/wire_util.dir/rng.cpp.o"
  "CMakeFiles/wire_util.dir/rng.cpp.o.d"
  "CMakeFiles/wire_util.dir/stats.cpp.o"
  "CMakeFiles/wire_util.dir/stats.cpp.o.d"
  "CMakeFiles/wire_util.dir/table.cpp.o"
  "CMakeFiles/wire_util.dir/table.cpp.o.d"
  "CMakeFiles/wire_util.dir/thread_pool.cpp.o"
  "CMakeFiles/wire_util.dir/thread_pool.cpp.o.d"
  "libwire_util.a"
  "libwire_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
