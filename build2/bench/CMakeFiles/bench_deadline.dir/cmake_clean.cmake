file(REMOVE_RECURSE
  "CMakeFiles/bench_deadline.dir/bench_deadline.cpp.o"
  "CMakeFiles/bench_deadline.dir/bench_deadline.cpp.o.d"
  "bench_deadline"
  "bench_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
