# Empty dependencies file for bench_deadline.
# This may be replaced when dependencies are built.
