file(REMOVE_RECURSE
  "CMakeFiles/bench_generalize.dir/bench_generalize.cpp.o"
  "CMakeFiles/bench_generalize.dir/bench_generalize.cpp.o.d"
  "bench_generalize"
  "bench_generalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
