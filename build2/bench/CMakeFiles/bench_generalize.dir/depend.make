# Empty dependencies file for bench_generalize.
# This may be replaced when dependencies are built.
