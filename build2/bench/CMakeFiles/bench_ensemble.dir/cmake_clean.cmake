file(REMOVE_RECURSE
  "CMakeFiles/bench_ensemble.dir/bench_ensemble.cpp.o"
  "CMakeFiles/bench_ensemble.dir/bench_ensemble.cpp.o.d"
  "bench_ensemble"
  "bench_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
