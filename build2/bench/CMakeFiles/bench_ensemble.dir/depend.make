# Empty dependencies file for bench_ensemble.
# This may be replaced when dependencies are built.
