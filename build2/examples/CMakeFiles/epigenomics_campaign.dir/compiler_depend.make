# Empty compiler generated dependencies file for epigenomics_campaign.
# This may be replaced when dependencies are built.
