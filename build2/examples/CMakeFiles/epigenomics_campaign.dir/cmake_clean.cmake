file(REMOVE_RECURSE
  "CMakeFiles/epigenomics_campaign.dir/epigenomics_campaign.cpp.o"
  "CMakeFiles/epigenomics_campaign.dir/epigenomics_campaign.cpp.o.d"
  "epigenomics_campaign"
  "epigenomics_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epigenomics_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
