file(REMOVE_RECURSE
  "CMakeFiles/policy_shootout.dir/policy_shootout.cpp.o"
  "CMakeFiles/policy_shootout.dir/policy_shootout.cpp.o.d"
  "policy_shootout"
  "policy_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
