# Empty compiler generated dependencies file for policy_shootout.
# This may be replaced when dependencies are built.
