# Empty compiler generated dependencies file for ensemble_run.
# This may be replaced when dependencies are built.
