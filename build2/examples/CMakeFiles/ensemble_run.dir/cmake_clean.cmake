file(REMOVE_RECURSE
  "CMakeFiles/ensemble_run.dir/ensemble_run.cpp.o"
  "CMakeFiles/ensemble_run.dir/ensemble_run.cpp.o.d"
  "ensemble_run"
  "ensemble_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
