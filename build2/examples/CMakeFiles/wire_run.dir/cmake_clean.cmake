file(REMOVE_RECURSE
  "CMakeFiles/wire_run.dir/wire_run.cpp.o"
  "CMakeFiles/wire_run.dir/wire_run.cpp.o.d"
  "wire_run"
  "wire_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
