# Empty compiler generated dependencies file for wire_run.
# This may be replaced when dependencies are built.
