file(REMOVE_RECURSE
  "CMakeFiles/test_core_reclaim.dir/test_core_reclaim.cpp.o"
  "CMakeFiles/test_core_reclaim.dir/test_core_reclaim.cpp.o.d"
  "test_core_reclaim"
  "test_core_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
