# Empty compiler generated dependencies file for test_core_reclaim.
# This may be replaced when dependencies are built.
