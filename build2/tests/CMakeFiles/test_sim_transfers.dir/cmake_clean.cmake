file(REMOVE_RECURSE
  "CMakeFiles/test_sim_transfers.dir/test_sim_transfers.cpp.o"
  "CMakeFiles/test_sim_transfers.dir/test_sim_transfers.cpp.o.d"
  "test_sim_transfers"
  "test_sim_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
