# Empty dependencies file for test_sim_transfers.
# This may be replaced when dependencies are built.
