# Empty compiler generated dependencies file for test_metrics_export.
# This may be replaced when dependencies are built.
