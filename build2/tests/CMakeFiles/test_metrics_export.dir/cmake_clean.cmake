file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_export.dir/test_metrics_export.cpp.o"
  "CMakeFiles/test_metrics_export.dir/test_metrics_export.cpp.o.d"
  "test_metrics_export"
  "test_metrics_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
