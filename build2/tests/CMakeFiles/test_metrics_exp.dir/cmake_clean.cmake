file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_exp.dir/test_metrics_exp.cpp.o"
  "CMakeFiles/test_metrics_exp.dir/test_metrics_exp.cpp.o.d"
  "test_metrics_exp"
  "test_metrics_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
