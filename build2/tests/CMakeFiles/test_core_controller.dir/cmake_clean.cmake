file(REMOVE_RECURSE
  "CMakeFiles/test_core_controller.dir/test_core_controller.cpp.o"
  "CMakeFiles/test_core_controller.dir/test_core_controller.cpp.o.d"
  "test_core_controller"
  "test_core_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
