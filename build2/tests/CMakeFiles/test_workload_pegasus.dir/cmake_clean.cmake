file(REMOVE_RECURSE
  "CMakeFiles/test_workload_pegasus.dir/test_workload_pegasus.cpp.o"
  "CMakeFiles/test_workload_pegasus.dir/test_workload_pegasus.cpp.o.d"
  "test_workload_pegasus"
  "test_workload_pegasus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_pegasus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
