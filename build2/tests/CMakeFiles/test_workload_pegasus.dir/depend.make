# Empty dependencies file for test_workload_pegasus.
# This may be replaced when dependencies are built.
