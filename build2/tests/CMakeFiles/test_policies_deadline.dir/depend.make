# Empty dependencies file for test_policies_deadline.
# This may be replaced when dependencies are built.
