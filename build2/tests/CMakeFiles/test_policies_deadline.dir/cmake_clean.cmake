file(REMOVE_RECURSE
  "CMakeFiles/test_policies_deadline.dir/test_policies_deadline.cpp.o"
  "CMakeFiles/test_policies_deadline.dir/test_policies_deadline.cpp.o.d"
  "test_policies_deadline"
  "test_policies_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policies_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
