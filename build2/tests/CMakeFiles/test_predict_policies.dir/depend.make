# Empty dependencies file for test_predict_policies.
# This may be replaced when dependencies are built.
