file(REMOVE_RECURSE
  "CMakeFiles/test_predict_policies.dir/test_predict_policies.cpp.o"
  "CMakeFiles/test_predict_policies.dir/test_predict_policies.cpp.o.d"
  "test_predict_policies"
  "test_predict_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
