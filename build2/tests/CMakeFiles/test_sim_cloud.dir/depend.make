# Empty dependencies file for test_sim_cloud.
# This may be replaced when dependencies are built.
