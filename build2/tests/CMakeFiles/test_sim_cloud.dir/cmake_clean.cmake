file(REMOVE_RECURSE
  "CMakeFiles/test_sim_cloud.dir/test_sim_cloud.cpp.o"
  "CMakeFiles/test_sim_cloud.dir/test_sim_cloud.cpp.o.d"
  "test_sim_cloud"
  "test_sim_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
