
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/test_workload.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/wire_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/dag/CMakeFiles/wire_dag.dir/DependInfo.cmake"
  "/root/repo/build2/src/ensemble/CMakeFiles/wire_ensemble.dir/DependInfo.cmake"
  "/root/repo/build2/src/exp/CMakeFiles/wire_exp.dir/DependInfo.cmake"
  "/root/repo/build2/src/metrics/CMakeFiles/wire_metrics.dir/DependInfo.cmake"
  "/root/repo/build2/src/policies/CMakeFiles/wire_policies.dir/DependInfo.cmake"
  "/root/repo/build2/src/predict/CMakeFiles/wire_predict.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/wire_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/wire_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/workload/CMakeFiles/wire_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
