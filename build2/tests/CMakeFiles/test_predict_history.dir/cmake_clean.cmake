file(REMOVE_RECURSE
  "CMakeFiles/test_predict_history.dir/test_predict_history.cpp.o"
  "CMakeFiles/test_predict_history.dir/test_predict_history.cpp.o.d"
  "test_predict_history"
  "test_predict_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
