# Empty compiler generated dependencies file for test_predict_history.
# This may be replaced when dependencies are built.
