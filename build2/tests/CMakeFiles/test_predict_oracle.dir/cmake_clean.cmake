file(REMOVE_RECURSE
  "CMakeFiles/test_predict_oracle.dir/test_predict_oracle.cpp.o"
  "CMakeFiles/test_predict_oracle.dir/test_predict_oracle.cpp.o.d"
  "test_predict_oracle"
  "test_predict_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
