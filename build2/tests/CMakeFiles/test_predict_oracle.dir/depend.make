# Empty dependencies file for test_predict_oracle.
# This may be replaced when dependencies are built.
