file(REMOVE_RECURSE
  "CMakeFiles/test_dag_dax.dir/test_dag_dax.cpp.o"
  "CMakeFiles/test_dag_dax.dir/test_dag_dax.cpp.o.d"
  "test_dag_dax"
  "test_dag_dax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_dax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
