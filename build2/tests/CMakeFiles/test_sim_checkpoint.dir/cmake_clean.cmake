file(REMOVE_RECURSE
  "CMakeFiles/test_sim_checkpoint.dir/test_sim_checkpoint.cpp.o"
  "CMakeFiles/test_sim_checkpoint.dir/test_sim_checkpoint.cpp.o.d"
  "test_sim_checkpoint"
  "test_sim_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
