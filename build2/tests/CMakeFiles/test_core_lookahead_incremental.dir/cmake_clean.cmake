file(REMOVE_RECURSE
  "CMakeFiles/test_core_lookahead_incremental.dir/test_core_lookahead_incremental.cpp.o"
  "CMakeFiles/test_core_lookahead_incremental.dir/test_core_lookahead_incremental.cpp.o.d"
  "test_core_lookahead_incremental"
  "test_core_lookahead_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_lookahead_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
