# Empty dependencies file for test_core_lookahead_incremental.
# This may be replaced when dependencies are built.
