# Empty compiler generated dependencies file for test_sim_framework.
# This may be replaced when dependencies are built.
