file(REMOVE_RECURSE
  "CMakeFiles/test_sim_framework.dir/test_sim_framework.cpp.o"
  "CMakeFiles/test_sim_framework.dir/test_sim_framework.cpp.o.d"
  "test_sim_framework"
  "test_sim_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
