file(REMOVE_RECURSE
  "CMakeFiles/test_dag_clustering.dir/test_dag_clustering.cpp.o"
  "CMakeFiles/test_dag_clustering.dir/test_dag_clustering.cpp.o.d"
  "test_dag_clustering"
  "test_dag_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
