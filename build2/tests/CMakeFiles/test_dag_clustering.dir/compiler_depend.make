# Empty compiler generated dependencies file for test_dag_clustering.
# This may be replaced when dependencies are built.
