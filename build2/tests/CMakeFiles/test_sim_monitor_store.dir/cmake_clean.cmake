file(REMOVE_RECURSE
  "CMakeFiles/test_sim_monitor_store.dir/test_sim_monitor_store.cpp.o"
  "CMakeFiles/test_sim_monitor_store.dir/test_sim_monitor_store.cpp.o.d"
  "test_sim_monitor_store"
  "test_sim_monitor_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_monitor_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
