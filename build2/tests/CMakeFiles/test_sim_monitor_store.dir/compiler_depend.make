# Empty compiler generated dependencies file for test_sim_monitor_store.
# This may be replaced when dependencies are built.
