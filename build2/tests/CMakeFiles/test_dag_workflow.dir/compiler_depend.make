# Empty compiler generated dependencies file for test_dag_workflow.
# This may be replaced when dependencies are built.
