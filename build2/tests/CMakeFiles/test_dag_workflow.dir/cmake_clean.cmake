file(REMOVE_RECURSE
  "CMakeFiles/test_dag_workflow.dir/test_dag_workflow.cpp.o"
  "CMakeFiles/test_dag_workflow.dir/test_dag_workflow.cpp.o.d"
  "test_dag_workflow"
  "test_dag_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
