# Empty compiler generated dependencies file for test_core_steering.
# This may be replaced when dependencies are built.
