file(REMOVE_RECURSE
  "CMakeFiles/test_core_steering.dir/test_core_steering.cpp.o"
  "CMakeFiles/test_core_steering.dir/test_core_steering.cpp.o.d"
  "test_core_steering"
  "test_core_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
