# Empty compiler generated dependencies file for test_predict_ogd.
# This may be replaced when dependencies are built.
