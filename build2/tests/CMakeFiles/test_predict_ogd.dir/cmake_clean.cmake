file(REMOVE_RECURSE
  "CMakeFiles/test_predict_ogd.dir/test_predict_ogd.cpp.o"
  "CMakeFiles/test_predict_ogd.dir/test_predict_ogd.cpp.o.d"
  "test_predict_ogd"
  "test_predict_ogd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_ogd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
