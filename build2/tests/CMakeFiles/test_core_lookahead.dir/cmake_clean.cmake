file(REMOVE_RECURSE
  "CMakeFiles/test_core_lookahead.dir/test_core_lookahead.cpp.o"
  "CMakeFiles/test_core_lookahead.dir/test_core_lookahead.cpp.o.d"
  "test_core_lookahead"
  "test_core_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
