# Empty compiler generated dependencies file for test_core_lookahead.
# This may be replaced when dependencies are built.
