file(REMOVE_RECURSE
  "CMakeFiles/test_sim_faults.dir/test_sim_faults.cpp.o"
  "CMakeFiles/test_sim_faults.dir/test_sim_faults.cpp.o.d"
  "test_sim_faults"
  "test_sim_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
