# Empty dependencies file for test_sim_robustness.
# This may be replaced when dependencies are built.
