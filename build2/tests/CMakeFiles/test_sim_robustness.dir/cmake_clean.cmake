file(REMOVE_RECURSE
  "CMakeFiles/test_sim_robustness.dir/test_sim_robustness.cpp.o"
  "CMakeFiles/test_sim_robustness.dir/test_sim_robustness.cpp.o.d"
  "test_sim_robustness"
  "test_sim_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
