// Tests for the Pegasus DAX importer.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "dag/analysis.h"
#include "dag/dax.h"
#include "sim/driver.h"
#include "util/check.h"

namespace wire::dag {
namespace {

/// A miniature Montage-style DAX in the synthetic-gallery dialect.
const char* kSampleDax = R"(<?xml version="1.0" encoding="UTF-8"?>
<!-- generated: 2014-01-01 -->
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1"
      name="miniMontage" jobCount="6" fileCount="0" childCount="4">
  <job id="ID00000" namespace="mont" name="mProjectPP" version="1.0" runtime="13.59">
    <uses file="a.fits" link="input" register="true" transfer="true" size="1048576"/>
    <uses file="a.proj" link="output" register="true" transfer="true" size="2097152"/>
  </job>
  <job id="ID00001" namespace="mont" name="mProjectPP" version="1.0" runtime="14.20">
    <uses file="b.fits" link="input" size="1048576"/>
    <uses file="b.proj" link="output" size="2097152"/>
  </job>
  <job id="ID00002" namespace="mont" name="mDiffFit" version="1.0" runtime="4.25">
    <uses file="a.proj" link="input" size="2097152"/>
    <uses file="b.proj" link="input" size="2097152"/>
    <uses file="d.fit" link="output" size="512"/>
  </job>
  <job id="ID00003" namespace="mont" name="mConcatFit" version="1.0" runtime="42.0"/>
  <job id="ID00004" namespace="mont" name="mBackground" version="1.0" runtime="7.5"/>
  <job id="ID00005" namespace="mont" name="mBackground" version="1.0" runtime="8.5"/>
  <child ref="ID00002">
    <parent ref="ID00000"/>
    <parent ref="ID00001"/>
  </child>
  <child ref="ID00003"><parent ref="ID00002"/></child>
  <child ref="ID00004"><parent ref="ID00003"/></child>
  <child ref="ID00005"><parent ref="ID00003"/></child>
</adag>
)";

TEST(Dax, ParsesJobsStagesAndEdges) {
  const Workflow wf = dax_from_string(kSampleDax);
  EXPECT_EQ(wf.name(), "miniMontage");
  EXPECT_EQ(wf.task_count(), 6u);
  // One stage per transformation: mProjectPP, mDiffFit, mConcatFit,
  // mBackground.
  EXPECT_EQ(wf.stage_count(), 4u);
  EXPECT_EQ(wf.stage_tasks(0).size(), 2u);  // two projections
  EXPECT_EQ(wf.stage_tasks(3).size(), 2u);  // two backgrounds
  // Dependencies.
  EXPECT_EQ(wf.roots().size(), 2u);
  EXPECT_EQ(wf.sinks().size(), 2u);
  const auto diff_preds = wf.predecessors(wf.stage_tasks(1)[0]);
  EXPECT_EQ(diff_preds.size(), 2u);
}

TEST(Dax, ReadsRuntimesAndSizes) {
  const Workflow wf = dax_from_string(kSampleDax);
  const TaskSpec& proj = wf.task(wf.stage_tasks(0)[0]);
  EXPECT_DOUBLE_EQ(proj.ref_exec_seconds, 13.59);
  EXPECT_DOUBLE_EQ(proj.input_mb, 1.0);   // 1 MiB input
  EXPECT_DOUBLE_EQ(proj.output_mb, 2.0);  // 2 MiB output
  const TaskSpec& diff = wf.task(wf.stage_tasks(1)[0]);
  EXPECT_DOUBLE_EQ(diff.input_mb, 4.0);  // both projections' outputs
  // Self-closing job without uses: zero data.
  const TaskSpec& concat = wf.task(wf.stage_tasks(2)[0]);
  EXPECT_DOUBLE_EQ(concat.input_mb, 0.0);
  EXPECT_DOUBLE_EQ(concat.ref_exec_seconds, 42.0);
}

TEST(Dax, ImportedWorkflowRunsUnderWire) {
  const Workflow wf = dax_from_string(kSampleDax);
  core::WireController controller;
  sim::CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 60.0;
  sim::RunOptions options;
  options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, controller, config, options);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
}

TEST(Dax, JobOrderIndependence) {
  // Children may be declared before their parents appear in the <child>
  // list; the importer topologically orders them.
  const char* reversed = R"(<adag name="rev">
    <job id="B" name="t2" runtime="1.0"/>
    <job id="A" name="t1" runtime="2.0"/>
    <child ref="B"><parent ref="A"/></child>
  </adag>)";
  const Workflow wf = dax_from_string(reversed);
  ASSERT_EQ(wf.task_count(), 2u);
  // Task "A" must precede "B" in the built DAG.
  const TaskId a = wf.roots()[0];
  EXPECT_EQ(wf.task(a).name, "A");
  EXPECT_EQ(wf.successors(a).size(), 1u);
}

TEST(Dax, RejectsMalformedDocuments) {
  EXPECT_THROW(dax_from_string("not xml at all"), DaxParseError);
  EXPECT_THROW(dax_from_string("<adag name='x'></adag>"),
               DaxParseError);  // no jobs
  EXPECT_THROW(dax_from_string(
                   "<adag><job id='a' name='t'/></adag>"),  // no runtime
               DaxParseError);
  EXPECT_THROW(
      dax_from_string("<adag><job id='a' name='t' runtime='1'/>"
                      "<job id='a' name='t' runtime='1'/></adag>"),
      DaxParseError);  // duplicate id
  EXPECT_THROW(
      dax_from_string("<adag><job id='a' name='t' runtime='1'/>"
                      "<child ref='a'><parent ref='zz'/></child></adag>"),
      DaxParseError);  // unknown parent
  EXPECT_THROW(
      dax_from_string(
          "<adag><job id='a' name='t' runtime='1'/>"
          "<job id='b' name='t' runtime='1'/>"
          "<child ref='a'><parent ref='b'/></child>"
          "<child ref='b'><parent ref='a'/></child></adag>"),
      DaxParseError);  // cycle
}

TEST(Dax, RejectsTruncatedAndBrokenXml) {
  // Truncated mid-tag: never a silent partial workflow.
  EXPECT_THROW(dax_from_string("<adag name='x'><job id='a' name='t"),
               DaxParseError);
  EXPECT_THROW(dax_from_string("<adag><!-- unterminated comment"),
               DaxParseError);
  EXPECT_THROW(dax_from_string("<adag><job id='a' name='t' runtime='1"
                               "/></adag>"),  // quote never closed
               DaxParseError);
  EXPECT_THROW(dax_from_string("<adag><job id=a name='t' runtime='1'/>"
                               "</adag>"),  // unquoted attribute
               DaxParseError);
  EXPECT_THROW(dax_from_string("<adag><job id='a' name='t' runtime='abc'/>"
                               "</adag>"),  // non-numeric runtime
               DaxParseError);
  EXPECT_THROW(dax_from_string("<adag><job id='a' name='t' runtime='1x'/>"
                               "</adag>"),  // trailing garbage in number
               DaxParseError);
  // A <child> naming a job that does not exist is an edge to nowhere even
  // without <parent> rows inside it.
  EXPECT_THROW(dax_from_string("<adag><job id='a' name='t' runtime='1'/>"
                               "<child ref='zz'/></adag>"),
               DaxParseError);
  // <parent> outside any <child>.
  EXPECT_THROW(dax_from_string("<adag><job id='a' name='t' runtime='1'/>"
                               "<parent ref='a'/></adag>"),
               DaxParseError);
}

TEST(Dax, ParseErrorsCarrySourceAndLineContext) {
  const char* doc =
      "<adag name='x'>\n"
      "  <job id='a' name='t' runtime='1'/>\n"
      "  <job id='a' name='t' runtime='1'/>\n"
      "</adag>\n";
  try {
    dax_from_string(doc, "broken.dax");
    FAIL() << "expected DaxParseError";
  } catch (const DaxParseError& e) {
    const std::string msg = e.what();
    // Duplicate is on line 3; the message names the file, the line, and the
    // first definition.
    EXPECT_NE(msg.find("broken.dax:3:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate job id a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
  // Document-level errors carry the source without a line.
  try {
    dax_from_string("<adag name='x'></adag>", "empty.dax");
    FAIL() << "expected DaxParseError";
  } catch (const DaxParseError& e) {
    EXPECT_NE(std::string(e.what()).find("empty.dax: "), std::string::npos);
  }
}

TEST(Dax, HandlesCommentsAndDeclarations) {
  const char* doc = R"(<?xml version="1.0"?>
    <!-- a comment with <job id="fake" name="x" runtime="9"/> inside -->
    <adag name="c"><job id="a" name="t" runtime="3.0"/></adag>)";
  const Workflow wf = dax_from_string(doc);
  EXPECT_EQ(wf.task_count(), 1u);
  EXPECT_DOUBLE_EQ(wf.task(0).ref_exec_seconds, 3.0);
}

}  // namespace
}  // namespace wire::dag
