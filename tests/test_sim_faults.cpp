// Fault-injection chaos suite (sim/faults.*).
//
// Properties pinned here, per the fault substrate's contract:
//   - under combined crash / provision-failure / straggler / transient-task
//     / monitor-dropout injection, every non-quarantined task completes
//     exactly once and every quarantined task is reported;
//   - billing invariants hold: instances that never became Ready are never
//     charged, crashed/terminated instances stop accruing at their
//     termination time, and the run's cost is exactly the per-instance sum;
//   - the incremental MonitorStore matches the from-scratch
//     JobEngine::rebuild_snapshot field-for-field after every injected fault;
//   - identical seeds reproduce identical FaultTraces byte-for-byte;
//   - retry/backoff/quarantine semantics are exact for deterministic rates;
//   - WIRE's steering survives fault injection without stranding a workflow;
//   - the predictor's robust harvest ignores failed attempts, and the
//     harvest_failed_attempts ablation measurably contaminates it.
//
// Every randomized test announces its seed via SCOPED_TRACE (see DESIGN.md,
// "Randomized tests print their seeds"); WIRE_FUZZ_SEED adds one extra
// environment-chosen chaos seed (the CI faults-fuzz job sets it to a
// time-derived value and echoes it into the log).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/controller.h"
#include "policies/baselines.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "workload/generators.h"

namespace wire::sim {
namespace {

/// High rates on a small site: every fault class fires many times per run.
CloudConfig hostile_cloud() {
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 6;
  config.faults.crash_rate_per_hour = 20.0;
  config.faults.crash_notice_seconds = 20.0;
  config.faults.provision_failure_prob = 0.2;
  config.faults.straggler_prob = 0.3;
  config.faults.straggler_lag_multiplier = 2.5;
  config.faults.task_failure_prob = 0.15;
  config.faults.monitor_dropout_prob = 0.2;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_seconds = 5.0;
  config.retry.backoff_factor = 2.0;
  return config;
}

void expect_observation_eq(const TaskObservation& got,
                           const TaskObservation& want) {
  EXPECT_EQ(static_cast<int>(got.phase), static_cast<int>(want.phase));
  EXPECT_EQ(got.input_mb, want.input_mb);
  EXPECT_EQ(got.ready_since, want.ready_since);
  EXPECT_EQ(got.occupancy_start, want.occupancy_start);
  EXPECT_EQ(got.elapsed, want.elapsed);
  EXPECT_EQ(got.elapsed_exec, want.elapsed_exec);
  EXPECT_EQ(got.transfer_in_time, want.transfer_in_time);
  EXPECT_EQ(got.instance, want.instance);
  EXPECT_EQ(got.exec_time, want.exec_time);
  EXPECT_EQ(got.transfer_time, want.transfer_time);
  EXPECT_EQ(got.attempts, want.attempts);
  EXPECT_EQ(got.failed_attempts, want.failed_attempts);
  EXPECT_EQ(got.last_failed_elapsed, want.last_failed_elapsed);
  EXPECT_EQ(got.checkpointed_exec, want.checkpointed_exec);
}

void expect_instance_eq(const InstanceObservation& got,
                        const InstanceObservation& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.provisioning, want.provisioning);
  EXPECT_EQ(got.ready_at, want.ready_at);
  EXPECT_EQ(got.time_to_next_charge, want.time_to_next_charge);
  EXPECT_EQ(got.draining, want.draining);
  EXPECT_EQ(got.revoking, want.revoking);
  EXPECT_EQ(got.revoke_at, want.revoke_at);
  EXPECT_EQ(got.running_tasks, want.running_tasks);
  EXPECT_EQ(got.free_slots, want.free_slots);
}

void expect_snapshot_eq(const MonitorSnapshot& got,
                        const MonitorSnapshot& want) {
  EXPECT_EQ(got.now, want.now);
  EXPECT_EQ(got.incomplete_tasks, want.incomplete_tasks);
  EXPECT_EQ(got.pool_cap, want.pool_cap);
  EXPECT_EQ(got.ready_queue, want.ready_queue);
  ASSERT_EQ(got.tasks.size(), want.tasks.size());
  for (std::size_t t = 0; t < got.tasks.size(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    expect_observation_eq(got.tasks[t], want.tasks[t]);
  }
  ASSERT_EQ(got.instances.size(), want.instances.size());
  for (std::size_t i = 0; i < got.instances.size(); ++i) {
    SCOPED_TRACE("instance row " + std::to_string(i));
    expect_instance_eq(got.instances[i], want.instances[i]);
  }
}

/// Ground-truth billing invariants after a finished run.
void expect_billing_invariants(const CloudPool& cloud, const RunResult& r) {
  double charged = 0.0;
  for (const Instance& inst : cloud.instances()) {
    const double units = cloud.charged_units(inst.id, r.makespan);
    charged += units;
    if (inst.state == InstanceState::Terminated &&
        inst.terminated_at <= inst.ready_at) {
      // Provision failures (and boots released mid-flight) were never Ready:
      // never billed.
      EXPECT_EQ(units, 0.0) << "charged never-ready instance " << inst.id;
    }
    if (inst.state == InstanceState::Terminated) {
      // A crashed/terminated instance stops accruing at its end time.
      EXPECT_EQ(units, cloud.charged_units(inst.id, inst.terminated_at))
          << "instance " << inst.id << " accrued charge after termination";
    }
  }
  EXPECT_NEAR(r.cost_units, charged, 1e-9);
}

/// Exactly-once completion: every task is either Completed (once) or
/// journaled as quarantined, never both, never neither.
void expect_exactly_once_completion(const dag::Workflow& wf,
                                    const RunResult& r) {
  ASSERT_EQ(r.task_records.size(), wf.task_count());
  EXPECT_TRUE(std::is_sorted(r.quarantined_tasks.begin(),
                             r.quarantined_tasks.end()));
  std::size_t quarantined = 0;
  for (dag::TaskId t = 0; t < static_cast<dag::TaskId>(wf.task_count());
       ++t) {
    const TaskRuntime& rec = r.task_records[t];
    const bool listed = std::binary_search(r.quarantined_tasks.begin(),
                                           r.quarantined_tasks.end(), t);
    if (rec.quarantined) {
      ++quarantined;
      EXPECT_TRUE(listed) << "quarantined task " << t << " not reported";
      EXPECT_NE(static_cast<int>(rec.phase),
                static_cast<int>(TaskPhase::Completed));
      // Transitively poisoned descendants never ran; only the quarantine
      // root is guaranteed to have burned attempts.
    } else {
      EXPECT_FALSE(listed);
      EXPECT_EQ(static_cast<int>(rec.phase),
                static_cast<int>(TaskPhase::Completed))
          << "task " << t << " neither completed nor quarantined";
    }
  }
  EXPECT_EQ(quarantined, r.quarantined_tasks.size());
}

/// The result's per-kind counters must agree with the journal.
void expect_trace_counts(const RunResult& r) {
  const auto count = [&](FaultKind kind) {
    std::uint32_t n = 0;
    for (const FaultEvent& e : r.fault_trace) {
      if (e.kind == kind) ++n;
    }
    return n;
  };
  EXPECT_EQ(r.task_faults, count(FaultKind::TaskFault));
  EXPECT_EQ(r.instance_crashes, count(FaultKind::InstanceCrash));
  EXPECT_EQ(r.provision_failures, count(FaultKind::ProvisionFailure));
  EXPECT_EQ(r.straggler_boots, count(FaultKind::StragglerBoot));
  EXPECT_EQ(r.monitor_dropouts, count(FaultKind::MonitorDropout));
  EXPECT_EQ(static_cast<std::uint32_t>(r.quarantined_tasks.size()),
            count(FaultKind::TaskQuarantine));
}

/// One chaos run: a reactive policy (grow/release churn) over a random
/// layered DAG on the hostile cloud, stepping event-by-event and
/// cross-checking the incremental monitor against the from-scratch rebuild
/// the whole way. Returns the run's rendered FaultTrace for replay checks.
std::string run_chaos(std::uint64_t seed, RunResult* out = nullptr) {
  const dag::Workflow wf =
      workload::random_layered(workload::RandomDagOptions{}, seed);
  const CloudConfig config = hostile_cloud();
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.seed = seed + 101;
  options.initial_instances = 1;
  options.max_sim_seconds = 3.0e6;

  JobEngine engine(wf, policy, config, options);
  engine.start();
  std::uint64_t steps = 0;
  while (!engine.done()) {
    // Bound the run in events, not only sim time, so a stuck retry loop
    // fails fast with the seed in the trace.
    EXPECT_LT(steps, 400000u) << "chaos run failed to converge";
    if (steps >= 400000u) break;
    const SimTime t = engine.next_event_time();
    engine.step();
    ++steps;
    if (engine.done()) break;
    SCOPED_TRACE("after event at t=" + std::to_string(t));
    expect_snapshot_eq(engine.peek_monitor(t), engine.rebuild_snapshot(t));
  }

  RunResult r = engine.result();
  expect_exactly_once_completion(wf, r);
  expect_billing_invariants(engine.cloud(), r);
  expect_trace_counts(r);
  const std::string trace = render_fault_trace(r.fault_trace);
  if (out != nullptr) *out = std::move(r);
  return trace;
}

class FaultChaos : public ::testing::TestWithParam<int> {};

TEST_P(FaultChaos, InjectedFaultsPreserveAllInvariants) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  RunResult r;
  const std::string trace = run_chaos(seed, &r);
  // The hostile rates make a fault-free run essentially impossible; an empty
  // trace would mean the injection never engaged.
  EXPECT_FALSE(r.fault_trace.empty());
  // Identical seeds replay the identical fault schedule byte-for-byte.
  EXPECT_EQ(trace, run_chaos(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultChaos, ::testing::Range(0, 8));

TEST(FaultChaos, EnvironmentSeedRuns) {
  // CI chaos: WIRE_FUZZ_SEED (echoed in the job log) adds one
  // environment-chosen seed on top of the fixed sweep.
  const char* env = std::getenv("WIRE_FUZZ_SEED");
  if (env == nullptr) GTEST_SKIP() << "WIRE_FUZZ_SEED not set";
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("WIRE_FUZZ_SEED=" + std::to_string(seed));
  std::printf("running fault chaos with WIRE_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  run_chaos(seed);
}

TEST(Faults, DisabledModelLeavesNoTrace) {
  const dag::Workflow wf = workload::linear_workflow(2, 3, 10.0);
  policies::StaticPolicy policy(2);
  RunOptions options;
  options.initial_instances = 2;
  const RunResult r = simulate(wf, policy, CloudConfig{}, options);
  EXPECT_TRUE(r.fault_trace.empty());
  EXPECT_EQ(r.task_faults, 0u);
  EXPECT_EQ(r.instance_crashes, 0u);
  EXPECT_EQ(r.provision_failures, 0u);
  EXPECT_EQ(r.straggler_boots, 0u);
  EXPECT_EQ(r.monitor_dropouts, 0u);
  EXPECT_TRUE(r.quarantined_tasks.empty());
  EXPECT_EQ(render_fault_trace(r.fault_trace),
            "time,kind,subject,attempt,detail\n");
}

TEST(Faults, CertainFailureExhaustsRetriesAndQuarantinesTheDag) {
  // task_failure_prob = 1 with no other faults: every root attempt dies
  // mid-execution, retries back off exponentially, and after max_attempts
  // the root is quarantined together with every descendant (whose
  // predecessors can now never complete). The run ends with zero
  // completions.
  const dag::Workflow wf = workload::linear_workflow(2, 2, 50.0);
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.faults.task_failure_prob = 1.0;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_seconds = 5.0;
  config.retry.backoff_factor = 2.0;
  policies::StaticPolicy policy(1);
  RunOptions options;
  options.seed = 3;
  options.initial_instances = 1;

  const RunResult r = simulate(wf, policy, config, options);
  ASSERT_EQ(r.quarantined_tasks.size(), wf.task_count());
  expect_exactly_once_completion(wf, r);
  expect_trace_counts(r);
  // Both roots burn their full retry budget; descendants never start.
  EXPECT_EQ(r.task_faults, 2u * config.retry.max_attempts);
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_NE(static_cast<int>(rec.phase),
              static_cast<int>(TaskPhase::Completed));
  }

  // Backoff spacing: consecutive failures of one task are separated by at
  // least the scheduled backoff (base * factor^(k-1)) — the re-run time adds
  // on top.
  for (dag::TaskId task : wf.roots()) {
    std::vector<const FaultEvent*> faults;
    for (const FaultEvent& e : r.fault_trace) {
      if (e.kind == FaultKind::TaskFault && e.subject == task) {
        faults.push_back(&e);
      }
    }
    ASSERT_EQ(faults.size(), static_cast<std::size_t>(
                                 config.retry.max_attempts));
    for (std::size_t k = 1; k < faults.size(); ++k) {
      EXPECT_EQ(faults[k]->attempt, static_cast<std::uint32_t>(k + 1));
      const double backoff =
          config.retry.backoff_base_seconds *
          std::pow(config.retry.backoff_factor, static_cast<double>(k - 1));
      EXPECT_GE(faults[k]->time, faults[k - 1]->time + backoff);
    }
  }
}

TEST(Faults, TotalMonitorDropoutStillCompletes) {
  // Every control tick's delta withheld: the controller must survive on
  // non-exact snapshots alone (RunState and the predictor fall back to full
  // scans) and the coalesced journal must keep the store consistent.
  const dag::Workflow wf = workload::random_layered(
      workload::RandomDagOptions{}, /*seed=*/5);
  SCOPED_TRACE("dag seed 5");
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 6;
  config.faults.monitor_dropout_prob = 1.0;
  core::WireController controller;
  RunOptions options;
  options.seed = 17;
  options.initial_instances = 1;

  JobEngine engine(wf, controller, config, options);
  engine.start();
  while (!engine.done()) {
    const SimTime t = engine.next_event_time();
    engine.step();
    if (engine.done()) break;
    SCOPED_TRACE("after event at t=" + std::to_string(t));
    expect_snapshot_eq(engine.peek_monitor(t), engine.rebuild_snapshot(t));
  }
  const RunResult r = engine.result();
  EXPECT_TRUE(r.quarantined_tasks.empty());
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(static_cast<int>(rec.phase),
              static_cast<int>(TaskPhase::Completed));
  }
  EXPECT_GE(r.monitor_dropouts, 1u);
  EXPECT_EQ(r.monitor_dropouts, r.control_ticks);
}

TEST(Faults, WireSteeringSurvivesInjection) {
  // The acceptance property: WIRE's full MAPE loop (lookahead + steering +
  // online prediction) under crashes with notice, stragglers, provision
  // failures, transient faults, and dropouts never strands a workflow.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("run seed " + std::to_string(seed));
    const dag::Workflow wf = workload::random_layered(
        workload::RandomDagOptions{}, seed + 40);
    CloudConfig config = hostile_cloud();
    config.faults.task_failure_prob = 0.05;  // keep quarantines rare
    core::WireController controller;
    RunOptions options;
    options.seed = seed;
    options.initial_instances = 1;
    options.max_sim_seconds = 3.0e6;
    const RunResult r = simulate(wf, controller, config, options);
    expect_exactly_once_completion(wf, r);
    expect_trace_counts(r);
    EXPECT_GT(r.makespan, 0.0);
  }
}

TEST(Faults, PredictorRobustHarvestIgnoresFailedAttempts) {
  // One stage, three tasks, no transfer data. Task 0 completed in 10 s;
  // task 1 suffered a failed attempt that burned 1000 s. The robust
  // (default) harvest must predict 10 s for the still-pending task 2; the
  // harvest_failed_attempts ablation ingests the 1000 s span and drags the
  // stage centre to the contaminated median.
  const dag::Workflow wf = workload::linear_workflow(1, 3, 10.0);
  MonitorSnapshot snap;
  snap.now = 1200.0;
  snap.incomplete_tasks = 2;
  snap.tasks.resize(wf.task_count());
  snap.tasks[0].phase = TaskPhase::Completed;
  snap.tasks[0].exec_time = 10.0;
  snap.tasks[0].attempts = 1;
  snap.tasks[1].phase = TaskPhase::Pending;
  snap.tasks[1].failed_attempts = 1;
  snap.tasks[1].last_failed_elapsed = 1000.0;
  snap.tasks[2].phase = TaskPhase::Ready;
  snap.tasks[2].ready_since = 0.0;

  predict::TaskPredictor robust(wf);
  robust.observe(snap);
  robust.observe(snap);  // replay must be idempotent
  EXPECT_DOUBLE_EQ(robust.predict_exec(2, snap).exec_seconds, 10.0);

  predict::PredictorConfig contaminated_config;
  contaminated_config.harvest_failed_attempts = true;
  predict::TaskPredictor contaminated(wf, contaminated_config);
  contaminated.observe(snap);
  contaminated.observe(snap);  // the failure must still be ingested once
  EXPECT_DOUBLE_EQ(contaminated.predict_exec(2, snap).exec_seconds, 505.0);

  // Same contamination through the exact-delta fast path.
  MonitorSnapshot delta_snap = snap;
  delta_snap.delta.exact = true;
  delta_snap.delta.completed = {0};
  delta_snap.delta.phase_changed = {0, 1};
  delta_snap.delta.failed = {1};
  predict::TaskPredictor via_delta(wf, contaminated_config);
  via_delta.observe(delta_snap);
  EXPECT_DOUBLE_EQ(via_delta.predict_exec(2, snap).exec_seconds, 505.0);
}

}  // namespace
}  // namespace wire::sim
