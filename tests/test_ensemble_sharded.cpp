// Differential suite for the sharded ensemble engine: the EnsembleReport
// must be byte-identical across every execution configuration — the legacy
// sequential reference loop (shards == 0), the windowed single-shard engine,
// and parallel multi-shard runs with any worker count — under fault chaos,
// memory-aware arbitration, and parallel dedicated baselines. Also pins the
// seeded tenant→shard map (recorded scale trajectories replay onto identical
// partitions only if the map never silently changes).
//
// Randomized coverage announces its seed via SCOPED_TRACE; WIRE_FUZZ_SEED
// adds one environment-chosen chaos seed (the CI faults-fuzz job sets it to
// a time-derived value and echoes it into the log).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/controller.h"
#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/driver.h"
#include "ensemble/report.h"
#include "exp/settings.h"
#include "policies/budget.h"
#include "sim/config.h"
#include "sim/engine.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::ensemble {
namespace {

sim::CloudConfig quiet_site() {
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  config.max_instances = 6;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 1e12;
  return config;
}

/// quiet_site plus a hostile fault model: crashes, provisioning failures,
/// stragglers, transient task failures and monitor dropouts all active, so
/// every tracked-event kind (including fault-mode InstanceReady) exercises
/// the windowed horizon.
sim::CloudConfig crashy_site() {
  sim::CloudConfig config = quiet_site();
  config.faults.crash_rate_per_hour = 0.6;
  config.faults.crash_notice_seconds = 120.0;
  config.faults.provision_failure_prob = 0.1;
  config.faults.straggler_prob = 0.15;
  config.faults.task_failure_prob = 0.05;
  config.faults.monitor_dropout_prob = 0.1;
  return config;
}

std::vector<workload::WorkflowProfile> small_profiles() {
  return {workload::tpch6_profile(workload::Scale::Small),
          workload::pagerank_profile(workload::Scale::Small)};
}

ArrivalProcess burst_stream(std::uint32_t jobs, double spacing_seconds,
                            std::uint64_t seed = 13) {
  std::vector<JobArrival> trace(jobs);
  for (std::uint32_t i = 0; i < jobs; ++i) {
    trace[i].arrival_seconds = spacing_seconds * i;
    trace[i].profile_index = i % 2;
  }
  return ArrivalProcess::fixed_trace(std::move(trace), seed);
}

/// One full ensemble run under the given execution configuration; everything
/// except (shards, threads) is held fixed so reports are comparable.
EnsembleReport run_report(const sim::CloudConfig& site,
                          EnsembleOptions options, std::uint32_t shards,
                          std::uint32_t threads, exp::PolicyKind kind,
                          std::uint32_t jobs, std::uint64_t stream_seed,
                          const core::WireOptions& wire_options = {}) {
  options.shards = shards;
  options.threads = threads;
  EnsembleDriver driver(small_profiles(), burst_stream(jobs, 90.0, stream_seed),
                        exp::policy_factory(kind, wire_options), site, options);
  return driver.run();
}

// ---------------------------------------------------------------------------
// The seeded tenant→shard map

TEST(TenantShardMap, GoldenPartitionNeverChanges) {
  // Recorded trajectories (BENCH_scale.json) replay onto identical
  // partitions only if the default-seed map stays exactly this. If this test
  // fails, the map changed — that is a breaking change to recorded runs, not
  // a tweak.
  const std::uint64_t seed = 0x5A17D5ull;  // EnsembleOptions default
  const std::uint32_t expect4[16] = {2, 0, 1, 0, 3, 2, 1, 2,
                                     0, 3, 0, 3, 0, 3, 3, 2};
  const std::uint32_t expect3[16] = {2, 0, 1, 1, 2, 1, 0, 0,
                                     0, 0, 2, 0, 2, 2, 1, 2};
  const std::uint32_t expect2[16] = {0, 0, 1, 0, 1, 0, 1, 0,
                                     0, 1, 0, 1, 0, 1, 1, 0};
  for (std::uint32_t job = 0; job < 16; ++job) {
    EXPECT_EQ(tenant_shard(seed, 4, job), expect4[job]) << "job " << job;
    EXPECT_EQ(tenant_shard(seed, 3, job), expect3[job]) << "job " << job;
    EXPECT_EQ(tenant_shard(seed, 2, job), expect2[job]) << "job " << job;
  }
}

TEST(TenantShardMap, BasicProperties) {
  // shards <= 1 pins everything to shard 0; otherwise the map stays in
  // range, is pure in its inputs, and actually uses every shard over a
  // modest job population (it is a hash, not a modulo of the job id).
  for (std::uint32_t job = 0; job < 8; ++job) {
    EXPECT_EQ(tenant_shard(99, 0, job), 0u);
    EXPECT_EQ(tenant_shard(99, 1, job), 0u);
  }
  std::vector<std::uint32_t> population(4, 0);
  for (std::uint32_t job = 0; job < 64; ++job) {
    const std::uint32_t shard = tenant_shard(7, 4, job);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, tenant_shard(7, 4, job));  // pure
    ++population[shard];
  }
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(population[shard], 0u) << "shard " << shard << " never used";
  }
  // A different seed produces a different partition (some job moves).
  bool moved = false;
  for (std::uint32_t job = 0; job < 64 && !moved; ++job) {
    moved = tenant_shard(7, 4, job) != tenant_shard(8, 4, job);
  }
  EXPECT_TRUE(moved);
}

// ---------------------------------------------------------------------------
// Differential: windowed/sharded vs the sequential reference

TEST(ShardedDriver, WindowedMatchesSequentialReference) {
  // shards == 0 is the historical event-at-a-time loop; every windowed
  // configuration must reproduce its report byte-for-byte (operator== plus
  // the rendered fixed-width table).
  const sim::CloudConfig site = quiet_site();
  for (ArbiterStrategy strategy :
       {ArbiterStrategy::DemandWeighted, ArbiterStrategy::StaticFairShare}) {
    EnsembleOptions options;
    options.strategy = strategy;
    options.site_cap = 6;
    options.dedicated_baseline = false;
    const EnsembleReport reference =
        run_report(site, options, /*shards=*/0, /*threads=*/1,
                   exp::PolicyKind::ReactiveConserving, /*jobs=*/6, 13);
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      for (std::uint32_t threads : {1u, 2u}) {
        SCOPED_TRACE("strategy=" + std::string(strategy_name(strategy)) +
                     " shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        const EnsembleReport sharded =
            run_report(site, options, shards, threads,
                       exp::PolicyKind::ReactiveConserving, 6, 13);
        EXPECT_TRUE(sharded == reference);
        EXPECT_EQ(sharded.render(), reference.render());
      }
    }
  }
}

TEST(ShardedDriver, InvariantToShardCountUnderFaultChaos) {
  // The hostile fault model keeps InstanceCrash / fault-mode InstanceReady
  // events (and crash-driven retirement churn) in play; reports must still
  // be independent of the execution configuration, across seeds.
  const sim::CloudConfig site = crashy_site();
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = 6;
  options.dedicated_baseline = false;
  for (std::uint64_t seed : {21ull, 22ull}) {
    SCOPED_TRACE("stream_seed=" + std::to_string(seed));
    const EnsembleReport reference = run_report(
        site, options, 0, 1, exp::PolicyKind::PureReactive, 6, seed);
    EXPECT_GT(reference.total_task_faults + reference.total_instance_crashes,
              0u)
        << "fault model never engaged — the chaos differential is vacuous";
    for (std::uint32_t shards : {1u, 3u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const EnsembleReport sharded = run_report(
          site, options, shards, 2, exp::PolicyKind::PureReactive, 6, seed);
      EXPECT_TRUE(sharded == reference);
      EXPECT_EQ(sharded.render(), reference.render());
    }
  }
}

TEST(MemoryDemandSignal, EngineSurfacesProjectedFootprint) {
  // The satellite plumbing under memory_aware_demand: a WIRE tenant with
  // report_memory_demand on must surface a nonzero projected footprint
  // through JobEngine::requested_mem_mb on a memory-enabled site; with the
  // flag off the signal stays hard zero (byte-identical baselines).
  sim::CloudConfig site = quiet_site();
  site.memory.instance_mem_mb = 4096.0;
  site.memory.noise_sigma = 0.2;
  const dag::Workflow wf =
      workload::make_workflow(workload::tpch6_profile(workload::Scale::Small),
                              7);
  for (const bool report : {true, false}) {
    core::WireOptions wire;
    wire.report_memory_demand = report;
    core::WireController policy(wire);
    sim::RunOptions options;
    options.initial_instances = 1;
    options.seed = 5;
    sim::JobEngine engine(wf, policy, site, options);
    engine.start();
    double peak_mem_demand = 0.0;
    while (!engine.done()) {
      engine.step();
      peak_mem_demand = std::max(peak_mem_demand, engine.requested_mem_mb());
    }
    if (report) {
      EXPECT_GT(peak_mem_demand, 0.0);
    } else {
      EXPECT_EQ(peak_mem_demand, 0.0);
    }
  }
}

TEST(MemoryDemandSignal, TightProvisioningSlowdownStaysBounded) {
  // Regression pin for the per-wave footprint bid: the controller used to
  // report the memory of the WHOLE upcoming queue, so on a tightly
  // provisioned site every tenant's bid ballooned to many times its
  // concurrent wave and the memory-aware lift starved the stream (bench
  // mean slowdown 3.90x). Bidding only the wave that can actually run at the
  // planned pool size brings the same cell under 1.5x. This replicates the
  // bench_ensemble tight cell exactly (mem_factor 0.75, demand-weighted WIRE
  // tenants, 50-job Poisson stream, seed 1905), sharded for wall-clock —
  // shard invariance is pinned byte-for-byte by the suites above.
  const std::vector<workload::WorkflowProfile> catalogue = {
      workload::tpch1_profile(workload::Scale::Small),
      workload::tpch6_profile(workload::Scale::Small),
      workload::pagerank_profile(workload::Scale::Small),
      workload::epigenomics_profile(workload::Scale::Small)};
  double need_mb = 0.0;
  for (const workload::WorkflowProfile& profile : catalogue) {
    for (const workload::StageProfile& sp : profile.stages) {
      need_mb = std::max(need_mb, sp.mean_peak_mem_mb);
    }
  }
  PoissonArrivalConfig stream;
  stream.mean_interarrival_seconds = 300.0;
  stream.job_count = 50;
  stream.seed = 1905;
  const ArrivalProcess arrivals =
      ArrivalProcess::poisson(stream, catalogue.size());

  sim::CloudConfig site = exp::paper_cloud(900.0);
  site.memory.instance_mem_mb =
      0.75 * need_mb * static_cast<double>(site.slots_per_instance);
  site.memory.noise_sigma = 0.2;
  core::WireOptions wire_options;
  wire_options.report_memory_demand = true;

  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = site.max_instances;
  options.memory_aware_demand = true;
  options.shards = 4;
  options.threads = 4;
  EnsembleDriver driver(catalogue, arrivals,
                        exp::sharded_policy_factory(exp::PolicyKind::Wire,
                                                    wire_options),
                        site, options);
  const EnsembleReport report = driver.run();
  EXPECT_EQ(report.jobs.size(), 50u);
  EXPECT_LT(report.mean_slowdown, 1.5);
}

TEST(ShardedDriver, MemoryAwareDemandMatchesAcrossShards) {
  // Memory-aware arbitration (projected-footprint bids lifted into instance
  // counts) rides the same two-phase demand gather; the flag must not break
  // shard invariance. WIRE tenants report the projected footprint.
  sim::CloudConfig site = quiet_site();
  site.memory.instance_mem_mb = 4096.0;
  site.memory.noise_sigma = 0.2;
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = 6;
  options.dedicated_baseline = false;
  options.memory_aware_demand = true;
  core::WireOptions wire;
  wire.report_memory_demand = true;
  const EnsembleReport reference = run_report(
      site, options, 0, 1, exp::PolicyKind::Wire, 3, 13, wire);
  for (std::uint32_t shards : {1u, 2u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const EnsembleReport sharded = run_report(
        site, options, shards, 2, exp::PolicyKind::Wire, 3, 13, wire);
    EXPECT_TRUE(sharded == reference);
    EXPECT_EQ(sharded.render(), reference.render());
  }
}

TEST(ShardedDriver, BanditSelectorMatchesAcrossShards) {
  // Selector-on cells: every WIRE tenant runs its own BanditSelector (all
  // seeded from the same bandit.seed — the sharded factory mints tenants
  // concurrently, so per-tenant state cannot depend on mint order), and the
  // arm switches it drives through TaskPredictor::reconfigure must stay
  // invariant to the execution configuration. Aggressive exploration plus a
  // short switch period keeps arm churn constant; the crashy site keeps the
  // fault stream in play under that churn.
  core::WireOptions wire;
  wire.bandit.arms = 4;
  wire.bandit.seed = 77;
  wire.bandit.epsilon0 = 1.0;
  wire.bandit.decay = 0.0;
  wire.bandit.switch_period_ticks = 2;
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = 6;
  options.dedicated_baseline = false;
  for (const bool chaos : {false, true}) {
    SCOPED_TRACE(chaos ? "site=crashy" : "site=quiet");
    const sim::CloudConfig site = chaos ? crashy_site() : quiet_site();
    const EnsembleReport reference =
        run_report(site, options, 0, 1, exp::PolicyKind::Wire, 4, 13, wire);
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const EnsembleReport sharded = run_report(
          site, options, shards, 2, exp::PolicyKind::Wire, 4, 13, wire);
      EXPECT_TRUE(sharded == reference);
      EXPECT_EQ(sharded.render(), reference.render());
    }
  }
}

TEST(ShardedDriver, ParallelDedicatedBaselineMatchesSequential) {
  // A shard-aware factory lets dedicated-baseline replays run per shard in
  // parallel; slowdown/dedicated-makespan columns must match the sequential
  // reference exactly (per-shard arenas cannot leak into results).
  const sim::CloudConfig site = quiet_site();
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::StaticFairShare;
  options.site_cap = 6;
  options.dedicated_baseline = true;
  const auto make_driver = [&](std::uint32_t shards, std::uint32_t threads) {
    EnsembleOptions o = options;
    o.shards = shards;
    o.threads = threads;
    return EnsembleDriver(
        small_profiles(), burst_stream(5, 120.0),
        exp::sharded_policy_factory(exp::PolicyKind::ReactiveConserving), site,
        o);
  };
  EnsembleDriver sequential = make_driver(0, 1);
  const EnsembleReport reference = sequential.run();
  for (const JobOutcome& j : reference.jobs) {
    ASSERT_GT(j.dedicated_makespan_seconds, 0.0);
  }
  EnsembleDriver parallel = make_driver(4, 2);
  const EnsembleReport sharded = parallel.run();
  EXPECT_TRUE(sharded == reference);
  EXPECT_EQ(sharded.render(), reference.render());
}

TEST(ShardedDriver, CapacityInvariantHoldsAtSerialPoints) {
  // Under sharding the site listener fires at serial events only; the
  // capacity invariant must hold at every one of them.
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = 4;
  options.dedicated_baseline = false;
  options.shards = 4;
  options.threads = 2;
  EnsembleDriver driver(small_profiles(), burst_stream(5, 60.0),
                        exp::policy_factory(exp::PolicyKind::PureReactive),
                        quiet_site(), options);
  std::size_t samples = 0;
  driver.set_site_listener([&](const SiteSample& sample) {
    ++samples;
    ASSERT_LE(sample.live_total, sample.site_cap);
    std::uint32_t share_total = 0;
    for (std::size_t i = 0; i < sample.jobs.size(); ++i) {
      ASSERT_GE(sample.shares[i], sample.live[i]);
      share_total += sample.shares[i];
    }
    ASSERT_LE(share_total, sample.site_cap);
  });
  const EnsembleReport report = driver.run();
  EXPECT_EQ(report.jobs.size(), 5u);
  EXPECT_GT(samples, report.jobs.size());  // many serial events per job
}

/// One ensemble run with every tenant wrapped in a BudgetPolicy and the
/// budget threaded through EnsembleOptions (the demand-signal seed for
/// waiting tenants plus the report columns).
EnsembleReport run_budget_report(const sim::CloudConfig& site,
                                 EnsembleOptions options, std::uint32_t shards,
                                 std::uint32_t threads, double budget_units,
                                 std::uint32_t jobs,
                                 std::uint64_t stream_seed) {
  options.shards = shards;
  options.threads = threads;
  options.budget_units = budget_units;
  policies::BudgetOptions budget;
  budget.budget_units = budget_units;
  EnsembleDriver driver(
      small_profiles(), burst_stream(jobs, 90.0, stream_seed),
      exp::budget_policy_factory(exp::PolicyKind::ReactiveConserving, budget),
      site, options);
  return driver.run();
}

TEST(BudgetArbitration, ShardInvariantAcrossBudgetTightness) {
  // Budget-weighted arbitration rides the same two-phase gather/merge as the
  // other strategies, so sharded runs must reproduce the sequential reference
  // byte-for-byte — with budgets tight (tenants hit exhaustion and bid their
  // way down to the floor) and ample (weights saturate, never bind).
  const sim::CloudConfig site = quiet_site();
  for (const double budget_units : {3.0, 1e6}) {
    EnsembleOptions options;
    options.strategy = ArbiterStrategy::BudgetWeighted;
    options.site_cap = 6;
    options.dedicated_baseline = false;
    const EnsembleReport reference =
        run_budget_report(site, options, /*shards=*/0, /*threads=*/1,
                          budget_units, /*jobs=*/6, 13);
    // The budget columns and the render's budget line are live.
    for (const JobOutcome& j : reference.jobs) {
      EXPECT_EQ(j.budget_units, budget_units);
      EXPECT_EQ(j.over_budget_units,
                std::max(0.0, j.cost_units - j.budget_units));
    }
    EXPECT_NE(reference.render().find("budget:"), std::string::npos);
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("budget=" + std::to_string(budget_units) +
                   " shards=" + std::to_string(shards));
      const EnsembleReport sharded = run_budget_report(
          site, options, shards, /*threads=*/2, budget_units, 6, 13);
      EXPECT_TRUE(sharded == reference);
      EXPECT_EQ(sharded.render(), reference.render());
    }
  }
}

TEST(BudgetArbitration, ShardInvariantUnderFaultChaos) {
  // Tight budgets under the hostile fault model: exhaustion, crash-driven
  // retirement churn and budget-weighted bidding together must stay
  // independent of the execution configuration, across seeds.
  const sim::CloudConfig site = crashy_site();
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::BudgetWeighted;
  options.site_cap = 6;
  options.dedicated_baseline = false;
  for (std::uint64_t seed : {21ull, 29ull}) {
    SCOPED_TRACE("stream_seed=" + std::to_string(seed));
    const EnsembleReport reference =
        run_budget_report(site, options, 0, 1, /*budget_units=*/4.0, 6, seed);
    EXPECT_GT(reference.total_task_faults + reference.total_instance_crashes,
              0u)
        << "fault model never engaged — the chaos differential is vacuous";
    for (std::uint32_t shards : {1u, 3u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const EnsembleReport sharded =
          run_budget_report(site, options, shards, 2, 4.0, 6, seed);
      EXPECT_TRUE(sharded == reference);
      EXPECT_EQ(sharded.render(), reference.render());
    }
  }
}

TEST(BudgetArbitration, BudgetOffKeepsBaselineBytes) {
  // The budget-off identity contract at the ensemble layer: a zero budget
  // through the budget factory (and EnsembleOptions left at its 0 default)
  // must reproduce the plain factory's report bytes, sharded or not.
  const sim::CloudConfig site = quiet_site();
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = 6;
  options.dedicated_baseline = false;
  const EnsembleReport reference = run_report(
      site, options, 0, 1, exp::PolicyKind::ReactiveConserving, 6, 13);
  EXPECT_EQ(reference.render().find("budget:"), std::string::npos);
  for (std::uint32_t shards : {0u, 2u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const EnsembleReport off = run_budget_report(
        site, options, shards, shards == 0 ? 1 : 2, /*budget_units=*/0.0, 6,
        13);
    EXPECT_TRUE(off == reference);
    EXPECT_EQ(off.render(), reference.render());
  }
}

TEST(ShardedChaos, EnvironmentSeedRuns) {
  // CI chaos: WIRE_FUZZ_SEED (echoed in the job log) picks the arrival
  // stream seed for one extra differential sweep under the hostile fault
  // model.
  const char* env = std::getenv("WIRE_FUZZ_SEED");
  if (env == nullptr) GTEST_SKIP() << "WIRE_FUZZ_SEED not set";
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("WIRE_FUZZ_SEED=" + std::to_string(seed));
  std::printf("running sharded differential with WIRE_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = 6;
  options.dedicated_baseline = false;
  const EnsembleReport reference = run_report(
      crashy_site(), options, 0, 1, exp::PolicyKind::PureReactive, 6, seed);
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const EnsembleReport sharded = run_report(
        crashy_site(), options, shards, 2, exp::PolicyKind::PureReactive, 6,
        seed);
    EXPECT_TRUE(sharded == reference);
    EXPECT_EQ(sharded.render(), reference.render());
  }
}

}  // namespace
}  // namespace wire::ensemble
