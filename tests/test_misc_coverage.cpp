// Focused tests for subtle behaviours added during development: OGD
// coefficient preservation across normalization rescales, the steering
// policy's planned-size output, and the workload profile registry.
#include <gtest/gtest.h>

#include <cmath>

#include "core/steering.h"
#include "predict/ogd.h"
#include "util/check.h"
#include "workload/profiles.h"

namespace wire {
namespace {

TEST(OgdRescale, FittedFunctionPreservedAcrossScaleGrowth) {
  // Train on small inputs, then feed a training set with a 50x larger input:
  // the internal normalization must rescale without changing the fitted
  // function at the moment of the rescale.
  predict::OgdModel model;
  std::vector<predict::TrainingPoint> small = {
      {1.0, 2.0}, {2.0, 3.0}, {4.0, 5.0}};
  for (int i = 0; i < 300; ++i) model.update(small);
  const double before_a0 = model.alpha0();
  const double before_a1 = model.alpha1();
  const double before_pred = model.predict(3.0);

  // One update with a far larger point triggers the rescale. Raw-space
  // coefficients must match the pre-rescale values up to the single
  // gradient step's movement.
  std::vector<predict::TrainingPoint> grown = small;
  grown.push_back({200.0, 201.0});
  model.update(grown);
  EXPECT_NEAR(model.alpha0(), before_a0, 0.35 + std::abs(before_a0) * 0.5);
  EXPECT_NEAR(model.alpha1(), before_a1, 0.5);
  // Predictions in the old range stay sane (not zeroed or exploded).
  EXPECT_GT(model.predict(3.0), 0.2 * before_pred);
  EXPECT_LT(model.predict(3.0), 5.0 * before_pred);

  // And continued training on the grown set converges to its line t=d+1.
  for (int i = 0; i < 2000; ++i) model.update(grown);
  EXPECT_NEAR(model.predict(100.0), 101.0, 8.0);
}

TEST(Steering, PlannedSizeOutParameterMatchesAlgorithm3) {
  core::LookaheadResult lookahead;
  for (int i = 0; i < 8; ++i) {
    lookahead.upcoming.push_back(
        core::UpcomingTask{1800.0, static_cast<dag::TaskId>(i), false});
  }
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 8;
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;

  std::uint32_t planned = 0;
  core::steer(lookahead, snap, config, &planned);
  std::vector<double> occupancy(8, 1800.0);
  EXPECT_EQ(planned, core::resize_pool(occupancy, 900.0, 4));

  // Empty load with incomplete tasks: the minimal pool.
  core::LookaheadResult empty;
  core::steer(empty, snap, config, &planned);
  EXPECT_EQ(planned, 1u);
  snap.incomplete_tasks = 0;
  core::steer(empty, snap, config, &planned);
  EXPECT_EQ(planned, 0u);
}

TEST(Steering, OnSlotPinningRaisesThePlan) {
  // Four short on-slot tasks vs four short queued tasks: the on-slot group
  // pins a full instance; the queued group packs to one anyway — but mixing
  // them shows the pin inflating only the on-slot contribution.
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 8;

  core::LookaheadResult queued_only;
  for (int i = 0; i < 8; ++i) {
    queued_only.upcoming.push_back(
        core::UpcomingTask{30.0, static_cast<dag::TaskId>(i), false});
  }
  std::uint32_t planned_queued = 0;
  core::steer(queued_only, snap, config, &planned_queued);

  core::LookaheadResult pinned;
  for (int i = 0; i < 8; ++i) {
    // First four are on slots: each counts a full charging unit.
    pinned.upcoming.push_back(
        core::UpcomingTask{30.0, static_cast<dag::TaskId>(i), i < 4});
  }
  std::uint32_t planned_pinned = 0;
  core::steer(pinned, snap, config, &planned_pinned);
  EXPECT_GE(planned_pinned, planned_queued);
  EXPECT_EQ(planned_queued, 1u);
}

TEST(Profiles, RegistryOrderAndNaming) {
  const auto all = workload::table1_profiles();
  const char* expected[] = {"Genome S",   "Genome L",   "TPCH-1 S",
                            "TPCH-1 L",   "TPCH-6 S",   "TPCH-6 L",
                            "PageRank S", "PageRank L"};
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_FALSE(all[i].stages.empty());
    EXPECT_FALSE(all[i].framework.empty());
  }
  EXPECT_STREQ(workload::scale_name(workload::Scale::Small), "S");
  EXPECT_STREQ(workload::scale_name(workload::Scale::Large), "L");
}

TEST(Profiles, StageLinkDisciplineHolds) {
  for (const auto& profile : workload::table1_profiles()) {
    EXPECT_EQ(profile.stages.front().link, workload::StageLink::Source)
        << profile.name;
    for (std::size_t s = 1; s < profile.stages.size(); ++s) {
      EXPECT_NE(profile.stages[s].link, workload::StageLink::Source)
          << profile.name << " stage " << s;
      EXPECT_GT(profile.stages[s].mean_exec_seconds, 0.0);
      EXPECT_GT(profile.stages[s].stage_input_mb, 0.0);
    }
  }
}

}  // namespace
}  // namespace wire
