// Tests for the seeded RNG wrapper: determinism, distribution sanity, and
// seed-derivation independence — the properties the experiment harness's
// reproducibility rests on.
#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wire::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 6));
  EXPECT_EQ(seen, (std::set<std::int64_t>{3, 4, 5, 6}));
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.exponential(5.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.2);
  EXPECT_GE(rs.min(), 0.0);
}

TEST(Rng, LognormalMedianApproximatelyCorrect) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.lognormal_median(3.0, 0.5));
  }
  EXPECT_NEAR(median(samples), 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.lognormal_median(-1.0, 0.5), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
}

TEST(ZipfSampler, RankOneIsMostProbable) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(19);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], counts[10]);
  EXPECT_EQ(counts[0], 0);  // ranks start at 1
}

TEST(ZipfSampler, SingleElementAlwaysOne) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(DeriveSeed, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    seeds.insert(derive_seed(42, s));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

}  // namespace
}  // namespace wire::util
