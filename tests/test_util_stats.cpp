// Unit tests for the statistics primitives (medians, quantiles, moving
// medians, CDFs) that the predictor and the metric collectors rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace wire::util {
namespace {

TEST(Median, OddSample) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Median, EvenSampleAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, SingleElement) {
  EXPECT_DOUBLE_EQ(median({7.5}), 7.5);
}

TEST(Median, RobustToOutliers) {
  // The paper prefers the median over the mean for skewed (Zipfian-like)
  // samples: one huge outlier must not move the estimate.
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 10000.0, 2.5}), 2.5);
}

TEST(Median, EmptySampleThrows) {
  EXPECT_THROW(median({}), ContractViolation);
}

TEST(Quantile, MatchesOrderStatistics) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.3), 3.0);
}

TEST(MeanStddev, Basics) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_THROW(rs.mean(), ContractViolation);
  EXPECT_THROW(rs.stddev(), ContractViolation);
}

TEST(MovingMedian, WindowSlides) {
  MovingMedian mm(3);
  EXPECT_FALSE(mm.value().has_value());
  mm.add(1.0);
  EXPECT_DOUBLE_EQ(*mm.value(), 1.0);
  mm.add(100.0);
  EXPECT_DOUBLE_EQ(*mm.value(), 50.5);
  mm.add(2.0);
  EXPECT_DOUBLE_EQ(*mm.value(), 2.0);
  mm.add(3.0);  // evicts 1.0; window = {100, 2, 3}
  EXPECT_DOUBLE_EQ(*mm.value(), 3.0);
}

TEST(MovingMedian, UnboundedWindowKeepsEverything) {
  MovingMedian mm(0);
  for (int i = 1; i <= 101; ++i) mm.add(static_cast<double>(i));
  EXPECT_EQ(mm.size(), 101u);
  EXPECT_DOUBLE_EQ(*mm.value(), 51.0);
}

TEST(CdfBuilder, FractionAtMost) {
  CdfBuilder cdf;
  cdf.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(10.0), 1.0);
}

TEST(CdfBuilder, SymmetricBand) {
  CdfBuilder cdf;
  cdf.add_all({-2.0, -0.5, 0.0, 0.4, 3.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_within(0.5), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_within(0.1), 0.2);
}

TEST(CdfBuilder, CurveIsMonotone) {
  CdfBuilder cdf;
  for (int i = 0; i < 100; ++i) cdf.add(std::sin(i * 0.7) * 10.0);
  const auto curve = cdf.curve(-10.0, 10.0, 21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(CdfBuilder, InterleavedAddAndQuery) {
  CdfBuilder cdf;
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 1.0);
  cdf.add(5.0);  // re-sorting must happen lazily after the new sample
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.5);
}

}  // namespace
}  // namespace wire::util
