// Tests for the data-transfer models: the fixed-duration (uncontended) path,
// the processor-sharing shared-bandwidth path, and the per-dispatch
// scheduling overhead.
#include <gtest/gtest.h>

#include "policies/baselines.h"
#include "sim/driver.h"
#include "workload/generators.h"

namespace wire::sim {
namespace {

using dag::TaskId;

/// Single stage of `n` tasks with the given input size, no output, fixed
/// exec.
dag::Workflow make_transfer_stage(std::uint32_t n, double input_mb,
                                  double exec_s = 10.0) {
  dag::WorkflowBuilder builder("transfer");
  const auto s0 = builder.add_stage("xfer");
  for (std::uint32_t i = 0; i < n; ++i) {
    builder.add_task(s0, "t" + std::to_string(i), input_mb, 0.0, exec_s, {});
  }
  return builder.build();
}

CloudConfig base_config(std::uint32_t slots) {
  CloudConfig config;
  config.lag_seconds = 1000.0;  // keep control ticks out of the way
  config.charging_unit_seconds = 10000.0;
  config.slots_per_instance = slots;
  config.max_instances = 4;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 100.0;
  return config;
}

RunResult run_static(const dag::Workflow& wf, const CloudConfig& config,
                     std::uint32_t instances = 1) {
  policies::StaticPolicy policy(instances);
  RunOptions options;
  options.initial_instances = instances;
  return simulate(wf, policy, config, options);
}

TEST(Transfers, UncontendedDurationIsPayloadOverLink) {
  // 200 MB at 100 MB/s: 2 s transfer-in, then 10 s exec.
  const dag::Workflow wf = make_transfer_stage(1, 200.0);
  const RunResult r = run_static(wf, base_config(1));
  EXPECT_DOUBLE_EQ(r.task_records[0].transfer_in_time, 2.0);
  EXPECT_DOUBLE_EQ(r.makespan, 12.0);
}

TEST(Transfers, LatencyAppliesOnlyToNonZeroPayloads) {
  CloudConfig config = base_config(1);
  config.variability.transfer_latency_seconds = 0.5;
  const dag::Workflow with_data = make_transfer_stage(1, 100.0);
  EXPECT_DOUBLE_EQ(run_static(with_data, config).task_records[0]
                       .transfer_in_time,
                   1.5);
  const dag::Workflow no_data = make_transfer_stage(1, 0.0);
  EXPECT_DOUBLE_EQ(run_static(no_data, config).task_records[0]
                       .transfer_in_time,
                   0.0);
}

TEST(Transfers, SharedFabricSplitsBandwidthEvenly) {
  // Two concurrent 100 MB transfers on a 100 MB/s aggregate: each runs at
  // 50 MB/s -> 2 s each (vs 1 s uncontended).
  CloudConfig config = base_config(2);
  config.variability.aggregate_bandwidth_mb_per_s = 100.0;
  const dag::Workflow wf = make_transfer_stage(2, 100.0);
  const RunResult r = run_static(wf, config);
  EXPECT_NEAR(r.task_records[0].transfer_in_time, 2.0, 1e-6);
  EXPECT_NEAR(r.task_records[1].transfer_in_time, 2.0, 1e-6);
}

TEST(Transfers, PerLinkCapBindsWhenFabricIsWide) {
  // Aggregate 1000 MB/s but link 100 MB/s: a single 100 MB transfer still
  // takes 1 s.
  CloudConfig config = base_config(1);
  config.variability.aggregate_bandwidth_mb_per_s = 1000.0;
  const dag::Workflow wf = make_transfer_stage(1, 100.0);
  const RunResult r = run_static(wf, config);
  EXPECT_NEAR(r.task_records[0].transfer_in_time, 1.0, 1e-6);
}

TEST(Transfers, StaggeredTransfersSpeedUpWhenPeersFinish) {
  // Tasks A (100 MB) and B (300 MB) start together on a 200 MB/s aggregate
  // with 200 MB/s links. Shared phase: each at 100 MB/s; A finishes at 1 s
  // (100 MB done; B has 100 of 300). B then runs alone at 200 MB/s:
  // remaining 200 MB -> 1 s. B's transfer: 2 s total.
  CloudConfig config = base_config(2);
  config.variability.bandwidth_mb_per_s = 200.0;
  config.variability.aggregate_bandwidth_mb_per_s = 200.0;
  dag::WorkflowBuilder builder("staggered");
  const auto s0 = builder.add_stage("xfer");
  builder.add_task(s0, "a", 100.0, 0.0, 10.0, {});
  builder.add_task(s0, "b", 300.0, 0.0, 10.0, {});
  const dag::Workflow wf = builder.build();
  const RunResult r = run_static(wf, config);
  EXPECT_NEAR(r.task_records[0].transfer_in_time, 1.0, 1e-6);
  EXPECT_NEAR(r.task_records[1].transfer_in_time, 2.0, 1e-6);
}

TEST(Transfers, ContentionMakesFullSiteSlowerThanLinkSpeed) {
  // 16 tasks x 100 MB on 4 instances (16 slots), aggregate 400 MB/s: all
  // sixteen start together at 25 MB/s -> 4 s transfer phase. Uncontended
  // each would take 1 s.
  CloudConfig config = base_config(4);
  config.variability.aggregate_bandwidth_mb_per_s = 400.0;
  const dag::Workflow wf = make_transfer_stage(16, 100.0);
  const RunResult r = run_static(wf, config, 4);
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_NEAR(rec.transfer_in_time, 4.0, 1e-6);
  }
  EXPECT_NEAR(r.makespan, 14.0, 1e-6);
}

TEST(Transfers, DispatchOverheadDelaysTransferStart) {
  CloudConfig config = base_config(1);
  config.dispatch_overhead_seconds = 7.0;
  const dag::Workflow wf = make_transfer_stage(1, 100.0);
  const RunResult r = run_static(wf, config);
  // Occupancy = 7 s overhead + 1 s transfer + 10 s exec.
  EXPECT_DOUBLE_EQ(r.task_records[0].transfer_in_time, 8.0);
  EXPECT_DOUBLE_EQ(r.makespan, 18.0);
}

TEST(Transfers, DispatchOverheadAppliesUnderSharedBandwidthToo) {
  CloudConfig config = base_config(1);
  config.dispatch_overhead_seconds = 7.0;
  config.variability.aggregate_bandwidth_mb_per_s = 100.0;
  const dag::Workflow wf = make_transfer_stage(1, 100.0);
  const RunResult r = run_static(wf, config);
  EXPECT_NEAR(r.task_records[0].transfer_in_time, 8.0, 1e-6);
}

TEST(Transfers, SharedModeCompletesEveryTaskUnderChurn) {
  // Elastic policy + shared bandwidth + releases: transfers of killed tasks
  // must be purged, restarted tasks retransfer, and the run still finishes.
  CloudConfig config = base_config(4);
  config.lag_seconds = 5.0;
  config.charging_unit_seconds = 20.0;
  config.max_instances = 6;
  config.variability.aggregate_bandwidth_mb_per_s = 150.0;
  const dag::Workflow wf = make_transfer_stage(24, 80.0, 15.0);
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.initial_instances = 1;
  const RunResult r = simulate(wf, policy, config, options);
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, TaskPhase::Completed);
    EXPECT_GT(rec.transfer_in_time, 0.0);
  }
}

TEST(Transfers, NoiseMakesTransfersVary) {
  CloudConfig config = base_config(4);
  config.variability.transfer_noise_sigma = 0.4;
  config.variability.aggregate_bandwidth_mb_per_s = 1000.0;
  const dag::Workflow wf = make_transfer_stage(8, 100.0);
  RunOptions options;
  options.seed = 9;
  options.initial_instances = 2;
  policies::StaticPolicy policy(2);
  const RunResult r = simulate(wf, policy, config, options);
  double lo = 1e18, hi = 0.0;
  for (const TaskRuntime& rec : r.task_records) {
    lo = std::min(lo, rec.transfer_in_time);
    hi = std::max(hi, rec.transfer_in_time);
  }
  EXPECT_GT(hi, lo * 1.05);  // the noise is visible
}

}  // namespace
}  // namespace wire::sim
