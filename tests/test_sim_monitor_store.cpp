// Property/fuzz suite for the incremental MonitorStore (sim/monitor_store.*).
//
// The store is correct iff, at any observation point, the snapshot it
// maintains in O(changes) is field-for-field identical to the from-scratch
// O(total tasks) reconstruction (`JobEngine::rebuild_snapshot`, the seed
// implementation kept as the reference path). These tests drive fuzzed
// random_layered() runs through a chaos policy that restarts tasks
// (immediate releases), drains instances at charge boundaries, cancels
// drains, and suffers external cap changes — and assert the equivalence at
// every control tick *and* after every simulation event, plus the delta
// journal's contract (exact, sorted, deduplicated, derivable from
// consecutive snapshots). A final set of runs asserts that full paper-scale
// results are byte-stable and that peeking the monitor never perturbs a run.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "exp/settings.h"
#include "predict/memory_predictor.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "sim/monitor.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::sim {
namespace {

CloudConfig fuzz_cloud() {
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 8;
  return config;
}

void expect_observation_eq(const TaskObservation& got,
                           const TaskObservation& want) {
  EXPECT_EQ(static_cast<int>(got.phase), static_cast<int>(want.phase));
  EXPECT_EQ(got.input_mb, want.input_mb);
  EXPECT_EQ(got.ready_since, want.ready_since);
  EXPECT_EQ(got.occupancy_start, want.occupancy_start);
  EXPECT_EQ(got.elapsed, want.elapsed);
  EXPECT_EQ(got.elapsed_exec, want.elapsed_exec);
  EXPECT_EQ(got.transfer_in_time, want.transfer_in_time);
  EXPECT_EQ(got.instance, want.instance);
  EXPECT_EQ(got.exec_time, want.exec_time);
  EXPECT_EQ(got.transfer_time, want.transfer_time);
  EXPECT_EQ(got.attempts, want.attempts);
  EXPECT_EQ(got.failed_attempts, want.failed_attempts);
  EXPECT_EQ(got.last_failed_elapsed, want.last_failed_elapsed);
}

void expect_instance_eq(const InstanceObservation& got,
                        const InstanceObservation& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.provisioning, want.provisioning);
  EXPECT_EQ(got.ready_at, want.ready_at);
  EXPECT_EQ(got.time_to_next_charge, want.time_to_next_charge);
  EXPECT_EQ(got.draining, want.draining);
  EXPECT_EQ(got.revoking, want.revoking);
  EXPECT_EQ(got.revoke_at, want.revoke_at);
  EXPECT_EQ(got.running_tasks, want.running_tasks);
  EXPECT_EQ(got.free_slots, want.free_slots);
}

/// Field-for-field equality of the observation surface. The delta journal is
/// deliberately excluded: the reference rebuild carries an empty, non-exact
/// delta by contract.
void expect_snapshot_eq(const MonitorSnapshot& got,
                        const MonitorSnapshot& want) {
  EXPECT_EQ(got.now, want.now);
  EXPECT_EQ(got.incomplete_tasks, want.incomplete_tasks);
  EXPECT_EQ(got.pool_cap, want.pool_cap);
  EXPECT_EQ(got.ready_queue, want.ready_queue);
  ASSERT_EQ(got.tasks.size(), want.tasks.size());
  for (std::size_t t = 0; t < got.tasks.size(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    expect_observation_eq(got.tasks[t], want.tasks[t]);
  }
  ASSERT_EQ(got.instances.size(), want.instances.size());
  for (std::size_t i = 0; i < got.instances.size(); ++i) {
    SCOPED_TRACE("instance row " + std::to_string(i));
    expect_instance_eq(got.instances[i], want.instances[i]);
  }
}

/// A policy that (a) cross-checks every snapshot it receives against the
/// from-scratch rebuild and the delta contract, and (b) issues hostile
/// commands: immediate releases (task restarts), charge-boundary drains,
/// drain cancellations, and bursts of growth. `benign()` switches it to a
/// plain grow-to-3 mode so a fuzz run is guaranteed to finish.
class ChaosProbePolicy final : public ScalingPolicy {
 public:
  explicit ChaosProbePolicy(std::uint64_t seed) : rng_(seed) {}

  void bind(const JobEngine* engine) { engine_ = engine; }
  void benign() { benign_ = true; }
  std::uint32_t ticks() const { return ticks_; }
  std::uint32_t immediate_releases() const { return immediate_releases_; }
  std::uint32_t drains() const { return drains_; }
  std::uint64_t predictor_refits() const { return predictor_refits_; }
  const predict::TaskPredictor& predictor() const { return *predictor_; }

  std::string name() const override { return "chaos-probe"; }

  void on_run_start(const dag::Workflow& workflow,
                    const CloudConfig& /*config*/) override {
    workflow_ = &workflow;
    predictor_ = std::make_unique<predict::TaskPredictor>(workflow);
    predictor_refits_ = 0;
    // Baseline for the first delta: the engine's bootstrap state (roots
    // fired at t = 0, nothing dispatched, no instances journaled yet).
    prev_phase_.assign(workflow.task_count(), TaskPhase::Pending);
    for (dag::TaskId t = 0;
         t < static_cast<dag::TaskId>(workflow.task_count()); ++t) {
      if (workflow.predecessors(t).empty()) prev_phase_[t] = TaskPhase::Ready;
    }
    prev_instances_.clear();
  }

  PoolCommand plan(const MonitorSnapshot& snapshot) override {
    ++ticks_;
    verify_against_rebuild(snapshot);
    verify_delta(snapshot);
    verify_predictor_batching(snapshot);
    remember(snapshot);
    return next_command(snapshot);
  }

 private:
  void verify_against_rebuild(const MonitorSnapshot& snapshot) {
    ASSERT_NE(engine_, nullptr);
    SCOPED_TRACE("control tick at t=" + std::to_string(snapshot.now));
    expect_snapshot_eq(snapshot, engine_->rebuild_snapshot(snapshot.now));
  }

  /// Refit batching under restart churn: however bursty the tick's delta
  /// (the chaos commands restart whole instances, so one interval can
  /// complete many same-stage tasks at once), a harvest refits each touched
  /// stage once and bumps the estimator revision at most once.
  void verify_predictor_batching(const MonitorSnapshot& snapshot) {
    const std::uint64_t before = predictor_->revision();
    predictor_->observe(snapshot);
    EXPECT_LE(predictor_->revision(), before + 1)
        << "bursty delta bumped the estimator revision more than once";
    predictor_refits_ += predictor_->last_refit_stages();
    EXPECT_LE(predictor_->last_refit_stages(), workflow_->stage_count())
        << "one observe refit a stage twice";
  }

  /// The journal must be exact, sorted, deduplicated, and derivable from the
  /// previous snapshot: `completed` is exactly the set of tasks that moved
  /// to Completed, `phase_changed` is a superset of every observed phase
  /// flip (a strict superset when a restart bounces a task Running -> Ready
  /// -> Running within one interval), and the instance lists replay the
  /// previous id set into the current one.
  void verify_delta(const MonitorSnapshot& snapshot) {
    const MonitorDelta& delta = snapshot.delta;
    ASSERT_TRUE(delta.exact);

    auto strictly_ascending = [](const std::vector<dag::TaskId>& v) {
      return std::adjacent_find(v.begin(), v.end(),
                                std::greater_equal<dag::TaskId>()) == v.end();
    };
    EXPECT_TRUE(strictly_ascending(delta.completed));
    EXPECT_TRUE(strictly_ascending(delta.phase_changed));
    EXPECT_TRUE(strictly_ascending(delta.failed));
    // This suite runs with fault injection disabled, so no task can have a
    // failed attempt (the fault chaos suite covers the populated case).
    EXPECT_TRUE(delta.failed.empty());

    std::vector<dag::TaskId> want_completed;
    for (std::size_t t = 0; t < snapshot.tasks.size(); ++t) {
      const dag::TaskId id = static_cast<dag::TaskId>(t);
      const TaskPhase cur = snapshot.tasks[t].phase;
      if (cur == TaskPhase::Completed && prev_phase_[t] != TaskPhase::Completed) {
        want_completed.push_back(id);
      }
      if (cur != prev_phase_[t]) {
        EXPECT_TRUE(std::binary_search(delta.phase_changed.begin(),
                                       delta.phase_changed.end(), id))
            << "task " << id << " changed phase but is not journaled";
      }
    }
    EXPECT_EQ(delta.completed, want_completed);
    for (dag::TaskId id : delta.completed) {
      EXPECT_TRUE(std::binary_search(delta.phase_changed.begin(),
                                     delta.phase_changed.end(), id))
          << "completed task " << id << " missing from phase_changed";
    }

    std::set<InstanceId> expected(prev_instances_.begin(),
                                  prev_instances_.end());
    for (InstanceId id : delta.instances_added) {
      EXPECT_TRUE(expected.insert(id).second)
          << "instance " << id << " journaled as added twice";
    }
    for (InstanceId id : delta.instances_removed) {
      EXPECT_EQ(expected.erase(id), 1u)
          << "instance " << id << " journaled as removed but never added";
    }
    std::set<InstanceId> current;
    for (const InstanceObservation& inst : snapshot.instances) {
      current.insert(inst.id);
    }
    EXPECT_EQ(current, expected);

    // instances_changed: the lifecycle-only diff against the previous exact
    // snapshot — exactly the ids whose membership or lifecycle fields
    // (provisioning, draining, revoking, ready_at, revoke_at) moved, in
    // ascending order. Rows that only changed load state (free_slots,
    // running_tasks, time_to_next_charge) must NOT be listed: the
    // incremental lookahead relies on a quiet list meaning "the pool shape
    // the previous projection assumed still stands".
    auto lifecycle_of = [](const InstanceObservation& inst) {
      return std::make_tuple(inst.provisioning, inst.draining, inst.revoking,
                             inst.ready_at, inst.revoke_at);
    };
    std::set<InstanceId> want_changed;
    std::map<InstanceId, LifecycleTuple> cur_lifecycle;
    for (const InstanceObservation& inst : snapshot.instances) {
      cur_lifecycle.emplace(inst.id, lifecycle_of(inst));
    }
    for (const auto& [id, prev] : prev_lifecycle_) {
      const auto it = cur_lifecycle.find(id);
      if (it == cur_lifecycle.end() || it->second != prev) {
        want_changed.insert(id);
      }
    }
    for (const auto& [id, cur] : cur_lifecycle) {
      if (prev_lifecycle_.find(id) == prev_lifecycle_.end()) {
        want_changed.insert(id);
      }
    }
    EXPECT_EQ(std::vector<InstanceId>(want_changed.begin(), want_changed.end()),
              delta.instances_changed);
    for (InstanceId id : delta.instances_added) {
      EXPECT_TRUE(std::binary_search(delta.instances_changed.begin(),
                                     delta.instances_changed.end(), id))
          << "added instance " << id << " missing from instances_changed";
    }
    for (InstanceId id : delta.instances_removed) {
      EXPECT_TRUE(std::binary_search(delta.instances_changed.begin(),
                                     delta.instances_changed.end(), id))
          << "removed instance " << id << " missing from instances_changed";
    }
  }

  void remember(const MonitorSnapshot& snapshot) {
    for (std::size_t t = 0; t < snapshot.tasks.size(); ++t) {
      prev_phase_[t] = snapshot.tasks[t].phase;
    }
    prev_instances_.clear();
    prev_lifecycle_.clear();
    for (const InstanceObservation& inst : snapshot.instances) {
      prev_instances_.push_back(inst.id);
      prev_lifecycle_.emplace(
          inst.id, std::make_tuple(inst.provisioning, inst.draining,
                                   inst.revoking, inst.ready_at,
                                   inst.revoke_at));
    }
  }

  PoolCommand next_command(const MonitorSnapshot& snapshot) {
    PoolCommand cmd;
    if (benign_) {
      const std::uint32_t live =
          static_cast<std::uint32_t>(snapshot.instances.size());
      if (live < 3) cmd.grow = 3 - live;
      return cmd;
    }
    std::vector<const InstanceObservation*> ready;
    std::vector<const InstanceObservation*> draining;
    for (const InstanceObservation& inst : snapshot.instances) {
      if (inst.draining) {
        draining.push_back(&inst);
      } else if (!inst.provisioning) {
        ready.push_back(&inst);
      }
    }
    switch (rng_.uniform_int(0, 5)) {
      case 0:
        cmd.grow = static_cast<std::uint32_t>(rng_.uniform_int(1, 3));
        break;
      case 1:  // Immediate release: kills the attempts on the instance.
        if (!ready.empty()) {
          const auto* victim = ready[static_cast<std::size_t>(
              rng_.uniform_int(0, static_cast<std::int64_t>(ready.size()) - 1))];
          cmd.releases.push_back(Release{victim->id, false});
          ++immediate_releases_;
        }
        break;
      case 2:  // Drain at the charge boundary.
        if (!ready.empty()) {
          const auto* victim = ready[static_cast<std::size_t>(
              rng_.uniform_int(0, static_cast<std::int64_t>(ready.size()) - 1))];
          cmd.releases.push_back(Release{victim->id, true});
          ++drains_;
        }
        break;
      case 3:  // Cancel every drain and grow on top.
        for (const auto* inst : draining) {
          cmd.cancel_drains.push_back(inst->id);
        }
        cmd.grow = 1;
        break;
      case 4:
        cmd.grow = 1;
        break;
      default:
        break;
    }
    if (snapshot.instances.empty()) cmd.grow = std::max(cmd.grow, 1u);
    return cmd;
  }

  using LifecycleTuple = std::tuple<bool, bool, bool, SimTime, SimTime>;

  util::Rng rng_;
  const JobEngine* engine_ = nullptr;
  const dag::Workflow* workflow_ = nullptr;
  std::unique_ptr<predict::TaskPredictor> predictor_;
  std::uint64_t predictor_refits_ = 0;
  bool benign_ = false;
  std::uint32_t ticks_ = 0;
  std::uint32_t immediate_releases_ = 0;
  std::uint32_t drains_ = 0;
  std::vector<TaskPhase> prev_phase_;
  std::vector<InstanceId> prev_instances_;
  std::map<InstanceId, LifecycleTuple> prev_lifecycle_;
};

class MonitorStoreFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MonitorStoreFuzz, StoreMatchesRebuildUnderChaos) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  SCOPED_TRACE("fuzz seed " + std::to_string(seed));
  const dag::Workflow wf =
      workload::random_layered(workload::RandomDagOptions{}, seed);
  ChaosProbePolicy policy(seed * 31 + 7);
  RunOptions options;
  options.seed = seed + 1;
  options.initial_instances = 1;
  options.max_sim_seconds = 3.0e7;

  JobEngine engine(wf, policy, fuzz_cloud(), options);
  policy.bind(&engine);
  engine.start();

  // External cap churn: cycle through every sentinel-relevant value,
  // including a transient genuine-zero share; the chaos window ends after a
  // bounded number of events so the run always completes.
  static constexpr std::uint32_t kCaps[] = {kNoInstanceCap, 6, 3, 1, 0};
  util::Rng cap_rng(seed * 977 + 13);
  std::uint64_t steps = 0;
  while (!engine.done()) {
    ASSERT_LT(steps, 80000u) << "fuzz run failed to converge";
    if (steps == 5000) {
      policy.benign();
      engine.set_instance_cap(kNoInstanceCap);
    } else if (steps < 5000 && steps % 97 == 0) {
      engine.set_instance_cap(kCaps[cap_rng.uniform_int(0, 4)]);
    }
    const SimTime t = engine.next_event_time();
    engine.step();
    ++steps;
    if (engine.done()) break;
    // Event-granularity equivalence: the peeked store view must match the
    // from-scratch rebuild between ticks too, not just when a control tick
    // publishes the journal.
    SCOPED_TRACE("after event at t=" + std::to_string(t));
    expect_snapshot_eq(engine.peek_monitor(t), engine.rebuild_snapshot(t));
  }

  const RunResult r = engine.result();
  EXPECT_EQ(r.task_records.size(), wf.task_count());
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(static_cast<int>(rec.phase),
              static_cast<int>(TaskPhase::Completed));
  }
  EXPECT_GE(policy.ticks(), 1u);
  // Refit accounting: restart churn completes tasks in bursts, yet the total
  // refit count stays bounded by ticks x stages (one per touched stage per
  // harvest), never by the completion count.
  EXPECT_LE(policy.predictor_refits(),
            static_cast<std::uint64_t>(policy.ticks()) * wf.stage_count());
  for (dag::StageId s = 0; s < wf.stage_count(); ++s) {
    EXPECT_LE(policy.predictor().stage_revision(s), policy.ticks());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorStoreFuzz, ::testing::Range(0, 10));

// MemoryPredictor refit batching: one bursty exact delta completing many
// same-stage tasks is ONE stage refit (revision bump), not one per task, and
// replaying the same snapshot refits nothing (harvest idempotence).
TEST(MonitorStore, BurstyDeltaBatchesMemoryRefits) {
  const dag::Workflow wf = workload::linear_workflow(/*stages=*/2,
                                                     /*width=*/4, 10.0);
  MemoryConfig mc;
  mc.instance_mem_mb = 4096.0;
  predict::MemoryPredictor predictor(wf, mc, /*slots_per_instance=*/2);

  // Burst: all four stage-0 tasks complete inside one control interval.
  MonitorSnapshot snap;
  snap.now = 100.0;
  snap.tasks.resize(wf.task_count());
  snap.delta.exact = true;
  for (dag::TaskId t = 0; t < static_cast<dag::TaskId>(wf.task_count()); ++t) {
    if (wf.task(t).stage != 0) continue;
    snap.tasks[t].phase = TaskPhase::Completed;
    snap.tasks[t].peak_mem_mb = 512.0 + static_cast<double>(t);
    snap.delta.completed.push_back(t);
  }
  predictor.observe(snap);
  EXPECT_EQ(predictor.stage_revision(0), 1u);
  EXPECT_EQ(predictor.stage_samples(0), 4u);
  EXPECT_EQ(predictor.total_refits(), 1u);
  EXPECT_EQ(predictor.revision(), 1u);

  // Replay: nothing new, nothing refit.
  predictor.observe(snap);
  EXPECT_EQ(predictor.stage_revision(0), 1u);
  EXPECT_EQ(predictor.total_refits(), 1u);
  EXPECT_EQ(predictor.revision(), 1u);

  // A second burst touching BOTH stages refits each stage once.
  MonitorSnapshot snap2 = snap;
  snap2.now = 200.0;
  snap2.delta.completed.clear();
  for (dag::TaskId t = 0; t < static_cast<dag::TaskId>(wf.task_count()); ++t) {
    if (wf.task(t).stage != 1) continue;
    snap2.tasks[t].phase = TaskPhase::Completed;
    snap2.tasks[t].peak_mem_mb = 700.0;
    snap2.delta.completed.push_back(t);
  }
  predictor.observe(snap2);
  EXPECT_EQ(predictor.stage_revision(0), 1u);
  EXPECT_EQ(predictor.stage_revision(1), 1u);
  EXPECT_EQ(predictor.stage_samples(1), 4u);
  EXPECT_EQ(predictor.total_refits(), 2u);
  EXPECT_EQ(predictor.revision(), 2u);
}

// Restart-heavy determinism: peeking the monitor after every event (which
// refreshes the store-held snapshot and clears its published delta, but must
// never consume the pending journal) cannot perturb the run.
TEST(MonitorStore, PeekDoesNotPerturbTheRun) {
  const dag::Workflow wf = workload::random_layered(
      workload::RandomDagOptions{}, /*seed=*/42);
  RunOptions options;
  options.seed = 5;
  options.initial_instances = 2;

  auto run = [&](bool peek_every_event) {
    ChaosProbePolicy policy(/*seed=*/1234);
    JobEngine engine(wf, policy, fuzz_cloud(), options);
    policy.bind(&engine);
    engine.start();
    std::uint64_t steps = 0;
    while (!engine.done()) {
      if (steps++ == 3000) {
        policy.benign();
        engine.set_instance_cap(kNoInstanceCap);
      }
      const SimTime t = engine.next_event_time();
      engine.step();
      if (peek_every_event && !engine.done()) {
        (void)engine.peek_monitor(t);
        (void)engine.monitor_state_bytes();
      }
    }
    return engine.result();
  };

  const RunResult plain = run(false);
  const RunResult peeked = run(true);
  EXPECT_EQ(plain.makespan, peeked.makespan);
  EXPECT_EQ(plain.cost_units, peeked.cost_units);
  EXPECT_EQ(plain.busy_slot_seconds, peeked.busy_slot_seconds);
  EXPECT_EQ(plain.wasted_slot_seconds, peeked.wasted_slot_seconds);
  EXPECT_EQ(plain.task_restarts, peeked.task_restarts);
  EXPECT_EQ(plain.control_ticks, peeked.control_ticks);
  ASSERT_EQ(plain.task_records.size(), peeked.task_records.size());
  for (std::size_t t = 0; t < plain.task_records.size(); ++t) {
    EXPECT_EQ(plain.task_records[t].completed_at,
              peeked.task_records[t].completed_at);
    EXPECT_EQ(plain.task_records[t].exec_time,
              peeked.task_records[t].exec_time);
    EXPECT_EQ(plain.task_records[t].attempts,
              peeked.task_records[t].attempts);
  }
}

// The 8 Table-I paper runs must be byte-stable under the incremental
// pipeline: two identical WIRE runs produce bit-identical results down to
// the per-task kickstart records and the pool timeline. (The cross-refactor
// before/after comparison was established against the seed implementation's
// hexfloat output; this test pins the property going forward.)
TEST(MonitorStore, PaperRunsAreByteStable) {
  const std::vector<workload::WorkflowProfile> profiles = {
      workload::epigenomics_profile(workload::Scale::Small),
      workload::epigenomics_profile(workload::Scale::Large),
      workload::tpch1_profile(workload::Scale::Small),
      workload::tpch1_profile(workload::Scale::Large),
      workload::tpch6_profile(workload::Scale::Small),
      workload::tpch6_profile(workload::Scale::Large),
      workload::pagerank_profile(workload::Scale::Small),
      workload::pagerank_profile(workload::Scale::Large),
  };
  const CloudConfig site = exp::paper_cloud(900.0);
  for (const workload::WorkflowProfile& profile : profiles) {
    SCOPED_TRACE(profile.name);
    const dag::Workflow wf = workload::make_workflow(profile, 7);
    auto run = [&] {
      auto policy = exp::make_policy(exp::PolicyKind::Wire);
      RunOptions options;
      options.seed = 11;
      options.initial_instances =
          exp::initial_instances(exp::PolicyKind::Wire, site);
      options.record_pool_timeline = true;
      return simulate(wf, *policy, site, options);
    };
    const RunResult a = run();
    const RunResult b = run();
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.cost_units, b.cost_units);
    EXPECT_EQ(a.ready_instance_seconds, b.ready_instance_seconds);
    EXPECT_EQ(a.busy_slot_seconds, b.busy_slot_seconds);
    EXPECT_EQ(a.wasted_slot_seconds, b.wasted_slot_seconds);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.peak_instances, b.peak_instances);
    EXPECT_EQ(a.task_restarts, b.task_restarts);
    EXPECT_EQ(a.control_ticks, b.control_ticks);
    ASSERT_EQ(a.task_records.size(), b.task_records.size());
    for (std::size_t t = 0; t < a.task_records.size(); ++t) {
      EXPECT_EQ(a.task_records[t].completed_at, b.task_records[t].completed_at);
      EXPECT_EQ(a.task_records[t].exec_time, b.task_records[t].exec_time);
      EXPECT_EQ(a.task_records[t].transfer_in_time,
                b.task_records[t].transfer_in_time);
      EXPECT_EQ(a.task_records[t].attempts, b.task_records[t].attempts);
    }
    ASSERT_EQ(a.pool_timeline.size(), b.pool_timeline.size());
    for (std::size_t s = 0; s < a.pool_timeline.size(); ++s) {
      EXPECT_EQ(a.pool_timeline[s].time, b.pool_timeline[s].time);
      EXPECT_EQ(a.pool_timeline[s].live_instances,
                b.pool_timeline[s].live_instances);
      EXPECT_EQ(a.pool_timeline[s].ready_tasks,
                b.pool_timeline[s].ready_tasks);
      EXPECT_EQ(a.pool_timeline[s].running_tasks,
                b.pool_timeline[s].running_tasks);
    }
  }
}

}  // namespace
}  // namespace wire::sim
