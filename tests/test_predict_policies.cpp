// Tests for the TaskPredictor: the five online prediction policies of
// §III-C, the transfer-time median, moving estimates across MAPE iterations,
// and the ablation knobs.
#include <gtest/gtest.h>

#include "dag/workflow.h"
#include "predict/task_predictor.h"
#include "sim/monitor.h"
#include "util/check.h"

namespace wire::predict {
namespace {

using dag::TaskId;
using sim::TaskPhase;

/// One 6-task stage plus a dependent 2-task stage.
dag::Workflow make_two_stage() {
  dag::WorkflowBuilder builder("pred");
  const auto s0 = builder.add_stage("wide");
  const auto s1 = builder.add_stage("tail");
  std::vector<TaskId> firsts;
  const double sizes[6] = {10.0, 10.0, 20.0, 20.0, 40.0, 80.0};
  for (int i = 0; i < 6; ++i) {
    firsts.push_back(builder.add_task(s0, "w" + std::to_string(i), sizes[i],
                                      1.0, 5.0, {}));
  }
  builder.add_task(s1, "t0", 5.0, 1.0, 3.0, firsts);
  builder.add_task(s1, "t1", 5.0, 1.0, 3.0, firsts);
  return builder.build();
}

sim::MonitorSnapshot blank_snapshot(const dag::Workflow& wf) {
  sim::MonitorSnapshot snap;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  for (const dag::TaskSpec& t : wf.tasks()) {
    snap.tasks[t.id].input_mb = t.input_mb;
  }
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  return snap;
}

void complete(sim::MonitorSnapshot& snap, TaskId t, double exec,
              double transfer = 0.0) {
  snap.tasks[t].phase = TaskPhase::Completed;
  snap.tasks[t].exec_time = exec;
  snap.tasks[t].transfer_time = transfer;
}

/// Marks `t` running with the given execution progress; the task fired
/// (became ready) `elapsed_exec` before snap.now, so its policy-2 run time
/// equals its execution progress.
void run(sim::MonitorSnapshot& snap, TaskId t, double elapsed_exec) {
  snap.tasks[t].phase = TaskPhase::Running;
  snap.tasks[t].elapsed = elapsed_exec + 1.0;
  snap.tasks[t].elapsed_exec = elapsed_exec;
  snap.tasks[t].transfer_in_time = 1.0;
  snap.tasks[t].ready_since = snap.now - elapsed_exec;
  snap.tasks[t].occupancy_start = snap.now - elapsed_exec - 1.0;
}

TEST(Policies, Policy1NothingStartedPredictsZero) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  predictor.observe(snap);
  const Prediction p = predictor.predict_exec(0, snap);
  EXPECT_EQ(p.policy, Policy::NoneStarted);
  EXPECT_DOUBLE_EQ(p.exec_seconds, 0.0);
}

TEST(Policies, Policy2MedianOfRunningElapsed) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  snap.now = 100.0;
  run(snap, 0, 4.0);
  run(snap, 1, 8.0);
  run(snap, 2, 20.0);
  predictor.observe(snap);
  const Prediction p = predictor.predict_exec(3, snap);
  EXPECT_EQ(p.policy, Policy::RunningOnly);
  EXPECT_DOUBLE_EQ(p.exec_seconds, 8.0);
}

TEST(Policies, Policy3PendingTaskGetsStageMedian) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 4.0);
  complete(snap, 1, 6.0);
  complete(snap, 2, 10.0);
  predictor.observe(snap);
  // Task 3 still Pending (not ready): policy 3.
  const Prediction p = predictor.predict_exec(3, snap);
  EXPECT_EQ(p.policy, Policy::CompletedNotReady);
  EXPECT_DOUBLE_EQ(p.exec_seconds, 6.0);
}

TEST(Policies, Policy4EquivalentInputSizeUsesGroupMedian) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  // Tasks 0 and 2 complete; task 1 shares task 0's input size (10 MB).
  complete(snap, 0, 4.0);
  complete(snap, 2, 11.0);
  predictor.observe(snap);
  snap.tasks[1].phase = TaskPhase::Ready;
  const Prediction p = predictor.predict_exec(1, snap);
  EXPECT_EQ(p.policy, Policy::CompletedKnownSize);
  EXPECT_DOUBLE_EQ(p.exec_seconds, 4.0);  // group {task0} median
  // Task 3 (20 MB) matches task 2's group.
  snap.tasks[3].phase = TaskPhase::Ready;
  const Prediction q = predictor.predict_exec(3, snap);
  EXPECT_EQ(q.policy, Policy::CompletedKnownSize);
  EXPECT_DOUBLE_EQ(q.exec_seconds, 11.0);
}

TEST(Policies, Policy5NewInputSizeUsesOgd) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 4.0);   // 10 MB
  complete(snap, 2, 8.0);   // 20 MB
  predictor.observe(snap);
  // Task 4 (40 MB) has an unseen size: OGD fires.
  snap.tasks[4].phase = TaskPhase::Ready;
  const Prediction p = predictor.predict_exec(4, snap);
  EXPECT_EQ(p.policy, Policy::CompletedNewSize);
  EXPECT_GE(p.exec_seconds, 0.0);
}

TEST(Policies, Policy5ConvergesOverIterations) {
  // Linear ground truth exec = 0.4 * input: after many completions across
  // iterations the OGD estimate for an unseen size approaches the line.
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  const TaskId order[] = {0, 1, 2, 3, 4};
  for (TaskId t : order) {
    // One completion per MAPE iteration; each observe() runs one OGD epoch.
    complete(snap, t, 0.4 * wf.task(t).input_mb);
    predictor.observe(snap);
  }
  snap.tasks[5].phase = TaskPhase::Ready;  // 80 MB, unseen
  const Prediction p = predictor.predict_exec(5, snap);
  EXPECT_EQ(p.policy, Policy::CompletedNewSize);
  // Five one-step epochs cannot fully converge, but the estimate must be
  // well off zero, scale with the input, and not wildly overshoot.
  EXPECT_GT(p.exec_seconds, 0.25 * 0.4 * 80.0);
  EXPECT_LT(p.exec_seconds, 1.5 * 0.4 * 80.0);
  EXPECT_GT(p.exec_seconds,
            predictor.predict_exec(4, snap).exec_seconds);  // 40 MB peer
}

TEST(Policies, CompletedTaskReturnsRecordedTime) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 4.5);
  predictor.observe(snap);
  EXPECT_DOUBLE_EQ(predictor.predict_exec(0, snap).exec_seconds, 4.5);
}

TEST(Policies, TransferMedianTracksMostRecentInterval) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  EXPECT_DOUBLE_EQ(predictor.transfer_estimate(), 0.0);

  complete(snap, 0, 4.0, 2.0);
  complete(snap, 1, 4.0, 6.0);
  predictor.observe(snap);
  EXPECT_DOUBLE_EQ(predictor.transfer_estimate(), 4.0);

  // Next interval: one new transfer dominates the estimate (memoryless).
  complete(snap, 2, 4.0, 10.0);
  predictor.observe(snap);
  EXPECT_DOUBLE_EQ(predictor.transfer_estimate(), 10.0);

  // Empty interval: the estimate persists.
  predictor.observe(snap);
  EXPECT_DOUBLE_EQ(predictor.transfer_estimate(), 10.0);
}

TEST(Policies, RemainingOccupancySubtractsElapsed) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 10.0);  // 10 MB -> group for task 1
  predictor.observe(snap);
  run(snap, 1, 4.0);  // running, 4 s of exec elapsed, same input size
  EXPECT_DOUBLE_EQ(predictor.predict_remaining_occupancy(1, snap), 6.0);
  // Underestimates floor at zero ("about to complete").
  run(snap, 1, 15.0);
  EXPECT_DOUBLE_EQ(predictor.predict_remaining_occupancy(1, snap), 0.0);
}

TEST(Policies, RemainingOccupancyAddsTransferForUnstartedTasks) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 10.0, 3.0);
  predictor.observe(snap);
  snap.tasks[1].phase = TaskPhase::Ready;
  EXPECT_DOUBLE_EQ(predictor.predict_remaining_occupancy(1, snap),
                   3.0 + 10.0);
  EXPECT_DOUBLE_EQ(predictor.predict_remaining_occupancy(0, snap), 0.0);
}

TEST(Policies, MeanAblationChangesSkewedEstimates) {
  const dag::Workflow wf = make_two_stage();
  PredictorConfig median_cfg;
  PredictorConfig mean_cfg;
  mean_cfg.use_mean = true;
  TaskPredictor med(wf, median_cfg), avg(wf, mean_cfg);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 1.0);
  complete(snap, 1, 2.0);
  complete(snap, 2, 30.0);  // heavy tail
  med.observe(snap);
  avg.observe(snap);
  const Prediction pm = med.predict_exec(3, snap);
  const Prediction pa = avg.predict_exec(3, snap);
  EXPECT_DOUBLE_EQ(pm.exec_seconds, 2.0);
  EXPECT_DOUBLE_EQ(pa.exec_seconds, 11.0);
}

TEST(Policies, DisableOgdFallsBackToStageMedian) {
  const dag::Workflow wf = make_two_stage();
  PredictorConfig cfg;
  cfg.disable_ogd = true;
  TaskPredictor predictor(wf, cfg);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 4.0);
  complete(snap, 2, 8.0);
  predictor.observe(snap);
  snap.tasks[4].phase = TaskPhase::Ready;  // unseen size
  const Prediction p = predictor.predict_exec(4, snap);
  EXPECT_EQ(p.policy, Policy::CompletedNotReady);
  EXPECT_DOUBLE_EQ(p.exec_seconds, 6.0);
}

TEST(Policies, StateFootprintIsSmall) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  for (TaskId t = 0; t < 6; ++t) complete(snap, t, 5.0);
  predictor.observe(snap);
  // §IV-F reports <= 16 KB for real runs; this toy stage must be far below.
  EXPECT_LT(predictor.state_bytes(), 16u * 1024u);
}

TEST(Policies, MismatchedSnapshotThrows) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap;
  snap.tasks.resize(2);
  EXPECT_THROW(predictor.observe(snap), util::ContractViolation);
}

}  // namespace
}  // namespace wire::predict
