// Tests for the framework master: ready-queue discipline (FIFO with the
// first-five-per-stage priority rule), task lifecycle transitions, slot
// bookkeeping, resubmission, and monitoring observations.
#include <gtest/gtest.h>

#include "dag/workflow.h"
#include "sim/framework.h"
#include "util/check.h"
#include "workload/generators.h"

namespace wire::sim {
namespace {

using dag::TaskId;

/// Chain a -> b plus an independent root c.
dag::Workflow make_small() {
  dag::WorkflowBuilder builder("small");
  const auto s0 = builder.add_stage("roots");
  const auto s1 = builder.add_stage("next");
  const TaskId a = builder.add_task(s0, "a", 1.0, 1.0, 5.0, {});
  builder.add_task(s1, "b", 1.0, 1.0, 5.0, {a});
  builder.add_task(s0, "c", 1.0, 1.0, 5.0, {});
  return builder.build();
}

TEST(FrameworkMaster, RootsStartReady) {
  const dag::Workflow wf = make_small();
  FrameworkMaster fm(wf);
  EXPECT_EQ(fm.ready_count(), 2u);
  EXPECT_EQ(fm.runtime(0).phase, TaskPhase::Ready);
  EXPECT_EQ(fm.runtime(1).phase, TaskPhase::Pending);
  EXPECT_EQ(fm.runtime(2).phase, TaskPhase::Ready);
}

TEST(FrameworkMaster, LifecycleTransitions) {
  const dag::Workflow wf = make_small();
  FrameworkMaster fm(wf);
  fm.register_instance(0, 4);
  const TaskId t = fm.pop_ready();
  EXPECT_EQ(t, 0u);

  fm.on_dispatch(t, 0, 0, 10.0);
  EXPECT_EQ(fm.runtime(t).phase, TaskPhase::Running);
  EXPECT_EQ(fm.free_slots(0), 3u);
  EXPECT_EQ(fm.runtime(t).attempts, 1u);

  fm.on_transfer_in_done(t, 12.0);
  EXPECT_DOUBLE_EQ(fm.runtime(t).transfer_in_time, 2.0);

  fm.on_exec_done(t, 17.0);
  EXPECT_DOUBLE_EQ(fm.runtime(t).exec_time, 5.0);

  const auto newly = fm.on_complete(t, 18.0);
  EXPECT_EQ(fm.runtime(t).phase, TaskPhase::Completed);
  EXPECT_DOUBLE_EQ(fm.runtime(t).transfer_out_time, 1.0);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], 1u);  // b became ready
  EXPECT_EQ(fm.free_slots(0), 4u);
  EXPECT_DOUBLE_EQ(fm.busy_slot_seconds(), 8.0);
}

TEST(FrameworkMaster, AllCompleteAfterEveryTask) {
  const dag::Workflow wf = make_small();
  FrameworkMaster fm(wf);
  fm.register_instance(0, 4);
  double now = 0.0;
  while (!fm.all_complete()) {
    ASSERT_TRUE(fm.has_ready());
    const TaskId t = fm.pop_ready();
    const std::uint32_t slot = fm.take_free_slot(0);
    fm.on_dispatch(t, 0, slot, now);
    fm.on_transfer_in_done(t, now + 1.0);
    fm.on_exec_done(t, now + 6.0);
    fm.on_complete(t, now + 7.0);
    now += 10.0;
  }
  EXPECT_EQ(fm.completed_count(), 3u);
}

TEST(FrameworkMaster, ResubmissionRestartsTasks) {
  const dag::Workflow wf = make_small();
  FrameworkMaster fm(wf);
  fm.register_instance(0, 4);
  const TaskId t = fm.pop_ready();
  fm.on_dispatch(t, 0, 0, 0.0);
  fm.on_transfer_in_done(t, 1.0);

  const auto killed = fm.resubmit_tasks_on(0, 4.0);
  ASSERT_EQ(killed.size(), 1u);
  EXPECT_EQ(killed[0], t);
  EXPECT_EQ(fm.runtime(t).phase, TaskPhase::Ready);
  EXPECT_EQ(fm.total_restarts(), 1u);
  EXPECT_DOUBLE_EQ(fm.wasted_slot_seconds(), 4.0);
  EXPECT_EQ(fm.free_slots(0), 4u);

  // FIFO by ready time: the untouched root "c" (ready at 0) now precedes the
  // resubmitted task (re-enqueued at 4.0).
  EXPECT_EQ(fm.pop_ready(), 2u);
  const TaskId again = fm.pop_ready();
  EXPECT_EQ(again, t);
  fm.on_dispatch(again, 0, 0, 10.0);
  EXPECT_EQ(fm.runtime(again).attempts, 2u);
  fm.on_transfer_in_done(again, 11.0);
  fm.on_exec_done(again, 16.0);
  fm.on_complete(again, 17.0);
  EXPECT_EQ(fm.runtime(again).phase, TaskPhase::Completed);
}

TEST(FrameworkMaster, FirstFivePerStageJumpTheQueue) {
  // One wide stage whose tasks become ready at t=0 (roots), then a second
  // wide stage. The first five ready tasks of EACH stage get priority.
  const dag::Workflow wf = workload::linear_workflow(1, 12, 5.0, "wide");
  FrameworkMaster fm(wf);
  // All 12 are ready at time 0; the first five (by id) were promoted.
  int promoted = 0;
  for (TaskId t = 0; t < 12; ++t) {
    if (fm.runtime(t).high_priority) ++promoted;
  }
  EXPECT_EQ(promoted, 5);
  // Priority tasks pop first.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fm.runtime(fm.pop_ready()).high_priority);
  }
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(fm.runtime(fm.pop_ready()).high_priority);
  }
}

TEST(FrameworkMaster, PriorityBudgetIsPerStage) {
  // Two stages of 8: each stage gets its own 5 promotions.
  dag::WorkflowBuilder builder("two-stage");
  const auto s0 = builder.add_stage("s0");
  const auto s1 = builder.add_stage("s1");
  std::vector<TaskId> firsts;
  for (int i = 0; i < 8; ++i) {
    firsts.push_back(
        builder.add_task(s0, "a" + std::to_string(i), 1, 1, 1, {}));
  }
  for (int i = 0; i < 8; ++i) {
    builder.add_task(s1, "b" + std::to_string(i), 1, 1, 1, firsts);
  }
  const dag::Workflow wf = builder.build();
  FrameworkMaster fm(wf);
  fm.register_instance(0, 16);

  // Complete stage 0 entirely.
  while (fm.has_ready()) {
    const TaskId t = fm.pop_ready();
    const std::uint32_t slot = fm.take_free_slot(0);
    fm.on_dispatch(t, 0, slot, 0.0);
    fm.on_transfer_in_done(t, 1.0);
    fm.on_exec_done(t, 2.0);
    if (t < 8) fm.on_complete(t, 3.0);
  }
  // Stage-1 tasks became ready when the last stage-0 task completed; exactly
  // five of them were promoted.
  int promoted = 0;
  for (TaskId t = 8; t < 16; ++t) {
    if (fm.runtime(t).high_priority) ++promoted;
  }
  EXPECT_EQ(promoted, 5);
}

TEST(FrameworkMaster, ResubmittedPriorityTaskKeepsPriorityWithoutDoubleCount) {
  const dag::Workflow wf = workload::linear_workflow(1, 12, 5.0, "wide");
  FrameworkMaster fm(wf);
  fm.register_instance(0, 12);
  const TaskId t = fm.pop_ready();
  ASSERT_TRUE(fm.runtime(t).high_priority);
  fm.on_dispatch(t, 0, fm.take_free_slot(0), 0.0);
  fm.resubmit_tasks_on(0, 1.0);
  EXPECT_TRUE(fm.runtime(t).high_priority);
  // Still exactly five promoted in total.
  int promoted = 0;
  for (TaskId i = 0; i < 12; ++i) {
    if (fm.runtime(i).high_priority) ++promoted;
  }
  EXPECT_EQ(promoted, 5);
}

TEST(FrameworkMaster, ObservationsMirrorLifecycle) {
  const dag::Workflow wf = make_small();
  FrameworkMaster fm(wf);
  fm.register_instance(0, 4);
  const TaskId t = fm.pop_ready();
  fm.on_dispatch(t, 0, 0, 10.0);
  fm.on_transfer_in_done(t, 12.0);

  std::vector<TaskObservation> obs;
  fm.fill_observations(20.0, obs);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_EQ(obs[t].phase, TaskPhase::Running);
  EXPECT_DOUBLE_EQ(obs[t].elapsed, 10.0);
  EXPECT_DOUBLE_EQ(obs[t].elapsed_exec, 8.0);
  EXPECT_DOUBLE_EQ(obs[t].transfer_in_time, 2.0);
  EXPECT_EQ(obs[t].instance, 0u);
  EXPECT_EQ(obs[1].phase, TaskPhase::Pending);
  EXPECT_EQ(obs[2].phase, TaskPhase::Ready);
  // Completed record carries the kickstart fields.
  fm.on_exec_done(t, 15.0);
  fm.on_complete(t, 16.0);
  fm.fill_observations(20.0, obs);
  EXPECT_EQ(obs[t].phase, TaskPhase::Completed);
  EXPECT_DOUBLE_EQ(obs[t].exec_time, 3.0);
  EXPECT_DOUBLE_EQ(obs[t].transfer_time, 3.0);  // 2 in + 1 out
}

TEST(FrameworkMaster, InvalidTransitionsThrow) {
  const dag::Workflow wf = make_small();
  FrameworkMaster fm(wf);
  fm.register_instance(0, 4);
  EXPECT_THROW(fm.on_dispatch(1, 0, 0, 0.0), util::ContractViolation);
  const TaskId t = fm.pop_ready();
  fm.on_dispatch(t, 0, 0, 0.0);
  EXPECT_THROW(fm.on_dispatch(t, 0, 1, 0.0), util::ContractViolation);
  EXPECT_THROW(fm.on_complete(2, 1.0), util::ContractViolation);
}

}  // namespace
}  // namespace wire::sim
