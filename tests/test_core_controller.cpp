// Integration tests of the WIRE controller (MAPE loop) on the ground-truth
// simulator, including the §III-E linear-workflow scenarios the paper walks
// through in closed form and the headline cost/performance properties.
#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.h"
#include "dag/analysis.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::core {
namespace {

sim::CloudConfig exact_cloud(double u, double lag, std::uint32_t slots,
                             std::uint32_t max_instances) {
  sim::CloudConfig config;
  config.lag_seconds = lag;
  config.charging_unit_seconds = u;
  config.slots_per_instance = slots;
  config.max_instances = max_instances;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 1e12;
  return config;
}

sim::RunResult run_wire(const dag::Workflow& wf, const sim::CloudConfig& cfg,
                        std::uint64_t seed = 1,
                        const WireOptions& options = {}) {
  WireController controller(options);
  sim::RunOptions run_options;
  run_options.seed = seed;
  run_options.initial_instances = 1;
  return sim::simulate(wf, controller, cfg, run_options);
}

TEST(WireController, CompletesEveryWorkflowShape) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const dag::Workflow wf =
        workload::random_layered(workload::RandomDagOptions{}, seed);
    const sim::RunResult r =
        run_wire(wf, exact_cloud(300.0, 60.0, 2, 8), seed + 1);
    for (const sim::TaskRuntime& rec : r.task_records) {
      EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
    }
    EXPECT_GE(r.cost_units, 1.0);
  }
}

TEST(WireController, DiscussionScenarioShortTasks) {
  // §III-E, R <= U: N tasks of R = U - eps on 1-slot instances starting from
  // P = 1. The paper's idealization (continuous monitoring, zero lag)
  // completes the stage within 2R with nothing wasted. With a real lag of
  // U/15 the bound relaxes, but the run must stay within small factors of
  // both optima: cost NR/U = N units, time ~ 2R.
  const double u = 900.0;
  const double r_task = 840.0;  // R = U - 60
  const std::uint32_t n = 8;
  const dag::Workflow wf = workload::linear_workflow(1, n, r_task);
  const sim::RunResult result =
      run_wire(wf, exact_cloud(u, 60.0, 1, 32));
  const double optimal_cost = n * r_task / u;  // 7.47 units
  EXPECT_LE(result.cost_units, 2.0 * optimal_cost);
  // §IV-A: for R <= U the heuristic can deviate from the 2R ideal (Fig. 3
  // shows wide deviations as U/R grows); at U/R ~ 1 it must still sit within
  // a few task lengths of it, far from the N*R sequential worst case.
  EXPECT_LE(result.makespan, 5.5 * r_task);
  // Restarts are permitted but each must have been cheap (the 0.2u rule
  // bounds the sunk cost a release may forfeit).
  EXPECT_LE(result.task_restarts, 3u);
  EXPECT_LE(result.wasted_slot_seconds,
            result.task_restarts * 0.25 * u + 1e-9);
}

TEST(WireController, DiscussionScenarioLongTasks) {
  // §III-E, R > U: tasks longer than the charging unit renew their
  // instances; the controller must not kill them mid-flight (restart cost
  // exceeds 0.2u almost immediately).
  const double u = 300.0;
  const double r_task = 1500.0;  // R = 5U
  const std::uint32_t n = 6;
  const dag::Workflow wf = workload::linear_workflow(1, n, r_task);
  const sim::RunResult result = run_wire(wf, exact_cloud(u, 60.0, 1, 32));
  EXPECT_EQ(result.task_restarts, 0u);
  const double optimal_cost = n * r_task / u;  // 30 units
  EXPECT_LE(result.cost_units, 1.5 * optimal_cost);
  // Parallelism harvested: far better than sequential (n * r_task).
  EXPECT_LT(result.makespan, 0.5 * n * r_task);
}

TEST(WireController, GrowsThePoolForWideStages) {
  // 48 long tasks, 4 slots: WIRE must scale well beyond one instance once
  // predictions stabilize.
  const dag::Workflow wf = workload::linear_workflow(1, 48, 2000.0);
  const sim::RunResult result =
      run_wire(wf, exact_cloud(300.0, 60.0, 4, 12));
  EXPECT_GT(result.peak_instances, 4u);
  EXPECT_LE(result.peak_instances, 12u);
  EXPECT_LT(result.makespan, 48 * 2000.0 / 4.0);
}

TEST(WireController, KeepsUtilizationHighOnNarrowWork) {
  // A long chain of single tasks: the pool must stay at one instance (the
  // paper's "idle instances are wasteful").
  const dag::Workflow wf = workload::linear_workflow(10, 1, 120.0);
  const sim::RunResult result =
      run_wire(wf, exact_cloud(900.0, 60.0, 4, 12));
  EXPECT_EQ(result.peak_instances, 1u);
  EXPECT_DOUBLE_EQ(result.cost_units,
                   std::ceil(result.makespan / 900.0));
}

TEST(WireController, CheaperThanFullSiteOnRealWorkload) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch1_profile(workload::Scale::Large), 7);
  sim::CloudConfig config = exact_cloud(900.0, 180.0, 4, 12);
  config.variability = sim::VariabilityConfig{};  // realistic noise

  const sim::RunResult wire_run = run_wire(wf, config, 5);

  policies::StaticPolicy full_site(12, "full-site");
  sim::RunOptions options;
  options.seed = 5;
  options.initial_instances = 12;
  const sim::RunResult static_run =
      sim::simulate(wf, full_site, config, options);

  EXPECT_LT(wire_run.cost_units, static_run.cost_units);
  EXPECT_GT(wire_run.utilization, static_run.utilization);
}

TEST(WireController, DeterministicGivenSeed) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  sim::CloudConfig config = exact_cloud(900.0, 180.0, 4, 12);
  config.variability = sim::VariabilityConfig{};
  const sim::RunResult a = run_wire(wf, config, 11);
  const sim::RunResult b = run_wire(wf, config, 11);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.cost_units, b.cost_units);
  EXPECT_EQ(a.peak_instances, b.peak_instances);
}

TEST(WireController, TraceListenerSeesEveryIteration) {
  const dag::Workflow wf = workload::linear_workflow(2, 8, 300.0);
  WireController controller;
  std::vector<MapeTrace> traces;
  controller.set_trace_listener(
      [&traces](const MapeTrace& t) { traces.push_back(t); });
  sim::RunOptions options;
  options.initial_instances = 1;
  const sim::RunResult r =
      sim::simulate(wf, controller, exact_cloud(300.0, 60.0, 2, 8), options);
  EXPECT_EQ(traces.size(), r.control_ticks);
  ASSERT_FALSE(traces.empty());
  EXPECT_DOUBLE_EQ(traces.front().now, 0.0);
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_GT(traces[i].now, traces[i - 1].now);
  }
}

TEST(WireController, PlanBeforeRunStartThrows) {
  WireController controller;
  sim::MonitorSnapshot snap;
  EXPECT_THROW(controller.plan(snap), util::ContractViolation);
  EXPECT_THROW(controller.predictor(), util::ContractViolation);
}

TEST(WireController, DisableLookaheadStillCompletes) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  WireOptions options;
  options.disable_lookahead = true;
  const sim::RunResult r =
      run_wire(wf, exact_cloud(900.0, 180.0, 4, 12), 3, options);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
}

TEST(WireController, StateFootprintStaysBounded) {
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Small), 7);
  WireController controller;
  sim::RunOptions options;
  options.initial_instances = 1;
  sim::simulate(wf, controller, exact_cloud(900.0, 180.0, 4, 12), options);
  // The paper reports <= 16 KB of controller state on its runs; our
  // bookkeeping keeps per-task phases too, so allow a small multiple.
  EXPECT_LT(controller.state_bytes(), 64u * 1024u);
}

}  // namespace
}  // namespace wire::core
