// Tests for the remaining utility surface: text tables, CSV escaping, the
// thread pool, parallel_for error propagation, contracts, and logging.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace wire::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.set_header({"a", "bbbb", "c"});
  table.add_row({"xxxxx", "y", "z"});
  table.add_row({"1", "2", "3"});
  const std::string out = table.render();
  std::istringstream is(out);
  std::string header, sep, row1, row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  // All rows render to the same width (trailing cells unpadded).
  EXPECT_EQ(header.find("bbbb"), row1.find("y"));
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRows) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(table.set_header({}), ContractViolation);
}

TEST(TextTable, HeaderAfterRowsRejected) {
  TextTable table;
  table.set_header({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.set_header({"b"}), ContractViolation);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_mean_std(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  const std::string path = "test_util_misc.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
    csv.write_row({"1", "2", "3", "4"});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("plain,\"with,comma\",\"with\"\"quote\""),
            std::string::npos);
  EXPECT_NE(content.find("1,2,3,4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv"), std::runtime_error);
}

TEST(ThreadPool, ExecutesAllJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 2);
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after all jobs ran
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(200);
  parallel_for(200, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          16,
          [](std::size_t i) {
            if (i == 7) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ZeroJobsIsFine) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 2);
}

TEST(Contracts, MessagesCarryContext) {
  try {
    WIRE_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Logging, LevelGatesMessages) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  WIRE_INFO("this must be dropped silently");
  set_log_level(LogLevel::Debug);
  WIRE_DEBUG("and this one emitted (to stderr)");
  set_log_level(before);
  SUCCEED();
}

}  // namespace
}  // namespace wire::util
