// Tests for the workload generators: Table I characterization fidelity,
// structural properties of each family, determinism, and the synthetic
// families (linear / random layered).
#include <gtest/gtest.h>

#include "dag/analysis.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::workload {
namespace {

using dag::StageClass;
using dag::Workflow;

TEST(Profiles, TableOneTaskTotals) {
  // Table I "Total Number of Tasks" column.
  struct Expected {
    WorkflowProfile profile;
    std::uint32_t tasks;
  };
  const Expected expected[] = {
      {epigenomics_profile(Scale::Small), 405},
      {epigenomics_profile(Scale::Large), 4005},
      {tpch1_profile(Scale::Small), 62},
      {tpch1_profile(Scale::Large), 229},
      {tpch6_profile(Scale::Small), 33},
      {tpch6_profile(Scale::Large), 118},
      {pagerank_profile(Scale::Small), 115},
      {pagerank_profile(Scale::Large), 313},
  };
  for (const Expected& e : expected) {
    std::uint32_t total = 0;
    for (const StageProfile& s : e.profile.stages) total += s.task_count;
    EXPECT_EQ(total, e.tasks) << e.profile.name;
  }
}

TEST(Profiles, TableOneStageCounts) {
  EXPECT_EQ(epigenomics_profile(Scale::Small).stages.size(), 8u);
  EXPECT_EQ(epigenomics_profile(Scale::Large).stages.size(), 8u);
  EXPECT_EQ(tpch1_profile(Scale::Small).stages.size(), 4u);
  EXPECT_EQ(tpch6_profile(Scale::Small).stages.size(), 2u);
  EXPECT_EQ(pagerank_profile(Scale::Small).stages.size(), 12u);
  EXPECT_EQ(pagerank_profile(Scale::Large).stages.size(), 12u);
}

TEST(Profiles, TableOneRegistryHasEightRuns) {
  const auto all = table1_profiles();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "Genome S");
  EXPECT_EQ(all[7].name, "PageRank L");
}

class MakeWorkflowTest : public ::testing::TestWithParam<int> {
 protected:
  WorkflowProfile profile() const {
    const auto all = table1_profiles();
    return all[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(MakeWorkflowTest, MatchesProfileStructure) {
  const WorkflowProfile p = profile();
  const Workflow wf = make_workflow(p, 7);
  EXPECT_EQ(wf.name(), p.name);
  ASSERT_EQ(wf.stage_count(), p.stages.size());
  std::uint32_t total = 0;
  for (std::size_t s = 0; s < p.stages.size(); ++s) {
    EXPECT_EQ(wf.stage_tasks(static_cast<dag::StageId>(s)).size(),
              p.stages[s].task_count)
        << p.name << " stage " << s;
    total += p.stages[s].task_count;
  }
  EXPECT_EQ(wf.task_count(), total);
  EXPECT_TRUE(dag::stages_are_layered(wf));
}

TEST_P(MakeWorkflowTest, StageMeansNearProfileTargets) {
  const WorkflowProfile p = profile();
  const Workflow wf = make_workflow(p, 7);
  const auto summaries = dag::summarize_stages(wf);
  for (std::size_t s = 0; s < p.stages.size(); ++s) {
    const double target = p.stages[s].mean_exec_seconds;
    EXPECT_GT(summaries[s].mean_ref_exec_seconds, 0.0);
    // Skew is normalized to unit mean, so wide stages concentrate near the
    // target; stages with a handful of tasks are dominated by individual
    // draws and only sanity-checked above.
    if (p.stages[s].task_count < 8) continue;
    const double tol = std::max(0.45 * target, 0.6);
    EXPECT_NEAR(summaries[s].mean_ref_exec_seconds, target, tol)
        << p.name << " stage " << p.stages[s].name;
  }
}

TEST_P(MakeWorkflowTest, DeterministicInSeed) {
  const WorkflowProfile p = profile();
  const Workflow a = make_workflow(p, 11);
  const Workflow b = make_workflow(p, 11);
  ASSERT_EQ(a.task_count(), b.task_count());
  for (dag::TaskId t = 0; t < a.task_count(); ++t) {
    EXPECT_DOUBLE_EQ(a.task(t).ref_exec_seconds, b.task(t).ref_exec_seconds);
    EXPECT_DOUBLE_EQ(a.task(t).input_mb, b.task(t).input_mb);
  }
}

TEST_P(MakeWorkflowTest, DifferentSeedsDiffer) {
  const WorkflowProfile p = profile();
  const Workflow a = make_workflow(p, 1);
  const Workflow b = make_workflow(p, 2);
  int differing = 0;
  for (dag::TaskId t = 0; t < a.task_count(); ++t) {
    if (a.task(t).ref_exec_seconds != b.task(t).ref_exec_seconds) ++differing;
  }
  EXPECT_GT(differing, static_cast<int>(a.task_count() / 2));
}

INSTANTIATE_TEST_SUITE_P(TableOneRuns, MakeWorkflowTest,
                         ::testing::Range(0, 8));

TEST(Epigenomics, PipelineShape) {
  const Workflow wf =
      make_workflow(epigenomics_profile(Scale::Small), 7);
  // fastqSplit fans out: the single root has one successor per chunk.
  ASSERT_EQ(wf.roots().size(), 1u);
  EXPECT_EQ(wf.successors(wf.roots()[0]).size(), 100u);
  // The per-chunk pipelines are 1:1 (partition links).
  const auto filter_tasks = wf.stage_tasks(1);
  for (dag::TaskId t : filter_tasks) {
    EXPECT_EQ(wf.successors(t).size(), 1u);
  }
  // Final pileup is a single sink.
  ASSERT_EQ(wf.sinks().size(), 1u);
}

TEST(Tpch6, MapReduceShape) {
  const Workflow wf = make_workflow(tpch6_profile(Scale::Small), 7);
  // 32 scan maps all feed the single reduce.
  ASSERT_EQ(wf.sinks().size(), 1u);
  EXPECT_EQ(wf.predecessors(wf.sinks()[0]).size(), 32u);
  EXPECT_EQ(dag::max_width(wf), 32u);
}

TEST(PageRank, DatasetSizeMatchesTableOne) {
  const Workflow s = make_workflow(pagerank_profile(Scale::Small), 7);
  const Workflow l = make_workflow(pagerank_profile(Scale::Large), 7);
  EXPECT_NEAR(s.input_dataset_mb() / 1024.0, 0.26, 0.26 * 0.25);
  EXPECT_NEAR(l.input_dataset_mb() / 1024.0, 2.88, 2.88 * 0.25);
}

TEST(LinearWorkflow, AllToAllStageBarriers) {
  const Workflow wf = linear_workflow(3, 4, 10.0);
  EXPECT_EQ(wf.task_count(), 12u);
  EXPECT_EQ(wf.stage_count(), 3u);
  // Every stage-1 task depends on all 4 stage-0 tasks.
  for (dag::TaskId t : wf.stage_tasks(1)) {
    EXPECT_EQ(wf.predecessors(t).size(), 4u);
  }
  // Identical run times, no data.
  for (const dag::TaskSpec& t : wf.tasks()) {
    EXPECT_DOUBLE_EQ(t.ref_exec_seconds, 10.0);
    EXPECT_DOUBLE_EQ(t.input_mb, 0.0);
  }
  EXPECT_DOUBLE_EQ(dag::critical_path_seconds(wf), 30.0);
}

TEST(LinearWorkflow, SingleStage) {
  const Workflow wf = linear_workflow(1, 100, 5.0);
  EXPECT_EQ(wf.task_count(), 100u);
  EXPECT_EQ(wf.roots().size(), 100u);
  EXPECT_EQ(wf.sinks().size(), 100u);
}

TEST(LinearWorkflow, RejectsInvalidArguments) {
  EXPECT_THROW(linear_workflow(0, 1, 1.0), util::ContractViolation);
  EXPECT_THROW(linear_workflow(1, 0, 1.0), util::ContractViolation);
  EXPECT_THROW(linear_workflow(1, 1, 0.0), util::ContractViolation);
}

class RandomLayeredTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLayeredTest, AlwaysProducesValidLayeredDag) {
  RandomDagOptions options;
  const Workflow wf = random_layered(options, GetParam());
  EXPECT_GE(wf.stage_count(), options.min_layers);
  EXPECT_LE(wf.stage_count(), options.max_layers);
  EXPECT_TRUE(dag::stages_are_layered(wf));
  // Connectivity: every non-root task has at least one predecessor.
  for (const dag::TaskSpec& t : wf.tasks()) {
    if (t.stage > 0) {
      EXPECT_GE(wf.predecessors(t.id).size(), 1u);
    }
    EXPECT_GT(t.ref_exec_seconds, 0.0);
  }
  // Topological order exists (build() would have thrown otherwise) and
  // covers all tasks.
  EXPECT_EQ(wf.topological_order().size(), wf.task_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLayeredTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace wire::workload
