// Cross-module integration tests: serialization round-trips through full
// simulations, paper-matrix orderings, end-to-end prediction accuracy, and
// the epigenomics elasticity story.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/controller.h"
#include "dag/analysis.h"
#include "dag/serialize.h"
#include "exp/prediction_harness.h"
#include "exp/runner.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/stats.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire {
namespace {

TEST(Integration, SerializedWorkflowRunsIdentically) {
  const dag::Workflow original = workload::make_workflow(
      workload::tpch1_profile(workload::Scale::Small), 7);
  const dag::Workflow parsed = dag::from_string(dag::to_string(original));

  const sim::CloudConfig config = exp::paper_cloud(900.0);
  sim::RunOptions options;
  options.seed = 17;
  options.initial_instances = 1;

  core::WireController a, b;
  const sim::RunResult ra = sim::simulate(original, a, config, options);
  const sim::RunResult rb = sim::simulate(parsed, b, config, options);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_DOUBLE_EQ(ra.cost_units, rb.cost_units);
  EXPECT_EQ(ra.peak_instances, rb.peak_instances);
}

TEST(Integration, PaperMatrixOrderingsHold) {
  // One repetition of the §IV-C matrix on the two TPCH-6 runs: the classic
  // orderings must hold — full-site fastest and most expensive at small u,
  // wire cheapest at u >= 15 min.
  exp::MatrixOptions options;
  options.repetitions = 1;
  const auto cells = exp::run_matrix(
      {workload::tpch6_profile(workload::Scale::Small),
       workload::tpch6_profile(workload::Scale::Large)},
      options);
  ASSERT_EQ(cells.size(), 2u * 4u * 4u);

  const auto cell = [&](std::size_t wf, exp::PolicyKind policy,
                        double unit) -> const exp::CellResult& {
    for (const exp::CellResult& c : cells) {
      const bool wf_match =
          (wf == 0) == (c.workflow == "TPCH-6 S");
      if (wf_match && c.policy == policy &&
          c.charging_unit_seconds == unit) {
        return c;
      }
    }
    throw std::logic_error("cell not found");
  };

  for (std::size_t wf : {0u, 1u}) {
    // Full-site is never slower than wire (it starts at peak capacity).
    for (double u : exp::paper_charging_units()) {
      EXPECT_LE(
          cell(wf, exp::PolicyKind::FullSite, u).stats.makespan_seconds.mean(),
          cell(wf, exp::PolicyKind::Wire, u).stats.makespan_seconds.mean() *
              1.25)
          << "wf=" << wf << " u=" << u;
    }
    // Wire is cheaper than full-site at every unit >= 15 min.
    for (double u : {900.0, 1800.0, 3600.0}) {
      EXPECT_LT(cell(wf, exp::PolicyKind::Wire, u).stats.cost_units.mean(),
                cell(wf, exp::PolicyKind::FullSite, u).stats.cost_units.mean())
          << "wf=" << wf << " u=" << u;
    }
  }
}

TEST(Integration, EpigenomicsElasticityStory) {
  // The paper's flagship: a 1 -> 100 -> 1 width profile. WIRE must grow the
  // pool for the wide wave and shrink it afterwards.
  const dag::Workflow wf = workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), 7);
  core::WireController controller;
  sim::RunOptions options;
  options.seed = 1;
  options.initial_instances = 1;
  options.record_pool_timeline = true;
  const sim::RunResult r =
      sim::simulate(wf, controller, exp::paper_cloud(60.0), options);

  EXPECT_GE(r.peak_instances, 6u);  // grew for the 100-wide wave
  ASSERT_GE(r.pool_timeline.size(), 3u);
  // The pool shrinks again once the wave passes: the last sample is well
  // below the peak.
  std::uint32_t peak_sample = 0;
  for (const sim::PoolSample& s : r.pool_timeline) {
    peak_sample = std::max(peak_sample, s.live_instances);
  }
  EXPECT_LT(r.pool_timeline.back().live_instances, peak_sample);
  // And the run beats sequential execution comfortably.
  EXPECT_LT(r.makespan, wf.aggregate_ref_exec_seconds() / 2.0);
}

TEST(Integration, EndToEndPredictionAccuracyOnGenome) {
  // The fig4 pipeline in miniature: ground-truth full-site run -> stage
  // replay -> error statistics. The wide genome stages must predict well.
  const dag::Workflow wf = workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), 7);
  policies::StaticPolicy full_site(12, "full-site");
  sim::RunOptions options;
  options.seed = 23;
  options.initial_instances = 12;
  const sim::RunResult truth =
      sim::simulate(wf, full_site, exp::paper_cloud(900.0), options);

  std::vector<double> actual(wf.task_count());
  for (dag::TaskId t = 0; t < wf.task_count(); ++t) {
    actual[t] = truth.task_records[t].exec_time;
  }

  // The "map" stage: 100 long tasks.
  dag::StageId map_stage = dag::kInvalidStage;
  for (const dag::StageSpec& s : wf.stages()) {
    if (s.name == "map") map_stage = s.id;
  }
  ASSERT_NE(map_stage, dag::kInvalidStage);

  util::CdfBuilder rel_errors;
  for (const exp::StageReplay& replay :
       exp::replay_stage_random_orders(wf, map_stage, actual, 3, 99)) {
    for (std::size_t i = 0; i < replay.actual.size(); ++i) {
      rel_errors.add(metrics::relative_true_error(replay.predicted_ready[i],
                                                  replay.actual[i]));
    }
  }
  // The paper reports ~83 % of long-stage tasks within 15 % relative error;
  // the wide, block-quantized map stage should clear a conservative bar.
  EXPECT_GE(rel_errors.fraction_within(0.15), 0.70);
  EXPECT_LE(std::abs(rel_errors.quantile(0.5)), 0.05);
}

TEST(Integration, WireCostScalesWithChargingUnitNotWork) {
  // For a fixed workload, wire's *cost in units* must fall as units grow
  // (fewer, larger units) while the billed wall-time (units * u) stays
  // within a small factor — the "best bang for the buck" contract.
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Small), 7);
  std::vector<double> billed_seconds;
  double previous_units = 1e18;
  for (double u : exp::paper_charging_units()) {
    core::WireController controller;
    sim::RunOptions options;
    options.seed = 4;
    options.initial_instances = 1;
    const sim::RunResult r =
        sim::simulate(wf, controller, exp::paper_cloud(u), options);
    EXPECT_LE(r.cost_units, previous_units);
    previous_units = r.cost_units;
    billed_seconds.push_back(r.cost_units * u);
  }
  const double lo =
      *std::min_element(billed_seconds.begin(), billed_seconds.end());
  const double hi =
      *std::max_element(billed_seconds.begin(), billed_seconds.end());
  EXPECT_LE(hi / lo, 6.0);
}

TEST(Integration, DagFileRoundTripOnDisk) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  const std::string path = "test_roundtrip.wire-dag";
  {
    std::ofstream out(path);
    dag::write_workflow(out, wf);
  }
  std::ifstream in(path);
  const dag::Workflow parsed = dag::read_workflow(in);
  EXPECT_EQ(parsed.task_count(), wf.task_count());
  EXPECT_DOUBLE_EQ(parsed.aggregate_ref_exec_seconds(),
                   wf.aggregate_ref_exec_seconds());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wire
