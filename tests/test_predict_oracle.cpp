// Tests for the clairvoyant OracleEstimator and its use in the controller.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "predict/oracle.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::predict {
namespace {

dag::Workflow make_wf() {
  dag::WorkflowBuilder builder("oracle");
  const auto s0 = builder.add_stage("s0");
  builder.add_task(s0, "a", 100.0, 50.0, 40.0, {});
  builder.add_task(s0, "b", 0.0, 0.0, 25.0, {});
  return builder.build();
}

sim::MonitorSnapshot blank(const dag::Workflow& wf) {
  sim::MonitorSnapshot snap;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  return snap;
}

TEST(Oracle, ExecEstimateIsReferenceTime) {
  const dag::Workflow wf = make_wf();
  OracleEstimator oracle(wf, 0.5, 100.0);
  const sim::MonitorSnapshot snap = blank(wf);
  EXPECT_DOUBLE_EQ(oracle.estimate_exec(0, snap), 40.0);
  EXPECT_DOUBLE_EQ(oracle.estimate_exec(1, snap), 25.0);
}

TEST(Oracle, RemainingOccupancyIncludesNominalTransfers) {
  const dag::Workflow wf = make_wf();
  OracleEstimator oracle(wf, 0.5, 100.0);
  sim::MonitorSnapshot snap = blank(wf);
  // Unstarted task a: in (0.5 + 1.0) + exec 40 + out (0.5 + 0.5) = 42.5.
  snap.tasks[0].phase = sim::TaskPhase::Ready;
  EXPECT_DOUBLE_EQ(oracle.predict_remaining_occupancy(0, snap), 42.5);
  // Zero-payload task b: just the execution time.
  snap.tasks[1].phase = sim::TaskPhase::Ready;
  EXPECT_DOUBLE_EQ(oracle.predict_remaining_occupancy(1, snap), 25.0);
}

TEST(Oracle, RunningTaskSubtractsElapsedExec) {
  const dag::Workflow wf = make_wf();
  OracleEstimator oracle(wf, 0.5, 100.0);
  sim::MonitorSnapshot snap = blank(wf);
  snap.tasks[0].phase = sim::TaskPhase::Running;
  snap.tasks[0].transfer_in_time = 1.5;
  snap.tasks[0].elapsed_exec = 10.0;
  // Remaining exec 30 + nominal output transfer 1.0.
  EXPECT_DOUBLE_EQ(oracle.predict_remaining_occupancy(0, snap), 31.0);
  snap.tasks[0].phase = sim::TaskPhase::Completed;
  EXPECT_DOUBLE_EQ(oracle.predict_remaining_occupancy(0, snap), 0.0);
}

TEST(Oracle, ObserveIsAStatelessNoOp) {
  const dag::Workflow wf = make_wf();
  OracleEstimator oracle(wf, 0.5, 100.0);
  sim::MonitorSnapshot snap = blank(wf);
  const double before = oracle.estimate_exec(0, snap);
  snap.tasks[1].phase = sim::TaskPhase::Completed;
  snap.tasks[1].exec_time = 999.0;
  oracle.observe(snap);
  EXPECT_DOUBLE_EQ(oracle.estimate_exec(0, snap), before);
  EXPECT_LT(oracle.state_bytes(), 256u);
}

TEST(Oracle, ControllerRunsWithOracleEstimator) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  core::WireOptions options;
  options.oracle_estimator = true;
  core::WireController controller(options);
  EXPECT_EQ(controller.name(), "wire-oracle");

  sim::CloudConfig config;
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 300.0;
  sim::RunOptions run_options;
  run_options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, controller, config, run_options);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
  // The online-predictor accessor must refuse under the oracle...
  EXPECT_THROW(controller.predictor(), util::ContractViolation);
  // ...but the generic estimator is available.
  EXPECT_NO_THROW(controller.estimator());
}

TEST(Oracle, OracleIsNoSlowerThanOnlineWire) {
  // With perfect information the controller can only provision earlier, so
  // its makespan must not exceed the online controller's (same seed).
  const dag::Workflow wf =
      workload::make_workflow(workload::tpch1_profile(workload::Scale::Large),
                              7);
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 60.0;
  config.slots_per_instance = 4;
  config.max_instances = 12;

  sim::RunOptions run_options;
  run_options.seed = 21;
  run_options.initial_instances = 1;

  core::WireController online;
  const sim::RunResult r_online =
      sim::simulate(wf, online, config, run_options);

  core::WireOptions opts;
  opts.oracle_estimator = true;
  core::WireController oracle(opts);
  const sim::RunResult r_oracle =
      sim::simulate(wf, oracle, config, run_options);

  EXPECT_LE(r_oracle.makespan, r_online.makespan * 1.05);
}

}  // namespace
}  // namespace wire::predict
