// Scheduled-checkpointing suite (the hazard-driven cooperative checkpoint
// subsystem): interval policy math, hazard-estimator convergence to the
// configured crash rate, deterministic salvage through explicit checkpoint
// events, window deferral, checkpoint-aware victim selection, crash-aware
// steering inflation, and the differential chaos sweep proving that
// scheduled-checkpoint runs are bit-replayable from their recorded
// FaultTrace (the subsystem draws no RNG of its own).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "core/steering.h"
#include "policies/baselines.h"
#include "policies/checkpoint.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "workload/generators.h"

namespace wire::sim {
namespace {

/// A policy that kills every instance at the first tick past t = 40 and
/// replaces the pool (same shape as the legacy checkpoint-fraction test, so
/// the two salvage models are directly comparable).
class KillOnce final : public ScalingPolicy {
 public:
  std::string name() const override { return "kill-once"; }
  void on_run_start(const dag::Workflow&, const CloudConfig&) override {
    fired_ = false;
  }
  PoolCommand plan(const MonitorSnapshot& snapshot) override {
    PoolCommand cmd;
    if (!fired_ && snapshot.now >= 40.0) {
      fired_ = true;
      for (const InstanceObservation& inst : snapshot.instances) {
        cmd.releases.push_back(Release{inst.id, false});
      }
      cmd.grow = 1;
    }
    return cmd;
  }

 private:
  bool fired_ = false;
};

CloudConfig quiet_cloud() {
  CloudConfig config;
  config.lag_seconds = 40.0;
  config.charging_unit_seconds = 600.0;
  config.slots_per_instance = 1;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  return config;
}

TEST(CheckpointScheduler, YoungDalyIntervalMath) {
  CheckpointConfig config;
  config.channel_bandwidth_mb_per_s = 256.0;
  config.min_interval_seconds = 30.0;
  policies::CheckpointScheduler sched(config);

  // Zero hazard (no prior, no crash): never checkpoint.
  EXPECT_TRUE(std::isinf(sched.interval_seconds(1.0)));

  // One crash over one observed hour (plus the unit prior weight at zero
  // prior rate): hazard = 1 / 2 per hour, MTBF = 7200 s.
  sched.hazard().record_crash();
  sched.hazard().add_exposure_hours(1.0);
  EXPECT_DOUBLE_EQ(sched.hazard().hazard_per_hour(), 0.5);
  EXPECT_DOUBLE_EQ(sched.interval_seconds(2.0),
                   std::sqrt(2.0 * 2.0 * 7200.0));

  // Zero write cost degenerates to "never" (nothing to amortize).
  EXPECT_TRUE(std::isinf(sched.interval_seconds(0.0)));

  // The floor binds under an extreme hazard estimate.
  for (int i = 0; i < 10000; ++i) sched.hazard().record_crash();
  EXPECT_DOUBLE_EQ(sched.interval_seconds(1e-4),
                   config.min_interval_seconds);
}

TEST(CheckpointScheduler, StaticIntervalIsTheAblation) {
  CheckpointConfig config;
  config.channel_bandwidth_mb_per_s = 256.0;
  config.interval_policy = CheckpointConfig::IntervalPolicy::Static;
  config.static_interval_seconds = 120.0;
  policies::CheckpointScheduler sched(config);
  // The hazard estimate is irrelevant to the static ablation.
  EXPECT_DOUBLE_EQ(sched.interval_seconds(1.0), 120.0);
  sched.hazard().record_crash();
  EXPECT_DOUBLE_EQ(sched.interval_seconds(1.0), 120.0);
  // The floor still binds.
  config.static_interval_seconds = 5.0;
  policies::CheckpointScheduler floored(config);
  EXPECT_DOUBLE_EQ(floored.interval_seconds(1.0),
                   config.min_interval_seconds);
}

TEST(CheckpointScheduler, PriorBlendsWithObservation) {
  CheckpointConfig config;
  config.channel_bandwidth_mb_per_s = 1.0;
  config.hazard_prior_per_hour = 2.0;
  config.hazard_prior_weight_hours = 4.0;
  policies::CheckpointScheduler sched(config);
  // Pure prior before any exposure.
  EXPECT_DOUBLE_EQ(sched.hazard().hazard_per_hour(), 2.0);
  // (2*4 + 4 crashes) / (4 + 12 hours) = 0.75.
  for (int i = 0; i < 4; ++i) sched.hazard().record_crash();
  sched.hazard().add_exposure_hours(12.0);
  EXPECT_DOUBLE_EQ(sched.hazard().hazard_per_hour(), 0.75);
}

TEST(CheckpointScheduler, CrashBeforeExposureYieldsFiniteHazard) {
  // The crash-before-exposure timeline with a zero-weight prior: instances
  // crash (or are revoked while provisioning) before any ready
  // instance-hours accrue. The estimator must NOT report zero hazard —
  // that read as "reliable cloud" at the exact moment it proved otherwise,
  // and Young/Daly turned it into an infinite checkpoint interval (crashes
  // seen, never checkpoints). The estimate is floored at one observed
  // exposure instance-second.
  policies::HazardEstimator fresh(/*prior_per_hour=*/0.0,
                                  /*prior_weight_hours=*/0.0);
  EXPECT_DOUBLE_EQ(fresh.hazard_per_hour(), 0.0);  // no crash: still zero
  fresh.record_crash();
  EXPECT_GT(fresh.hazard_per_hour(), 0.0);
  EXPECT_TRUE(std::isfinite(fresh.hazard_per_hour()));
  EXPECT_DOUBLE_EQ(fresh.hazard_per_hour(), 3600.0);  // 1 crash / 1 inst-sec
  fresh.record_crash();
  EXPECT_DOUBLE_EQ(fresh.hazard_per_hour(), 7200.0);

  // And the scheduler consuming it now picks a finite (floored) interval
  // instead of "never".
  CheckpointConfig config;
  config.channel_bandwidth_mb_per_s = 1.0;
  config.hazard_prior_per_hour = 0.0;
  config.hazard_prior_weight_hours = 0.0;
  config.min_interval_seconds = 30.0;
  policies::CheckpointScheduler sched(config);
  sched.hazard().record_crash();
  const double interval = sched.interval_seconds(/*write_cost_seconds=*/4.0);
  EXPECT_TRUE(std::isfinite(interval));
  EXPECT_GE(interval, config.min_interval_seconds);

  // Once real exposure accrues, the floor disengages and the ordinary
  // estimate takes over.
  fresh.add_exposure_hours(4.0);
  EXPECT_DOUBLE_EQ(fresh.hazard_per_hour(), 0.5);
}

// Explicit checkpoint events: a killed attempt salvages exactly its last
// COMMITTED checkpoint; execution past it (and any in-flight write) is lost.
// The schedule is fully deterministic, so the run's timeline is exact.
TEST(CheckpointSched, SalvageStopsAtLastCommittedCheckpoint) {
  const dag::Workflow wf = workload::linear_workflow(1, 1, 100.0);
  CloudConfig config = quiet_cloud();
  // Static 30 s interval; 256 MB image over 256 MB/s = 1 s blocking write.
  config.checkpoint.channel_bandwidth_mb_per_s = 256.0;
  config.checkpoint.default_size_mb = 256.0;
  config.checkpoint.interval_policy = CheckpointConfig::IntervalPolicy::Static;
  config.checkpoint.static_interval_seconds = 30.0;

  RunOptions options;
  options.initial_instances = 1;

  KillOnce policy;
  const RunResult r = simulate(wf, policy, config, options);
  // Timeline: exec 0-30, write 30-31 (commits 30 s durable), exec resumes
  // 31; the kill at t = 40 stages 39 s of progress and salvages the 30 s
  // checkpoint -> 9 s of lost work. The replacement is ready at 80 with 70 s
  // of demand left: exec 80-110, write 110-111, exec 111-141, write 141-142,
  // final 10 s -> done at 152.
  EXPECT_DOUBLE_EQ(r.makespan, 152.0);
  EXPECT_EQ(r.task_restarts, 1u);
  EXPECT_EQ(r.checkpoints_completed, 3u);
  EXPECT_EQ(r.checkpoints_lost, 0u);
  EXPECT_DOUBLE_EQ(r.checkpoint_io_slot_seconds, 3.0);
  EXPECT_DOUBLE_EQ(r.lost_work_seconds, 9.0);
}

// An in-flight write at the kill is lost: it never committed, so it salvages
// nothing and is counted as lost checkpoint I/O.
TEST(CheckpointSched, InFlightWriteAtKillIsLost) {
  const dag::Workflow wf = workload::linear_workflow(1, 1, 100.0);
  CloudConfig config = quiet_cloud();
  // 38 s interval with a 16 s write: the first write spans 38-54, so the
  // kill at t = 40 catches it mid-flight.
  config.checkpoint.channel_bandwidth_mb_per_s = 16.0;
  config.checkpoint.default_size_mb = 256.0;
  config.checkpoint.interval_policy = CheckpointConfig::IntervalPolicy::Static;
  config.checkpoint.static_interval_seconds = 38.0;

  RunOptions options;
  options.initial_instances = 1;

  KillOnce policy;
  const RunResult r = simulate(wf, policy, config, options);
  // Nothing durable at the kill: all 38 s of progress are lost (execution
  // was stalled inside the write from 38 on, so staged progress is 38, not
  // 40). Replacement at 80 re-runs the full 100 s: ckpt write 118-134, exec
  // resumes to 142+24=... segments: exec 80-118 (38 s), write 118-134,
  // exec 134-172 (38 s, 76 done), write 172-188, remaining 24 s -> 212.
  EXPECT_DOUBLE_EQ(r.makespan, 212.0);
  EXPECT_EQ(r.checkpoints_completed, 2u);
  EXPECT_EQ(r.checkpoints_lost, 1u);
  // Lost I/O: 2 s of channel time burned by the doomed write (38..40).
  EXPECT_DOUBLE_EQ(r.checkpoint_io_slot_seconds, 2.0 + 16.0 + 16.0);
  EXPECT_DOUBLE_EQ(r.lost_work_seconds, 38.0);
}

// Young/Daly on a quiet cloud with no prior: the hazard estimate stays zero,
// no checkpoint is ever written, and the run is identical to the
// checkpoint-disabled baseline (the zero-rate discipline).
TEST(CheckpointSched, ZeroHazardNeverCheckpoints) {
  const dag::Workflow wf = workload::linear_workflow(1, 1, 100.0);
  CloudConfig config = quiet_cloud();
  RunOptions options;
  options.initial_instances = 1;

  KillOnce plain_policy;
  const RunResult plain = simulate(wf, plain_policy, config, options);
  EXPECT_DOUBLE_EQ(plain.makespan, 180.0);

  config.checkpoint.channel_bandwidth_mb_per_s = 256.0;
  config.checkpoint.interval_policy =
      CheckpointConfig::IntervalPolicy::YoungDaly;
  KillOnce ckpt_policy;
  const RunResult ckpt = simulate(wf, ckpt_policy, config, options);
  EXPECT_EQ(ckpt.checkpoints_completed, 0u);
  EXPECT_EQ(ckpt.checkpoints_lost, 0u);
  EXPECT_DOUBLE_EQ(ckpt.checkpoint_io_slot_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ckpt.makespan, plain.makespan);
  // The kill's progress is now all lost work (nothing durable existed).
  EXPECT_DOUBLE_EQ(ckpt.lost_work_seconds, 40.0);
}

// The staggering window defers checkpoint *starts*: a write whose natural
// fire time falls outside [offset + k*period, offset + k*period + length)
// slides to the next opening while execution continues underneath.
TEST(CheckpointSched, WindowDefersCheckpointStarts) {
  const dag::Workflow wf = workload::linear_workflow(1, 1, 100.0);
  CloudConfig config = quiet_cloud();
  config.checkpoint.channel_bandwidth_mb_per_s = 256.0;
  config.checkpoint.default_size_mb = 256.0;
  config.checkpoint.interval_policy = CheckpointConfig::IntervalPolicy::Static;
  config.checkpoint.static_interval_seconds = 30.0;

  RunOptions options;
  options.initial_instances = 1;

  // Windows of 5 s every 50 s starting at t = 45: the natural fire at 30
  // slides to 45.
  class NullPolicy final : public ScalingPolicy {
   public:
    std::string name() const override { return "null"; }
    void on_run_start(const dag::Workflow&, const CloudConfig&) override {}
    PoolCommand plan(const MonitorSnapshot&) override { return {}; }
  };

  NullPolicy policy;
  JobEngine engine(wf, policy, config, options);
  engine.set_checkpoint_window(/*offset=*/45.0, /*length=*/5.0,
                               /*period=*/50.0);
  engine.start();
  while (!engine.done()) engine.step();
  const RunResult r = engine.result();
  // Deferred write at 45 commits 45 s durable at 46; next natural fire at
  // 76 defers to 95, commits 94 s durable at 96; remaining 6 s -> 102.
  EXPECT_DOUBLE_EQ(r.makespan, 102.0);
  EXPECT_EQ(r.checkpoints_completed, 2u);
  EXPECT_DOUBLE_EQ(r.checkpoint_io_slot_seconds, 2.0);
}

// Satellite regression: victim selection under scheduled checkpointing
// charges unsalvaged progress (elapsed - committed checkpoint), and equal
// restart costs still tie-break on the instance id.
TEST(CheckpointSched, VictimSelectionChargesUnsalvagedProgress) {
  core::LookaheadResult lookahead;  // empty load -> p = 1
  MonitorSnapshot snap;
  snap.incomplete_tasks = 3;
  snap.tasks.assign(3, TaskObservation{});
  for (dag::TaskId t = 0; t < 3; ++t) {
    snap.tasks[t].phase = TaskPhase::Running;
    snap.tasks[t].elapsed = 250.0;
  }
  // Task 0: no checkpoint. Task 1: 240 s committed -> residual 60 with the
  // boundary 50 s away. Task 2: same as task 1 (tie on residual).
  snap.tasks[1].checkpointed_exec = 240.0;
  snap.tasks[2].checkpointed_exec = 240.0;
  for (InstanceId id = 0; id < 3; ++id) {
    InstanceObservation inst;
    inst.id = id;
    inst.time_to_next_charge = 50.0;
    inst.running_tasks = {static_cast<dag::TaskId>(id)};
    snap.instances.push_back(inst);
  }
  CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.checkpoint.channel_bandwidth_mb_per_s = 256.0;

  // restart_cost_fraction * unit = 0.2 * 900 = 180: instance 0's residual
  // (250 + 50 = 300) is protected; instances 1 and 2 (residual 60) qualify.
  // p = 1 releases two of them, cheapest first with id tie-break: 1 then 2.
  const PoolCommand cmd = core::steer(lookahead, snap, config);
  ASSERT_EQ(cmd.releases.size(), 2u);
  EXPECT_EQ(cmd.releases[0].instance, 1u);
  EXPECT_EQ(cmd.releases[1].instance, 2u);

  // Legacy model on the same snapshot: no fraction -> everything at full
  // sunk cost, nothing qualifies.
  CloudConfig legacy = config;
  legacy.checkpoint.channel_bandwidth_mb_per_s = 0.0;
  const PoolCommand none = core::steer(lookahead, snap, legacy);
  EXPECT_TRUE(none.releases.empty());
}

// Crash-aware steering: a positive hazard estimate inflates the planned
// pool by lambda*u / (1 - exp(-lambda*u)) so expected delivered capacity
// matches the packed demand; zero hazard is bit-identical to the baseline.
TEST(CheckpointSched, CrashAwareSteeringInflatesPlannedPool) {
  core::LookaheadResult lookahead;
  // 8 ready tasks of 600 s each: planned p = 8 on a 1-slot instance type.
  for (dag::TaskId t = 0; t < 8; ++t) {
    lookahead.upcoming.push_back(
        core::UpcomingTask{600.0, t, /*on_slot=*/false, 0.0});
  }
  MonitorSnapshot snap;
  snap.incomplete_tasks = 8;
  snap.tasks.assign(8, TaskObservation{});
  for (auto& obs : snap.tasks) obs.phase = TaskPhase::Ready;
  CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 1;

  std::uint32_t planned_plain = 0;
  (void)core::steer(lookahead, snap, config, &planned_plain);
  ASSERT_GT(planned_plain, 0u);

  std::uint32_t planned_zero = 0;
  (void)core::steer(lookahead, snap, config, &planned_zero,
                    /*reclaim_draining=*/false, nullptr,
                    /*hazard_per_hour=*/0.0);
  EXPECT_EQ(planned_zero, planned_plain);

  const double hazard = 2.0;  // crashes per instance-hour
  std::uint32_t planned_hazard = 0;
  (void)core::steer(lookahead, snap, config, &planned_hazard,
                    /*reclaim_draining=*/false, nullptr, hazard);
  const double lambda_u = hazard / 3600.0 * config.charging_unit_seconds;
  const double factor = lambda_u / (1.0 - std::exp(-lambda_u));
  EXPECT_EQ(planned_hazard,
            static_cast<std::uint32_t>(std::ceil(
                static_cast<double>(planned_plain) * factor)));
  EXPECT_GT(planned_hazard, planned_plain);
}

// The engine-side hazard estimator converges toward the configured crash
// rate: crashes over tick-sampled ready instance-hours is exactly the
// quantity FaultConfig::crash_rate_per_hour parameterizes.
TEST(CheckpointSched, HazardEstimateConvergesToConfiguredRate) {
  const double kRate = 20.0;
  // A long workflow so the site accrues hours of exposure: 20 stages of
  // four 300 s tasks keeps a handful of instances busy for over an hour of
  // simulated time, dozens of expected crashes at 20/hour.
  const dag::Workflow wf = workload::linear_workflow(20, 4, 300.0);
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 6;
  config.faults.crash_rate_per_hour = kRate;
  config.checkpoint.channel_bandwidth_mb_per_s = 512.0;
  config.checkpoint.default_size_mb = 64.0;

  double crashes = 0.0;
  double exposure = 0.0;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("run seed " + std::to_string(seed));
    policies::PureReactivePolicy policy;
    RunOptions options;
    options.seed = seed;
    options.initial_instances = 2;
    options.max_sim_seconds = 3.0e6;
    JobEngine engine(wf, policy, config, options);
    engine.start();
    while (!engine.done()) engine.step();
    const RunResult r = engine.result();
    EXPECT_GE(r.instance_crashes, 1u);
    crashes += static_cast<double>(r.instance_crashes);
    EXPECT_GT(engine.checkpoint_hazard_per_hour(), 0.0);
    // Recover the run's observed exposure from the estimator identity:
    // estimate = crashes / (prior_weight + exposure).
    exposure += static_cast<double>(r.instance_crashes) /
                    engine.checkpoint_hazard_per_hour() -
                config.checkpoint.hazard_prior_weight_hours;
  }
  // Pooled across runs the empirical rate is a consistent estimate of the
  // configured rate; the tolerance absorbs Poisson noise and the tick
  // sampling of exposure (crash exposure accrues up to the crash, the
  // sample only to the last tick).
  const double pooled = crashes / (exposure + 3.0);
  EXPECT_GT(pooled, kRate * 0.4);
  EXPECT_LT(pooled, kRate * 2.5);
}

/// Hostile cloud with scheduled checkpointing on: every fault class fires
/// alongside checkpoint traffic.
CloudConfig hostile_ckpt_cloud(CheckpointConfig::IntervalPolicy policy) {
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 6;
  config.faults.crash_rate_per_hour = 20.0;
  config.faults.crash_notice_seconds = 20.0;
  config.faults.provision_failure_prob = 0.2;
  config.faults.straggler_prob = 0.3;
  config.faults.straggler_lag_multiplier = 2.5;
  config.faults.task_failure_prob = 0.15;
  config.faults.monitor_dropout_prob = 0.2;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_seconds = 5.0;
  config.retry.backoff_factor = 2.0;
  config.checkpoint.channel_bandwidth_mb_per_s = 64.0;
  config.checkpoint.default_size_mb = 128.0;
  config.checkpoint.interval_policy = policy;
  config.checkpoint.static_interval_seconds = 60.0;
  config.checkpoint.hazard_prior_per_hour = 10.0;
  config.checkpoint.min_interval_seconds = 30.0;
  return config;
}

struct ChaosOutcome {
  std::string trace;
  RunResult result;
};

/// One scheduled-checkpoint chaos run; returns the rendered FaultTrace and
/// the result for replay comparison.
ChaosOutcome run_ckpt_chaos(std::uint64_t seed,
                            CheckpointConfig::IntervalPolicy interval) {
  // Tasks must outlive the checkpoint interval (~30-60 s here) or the
  // subsystem never engages; the default 8 s mean would make the sweep
  // vacuous.
  workload::RandomDagOptions dag_options;
  dag_options.mean_exec_seconds = 150.0;
  const dag::Workflow wf = workload::random_layered(dag_options, seed);
  const CloudConfig config = hostile_ckpt_cloud(interval);
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.seed = seed + 101;
  options.initial_instances = 1;
  options.max_sim_seconds = 3.0e6;

  JobEngine engine(wf, policy, config, options);
  engine.start();
  std::uint64_t steps = 0;
  while (!engine.done()) {
    EXPECT_LT(steps, 400000u) << "chaos run failed to converge";
    if (steps >= 400000u) break;
    engine.step();
    ++steps;
  }
  ChaosOutcome out;
  out.result = engine.result();
  out.trace = render_fault_trace(out.result.fault_trace);

  // Waste accounting invariants under chaos: both components are finite and
  // non-negative, committed + lost covers every write the journal charged.
  EXPECT_GE(out.result.lost_work_seconds, 0.0);
  EXPECT_GE(out.result.checkpoint_io_slot_seconds, 0.0);
  if (out.result.checkpoints_completed == 0 &&
      out.result.checkpoints_lost == 0) {
    EXPECT_DOUBLE_EQ(out.result.checkpoint_io_slot_seconds, 0.0);
  }
  // Exactly-once completion still holds with checkpoint events interleaved.
  EXPECT_EQ(out.result.task_records.size(), wf.task_count());
  for (dag::TaskId t = 0; t < static_cast<dag::TaskId>(wf.task_count());
       ++t) {
    const TaskRuntime& rec = out.result.task_records[t];
    if (!rec.quarantined) {
      EXPECT_EQ(static_cast<int>(rec.phase),
                static_cast<int>(TaskPhase::Completed))
          << "task " << t << " neither completed nor quarantined";
    }
  }
  return out;
}

class CheckpointChaos : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointChaos, ScheduledCheckpointRunsAreBitReplayable) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (const auto interval : {CheckpointConfig::IntervalPolicy::YoungDaly,
                              CheckpointConfig::IntervalPolicy::Static}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed) + " policy " +
                 (interval == CheckpointConfig::IntervalPolicy::YoungDaly
                      ? "young-daly"
                      : "static"));
    const ChaosOutcome a = run_ckpt_chaos(seed, interval);
    // The hostile rates with a hazard prior make checkpoint traffic all but
    // certain; an all-zero run would mean the subsystem never engaged.
    EXPECT_FALSE(a.result.fault_trace.empty());
    EXPECT_GT(a.result.checkpoints_completed + a.result.checkpoints_lost, 0u);
    // Same seed -> byte-identical fault schedule AND bit-identical results:
    // the checkpoint subsystem adds no RNG draws, so the recorded FaultTrace
    // fully determines the run.
    const ChaosOutcome b = run_ckpt_chaos(seed, interval);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.result.makespan, b.result.makespan);
    EXPECT_EQ(a.result.cost_units, b.result.cost_units);
    EXPECT_EQ(a.result.busy_slot_seconds, b.result.busy_slot_seconds);
    EXPECT_EQ(a.result.wasted_slot_seconds, b.result.wasted_slot_seconds);
    EXPECT_EQ(a.result.lost_work_seconds, b.result.lost_work_seconds);
    EXPECT_EQ(a.result.checkpoint_io_slot_seconds,
              b.result.checkpoint_io_slot_seconds);
    EXPECT_EQ(a.result.checkpoints_completed, b.result.checkpoints_completed);
    EXPECT_EQ(a.result.checkpoints_lost, b.result.checkpoints_lost);
    EXPECT_EQ(a.result.task_restarts, b.result.task_restarts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointChaos, ::testing::Range(0, 4));

TEST(CheckpointChaos, EnvironmentSeedRuns) {
  const char* env = std::getenv("WIRE_FUZZ_SEED");
  if (env == nullptr) GTEST_SKIP() << "WIRE_FUZZ_SEED not set";
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("WIRE_FUZZ_SEED=" + std::to_string(seed));
  std::printf("running checkpoint chaos with WIRE_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  const ChaosOutcome a =
      run_ckpt_chaos(seed, CheckpointConfig::IntervalPolicy::YoungDaly);
  const ChaosOutcome b =
      run_ckpt_chaos(seed, CheckpointConfig::IntervalPolicy::YoungDaly);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.result.makespan, b.result.makespan);
}

}  // namespace
}  // namespace wire::sim
