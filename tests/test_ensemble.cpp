// Tests of the multi-tenant ensemble subsystem: arrival streams, arbiter
// share accounting, the shared-site capacity invariant, tenant snapshot
// isolation, job retirement, and report determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/driver.h"
#include "ensemble/report.h"
#include "exp/settings.h"
#include "policies/baselines.h"
#include "sim/engine.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::ensemble {
namespace {

/// Deterministic §IV-B-like site without stochastic variability, so the
/// driver tests stay fast and exactly reproducible.
sim::CloudConfig quiet_site(std::uint32_t max_instances = 6) {
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  config.max_instances = max_instances;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 1e12;
  return config;
}

std::vector<workload::WorkflowProfile> small_profiles() {
  return {workload::tpch6_profile(workload::Scale::Small),
          workload::pagerank_profile(workload::Scale::Small)};
}

// ---------------------------------------------------------------------------
// ArrivalProcess

TEST(Arrivals, PoissonIsDeterministicInSeed) {
  PoissonArrivalConfig config;
  config.mean_interarrival_seconds = 300.0;
  config.job_count = 20;
  config.seed = 7;
  const ArrivalProcess a = ArrivalProcess::poisson(config, 3);
  const ArrivalProcess b = ArrivalProcess::poisson(config, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].job, b.jobs()[i].job);
    EXPECT_DOUBLE_EQ(a.jobs()[i].arrival_seconds, b.jobs()[i].arrival_seconds);
    EXPECT_EQ(a.jobs()[i].profile_index, b.jobs()[i].profile_index);
    EXPECT_EQ(a.jobs()[i].workflow_seed, b.jobs()[i].workflow_seed);
    EXPECT_EQ(a.jobs()[i].run_seed, b.jobs()[i].run_seed);
  }
  config.seed = 8;
  const ArrivalProcess c = ArrivalProcess::poisson(config, 3);
  EXPECT_NE(a.jobs().front().arrival_seconds,
            c.jobs().front().arrival_seconds);
}

TEST(Arrivals, PoissonStreamIsWellFormed) {
  PoissonArrivalConfig config;
  config.mean_interarrival_seconds = 120.0;
  config.job_count = 50;
  config.seed = 11;
  const ArrivalProcess stream = ArrivalProcess::poisson(config, 4);
  ASSERT_EQ(stream.size(), 50u);
  std::set<std::uint64_t> seeds;
  double prev = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const JobArrival& a = stream.jobs()[i];
    EXPECT_EQ(a.job, static_cast<std::uint32_t>(i));  // dense ids
    EXPECT_GE(a.arrival_seconds, prev);               // sorted
    EXPECT_LT(a.profile_index, 4u);
    seeds.insert(a.workflow_seed);
    seeds.insert(a.run_seed);
    prev = a.arrival_seconds;
  }
  // Every per-job seed is distinct (workflow and run seeds never collide).
  EXPECT_EQ(seeds.size(), 2 * stream.size());
}

TEST(Arrivals, FixedTraceIsNormalized) {
  std::vector<JobArrival> trace(3);
  trace[0].arrival_seconds = 500.0;
  trace[0].profile_index = 1;
  trace[1].arrival_seconds = 100.0;
  trace[1].profile_index = 0;
  trace[2].arrival_seconds = 300.0;
  trace[2].profile_index = 2;
  const ArrivalProcess stream = ArrivalProcess::fixed_trace(trace, 5);
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_DOUBLE_EQ(stream.jobs()[0].arrival_seconds, 100.0);
  EXPECT_DOUBLE_EQ(stream.jobs()[1].arrival_seconds, 300.0);
  EXPECT_DOUBLE_EQ(stream.jobs()[2].arrival_seconds, 500.0);
  EXPECT_EQ(stream.jobs()[0].profile_index, 0u);  // profiles follow the sort
  EXPECT_EQ(stream.jobs()[1].profile_index, 2u);
  EXPECT_EQ(stream.jobs()[2].profile_index, 1u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(stream.jobs()[i].job, static_cast<std::uint32_t>(i));
  }
}

// ---------------------------------------------------------------------------
// SiteArbiter

TenantDemand demand(std::uint32_t job, double arrival, std::uint32_t live,
                    std::uint32_t requested) {
  TenantDemand d;
  d.job = job;
  d.arrival_seconds = arrival;
  d.live_instances = live;
  d.requested_pool = requested;
  return d;
}

TEST(Arbiter, FifoExclusiveBacksTheOldestJob) {
  // B arrived first: it gets its floor plus all spare; A stays at its floor.
  const std::vector<TenantDemand> tenants = {demand(1, 5.0, 2, 8),
                                             demand(0, 1.0, 3, 4)};
  const std::vector<std::uint32_t> shares =
      allocate_shares(ArbiterStrategy::FifoExclusive, 10, tenants);
  EXPECT_EQ(shares[0], 2u);
  EXPECT_EQ(shares[1], 8u);
}

TEST(Arbiter, FifoTiesBreakOnJobId) {
  const std::vector<TenantDemand> tenants = {demand(2, 1.0, 0, 4),
                                             demand(1, 1.0, 0, 4)};
  const std::vector<std::uint32_t> shares =
      allocate_shares(ArbiterStrategy::FifoExclusive, 6, tenants);
  EXPECT_EQ(shares[0], 0u);  // job 2 waits
  EXPECT_EQ(shares[1], 6u);  // job 1 wins the tie
}

TEST(Arbiter, FairShareSplitsEntitlementsWithRemainderToEarliest) {
  // cap 10, three idle tenants: entitlements 4/3/3, remainder to the oldest.
  const std::vector<TenantDemand> tenants = {
      demand(0, 1.0, 0, 10), demand(1, 2.0, 0, 10), demand(2, 3.0, 0, 10)};
  const std::vector<std::uint32_t> shares =
      allocate_shares(ArbiterStrategy::StaticFairShare, 10, tenants);
  EXPECT_EQ(shares[0], 4u);
  EXPECT_EQ(shares[1], 3u);
  EXPECT_EQ(shares[2], 3u);
}

TEST(Arbiter, FairShareKeepsOversizedFloors) {
  // A tenant already above its entitlement keeps its floor (no preemption);
  // what remains flows to the others.
  const std::vector<TenantDemand> tenants = {demand(0, 1.0, 7, 7),
                                             demand(1, 2.0, 1, 6)};
  const std::vector<std::uint32_t> shares =
      allocate_shares(ArbiterStrategy::StaticFairShare, 8, tenants);
  EXPECT_EQ(shares[0], 7u);
  EXPECT_EQ(shares[1], 1u);
  EXPECT_LE(shares[0] + shares[1], 8u);
}

TEST(Arbiter, DemandWeightedGrantsFittingDemandExactly) {
  // Total unmet demand (6 + 3) fits in the spare 10: everyone gets what they
  // asked for, the undemanded instance stays unallocated.
  const std::vector<TenantDemand> tenants = {demand(0, 1.0, 0, 6),
                                             demand(1, 2.0, 0, 3)};
  const std::vector<std::uint32_t> shares =
      allocate_shares(ArbiterStrategy::DemandWeighted, 10, tenants);
  EXPECT_EQ(shares[0], 6u);
  EXPECT_EQ(shares[1], 3u);
}

TEST(Arbiter, DemandWeightedSplitsProportionallyWhenOversubscribed) {
  // Both want the full site: the spare splits evenly.
  const std::vector<TenantDemand> tenants = {demand(0, 1.0, 0, 20),
                                             demand(1, 2.0, 0, 20)};
  const std::vector<std::uint32_t> shares =
      allocate_shares(ArbiterStrategy::DemandWeighted, 10, tenants);
  EXPECT_EQ(shares[0], 5u);
  EXPECT_EQ(shares[1], 5u);
}

TEST(Arbiter, ContractHoldsForEveryStrategy) {
  // Floors respected and sum <= cap under a mixed demand profile.
  const std::vector<TenantDemand> tenants = {
      demand(0, 1.0, 4, 9), demand(1, 2.0, 2, 2), demand(2, 2.0, 0, 5)};
  for (ArbiterStrategy strategy : all_strategies()) {
    const std::vector<std::uint32_t> shares =
        allocate_shares(strategy, 8, tenants);
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      EXPECT_GE(shares[i], tenants[i].live_instances)
          << strategy_name(strategy) << " preempted tenant " << i;
      total += shares[i];
    }
    EXPECT_LE(total, 8u) << strategy_name(strategy) << " over-allocated";
  }
}

TEST(Arbiter, RejectsImpossibleInputs) {
  const std::vector<TenantDemand> over = {demand(0, 1.0, 4, 4),
                                          demand(1, 2.0, 3, 3)};
  EXPECT_THROW(allocate_shares(ArbiterStrategy::StaticFairShare, 6, over),
               util::ContractViolation);
  EXPECT_THROW(allocate_shares(ArbiterStrategy::StaticFairShare, 0, {}),
               util::ContractViolation);
  EXPECT_TRUE(allocate_shares(ArbiterStrategy::DemandWeighted, 4, {}).empty());
}

// ---------------------------------------------------------------------------
// JobEngine external cap

TEST(JobEngineCap, ExternalCapBindsAndDemandStaysHonest) {
  // A wide stage under pure-reactive wants ~12 instances; an external cap of
  // 2 must clip the pool while the demand signal keeps reporting the real
  // want (that asymmetry is what demand-weighted arbitration feeds on).
  const dag::Workflow wf = workload::linear_workflow(1, 48, 400.0);
  policies::PureReactivePolicy policy;
  sim::CloudConfig config = quiet_site(0);  // no site-side limit
  sim::RunOptions options;
  options.initial_instances = 1;
  sim::JobEngine engine(wf, policy, config, options);
  engine.set_instance_cap(2);
  engine.start();
  std::uint32_t demand_seen = 0;
  while (!engine.done()) {
    engine.step();
    EXPECT_LE(engine.live_instances(), 2u);
    demand_seen = std::max(demand_seen, engine.requested_pool());
  }
  const sim::RunResult result = engine.result();
  EXPECT_LE(result.peak_instances, 2u);
  EXPECT_GT(demand_seen, 2u);
  for (const sim::TaskRuntime& rec : result.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
}

TEST(JobEngineCap, ZeroCapBlocksAllGrowth) {
  // A share of 0 parks the tenant at its floor: no new instances, ever.
  // (kNoInstanceCap, not 0, is the "uncapped" sentinel.)
  const dag::Workflow wf = workload::linear_workflow(1, 16, 200.0);
  policies::PureReactivePolicy policy;
  sim::RunOptions options;
  options.initial_instances = 1;
  sim::JobEngine engine(wf, policy, quiet_site(0), options);
  engine.start();
  engine.set_instance_cap(0);
  while (!engine.done()) {
    engine.step();
    EXPECT_LE(engine.live_instances(), 1u);
  }
  EXPECT_LE(engine.result().peak_instances, 1u);
}

// ---------------------------------------------------------------------------
// EnsembleDriver

ArrivalProcess burst_stream(std::uint32_t jobs, double spacing_seconds) {
  std::vector<JobArrival> trace(jobs);
  for (std::uint32_t i = 0; i < jobs; ++i) {
    trace[i].arrival_seconds = spacing_seconds * i;
    trace[i].profile_index = i % 2;
  }
  return ArrivalProcess::fixed_trace(std::move(trace), 13);
}

TEST(EnsembleDriver, ReportsAreByteReproducible) {
  const sim::CloudConfig site = quiet_site();
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::DemandWeighted;
  options.site_cap = 6;
  const PolicyFactory factory =
      exp::policy_factory(exp::PolicyKind::ReactiveConserving);

  EnsembleDriver first(small_profiles(), burst_stream(5, 120.0), factory,
                       site, options);
  EnsembleDriver second(small_profiles(), burst_stream(5, 120.0), factory,
                        site, options);
  const EnsembleReport a = first.run();
  const EnsembleReport b = second.run();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.render(), b.render());
}

TEST(EnsembleDriver, CapacityInvariantHoldsAtEveryEvent) {
  // A tight burst (5 jobs, 1-minute spacing) on a 4-instance site keeps the
  // arbiter under pressure; the invariant must hold after every event under
  // every strategy.
  for (ArbiterStrategy strategy : all_strategies()) {
    EnsembleOptions options;
    options.strategy = strategy;
    options.site_cap = 4;
    EnsembleDriver driver(small_profiles(), burst_stream(5, 60.0),
                          exp::policy_factory(exp::PolicyKind::PureReactive),
                          quiet_site(), options);
    std::size_t samples = 0;
    driver.set_site_listener([&](const SiteSample& sample) {
      ++samples;
      ASSERT_LE(sample.live_total, sample.site_cap);
      std::uint32_t share_total = 0;
      for (std::size_t i = 0; i < sample.jobs.size(); ++i) {
        ASSERT_GE(sample.shares[i], sample.live[i])
            << strategy_name(strategy) << " preempted job "
            << sample.jobs[i];
        share_total += sample.shares[i];
      }
      ASSERT_LE(share_total, sample.site_cap);
    });
    const EnsembleReport report = driver.run();
    EXPECT_GT(samples, report.jobs.size());  // many events per job
    EXPECT_EQ(report.jobs.size(), 5u);
  }
}

TEST(EnsembleDriver, FifoAdmitsOneJobAtATime) {
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::FifoExclusive;
  options.site_cap = 4;
  options.dedicated_baseline = false;
  EnsembleDriver driver(small_profiles(), burst_stream(4, 30.0),
                        exp::policy_factory(exp::PolicyKind::PureReactive),
                        quiet_site(), options);
  driver.set_site_listener([](const SiteSample& sample) {
    std::size_t running = 0;
    for (std::uint32_t live : sample.live) running += live > 0 ? 1 : 0;
    ASSERT_LE(running, 1u) << "fifo-exclusive ran two jobs concurrently";
  });
  const EnsembleReport report = driver.run();
  // Later arrivals queue behind the head: at least one job waited.
  double max_wait = 0.0;
  for (const JobOutcome& j : report.jobs) {
    max_wait = std::max(max_wait, j.queue_wait_seconds);
    EXPECT_GE(j.queue_wait_seconds, 0.0);
  }
  EXPECT_GT(max_wait, 0.0);
}

TEST(EnsembleDriver, JobsRetireWithConsistentTimestamps) {
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::StaticFairShare;
  options.site_cap = 6;
  EnsembleDriver driver(small_profiles(), burst_stream(4, 300.0),
                        exp::policy_factory(exp::PolicyKind::ReactiveConserving),
                        quiet_site(), options);
  const EnsembleReport report = driver.run();
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const JobOutcome& j : report.jobs) {
    EXPECT_GE(j.admitted_seconds, j.arrival_seconds);
    EXPECT_GT(j.completed_seconds, j.admitted_seconds);
    EXPECT_DOUBLE_EQ(j.queue_wait_seconds,
                     j.admitted_seconds - j.arrival_seconds);
    EXPECT_DOUBLE_EQ(j.makespan_seconds,
                     j.completed_seconds - j.admitted_seconds);
    EXPECT_GT(j.dedicated_makespan_seconds, 0.0);
    EXPECT_GE(j.slowdown, 1.0 - 1e-9);  // sharing never beats a dedicated site
    EXPECT_GT(j.cost_units, 0.0);
  }
  EXPECT_GE(report.horizon_seconds,
            report.jobs.back().completed_seconds - 1e-9);
  EXPECT_GT(report.throughput_jobs_per_hour, 0.0);
  EXPECT_GT(report.site_utilization, 0.0);
  EXPECT_LE(report.site_utilization, 1.0 + 1e-9);
  EXPECT_GE(report.max_slowdown, report.mean_slowdown);
}

/// Delegates to reactive-conserving while cross-checking everything the
/// snapshot exposes against the tenant's own workflow: any leakage of another
/// tenant's tasks or instances would break the recorded sizes/ids.
class IsolationProbePolicy : public sim::ScalingPolicy {
 public:
  IsolationProbePolicy(std::uint32_t site_cap,
                       std::vector<std::string>* violations)
      : site_cap_(site_cap), violations_(violations) {}

  std::string name() const override { return inner_.name(); }

  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override {
    task_count_ = workflow.task_count();
    inner_.on_run_start(workflow, config);
  }

  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override {
    if (snapshot.tasks.size() != task_count_) {
      violations_->push_back("snapshot task vector is not this job's DAG");
    }
    if (snapshot.pool_cap == sim::kNoInstanceCap) {
      violations_->push_back("pool_cap is uncapped under an arbiter");
    } else if (snapshot.pool_cap == 0 || snapshot.pool_cap > site_cap_) {
      // An admitted tenant's share is floored at 1 (and at its live count),
      // so a genuine zero share must never reach a policy in these runs.
      violations_->push_back("pool_cap outside (0, site_cap]");
    }
    if (snapshot.instances.size() > snapshot.pool_cap) {
      violations_->push_back("snapshot shows more instances than the share");
    }
    for (const sim::InstanceObservation& inst : snapshot.instances) {
      for (dag::TaskId t : inst.running_tasks) {
        if (t >= task_count_) {
          violations_->push_back("foreign task id on a tenant instance");
        }
      }
    }
    for (dag::TaskId t : snapshot.ready_queue) {
      if (t >= task_count_) {
        violations_->push_back("foreign task id in the ready queue");
      }
    }
    return inner_.plan(snapshot);
  }

 private:
  std::uint32_t site_cap_;
  std::vector<std::string>* violations_;
  std::size_t task_count_ = 0;
  policies::ReactiveConservingPolicy inner_;
};

TEST(EnsembleDriver, TenantSnapshotsAreIsolated) {
  // Two profiles with different task counts run concurrently; every
  // snapshot any tenant's policy sees must describe only that tenant.
  EnsembleOptions options;
  options.strategy = ArbiterStrategy::StaticFairShare;
  options.site_cap = 6;
  options.dedicated_baseline = false;
  std::vector<std::string> violations;
  EnsembleDriver driver(
      small_profiles(), burst_stream(4, 60.0),
      [&]() {
        return std::make_unique<IsolationProbePolicy>(6, &violations);
      },
      quiet_site(), options);
  const EnsembleReport report = driver.run();
  EXPECT_EQ(report.jobs.size(), 4u);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();
}

TEST(EnsembleDriver, RejectsMalformedSetups) {
  const sim::CloudConfig site = quiet_site();
  const PolicyFactory factory =
      exp::policy_factory(exp::PolicyKind::PureReactive);
  EXPECT_THROW(EnsembleDriver({}, burst_stream(2, 60.0), factory, site),
               util::ContractViolation);
  std::vector<JobArrival> bad(1);
  bad[0].profile_index = 99;
  EXPECT_THROW(EnsembleDriver(small_profiles(),
                              ArrivalProcess::fixed_trace(bad), factory, site),
               util::ContractViolation);
  EnsembleOptions zero_cap;
  zero_cap.site_cap = 0;
  EXPECT_THROW(EnsembleDriver(small_profiles(), burst_stream(2, 60.0), factory,
                              site, zero_cap),
               util::ContractViolation);
}

}  // namespace
}  // namespace wire::ensemble
