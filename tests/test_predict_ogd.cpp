// Tests for the online gradient descent model (paper Algorithm 1 / Eq. 1).
#include <gtest/gtest.h>

#include <cmath>

#include "predict/ogd.h"

namespace wire::predict {
namespace {

std::vector<TrainingPoint> linear_points(double a0, double a1,
                                         std::initializer_list<double> ds) {
  std::vector<TrainingPoint> out;
  for (double d : ds) out.push_back({d, a0 + a1 * d});
  return out;
}

TEST(OgdModel, StartsAtZeroCoefficients) {
  OgdModel model;
  EXPECT_DOUBLE_EQ(model.alpha0(), 0.0);
  EXPECT_DOUBLE_EQ(model.alpha1(), 0.0);
  EXPECT_DOUBLE_EQ(model.predict(42.0), 0.0);
  EXPECT_EQ(model.epochs(), 0u);
}

TEST(OgdModel, EmptyUpdateIsANoOp) {
  OgdModel model;
  model.update({});
  EXPECT_EQ(model.epochs(), 0u);
  EXPECT_DOUBLE_EQ(model.predict(10.0), 0.0);
}

TEST(OgdModel, ConvergesToLinearRelation) {
  // Repeated epochs over the same training set converge to the generating
  // line (this is the n-th MAPE iteration refining the stage model).
  OgdModel model;
  const auto points = linear_points(2.0, 0.5, {1.0, 2.0, 4.0, 8.0, 16.0});
  for (int i = 0; i < 500; ++i) model.update(points);
  EXPECT_NEAR(model.predict(6.0), 5.0, 0.15);
  EXPECT_NEAR(model.predict(12.0), 8.0, 0.15);
  EXPECT_NEAR(model.alpha0(), 2.0, 0.4);
  EXPECT_NEAR(model.alpha1(), 0.5, 0.05);
}

TEST(OgdModel, OneEpochMovesTowardTheData) {
  OgdModel model;
  const auto points = linear_points(0.0, 1.0, {1.0, 2.0, 3.0});
  model.update(points);
  EXPECT_EQ(model.epochs(), 1u);
  // One step from zero with a positive target must produce a positive
  // prediction below the target (lr = 0.1 undershoots).
  const double p = model.predict(2.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 2.0);
}

TEST(OgdModel, StableWithLargeRawFeatures) {
  // Raw Algorithm 1 diverges when d ~ hundreds of MB; the normalized-space
  // implementation must stay bounded and converge.
  OgdModel model;
  const auto points =
      linear_points(5.0, 0.05, {100.0, 250.0, 400.0, 800.0});
  for (int i = 0; i < 1000; ++i) model.update(points);
  EXPECT_NEAR(model.predict(500.0), 30.0, 1.5);
  EXPECT_TRUE(std::isfinite(model.alpha0()));
  EXPECT_TRUE(std::isfinite(model.alpha1()));
}

TEST(OgdModel, PredictionsClampedAtZero) {
  // A steep negative-intercept fit must not predict negative durations.
  OgdModel model;
  const auto points = linear_points(-10.0, 2.0, {6.0, 8.0, 10.0});
  for (int i = 0; i < 500; ++i) model.update(points);
  EXPECT_DOUBLE_EQ(model.predict(0.0), std::max(0.0, model.predict(0.0)));
  EXPECT_GE(model.predict(1.0), 0.0);
}

TEST(OgdModel, IncrementalRefinementAcrossGrowingTrainingSets) {
  // MAPE reality: the training set grows as tasks complete; the model keeps
  // its coefficients between iterations and keeps improving.
  OgdModel model;
  std::vector<TrainingPoint> points;
  double err_early = 0.0, err_late = 0.0;
  for (int n = 1; n <= 60; ++n) {
    const double d = static_cast<double>(n % 12 + 1);
    points.push_back({d, 3.0 + 0.8 * d});
    model.update(points);
    const double err = std::abs(model.predict(6.0) - (3.0 + 0.8 * 6.0));
    if (n == 5) err_early = err;
    if (n == 60) err_late = err;
  }
  EXPECT_LT(err_late, err_early);
  EXPECT_NEAR(model.predict(6.0), 7.8, 1.0);
}

TEST(OgdModel, ConstantTargetsFitIntercept) {
  OgdModel model;
  const auto points = linear_points(7.0, 0.0, {1.0, 5.0, 9.0});
  for (int i = 0; i < 800; ++i) model.update(points);
  EXPECT_NEAR(model.predict(3.0), 7.0, 0.2);
  EXPECT_NEAR(model.alpha1(), 0.0, 0.1);
}

TEST(OgdModel, LearningRateControlsStepSize) {
  OgdModel slow(0.01), fast(0.1);
  const auto points = linear_points(0.0, 1.0, {1.0, 2.0, 3.0});
  slow.update(points);
  fast.update(points);
  EXPECT_LT(slow.predict(2.0), fast.predict(2.0));
}

}  // namespace
}  // namespace wire::predict
