// Integration tests of the run driver: full simulations under static and
// elastic policies, exactness under zero variability, billing consistency,
// determinism, and restart behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "dag/analysis.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::sim {
namespace {

/// Cloud with no stochastic variability and free/instant transfers: actual
/// times equal the DAG's reference times exactly.
CloudConfig exact_cloud(double u, std::uint32_t slots = 4,
                        std::uint32_t max_instances = 12) {
  CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = u;
  config.slots_per_instance = slots;
  config.max_instances = max_instances;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 1e12;
  return config;
}

TEST(Driver, SingleTaskSequentialExactness) {
  // One stage, one task of 100 s on a 1-slot instance: makespan 100 s.
  const dag::Workflow wf = workload::linear_workflow(1, 1, 100.0);
  policies::StaticPolicy policy(1);
  RunOptions options;
  options.initial_instances = 1;
  const RunResult r = simulate(wf, policy, exact_cloud(900.0, 1), options);
  EXPECT_DOUBLE_EQ(r.makespan, 100.0);
  EXPECT_DOUBLE_EQ(r.cost_units, 1.0);
  EXPECT_EQ(r.peak_instances, 1u);
  EXPECT_EQ(r.task_restarts, 0u);
}

TEST(Driver, SequentialPackingOnOneSlot) {
  // N=10 tasks of 50 s on one 1-slot instance: makespan 500 s.
  const dag::Workflow wf = workload::linear_workflow(1, 10, 50.0);
  policies::StaticPolicy policy(1);
  RunOptions options;
  options.initial_instances = 1;
  const RunResult r = simulate(wf, policy, exact_cloud(900.0, 1), options);
  EXPECT_DOUBLE_EQ(r.makespan, 500.0);
  EXPECT_DOUBLE_EQ(r.cost_units, 1.0);
  EXPECT_DOUBLE_EQ(r.busy_slot_seconds, 500.0);
}

TEST(Driver, ParallelStageUsesAllSlots) {
  // 8 tasks of 50 s on 2 instances x 4 slots: all run at once, makespan 50 s.
  const dag::Workflow wf = workload::linear_workflow(1, 8, 50.0);
  policies::StaticPolicy policy(2);
  RunOptions options;
  options.initial_instances = 2;
  const RunResult r = simulate(wf, policy, exact_cloud(900.0, 4), options);
  EXPECT_DOUBLE_EQ(r.makespan, 50.0);
  EXPECT_DOUBLE_EQ(r.cost_units, 2.0);
}

TEST(Driver, StageBarrierIsRespected) {
  // 2 stages x 4 tasks of 30 s, all-to-all: second stage starts only after
  // the first finishes. 4 slots -> each stage takes 30 s.
  const dag::Workflow wf = workload::linear_workflow(2, 4, 30.0);
  policies::StaticPolicy policy(1);
  RunOptions options;
  options.initial_instances = 1;
  const RunResult r = simulate(wf, policy, exact_cloud(900.0, 4), options);
  EXPECT_DOUBLE_EQ(r.makespan, 60.0);
  // Start times of stage-1 tasks must be >= 30.
  for (dag::TaskId t : wf.stage_tasks(1)) {
    EXPECT_GE(r.task_records[t].occupancy_start, 30.0);
  }
}

TEST(Driver, MakespanNeverBeatsCriticalPath) {
  const dag::Workflow wf =
      workload::make_workflow(workload::tpch1_profile(workload::Scale::Small),
                              7);
  policies::StaticPolicy policy(12, "full-site");
  RunOptions options;
  options.initial_instances = 12;
  options.seed = 3;
  const RunResult r = simulate(wf, policy, exact_cloud(900.0), options);
  EXPECT_GE(r.makespan, dag::critical_path_seconds(wf) - 1e-9);
  EXPECT_EQ(r.task_restarts, 0u);
}

TEST(Driver, AllTasksCompleteWithKickstartRecords) {
  const dag::Workflow wf =
      workload::make_workflow(workload::tpch6_profile(workload::Scale::Small),
                              7);
  policies::StaticPolicy policy(4);
  RunOptions options;
  options.initial_instances = 4;
  const RunResult r = simulate(wf, policy, exact_cloud(900.0), options);
  ASSERT_EQ(r.task_records.size(), wf.task_count());
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, TaskPhase::Completed);
    EXPECT_GE(rec.exec_time, 0.0);
    EXPECT_GE(rec.completed_at, 0.0);
    EXPECT_EQ(rec.attempts, 1u);
  }
}

TEST(Driver, DeterministicInSeed) {
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Small), 7);
  CloudConfig config = exact_cloud(900.0);
  config.variability = VariabilityConfig{};  // full stochastic model
  RunOptions options;
  options.seed = 99;
  options.initial_instances = 1;

  policies::PureReactivePolicy p1, p2;
  const RunResult a = simulate(wf, p1, config, options);
  const RunResult b = simulate(wf, p2, config, options);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.cost_units, b.cost_units);
  EXPECT_EQ(a.control_ticks, b.control_ticks);

  options.seed = 100;
  policies::PureReactivePolicy p3;
  const RunResult c = simulate(wf, p3, config, options);
  EXPECT_NE(a.makespan, c.makespan);
}

TEST(Driver, ReactiveGrowsFromOneInstance) {
  // A wide stage under pure-reactive: the pool must grow past 1.
  const dag::Workflow wf = workload::linear_workflow(1, 48, 400.0);
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.initial_instances = 1;
  const RunResult r = simulate(wf, policy, exact_cloud(60.0), options);
  EXPECT_GT(r.peak_instances, 4u);
  EXPECT_LE(r.peak_instances, 12u);  // site cap respected
  // Faster than sequential on one instance (48*400/4 = 4800 s).
  EXPECT_LT(r.makespan, 4800.0);
}

TEST(Driver, SiteCapacityClipsGrowth) {
  const dag::Workflow wf = workload::linear_workflow(1, 200, 300.0);
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.initial_instances = 1;
  CloudConfig config = exact_cloud(60.0);
  config.max_instances = 3;
  const RunResult r = simulate(wf, policy, config, options);
  EXPECT_LE(r.peak_instances, 3u);
}

TEST(Driver, ImmediateReleaseResubmitsRunningTasks) {
  // Pure-reactive shrinks immediately when the load collapses; a long
  // straggler stage forces releases with tasks in flight at least sometimes.
  // The invariant: every task still completes exactly once.
  const dag::Workflow wf = workload::linear_workflow(2, 24, 240.0);
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.initial_instances = 1;
  const RunResult r = simulate(wf, policy, exact_cloud(60.0), options);
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, TaskPhase::Completed);
  }
  EXPECT_DOUBLE_EQ(r.busy_slot_seconds,
                   24 * 2 * 240.0);  // successful occupancy only
}

TEST(Driver, UtilizationIsAFraction) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch1_profile(workload::Scale::Small), 7);
  policies::StaticPolicy policy(12, "full-site");
  RunOptions options;
  options.initial_instances = 12;
  const RunResult r = simulate(wf, policy, exact_cloud(60.0), options);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
}

TEST(Driver, PoolTimelineIsRecordedOnRequest) {
  const dag::Workflow wf = workload::linear_workflow(1, 16, 400.0);
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.initial_instances = 1;
  options.record_pool_timeline = true;
  const RunResult r = simulate(wf, policy, exact_cloud(60.0), options);
  ASSERT_FALSE(r.pool_timeline.empty());
  EXPECT_DOUBLE_EQ(r.pool_timeline.front().time, 0.0);
  for (const PoolSample& s : r.pool_timeline) {
    EXPECT_LE(s.live_instances, 12u);
  }
}

/// Releases everything and never grows again: the run can make no progress,
/// which must trip the max_sim_seconds guard instead of looping forever.
class StallPolicy final : public ScalingPolicy {
 public:
  std::string name() const override { return "stall"; }
  void on_run_start(const dag::Workflow&, const CloudConfig&) override {}
  PoolCommand plan(const MonitorSnapshot& snapshot) override {
    PoolCommand cmd;
    for (const InstanceObservation& inst : snapshot.instances) {
      cmd.releases.push_back({inst.id, /*at_charge_boundary=*/false});
    }
    return cmd;
  }
};

TEST(Driver, StuckPolicyTripsMaxSimSeconds) {
  const dag::Workflow wf = workload::linear_workflow(1, 4, 100.0);
  StallPolicy policy;
  RunOptions options;
  options.initial_instances = 1;
  options.max_sim_seconds = 3600.0;
  EXPECT_THROW(simulate(wf, policy, exact_cloud(900.0), options),
               std::runtime_error);
}

TEST(Driver, PoolTimelineSamplesEveryControlTick) {
  const dag::Workflow wf = workload::linear_workflow(2, 8, 300.0);
  policies::PureReactivePolicy policy;
  RunOptions options;
  options.initial_instances = 1;
  options.record_pool_timeline = true;
  const RunResult r = simulate(wf, policy, exact_cloud(60.0), options);
  // One sample per control tick, in non-decreasing time order, and the live
  // count matches what the run actually peaked at.
  ASSERT_EQ(r.pool_timeline.size(), r.control_ticks);
  std::uint32_t peak = 0;
  for (std::size_t i = 0; i < r.pool_timeline.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(r.pool_timeline[i].time, r.pool_timeline[i - 1].time);
    }
    peak = std::max(peak, r.pool_timeline[i].live_instances);
  }
  EXPECT_EQ(peak, r.peak_instances);

  RunOptions without = options;
  without.record_pool_timeline = false;
  policies::PureReactivePolicy p2;
  EXPECT_TRUE(simulate(wf, p2, exact_cloud(60.0), without).pool_timeline.empty());
}

TEST(Driver, InvalidConfigurationThrows) {
  const dag::Workflow wf = workload::linear_workflow(1, 1, 1.0);
  policies::StaticPolicy policy(1);
  CloudConfig config = exact_cloud(900.0);
  config.lag_seconds = 0.0;
  EXPECT_THROW(simulate(wf, policy, config), util::ContractViolation);
  config = exact_cloud(900.0);
  config.slots_per_instance = 0;
  EXPECT_THROW(simulate(wf, policy, config), util::ContractViolation);
}

TEST(Driver, CostEqualsPerInstanceCeilings) {
  // 4 tasks of 1000 s on one 4-slot instance, u = 900: alive 1000 s -> 2
  // units exactly.
  const dag::Workflow wf = workload::linear_workflow(1, 4, 1000.0);
  policies::StaticPolicy policy(1);
  RunOptions options;
  options.initial_instances = 1;
  const RunResult r = simulate(wf, policy, exact_cloud(900.0), options);
  EXPECT_DOUBLE_EQ(r.makespan, 1000.0);
  EXPECT_DOUBLE_EQ(r.cost_units, 2.0);
}

}  // namespace
}  // namespace wire::sim
