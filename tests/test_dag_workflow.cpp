// Unit tests for the workflow DAG model: builder validation, adjacency,
// topological order, analysis, and serialization round-trips.
#include <gtest/gtest.h>

#include <vector>

#include "dag/analysis.h"
#include "dag/serialize.h"
#include "dag/workflow.h"
#include "util/check.h"

namespace wire::dag {
namespace {

/// Diamond: a -> {b, c} -> d, two stages for the middle pair.
Workflow make_diamond() {
  WorkflowBuilder builder("diamond");
  const StageId s0 = builder.add_stage("root");
  const StageId s1 = builder.add_stage("middle");
  const StageId s2 = builder.add_stage("sink");
  const TaskId a = builder.add_task(s0, "a", 10.0, 5.0, 4.0, {});
  const TaskId b = builder.add_task(s1, "b", 5.0, 2.0, 2.0, {a});
  const TaskId c = builder.add_task(s1, "c", 5.0, 2.0, 6.0, {a});
  builder.add_task(s2, "d", 4.0, 1.0, 3.0, {b, c});
  return builder.build();
}

TEST(WorkflowBuilder, BuildsDiamond) {
  const Workflow wf = make_diamond();
  EXPECT_EQ(wf.task_count(), 4u);
  EXPECT_EQ(wf.stage_count(), 3u);
  EXPECT_EQ(wf.roots().size(), 1u);
  EXPECT_EQ(wf.sinks().size(), 1u);
  EXPECT_DOUBLE_EQ(wf.aggregate_ref_exec_seconds(), 15.0);
  EXPECT_DOUBLE_EQ(wf.input_dataset_mb(), 10.0);
}

TEST(WorkflowBuilder, AdjacencyIsConsistent) {
  const Workflow wf = make_diamond();
  EXPECT_TRUE(wf.predecessors(0).empty());
  ASSERT_EQ(wf.successors(0).size(), 2u);
  EXPECT_EQ(wf.successors(0)[0], 1u);
  EXPECT_EQ(wf.successors(0)[1], 2u);
  ASSERT_EQ(wf.predecessors(3).size(), 2u);
  EXPECT_EQ(wf.predecessors(3)[0], 1u);
  EXPECT_EQ(wf.predecessors(3)[1], 2u);
  EXPECT_TRUE(wf.successors(3).empty());
}

TEST(WorkflowBuilder, StageMembership) {
  const Workflow wf = make_diamond();
  ASSERT_EQ(wf.stage_tasks(1).size(), 2u);
  EXPECT_EQ(wf.stage_tasks(1)[0], 1u);
  EXPECT_EQ(wf.stage_tasks(1)[1], 2u);
  EXPECT_EQ(wf.task(2).stage, 1u);
}

TEST(WorkflowBuilder, TopologicalOrderRespectsEdges) {
  const Workflow wf = make_diamond();
  const auto& topo = wf.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (const TaskSpec& t : wf.tasks()) {
    for (TaskId pred : wf.predecessors(t.id)) {
      EXPECT_LT(pos[pred], pos[t.id]);
    }
  }
}

TEST(WorkflowBuilder, DuplicatePredecessorsAreDeduplicated) {
  WorkflowBuilder builder("dup");
  const StageId s0 = builder.add_stage("s0");
  const StageId s1 = builder.add_stage("s1");
  const TaskId a = builder.add_task(s0, "a", 1.0, 1.0, 1.0, {});
  builder.add_task(s1, "b", 1.0, 1.0, 1.0, {a, a, a});
  const Workflow wf = builder.build();
  EXPECT_EQ(wf.predecessors(1).size(), 1u);
}

TEST(WorkflowBuilder, RejectsForwardDependencies) {
  WorkflowBuilder builder("bad");
  const StageId s0 = builder.add_stage("s0");
  EXPECT_THROW(builder.add_task(s0, "a", 1.0, 1.0, 1.0, {5}),
               util::ContractViolation);
}

TEST(WorkflowBuilder, RejectsUnknownStage) {
  WorkflowBuilder builder("bad");
  EXPECT_THROW(builder.add_task(99, "a", 1.0, 1.0, 1.0, {}),
               util::ContractViolation);
}

TEST(WorkflowBuilder, RejectsEmptyWorkflow) {
  WorkflowBuilder builder("empty");
  EXPECT_THROW(builder.build(), util::ContractViolation);
}

TEST(WorkflowBuilder, RejectsEmptyStage) {
  WorkflowBuilder builder("bad");
  const StageId s0 = builder.add_stage("s0");
  builder.add_stage("never-used");
  builder.add_task(s0, "a", 1.0, 1.0, 1.0, {});
  EXPECT_THROW(builder.build(), util::ContractViolation);
}

TEST(WorkflowBuilder, RejectsNegativeProfile) {
  WorkflowBuilder builder("bad");
  const StageId s0 = builder.add_stage("s0");
  EXPECT_THROW(builder.add_task(s0, "a", -1.0, 1.0, 1.0, {}),
               util::ContractViolation);
  EXPECT_THROW(builder.add_task(s0, "a", 1.0, 1.0, -2.0, {}),
               util::ContractViolation);
}

TEST(Analysis, LevelsAndWidths) {
  const Workflow wf = make_diamond();
  const auto levels = task_levels(wf);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 2u);
  const auto widths = width_profile(wf);
  ASSERT_EQ(widths.size(), 3u);
  EXPECT_EQ(widths[0], 1u);
  EXPECT_EQ(widths[1], 2u);
  EXPECT_EQ(widths[2], 1u);
  EXPECT_EQ(max_width(wf), 2u);
}

TEST(Analysis, CriticalPath) {
  // Longest path is a(4) -> c(6) -> d(3) = 13.
  EXPECT_DOUBLE_EQ(critical_path_seconds(make_diamond()), 13.0);
}

TEST(Analysis, StageSummaries) {
  const auto summaries = summarize_stages(make_diamond());
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_EQ(summaries[1].task_count, 2u);
  EXPECT_DOUBLE_EQ(summaries[1].mean_ref_exec_seconds, 4.0);
  EXPECT_DOUBLE_EQ(summaries[1].min_ref_exec_seconds, 2.0);
  EXPECT_DOUBLE_EQ(summaries[1].max_ref_exec_seconds, 6.0);
}

TEST(Analysis, StageClassBoundaries) {
  EXPECT_EQ(classify_stage(5.0), StageClass::Short);
  EXPECT_EQ(classify_stage(10.0), StageClass::Short);
  EXPECT_EQ(classify_stage(10.01), StageClass::Medium);
  EXPECT_EQ(classify_stage(30.0), StageClass::Medium);
  EXPECT_EQ(classify_stage(30.01), StageClass::Long);
}

TEST(Analysis, WorkflowSummaryRanges) {
  const auto summary = summarize_workflow(make_diamond());
  EXPECT_EQ(summary.task_count, 4u);
  EXPECT_EQ(summary.stage_count, 3u);
  EXPECT_EQ(summary.min_stage_tasks, 1u);
  EXPECT_EQ(summary.max_stage_tasks, 2u);
  EXPECT_EQ(summary.task_type_mix, "short");
}

TEST(Analysis, LayeredStageCheck) {
  EXPECT_TRUE(stages_are_layered(make_diamond()));
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Workflow original = make_diamond();
  const Workflow parsed = from_string(to_string(original));
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.task_count(), original.task_count());
  ASSERT_EQ(parsed.stage_count(), original.stage_count());
  for (TaskId t = 0; t < original.task_count(); ++t) {
    EXPECT_EQ(parsed.task(t).name, original.task(t).name);
    EXPECT_EQ(parsed.task(t).stage, original.task(t).stage);
    EXPECT_DOUBLE_EQ(parsed.task(t).input_mb, original.task(t).input_mb);
    EXPECT_DOUBLE_EQ(parsed.task(t).ref_exec_seconds,
                     original.task(t).ref_exec_seconds);
    ASSERT_EQ(parsed.predecessors(t).size(), original.predecessors(t).size());
    for (std::size_t i = 0; i < parsed.predecessors(t).size(); ++i) {
      EXPECT_EQ(parsed.predecessors(t)[i], original.predecessors(t)[i]);
    }
  }
}

TEST(Serialize, EscapesAwkwardNames) {
  WorkflowBuilder builder("name with spaces");
  const StageId s0 = builder.add_stage("stage one", "");
  builder.add_task(s0, "task\twith\ttabs", 1.0, 0.0, 1.0, {});
  const Workflow parsed = from_string(to_string(builder.build()));
  EXPECT_EQ(parsed.name(), "name with spaces");
  EXPECT_EQ(parsed.stage(0).name, "stage one");
  EXPECT_EQ(parsed.stage(0).executable, "");
  EXPECT_EQ(parsed.task(0).name, "task\twith\ttabs");
}

TEST(Serialize, TokenEscapeRoundTrip) {
  for (const std::string& raw :
       {std::string{}, std::string{"plain"}, std::string{"a b"},
        std::string{"back\\slash"}, std::string{"new\nline"}}) {
    EXPECT_EQ(unescape_token(escape_token(raw)), raw);
  }
}

TEST(Serialize, MalformedInputThrows) {
  EXPECT_THROW(from_string("garbage"), util::ContractViolation);
  EXPECT_THROW(from_string("workflow w\nstage 0 s e\n"),
               util::ContractViolation);
  EXPECT_THROW(from_string("workflow w\nbogus 1 2 3\nend\n"),
               util::ContractViolation);
}

}  // namespace
}  // namespace wire::dag
