// Property-based sweeps: system-wide invariants checked across randomized
// workflows, every policy, and a spread of cloud configurations
// (parameterized gtest, the project's fuzzing layer).
//
// Invariants (each must hold for every combination):
//   I1  every task completes exactly once (phase Completed, attempts >= 1)
//   I2  makespan >= critical path of the DAG (no time travel)
//   I3  cost >= the work lower bound ceil(busy / (slots * u)) and >= 1
//   I4  utilization in (0, 1]
//   I5  busy slot-seconds >= sum of actual exec times (occupancy covers exec)
//   I6  wasted slot-seconds == 0 iff no restarts
//   I7  identical seeds reproduce identical results
//   I8  the site capacity is never exceeded
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/controller.h"
#include "dag/analysis.h"
#include "core/steering.h"
#include "exp/settings.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace wire {
namespace {

enum class Kind { FullSite, PureReactive, ReactiveConserving, Wire, Oracle };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::FullSite: return "full-site";
    case Kind::PureReactive: return "pure-reactive";
    case Kind::ReactiveConserving: return "reactive-conserving";
    case Kind::Wire: return "wire";
    case Kind::Oracle: return "wire-oracle";
  }
  return "?";
}

std::unique_ptr<sim::ScalingPolicy> make(Kind k) {
  switch (k) {
    case Kind::FullSite:
      return std::make_unique<policies::StaticPolicy>(6, "full-site");
    case Kind::PureReactive:
      return std::make_unique<policies::PureReactivePolicy>();
    case Kind::ReactiveConserving:
      return std::make_unique<policies::ReactiveConservingPolicy>();
    case Kind::Wire:
      return std::make_unique<core::WireController>();
    case Kind::Oracle: {
      core::WireOptions options;
      options.oracle_estimator = true;
      return std::make_unique<core::WireController>(options);
    }
  }
  return nullptr;
}

using Param = std::tuple<Kind, int /*seed*/, int /*config variant*/>;

class PolicyInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(PolicyInvariants, HoldOnRandomWorkflows) {
  const auto [kind, seed, variant] = GetParam();

  workload::RandomDagOptions dag_options;
  dag_options.min_layers = 2;
  dag_options.max_layers = 5;
  dag_options.min_width = 1;
  dag_options.max_width = 20;
  dag_options.mean_exec_seconds = variant == 2 ? 300.0 : 30.0;
  const dag::Workflow wf = workload::random_layered(
      dag_options, util::derive_seed(777, static_cast<std::uint64_t>(seed)));

  sim::CloudConfig config;
  config.slots_per_instance = variant == 0 ? 1 : 3;
  config.max_instances = 6;
  switch (variant) {
    case 0:  // tiny unit, quick control
      config.lag_seconds = 20.0;
      config.charging_unit_seconds = 30.0;
      break;
    case 1:  // unit ~ task scale, shared fabric + overheads
      config.lag_seconds = 45.0;
      config.charging_unit_seconds = 120.0;
      config.variability.aggregate_bandwidth_mb_per_s = 120.0;
      config.dispatch_overhead_seconds = 4.0;
      break;
    default:  // long unit, long tasks
      config.lag_seconds = 90.0;
      config.charging_unit_seconds = 1200.0;
      break;
  }

  auto policy = make(kind);
  sim::RunOptions options;
  options.seed = util::derive_seed(3, static_cast<std::uint64_t>(seed));
  options.initial_instances =
      kind == Kind::FullSite ? config.max_instances : 1;

  const sim::RunResult a = sim::simulate(wf, *policy, config, options);

  // I1: every task completed.
  double total_exec = 0.0;
  for (const sim::TaskRuntime& rec : a.task_records) {
    ASSERT_EQ(rec.phase, sim::TaskPhase::Completed) << kind_name(kind);
    EXPECT_GE(rec.attempts, 1u);
    EXPECT_GE(rec.exec_time, 0.0);
    total_exec += rec.exec_time;
  }
  // I2: makespan bounded below by the critical path over *actual* times is
  // hard to compute without re-walking; the reference critical path scaled
  // by the fastest possible instance factor is a sound relaxation (factors
  // are lognormal around 1; allow generous slack).
  EXPECT_GT(a.makespan, 0.0);
  // I3: the bill covers the busy time.
  const double lower_bound = std::max(
      1.0, std::ceil(a.busy_slot_seconds /
                     (config.slots_per_instance *
                      config.charging_unit_seconds) -
                     1e-9));
  EXPECT_GE(a.cost_units, lower_bound) << kind_name(kind);
  // I4: utilization is a fraction.
  EXPECT_GT(a.utilization, 0.0);
  EXPECT_LE(a.utilization, 1.0 + 1e-9);
  // I5: occupancy covers execution.
  EXPECT_GE(a.busy_slot_seconds, total_exec - 1e-6);
  // I6: waste iff restarts.
  if (a.task_restarts == 0) {
    EXPECT_DOUBLE_EQ(a.wasted_slot_seconds, 0.0);
  } else {
    EXPECT_GT(a.wasted_slot_seconds, 0.0);
  }
  // I8: capacity respected.
  EXPECT_LE(a.peak_instances, config.max_instances);

  // I7: determinism.
  auto policy2 = make(kind);
  const sim::RunResult b = sim::simulate(wf, *policy2, config, options);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.cost_units, b.cost_units);
  EXPECT_EQ(a.task_restarts, b.task_restarts);
  EXPECT_EQ(a.control_ticks, b.control_ticks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyInvariants,
    ::testing::Combine(::testing::Values(Kind::FullSite, Kind::PureReactive,
                                         Kind::ReactiveConserving, Kind::Wire,
                                         Kind::Oracle),
                       ::testing::Range(0, 6), ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = kind_name(std::get<0>(info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param)) + "_v" +
             std::to_string(std::get<2>(info.param));
    });

/// Algorithm 3 properties over randomized loads.
class ResizePoolProperties : public ::testing::TestWithParam<int> {};

TEST_P(ResizePoolProperties, HoldOnRandomLoads) {
  util::Rng rng(util::derive_seed(55, static_cast<std::uint64_t>(GetParam())));
  const double u = rng.uniform(60.0, 3600.0);
  const std::uint32_t l =
      static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 400));
  std::vector<double> load(n);
  double total = 0.0;
  for (double& v : load) {
    v = rng.uniform(0.0, 3.0 * u);
    total += v;
  }

  const std::uint32_t p = core::resize_pool(load, u, l);
  // P1: non-empty load always plans at least one instance.
  EXPECT_GE(p, 1u);
  // P2: never more instances than one slot per task.
  EXPECT_LE(p, (n + l - 1) / l);
  // P3: work conservation — each counted instance absorbed >= u of load
  // except the final leftover one, so p <= total/(u) + 1 ... with the caveat
  // that tasks longer than u retire a bin early. Bound via total + n*u.
  EXPECT_LE(static_cast<double>(p), total / u + 1.0 + 1e-9);
  // P4: monotonicity in the leftover threshold — a stricter threshold can
  // only add instances.
  EXPECT_GE(core::resize_pool(load, u, l, 0.01),
            core::resize_pool(load, u, l, 0.99));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResizePoolProperties, ::testing::Range(0, 40));

}  // namespace
}  // namespace wire
