// Tests for the drain-reclaim improvement: cancelling a scheduled drain
// restores capacity instantly instead of paying the provisioning lag.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/steering.h"
#include "sim/driver.h"
#include "workload/generators.h"

namespace wire::core {
namespace {

sim::CloudConfig config_900() {
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  config.max_instances = 12;
  return config;
}

TEST(Reclaim, SteerCancelsDrainsBeforeBooting) {
  // Plan calls for 3 instances; 1 ready + 2 draining are live. With reclaim
  // the two drains are cancelled and only... none booted; without, two
  // boots are ordered.
  LookaheadResult lookahead;
  for (int i = 0; i < 12; ++i) {
    lookahead.upcoming.push_back(
        UpcomingTask{1800.0, static_cast<dag::TaskId>(i), false});
  }
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 12;
  for (sim::InstanceId id = 0; id < 3; ++id) {
    sim::InstanceObservation inst;
    inst.id = id;
    inst.time_to_next_charge = 400.0;
    inst.draining = id > 0;
    inst.free_slots = 4;
    snap.instances.push_back(inst);
  }
  // m counts non-draining only (1); p = 3 (12 tasks x 1800 s on 4 slots).
  const sim::PoolCommand plain =
      steer(lookahead, snap, config_900(), nullptr, false);
  EXPECT_EQ(plain.grow, 2u);
  EXPECT_TRUE(plain.cancel_drains.empty());

  const sim::PoolCommand reclaim =
      steer(lookahead, snap, config_900(), nullptr, true);
  EXPECT_EQ(reclaim.grow, 0u);
  ASSERT_EQ(reclaim.cancel_drains.size(), 2u);
  EXPECT_EQ(reclaim.cancel_drains[0], 1u);
  EXPECT_EQ(reclaim.cancel_drains[1], 2u);
}

TEST(Reclaim, PartialReclaimStillBoots) {
  LookaheadResult lookahead;
  for (int i = 0; i < 16; ++i) {
    lookahead.upcoming.push_back(
        UpcomingTask{1800.0, static_cast<dag::TaskId>(i), false});
  }
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 16;
  sim::InstanceObservation ready;
  ready.id = 0;
  ready.time_to_next_charge = 400.0;
  ready.free_slots = 4;
  snap.instances.push_back(ready);
  sim::InstanceObservation draining = ready;
  draining.id = 1;
  draining.draining = true;
  snap.instances.push_back(draining);
  // p = 4, m = 1: reclaim one drain, boot the remaining two.
  const sim::PoolCommand cmd =
      steer(lookahead, snap, config_900(), nullptr, true);
  EXPECT_EQ(cmd.cancel_drains.size(), 1u);
  EXPECT_EQ(cmd.grow, 2u);
}

TEST(Reclaim, EndToEndRunCompletesWithReclaimEnabled) {
  // A bursty two-wave workload under a small charging unit exercises the
  // drain/reclaim cycle; the run must complete correctly and never exceed
  // the site cap.
  const dag::Workflow wf = workload::linear_workflow(3, 24, 90.0);
  WireOptions options;
  options.reclaim_draining = true;
  WireController controller(options);
  sim::CloudConfig config = config_900();
  config.charging_unit_seconds = 120.0;
  config.lag_seconds = 60.0;
  sim::RunOptions run_options;
  run_options.seed = 4;
  run_options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, controller, config, run_options);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
  EXPECT_LE(r.peak_instances, 12u);

  // Determinism holds with the option on.
  WireController again(options);
  const sim::RunResult r2 = sim::simulate(wf, again, config, run_options);
  EXPECT_DOUBLE_EQ(r.makespan, r2.makespan);
  EXPECT_DOUBLE_EQ(r.cost_units, r2.cost_units);
}

TEST(Reclaim, CancelledDrainKeepsTasksAlive) {
  // Driver-level: an instance scheduled to drain with a running task is
  // reclaimed before the boundary; the task must NOT be restarted.
  class DrainThenReclaim final : public sim::ScalingPolicy {
   public:
    std::string name() const override { return "drain-then-reclaim"; }
    void on_run_start(const dag::Workflow&, const sim::CloudConfig&) override {
      tick_ = 0;
    }
    sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override {
      sim::PoolCommand cmd;
      ++tick_;
      if (tick_ == 2) {
        // Order a drain at the (far) charge boundary.
        for (const auto& inst : snapshot.instances) {
          cmd.releases.push_back(sim::Release{inst.id, true});
        }
      } else if (tick_ == 3) {
        for (const auto& inst : snapshot.instances) {
          if (inst.draining) cmd.cancel_drains.push_back(inst.id);
        }
      }
      return cmd;
    }

   private:
    int tick_ = 0;
  };

  // One long task: u is long enough that the drain boundary lies beyond the
  // reclaim tick.
  const dag::Workflow wf = workload::linear_workflow(1, 1, 500.0);
  DrainThenReclaim policy;
  sim::CloudConfig config = config_900();
  config.lag_seconds = 60.0;  // ticks at 0, 60, 120, ...; boundary at 900
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  sim::RunOptions options;
  options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, policy, config, options);
  EXPECT_EQ(r.task_restarts, 0u);
  EXPECT_DOUBLE_EQ(r.makespan, 500.0);
}

}  // namespace
}  // namespace wire::core
