// Tests for the checkpointing extension: salvage bookkeeping, shortened
// re-execution, and the restart-cost discount in the steering policies.
#include <gtest/gtest.h>

#include "core/steering.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "sim/framework.h"
#include "workload/generators.h"

namespace wire::sim {
namespace {

TEST(Checkpoint, SalvageRecordedOnKill) {
  const dag::Workflow wf = workload::linear_workflow(1, 2, 100.0);
  FrameworkMaster fm(wf, 5, /*checkpoint_fraction=*/0.5);
  fm.register_instance(0, 2);
  const dag::TaskId t = fm.pop_ready();
  fm.on_dispatch(t, 0, 0, 0.0);
  fm.on_transfer_in_done(t, 2.0);
  // Killed after 40 s of execution: half is salvaged.
  fm.resubmit_tasks_on(0, 42.0);
  EXPECT_DOUBLE_EQ(fm.runtime(t).salvaged_exec, 20.0);
  // A second, later kill can only raise the salvage.
  const dag::TaskId again = fm.pop_ready();
  (void)again;
  fm.on_dispatch(t, 0, 0, 50.0);
  fm.on_transfer_in_done(t, 52.0);
  fm.resubmit_tasks_on(0, 62.0);  // only 10 s this time
  EXPECT_DOUBLE_EQ(fm.runtime(t).salvaged_exec, 20.0);  // kept the max
}

TEST(Checkpoint, NoSalvageWhenDisabled) {
  const dag::Workflow wf = workload::linear_workflow(1, 1, 100.0);
  FrameworkMaster fm(wf, 5, /*checkpoint_fraction=*/0.0);
  fm.register_instance(0, 1);
  const dag::TaskId t = fm.pop_ready();
  fm.on_dispatch(t, 0, 0, 0.0);
  fm.on_transfer_in_done(t, 0.0);
  fm.resubmit_tasks_on(0, 50.0);
  EXPECT_DOUBLE_EQ(fm.runtime(t).salvaged_exec, 0.0);
}

TEST(Checkpoint, KilledTaskResumesFaster) {
  // One 100 s task; a policy kills the instance at the first tick (t = 40)
  // and replaces it. With perfect checkpointing the task resumes with ~60 s
  // remaining; without, it restarts from scratch.
  class KillOnce final : public ScalingPolicy {
   public:
    std::string name() const override { return "kill-once"; }
    void on_run_start(const dag::Workflow&, const CloudConfig&) override {
      fired_ = false;
    }
    PoolCommand plan(const MonitorSnapshot& snapshot) override {
      PoolCommand cmd;
      if (!fired_ && snapshot.now >= 40.0) {
        fired_ = true;
        for (const InstanceObservation& inst : snapshot.instances) {
          cmd.releases.push_back(Release{inst.id, false});
        }
        cmd.grow = 1;
      }
      return cmd;
    }

   private:
    bool fired_ = false;
  };

  const dag::Workflow wf = workload::linear_workflow(1, 1, 100.0);
  CloudConfig config;
  config.lag_seconds = 40.0;
  config.charging_unit_seconds = 600.0;
  config.slots_per_instance = 1;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;

  RunOptions options;
  options.initial_instances = 1;

  KillOnce no_ckpt;
  const RunResult plain = simulate(wf, no_ckpt, config, options);
  // Kill at 40, replacement ready at 80, full re-run: 180 s.
  EXPECT_DOUBLE_EQ(plain.makespan, 180.0);
  EXPECT_EQ(plain.task_restarts, 1u);

  config.checkpoint_fraction = 1.0;
  KillOnce full_ckpt;
  const RunResult ckpt = simulate(wf, full_ckpt, config, options);
  // Replacement ready at 80, only 60 s remain: 140 s.
  EXPECT_DOUBLE_EQ(ckpt.makespan, 140.0);

  config.checkpoint_fraction = 0.5;
  KillOnce half_ckpt;
  const RunResult half = simulate(wf, half_ckpt, config, options);
  EXPECT_DOUBLE_EQ(half.makespan, 160.0);  // 20 s salvaged
}

TEST(Checkpoint, SteeringDiscountsRestartCosts) {
  // An instance whose task has sunk 300 s: protected at 0.2u = 180 without
  // checkpointing, releasable with a 0.9 checkpoint fraction (residual 30).
  core::LookaheadResult lookahead;  // empty load -> p = 1
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 2;
  snap.tasks.assign(2, TaskObservation{});
  snap.tasks[0].phase = TaskPhase::Running;
  snap.tasks[0].elapsed = 250.0;
  for (InstanceId id = 0; id < 2; ++id) {
    InstanceObservation inst;
    inst.id = id;
    inst.time_to_next_charge = 50.0;
    if (id == 0) inst.running_tasks = {0};
    snap.instances.push_back(inst);
  }
  CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;

  const PoolCommand plain = core::steer(lookahead, snap, config);
  ASSERT_EQ(plain.releases.size(), 1u);  // only the idle instance qualifies
  EXPECT_EQ(plain.releases[0].instance, 1u);

  config.checkpoint_fraction = 0.9;
  const PoolCommand ckpt = core::steer(lookahead, snap, config);
  // With 90 % salvage both instances qualify; p = 1 keeps one.
  EXPECT_EQ(ckpt.releases.size(), 1u);
  // The busy instance now has the LOWER effective cost ((250+50)*0.1 = 30 vs
  // the idle instance's 0) — victims are still cheapest-first, so the idle
  // one goes; but a p = 0 plan would take both. Verify eligibility directly:
  sim::MonitorSnapshot only_busy = snap;
  only_busy.instances.erase(only_busy.instances.begin() + 1);
  const PoolCommand busy_only = core::steer(lookahead, only_busy, config);
  EXPECT_TRUE(busy_only.releases.empty());  // p = 1 == m, nothing to do
  only_busy.incomplete_tasks = 1;
  // Force a shrink attempt by adding a second copy of the busy instance.
  sim::InstanceObservation clone = snap.instances[0];
  clone.id = 5;
  only_busy.instances.push_back(clone);
  const PoolCommand shrink = core::steer(lookahead, only_busy, config);
  ASSERT_EQ(shrink.releases.size(), 1u);  // a busy instance IS releasable now
}

}  // namespace
}  // namespace wire::sim
