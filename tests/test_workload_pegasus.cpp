// Tests for the extra Pegasus workflow families (Montage, CyberShake,
// LIGO Inspiral): structural fidelity to the published characterization and
// end-to-end runnability under WIRE.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "dag/analysis.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/pegasus_extra.h"

namespace wire::workload {
namespace {

TEST(Montage, StructureMatchesCharacterization) {
  const dag::Workflow wf = montage(50, 7);
  // Wide projection fan-out at the top.
  EXPECT_EQ(wf.stage_tasks(0).size(), 50u);  // mProject
  EXPECT_EQ(wf.roots().size(), 50u);
  // Pairwise overlap stage is wider than the tile count but bounded by 2x.
  const auto diff = wf.stage_tasks(1);
  EXPECT_GT(diff.size(), 50u);
  EXPECT_LE(diff.size(), 100u);
  for (dag::TaskId t : diff) {
    EXPECT_EQ(wf.predecessors(t).size(), 2u);  // one task per tile pair
  }
  // Serial bottleneck: mConcatFit depends on every overlap.
  const dag::TaskId concat = wf.stage_tasks(2)[0];
  EXPECT_EQ(wf.predecessors(concat).size(), diff.size());
  // mBackground has cross-stage edges: the tile's projection + the model.
  for (dag::TaskId t : wf.stage_tasks(4)) {
    EXPECT_EQ(wf.predecessors(t).size(), 2u);
  }
  // Single final sink (mJPEG).
  EXPECT_EQ(wf.sinks().size(), 1u);
  // The width profile is the classic wide-narrow-wide-narrow montage shape.
  const auto widths = dag::width_profile(wf);
  EXPECT_GT(widths[0], 1u);
  EXPECT_EQ(dag::max_width(wf), diff.size());
}

TEST(Montage, ScalesWithTiles) {
  const dag::Workflow small = montage(16, 7);
  const dag::Workflow large = montage(100, 7);
  EXPECT_GT(large.task_count(), 2 * small.task_count());
  EXPECT_EQ(small.stage_count(), large.stage_count());
  EXPECT_THROW(montage(2, 7), util::ContractViolation);
}

TEST(CyberShake, TwoMastersFeedEverySeismogram) {
  const dag::Workflow wf = cybershake(100, 7);
  EXPECT_EQ(wf.task_count(), 2u + 100u + 100u + 1u);
  EXPECT_EQ(wf.roots().size(), 2u);
  for (dag::TaskId t : wf.stage_tasks(1)) {
    EXPECT_EQ(wf.predecessors(t).size(), 2u);  // both tensors
  }
  // Peak calc is 1:1 with seismograms; the hazard curve joins all peaks.
  for (dag::TaskId t : wf.stage_tasks(2)) {
    EXPECT_EQ(wf.predecessors(t).size(), 1u);
  }
  EXPECT_EQ(wf.predecessors(wf.sinks()[0]).size(), 100u);
  // The extraction masters are long tasks, the peaks short.
  const auto summaries = dag::summarize_stages(wf);
  EXPECT_GT(summaries[0].mean_ref_exec_seconds, 100.0);
  EXPECT_LT(summaries[2].mean_ref_exec_seconds, 5.0);
}

TEST(Ligo, RoundsChainThroughThinca) {
  const dag::Workflow wf = ligo(40, 3, 7);
  // 3 rounds x (bank + 40 inspirals + thinca) + trigbank batch + veto.
  EXPECT_EQ(wf.stage_count(), 3u * 3u + 2u);
  // Round r+1's bank depends on round r's thinca only.
  const dag::TaskId bank_r1 = wf.stage_tasks(3)[0];
  EXPECT_EQ(wf.predecessors(bank_r1).size(), 1u);
  // The inspiral stages carry the bulk of the work.
  const auto summaries = dag::summarize_stages(wf);
  double inspiral_work = 0.0;
  for (const auto& s : summaries) {
    if (s.name.rfind("Inspiral", 0) == 0) {
      inspiral_work += s.mean_ref_exec_seconds * s.task_count;
    }
  }
  EXPECT_GT(inspiral_work, 0.7 * wf.aggregate_ref_exec_seconds());
}

TEST(PegasusExtra, DeterministicAndSeedSensitive) {
  const dag::Workflow a = montage(30, 5);
  const dag::Workflow b = montage(30, 5);
  const dag::Workflow c = montage(30, 6);
  ASSERT_EQ(a.task_count(), b.task_count());
  for (dag::TaskId t = 0; t < a.task_count(); ++t) {
    EXPECT_DOUBLE_EQ(a.task(t).ref_exec_seconds, b.task(t).ref_exec_seconds);
  }
  bool differs = false;
  for (dag::TaskId t = 0; t < a.task_count(); ++t) {
    if (a.task(t).ref_exec_seconds != c.task(t).ref_exec_seconds) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

class PegasusExtraRuns : public ::testing::TestWithParam<int> {};

TEST_P(PegasusExtraRuns, CompleteUnderWire) {
  dag::Workflow wf = [&] {
    switch (GetParam()) {
      case 0: return montage(40, 7);
      case 1: return cybershake(120, 7);
      default: return ligo(48, 2, 7);
    }
  }();
  core::WireController controller;
  sim::CloudConfig config;
  config.lag_seconds = 120.0;
  config.charging_unit_seconds = 60.0;  // small unit: elasticity pays
  config.slots_per_instance = 4;
  config.max_instances = 12;
  sim::RunOptions options;
  options.seed = 9;
  options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, controller, config, options);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
  // The wide stages force elasticity on every family.
  EXPECT_GT(r.peak_instances, 1u);
  EXPECT_GT(r.utilization, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Families, PegasusExtraRuns, ::testing::Range(0, 3));

}  // namespace
}  // namespace wire::workload
