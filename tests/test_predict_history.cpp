// Tests for the Jockey-style HistoryEstimator and the across-run
// variability model it is meant to expose (§II-B, Observation 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/controller.h"
#include "policies/baselines.h"
#include "predict/history.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::predict {
namespace {

dag::Workflow make_wf() {
  dag::WorkflowBuilder builder("hist");
  const auto s0 = builder.add_stage("s0");
  builder.add_task(s0, "a", 10.0, 0.0, 20.0, {});
  builder.add_task(s0, "b", 10.0, 0.0, 22.0, {});
  builder.add_task(s0, "c", 40.0, 0.0, 80.0, {});
  return builder.build();
}

std::vector<HistoryRecord> simple_history() {
  return {
      {0, 21.0, 2.0},
      {1, 23.0, 4.0},
      {2, 81.0, 6.0},
  };
}

sim::MonitorSnapshot blank(const dag::Workflow& wf) {
  sim::MonitorSnapshot snap;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  return snap;
}

TEST(History, GroupMedianByInputSize) {
  const dag::Workflow wf = make_wf();
  HistoryEstimator history(wf, simple_history());
  const sim::MonitorSnapshot snap = blank(wf);
  // Tasks a and b share the 10 MB bucket: median(21, 23) = 22.
  EXPECT_DOUBLE_EQ(history.estimate_exec(0, snap), 22.0);
  EXPECT_DOUBLE_EQ(history.estimate_exec(1, snap), 22.0);
  // Task c has its own bucket.
  EXPECT_DOUBLE_EQ(history.estimate_exec(2, snap), 81.0);
  // Transfer estimate = median of the recorded transfers.
  EXPECT_DOUBLE_EQ(history.transfer_estimate(), 4.0);
}

TEST(History, NeverLearnsFromTheCurrentRun) {
  const dag::Workflow wf = make_wf();
  HistoryEstimator history(wf, simple_history());
  sim::MonitorSnapshot snap = blank(wf);
  snap.tasks[0].phase = sim::TaskPhase::Completed;
  snap.tasks[0].exec_time = 500.0;  // wildly different current run
  history.observe(snap);
  EXPECT_DOUBLE_EQ(history.estimate_exec(1, snap), 22.0);  // unchanged
}

TEST(History, RemainingOccupancyMirrorsOnlineSemantics) {
  const dag::Workflow wf = make_wf();
  HistoryEstimator history(wf, simple_history());
  sim::MonitorSnapshot snap = blank(wf);
  snap.tasks[0].phase = sim::TaskPhase::Ready;
  EXPECT_DOUBLE_EQ(history.predict_remaining_occupancy(0, snap), 4.0 + 22.0);
  snap.tasks[0].phase = sim::TaskPhase::Running;
  snap.tasks[0].transfer_in_time = 2.0;
  snap.tasks[0].elapsed_exec = 5.0;
  EXPECT_DOUBLE_EQ(history.predict_remaining_occupancy(0, snap), 17.0);
}

TEST(History, RejectsBadRecords) {
  const dag::Workflow wf = make_wf();
  EXPECT_THROW(HistoryEstimator(wf, {}), util::ContractViolation);
  EXPECT_THROW(HistoryEstimator(wf, {{99, 5.0, 0.0}}),
               util::ContractViolation);
  EXPECT_THROW(HistoryEstimator(wf, {{0, -5.0, 0.0}}),
               util::ContractViolation);
}

TEST(History, HistoryFromRecordsRequiresCompletedRun) {
  std::vector<sim::TaskRuntime> records(1);
  records[0].phase = sim::TaskPhase::Running;
  EXPECT_THROW(history_from_records(records), util::ContractViolation);
}

TEST(History, RunFactorShiftsHistoryButNotOnlineAccuracy) {
  // Two runs of the same workflow under very different run-level speed
  // factors: history built from run A mispredicts run B by roughly the
  // factor ratio, while within-run (online-style) statistics stay accurate.
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Large), 7);
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.variability.run_speed_sigma = 0.5;  // strong across-run variability

  policies::StaticPolicy full_site(12, "full-site");
  sim::RunOptions options;
  options.initial_instances = 12;

  options.seed = 1;
  const sim::RunResult run_a = sim::simulate(wf, full_site, config, options);
  options.seed = 2;
  const sim::RunResult run_b = sim::simulate(wf, full_site, config, options);

  // Median ratio of run B's times to run A's: the run factors differ.
  std::vector<double> ratios;
  for (dag::TaskId t = 0; t < wf.task_count(); ++t) {
    ratios.push_back(run_b.task_records[t].exec_time /
                     run_a.task_records[t].exec_time);
  }
  std::sort(ratios.begin(), ratios.end());
  const double run_ratio = ratios[ratios.size() / 2];
  ASSERT_GT(std::abs(std::log(run_ratio)), 0.05)
      << "seeds produced nearly identical run factors; pick new seeds";

  // History from run A, evaluated on run B.
  HistoryEstimator history(wf, history_from_records(run_a.task_records));
  const sim::MonitorSnapshot snap = blank(wf);
  std::vector<double> history_err;
  for (dag::TaskId t = 0; t < wf.task_count(); ++t) {
    const double actual = run_b.task_records[t].exec_time;
    history_err.push_back(
        std::abs(history.estimate_exec(t, snap) - actual) / actual);
  }
  std::sort(history_err.begin(), history_err.end());
  const double history_median = history_err[history_err.size() / 2];
  // The misprediction is on the order of the run-factor gap.
  EXPECT_GT(history_median, 0.5 * std::abs(run_ratio - 1.0));

  // Within run B, same-bucket peers predict each other tightly (what the
  // online policies exploit): group medians of run B vs run B's tasks.
  HistoryEstimator self(wf, history_from_records(run_b.task_records));
  std::vector<double> self_err;
  for (dag::TaskId t = 0; t < wf.task_count(); ++t) {
    const double actual = run_b.task_records[t].exec_time;
    self_err.push_back(std::abs(self.estimate_exec(t, snap) - actual) /
                       actual);
  }
  std::sort(self_err.begin(), self_err.end());
  EXPECT_LT(self_err[self_err.size() / 2], history_median);
}

TEST(History, ControllerRunsWithHistoryEstimator) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  sim::CloudConfig config;
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 300.0;

  policies::StaticPolicy full_site(12, "full-site");
  sim::RunOptions options;
  options.seed = 5;
  options.initial_instances = 12;
  const sim::RunResult prior = sim::simulate(wf, full_site, config, options);

  core::WireOptions wire_options;
  wire_options.history =
      std::make_shared<const std::vector<HistoryRecord>>(
          history_from_records(prior.task_records));
  core::WireController controller(wire_options);
  EXPECT_EQ(controller.name(), "wire-history");

  options.seed = 6;
  options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, controller, config, options);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
  EXPECT_THROW(controller.predictor(), util::ContractViolation);
}

}  // namespace
}  // namespace wire::predict
