// Tests for the deadline-aware policy extension.
#include <gtest/gtest.h>

#include "policies/baselines.h"
#include "policies/deadline.h"
#include "predict/history.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::policies {
namespace {

sim::CloudConfig cloud(double u = 60.0, double lag = 60.0) {
  sim::CloudConfig config;
  config.lag_seconds = lag;
  config.charging_unit_seconds = u;
  config.slots_per_instance = 4;
  config.max_instances = 12;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  return config;
}

sim::RunResult run_with_deadline(const dag::Workflow& wf, double deadline,
                                 std::uint64_t seed = 3) {
  DeadlinePolicy policy(deadline);
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = 1;
  return sim::simulate(wf, policy, cloud(), options);
}

TEST(Deadline, RejectsNonPositiveDeadline) {
  EXPECT_THROW(DeadlinePolicy(0.0), util::ContractViolation);
  EXPECT_THROW(DeadlinePolicy(-5.0), util::ContractViolation);
}

TEST(Deadline, NameCarriesTheTarget) {
  EXPECT_EQ(DeadlinePolicy(1800.0).name(), "deadline-1800");
}

TEST(Deadline, TightDeadlineScalesOut) {
  // 64 x 300 s tasks = 19200 slot-seconds. A 900 s deadline needs ~21 slots
  // (and the boot lag eats into it), so the pool must grow well past one.
  const dag::Workflow wf = workload::linear_workflow(1, 64, 300.0);
  const sim::RunResult r = run_with_deadline(wf, 900.0);
  EXPECT_GE(r.peak_instances, 5u);
  EXPECT_LE(r.makespan, 1.35 * 900.0);  // meets the SLO within slack
}

TEST(Deadline, LooseDeadlineStaysCheap) {
  // The same workload with a 6 h deadline fits on very few instances.
  const dag::Workflow wf = workload::linear_workflow(1, 64, 300.0);
  const sim::RunResult loose = run_with_deadline(wf, 21600.0);
  const sim::RunResult tight = run_with_deadline(wf, 900.0);
  EXPECT_LT(loose.peak_instances, tight.peak_instances);
  EXPECT_LT(loose.cost_units, tight.cost_units);
  EXPECT_LE(loose.makespan, 21600.0);
}

TEST(Deadline, CostMonotoneInDeadline) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch1_profile(workload::Scale::Large), 7);
  double previous_cost = 0.0;
  for (double deadline : {600.0, 1800.0, 7200.0}) {
    const sim::RunResult r = run_with_deadline(wf, deadline);
    if (previous_cost > 0.0) {
      EXPECT_LE(r.cost_units, previous_cost * 1.15)
          << "deadline " << deadline;
    }
    previous_cost = r.cost_units;
    for (const sim::TaskRuntime& rec : r.task_records) {
      EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
    }
  }
}

TEST(Deadline, PastDeadlineGoesAllOut) {
  // A deadline shorter than a single task: the policy goes to the useful
  // maximum (one slot per task: 32/4 = 8 instances, below the site cap) and
  // still completes.
  const dag::Workflow wf = workload::linear_workflow(1, 32, 500.0);
  const sim::RunResult r = run_with_deadline(wf, 100.0);
  EXPECT_EQ(r.peak_instances, 8u);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
}

TEST(Deadline, AheadOfScheduleReleases) {
  // A heavy wide burst then a narrow serial tail, with a deadline that
  // forces scale-out for the burst but is comfortably met afterwards: the
  // pool must grow for the burst and shrink during the tail.
  dag::WorkflowBuilder builder("burst-tail");
  const auto s0 = builder.add_stage("burst");
  std::vector<dag::TaskId> burst;
  for (int i = 0; i < 64; ++i) {
    burst.push_back(
        builder.add_task(s0, "b" + std::to_string(i), 0, 0, 240.0, {}));
  }
  const auto s1 = builder.add_stage("tail");
  dag::TaskId prev = builder.add_task(s1, "t0", 0, 0, 60.0, burst);
  for (int i = 1; i < 10; ++i) {
    prev = builder.add_task(s1, "t" + std::to_string(i), 0, 0, 60.0, {prev});
  }
  const dag::Workflow wf = builder.build();

  DeadlinePolicy policy(2400.0);
  sim::RunOptions options;
  options.seed = 3;
  options.initial_instances = 1;
  options.record_pool_timeline = true;
  const sim::RunResult r = sim::simulate(wf, policy, cloud(), options);
  std::uint32_t peak = 0;
  for (const sim::PoolSample& s : r.pool_timeline) {
    peak = std::max(peak, s.live_instances);
  }
  EXPECT_GE(peak, 2u);
  EXPECT_LT(r.pool_timeline.back().live_instances, peak);
  EXPECT_LE(r.makespan, 2400.0);
}

TEST(Deadline, HistoryArchiveCoversUnstartedStages) {
  // Deep DAG (12 sequential PageRank stages): online estimates see no work
  // in unstarted stages (policy 1), so the controller under-provisions and
  // misses SLOs that a history-backed estimate meets.
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Small), 7);

  StaticPolicy full_site(12, "full-site");
  sim::RunOptions prior_options;
  prior_options.seed = 1;
  prior_options.initial_instances = 12;
  const sim::RunResult prior =
      sim::simulate(wf, full_site, cloud(), prior_options);
  const auto archive =
      std::make_shared<const std::vector<predict::HistoryRecord>>(
          predict::history_from_records(prior.task_records));

  const double deadline = prior.makespan * 1.6;
  DeadlinePolicy with_history(deadline, archive);
  EXPECT_EQ(with_history.name(),
            "deadline-history-" +
                std::to_string(static_cast<long>(deadline)));
  sim::RunOptions options;
  options.seed = 2;
  options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, with_history, cloud(), options);
  EXPECT_LE(r.makespan, deadline);
  for (const sim::TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
}

}  // namespace
}  // namespace wire::policies
