// Tests for the simulated IaaS provider: instance lifecycle, charge clocks,
// per-started-unit billing, and drain-at-boundary semantics.
#include <gtest/gtest.h>

#include "policies/baselines.h"
#include "sim/cloud.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::sim {
namespace {

CloudConfig test_config() {
  CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  config.max_instances = 12;
  return config;
}

TEST(CloudPool, RequestBecomesReadyAfterLag) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request(100.0, 1.0);
  EXPECT_EQ(pool.instance(id).state, InstanceState::Provisioning);
  EXPECT_DOUBLE_EQ(pool.instance(id).ready_at, 280.0);
  EXPECT_FALSE(pool.is_usable(id, 200.0));
  pool.mark_ready(id, 280.0);
  EXPECT_EQ(pool.instance(id).state, InstanceState::Ready);
  EXPECT_TRUE(pool.is_usable(id, 280.0));
}

TEST(CloudPool, RequestReadyIsImmediatelyUsable) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request_ready(0.0, 1.0);
  EXPECT_TRUE(pool.is_usable(id, 0.0));
  EXPECT_DOUBLE_EQ(pool.instance(id).ready_at, 0.0);
}

TEST(CloudPool, TimeToNextChargeWrapsEachUnit) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request_ready(0.0, 1.0);
  EXPECT_DOUBLE_EQ(pool.time_to_next_charge(id, 0.0), 900.0);
  EXPECT_DOUBLE_EQ(pool.time_to_next_charge(id, 100.0), 800.0);
  EXPECT_DOUBLE_EQ(pool.time_to_next_charge(id, 899.0), 1.0);
  EXPECT_DOUBLE_EQ(pool.time_to_next_charge(id, 900.0), 900.0);
  EXPECT_DOUBLE_EQ(pool.time_to_next_charge(id, 1000.0), 800.0);
}

TEST(CloudPool, BillingRoundsUpToStartedUnits) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request_ready(0.0, 1.0);
  // A ready instance always pays at least one unit.
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 900.0), 1.0);
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 901.0), 2.0);
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 2700.0), 3.0);
}

TEST(CloudPool, BillingStartsAtBootNotAtRequest) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request(0.0, 1.0);
  pool.mark_ready(id, 180.0);
  // 180..1080 is the first unit.
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 1080.0), 1.0);
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 1081.0), 2.0);
}

TEST(CloudPool, TerminationFreezesBilling) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request_ready(0.0, 1.0);
  pool.terminate(id, 950.0);  // mid second unit: both units paid
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 5000.0), 2.0);
  EXPECT_EQ(pool.instance(id).state, InstanceState::Terminated);
}

TEST(CloudPool, CancelledProvisioningIsNeverBilled) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request(0.0, 1.0);
  pool.terminate(id, 50.0);  // before boot completes
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 5000.0), 0.0);
  // A late InstanceReady event must be a no-op.
  pool.mark_ready(id, 180.0);
  EXPECT_EQ(pool.instance(id).state, InstanceState::Terminated);
}

TEST(CloudPool, DrainLandsExactlyOnChargeBoundary) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request_ready(0.0, 1.0);
  const SimTime when = pool.schedule_drain(id, 850.0);
  EXPECT_DOUBLE_EQ(when, 900.0);
  EXPECT_FALSE(pool.is_usable(id, 860.0));  // draining: no new tasks
  pool.terminate(id, when);
  // Exactly one unit paid — the drain wasted nothing.
  EXPECT_DOUBLE_EQ(pool.charged_units(id, 5000.0), 1.0);
}

TEST(CloudPool, CancelDrainRestoresDispatchability) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request_ready(0.0, 1.0);
  pool.schedule_drain(id, 100.0);
  EXPECT_FALSE(pool.is_usable(id, 150.0));
  pool.cancel_drain(id);
  EXPECT_TRUE(pool.is_usable(id, 150.0));
}

TEST(CloudPool, LiveAndPeakCounts) {
  CloudPool pool(test_config());
  const InstanceId a = pool.request_ready(0.0, 1.0);
  const InstanceId b = pool.request(0.0, 1.0);  // provisioning counts as live
  EXPECT_EQ(pool.live_count(), 2u);
  EXPECT_EQ(pool.peak_live(), 2u);
  pool.terminate(a, 10.0);
  EXPECT_EQ(pool.live_count(), 1u);
  EXPECT_EQ(pool.peak_live(), 2u);
  EXPECT_EQ(pool.live().size(), 1u);
  EXPECT_EQ(pool.live()[0], b);
}

TEST(CloudPool, TotalsAggregateAcrossInstances) {
  CloudPool pool(test_config());
  pool.request_ready(0.0, 1.0);
  const InstanceId b = pool.request_ready(0.0, 1.0);
  pool.terminate(b, 100.0);
  EXPECT_DOUBLE_EQ(pool.total_charged_units(1000.0), 3.0);  // 2 + 1
  EXPECT_DOUBLE_EQ(pool.total_ready_seconds(1000.0), 1100.0);
}

TEST(CloudPool, DoubleTerminateThrows) {
  CloudPool pool(test_config());
  const InstanceId id = pool.request_ready(0.0, 1.0);
  pool.terminate(id, 10.0);
  EXPECT_THROW(pool.terminate(id, 20.0), util::ContractViolation);
}

TEST(CloudPool, BillingInvariantHoldsAtEveryEventUnderChaos) {
  // The billing probe behind the budget policy's accounting mirror: at every
  // engine event under restart/revocation chaos, the per-instance charging
  // units must sum to the pool's total, the total must never decrease as the
  // clock advances, and the final total must be exactly the RunResult's
  // cost_units. Any drift here would silently corrupt budget enforcement
  // (policies::BudgetPolicy mirrors this arithmetic from the monitoring
  // surface).
  CloudConfig config = test_config();
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 60.0;
  config.faults.crash_rate_per_hour = 0.8;
  config.faults.crash_notice_seconds = 120.0;  // spot-style revocations
  config.faults.provision_failure_prob = 0.1;
  config.faults.straggler_prob = 0.15;
  config.faults.task_failure_prob = 0.08;  // transient restarts
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);

  for (std::uint64_t seed : {5ull, 11ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    policies::ReactiveConservingPolicy policy;
    RunOptions options;
    options.seed = seed;
    options.initial_instances = 1;
    JobEngine engine(wf, policy, config, options);
    engine.start();
    double previous_total = 0.0;
    SimTime previous_time = 0.0;
    while (!engine.done()) {
      engine.step();
      const SimTime t =
          engine.done() ? engine.end_time() : engine.next_event_time();
      double per_instance_sum = 0.0;
      for (const Instance& inst : engine.cloud().instances()) {
        per_instance_sum += engine.cloud().charged_units(inst.id, t);
      }
      const double total = engine.cloud().total_charged_units(t);
      ASSERT_DOUBLE_EQ(per_instance_sum, total) << "at t=" << t;
      if (t >= previous_time) {
        ASSERT_GE(total, previous_total)
            << "billing ran backwards between t=" << previous_time
            << " and t=" << t;
        previous_total = total;
        previous_time = t;
      }
    }
    const SimTime end = engine.end_time();
    const double final_total = engine.cloud().total_charged_units(end);
    const RunResult result = engine.result();
    EXPECT_DOUBLE_EQ(result.cost_units, final_total);
    EXPECT_GT(result.instance_crashes + result.task_faults, 0u)
        << "chaos never engaged — the probe is vacuous";
  }
}

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  q.schedule(10.0, EventKind::ControlTick, 1);
  q.schedule(5.0, EventKind::InstanceReady, 2);
  q.schedule(10.0, EventKind::ExecDone, 3);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 2u);
  // Same time: insertion order wins.
  EXPECT_EQ(q.pop().payload, 1u);
  EXPECT_EQ(q.pop().payload, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule(10.0, EventKind::ControlTick, 0);
  q.pop();
  EXPECT_THROW(q.schedule(5.0, EventKind::ControlTick, 0),
               util::ContractViolation);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), util::ContractViolation);
  EXPECT_THROW(q.next_time(), util::ContractViolation);
}

}  // namespace
}  // namespace wire::sim
