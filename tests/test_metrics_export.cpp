// Tests for the run-artifact exporters (Gantt, pool timeline, summaries)
// and the thread-count independence of the experiment runner.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/controller.h"
#include "exp/runner.h"
#include "metrics/export.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::metrics {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

sim::RunResult run_genome(bool timeline) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  core::WireController controller;
  sim::CloudConfig config;
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 300.0;
  sim::RunOptions options;
  options.seed = 2;
  options.initial_instances = 1;
  options.record_pool_timeline = timeline;
  return sim::simulate(wf, controller, config, options);
}

TEST(Export, GanttHasOneRowPerTaskWithOrderedTimes) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  const sim::RunResult r = run_genome(false);
  const std::string path = "test_gantt.csv";
  write_gantt_csv(path, wf, r);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u + wf.task_count());
  EXPECT_NE(lines[0].find("occupancy_start"), std::string::npos);
  // Spot check a data row: comma count and monotone fields.
  std::istringstream row(lines[1]);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(row, field, ',')) fields.push_back(field);
  ASSERT_EQ(fields.size(), 9u);
  const double start = std::stod(fields[4]);
  const double exec_start = std::stod(fields[5]);
  const double exec_end = std::stod(fields[6]);
  const double done = std::stod(fields[7]);
  EXPECT_LE(start, exec_start);
  EXPECT_LE(exec_start, exec_end);
  EXPECT_LE(exec_end, done);
  std::remove(path.c_str());
}

TEST(Export, TimelineRequiresRecording) {
  const sim::RunResult no_timeline = run_genome(false);
  EXPECT_THROW(write_timeline_csv("never.csv", no_timeline),
               util::ContractViolation);

  const sim::RunResult with_timeline = run_genome(true);
  const std::string path = "test_timeline.csv";
  write_timeline_csv(path, with_timeline);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u + with_timeline.pool_timeline.size());
  std::remove(path.c_str());
}

TEST(Export, SummaryAppendsWithSingleHeader) {
  const sim::RunResult r = run_genome(false);
  const std::string path = "test_summary.csv";
  std::remove(path.c_str());
  write_summary_csv(path, r, /*append=*/true);
  write_summary_csv(path, r, /*append=*/true);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // header + 2 rows
  EXPECT_NE(lines[0].find("policy"), std::string::npos);
  EXPECT_NE(lines[1].find("wire"), std::string::npos);
  // Truncate mode rewrites the header.
  write_summary_csv(path, r, /*append=*/false);
  EXPECT_EQ(read_lines(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(Runner, ResultsIndependentOfThreadCount) {
  // The experiment matrix must produce bit-identical results whether it runs
  // on 1 thread or many (per-run seeds are derived, not order-dependent).
  exp::MatrixOptions serial;
  serial.repetitions = 2;
  serial.policies = {exp::PolicyKind::PureReactive, exp::PolicyKind::Wire};
  serial.charging_units = {60.0, 900.0};
  serial.threads = 1;
  exp::MatrixOptions parallel = serial;
  parallel.threads = 8;

  const auto profile = workload::tpch6_profile(workload::Scale::Small);
  const auto a = exp::run_matrix({profile}, serial);
  const auto b = exp::run_matrix({profile}, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workflow, b[i].workflow);
    EXPECT_DOUBLE_EQ(a[i].stats.cost_units.mean(),
                     b[i].stats.cost_units.mean());
    EXPECT_DOUBLE_EQ(a[i].stats.makespan_seconds.mean(),
                     b[i].stats.makespan_seconds.mean());
    for (std::size_t r = 0; r < a[i].runs.size(); ++r) {
      EXPECT_DOUBLE_EQ(a[i].runs[r].makespan, b[i].runs[r].makespan);
    }
  }
}

}  // namespace
}  // namespace wire::metrics
