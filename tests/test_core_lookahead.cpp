// Tests for WIRE's internal lookahead simulator (§III-B2): projecting
// completions over the interval, wavefront expansion into successor stages,
// provisioning arrivals, draining instances, and restart costs.
#include <gtest/gtest.h>

#include "core/lookahead.h"
#include "dag/workflow.h"
#include "predict/task_predictor.h"
#include "workload/generators.h"

namespace wire::core {
namespace {

using dag::TaskId;
using sim::TaskPhase;

sim::CloudConfig test_config(std::uint32_t slots = 2) {
  sim::CloudConfig config;
  config.lag_seconds = 100.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = slots;
  return config;
}

sim::MonitorSnapshot blank_snapshot(const dag::Workflow& wf, double now) {
  sim::MonitorSnapshot snap;
  snap.now = now;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  for (const dag::TaskSpec& t : wf.tasks()) {
    snap.tasks[t.id].input_mb = t.input_mb;
  }
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  return snap;
}

void set_running(sim::MonitorSnapshot& snap, TaskId t, sim::InstanceId inst,
                 double elapsed_exec, double occupancy_start) {
  snap.tasks[t].phase = TaskPhase::Running;
  snap.tasks[t].ready_since = occupancy_start;
  snap.tasks[t].occupancy_start = occupancy_start;
  snap.tasks[t].elapsed = snap.now - occupancy_start;
  snap.tasks[t].elapsed_exec = elapsed_exec;
  snap.tasks[t].transfer_in_time = 0.5;
  snap.tasks[t].instance = inst;
}

void set_completed(sim::MonitorSnapshot& snap, TaskId t, double exec) {
  snap.tasks[t].phase = TaskPhase::Completed;
  snap.tasks[t].exec_time = exec;
  snap.tasks[t].transfer_time = 0.0;
  --snap.incomplete_tasks;
}

sim::InstanceObservation ready_instance(sim::InstanceId id,
                                        std::uint32_t free_slots) {
  sim::InstanceObservation obs;
  obs.id = id;
  obs.time_to_next_charge = 400.0;
  obs.free_slots = free_slots;
  return obs;
}

TEST(Lookahead, RunningTaskSurvivingTheIntervalIsUpcoming) {
  // Stage of 4 with completions establishing a 150 s estimate; one peer is
  // running with 30 s elapsed -> 120 s remaining > lag of 100 s.
  const dag::Workflow wf = workload::linear_workflow(1, 4, 150.0);
  predict::TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf, 1000.0);
  set_completed(snap, 0, 150.0);
  set_completed(snap, 1, 150.0);
  predictor.observe(snap);
  set_running(snap, 2, 0, 30.0, 969.5);

  auto inst = ready_instance(0, 1);
  inst.running_tasks = {2};
  snap.instances.push_back(inst);

  const LookaheadResult result =
      simulate_interval(wf, snap, predictor, test_config());
  // Task 2 still active (120 s left at horizon: 20 s), task 3 never started
  // and the one free slot picks it up; only task 2 plus possibly 3 remain.
  bool found_task2 = false;
  for (const UpcomingTask& u : result.upcoming) {
    if (u.task == 2) {
      found_task2 = true;
      EXPECT_NEAR(u.remaining_occupancy, 20.0, 1.0);
    }
  }
  EXPECT_TRUE(found_task2);
  // Restart cost of instance 0: task 2 started at 969.5, horizon 1100 ->
  // at least 130.5 sunk (task 3 dispatched in-lookahead is also on it).
  ASSERT_TRUE(result.restart_cost.count(0));
  EXPECT_NEAR(result.restart_cost.at(0), 130.5, 1.0);
}

TEST(Lookahead, CompletionsCascadeIntoSuccessorStage) {
  // Two stages of 2, 40 s tasks. Both stage-0 tasks are running with 30 s
  // elapsed; estimates say 10 s remaining -> within the 100 s horizon they
  // finish and stage 1 fires on the freed slots.
  const dag::Workflow wf = workload::linear_workflow(2, 2, 40.0);
  predict::TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf, 500.0);
  // Prior completions are impossible here (stage barrier), so train policy 2
  // via running elapsed instead: both running for 30 s -> estimate 30 s.
  set_running(snap, 0, 0, 30.0, 469.5);
  set_running(snap, 1, 0, 30.0, 469.5);
  predictor.observe(snap);

  auto inst = ready_instance(0, 0);
  inst.running_tasks = {0, 1};
  snap.instances.push_back(inst);

  const LookaheadResult result =
      simulate_interval(wf, snap, predictor, test_config());
  // Policy 2: estimate ~30 s total -> ~0 s remaining ("about to
  // complete"), so both stage-0 completions are projected and stage 1 fires
  // — but those completions are speculative: the tasks stay pinned in
  // Q_task and their slots are not handed to the newly ready stage-1 tasks,
  // which appear as queued load (with policy-1 zero estimates).
  EXPECT_EQ(result.projected_completions, 2u);
  ASSERT_EQ(result.upcoming.size(), 4u);
  std::uint32_t pinned = 0, queued = 0;
  for (const UpcomingTask& u : result.upcoming) {
    if (u.on_slot) {
      ++pinned;
      EXPECT_LT(u.task, 2u);  // the observed-running stage-0 tasks
    } else {
      ++queued;
      EXPECT_GE(u.task, 2u);  // the fired stage-1 tasks
      EXPECT_DOUBLE_EQ(u.remaining_occupancy, 0.0);
    }
  }
  EXPECT_EQ(pinned, 2u);
  EXPECT_EQ(queued, 2u);
}

TEST(Lookahead, ReadyQueueBeyondCapacityStaysUpcoming) {
  const dag::Workflow wf = workload::linear_workflow(1, 6, 500.0);
  predict::TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf, 100.0);
  set_completed(snap, 0, 500.0);
  predictor.observe(snap);
  for (TaskId t = 1; t < 6; ++t) {
    snap.tasks[t].phase = TaskPhase::Ready;
    snap.ready_queue.push_back(t);
  }
  snap.instances.push_back(ready_instance(0, 2));  // room for only 2

  const LookaheadResult result =
      simulate_interval(wf, snap, predictor, test_config());
  // 2 dispatched (500 s estimates, still running at horizon), 3 queued.
  EXPECT_EQ(result.upcoming.size(), 5u);
  EXPECT_EQ(result.projected_completions, 0u);
  // Dispatched tasks come first with ~400 s remaining; queued ones carry the
  // full 500 s estimate.
  EXPECT_NEAR(result.upcoming[0].remaining_occupancy, 400.0, 1.0);
  EXPECT_NEAR(result.upcoming[4].remaining_occupancy, 500.0, 1.0);
}

TEST(Lookahead, ProvisioningInstanceJoinsMidInterval) {
  const dag::Workflow wf = workload::linear_workflow(1, 4, 500.0);
  predict::TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf, 200.0);
  set_completed(snap, 0, 500.0);
  predictor.observe(snap);
  for (TaskId t = 1; t < 4; ++t) {
    snap.tasks[t].phase = TaskPhase::Ready;
    snap.ready_queue.push_back(t);
  }
  sim::InstanceObservation booting;
  booting.id = 7;
  booting.provisioning = true;
  booting.ready_at = 250.0;  // inside the horizon (200..300)
  booting.free_slots = 2;
  snap.instances.push_back(booting);

  const LookaheadResult result =
      simulate_interval(wf, snap, predictor, test_config());
  // Two tasks start at 250 on the booting instance: 450 s remaining at
  // horizon 300; the third stays queued at 500 s.
  ASSERT_EQ(result.upcoming.size(), 3u);
  EXPECT_NEAR(result.upcoming[0].remaining_occupancy, 450.0, 1.0);
  EXPECT_NEAR(result.upcoming[1].remaining_occupancy, 450.0, 1.0);
  EXPECT_NEAR(result.upcoming[2].remaining_occupancy, 500.0, 1.0);
  // Restart costs attribute to the booting instance id.
  ASSERT_TRUE(result.restart_cost.count(7));
  EXPECT_NEAR(result.restart_cost.at(7), 50.0, 1.0);
}

TEST(Lookahead, DrainingInstanceTasksRestartFromScratch) {
  const dag::Workflow wf = workload::linear_workflow(1, 3, 200.0);
  predict::TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf, 1000.0);
  set_completed(snap, 0, 200.0);
  predictor.observe(snap);
  set_running(snap, 1, 3, 150.0, 849.5);

  sim::InstanceObservation draining = ready_instance(3, 1);
  draining.draining = true;
  draining.running_tasks = {1};
  snap.instances.push_back(draining);
  snap.instances.push_back(ready_instance(4, 1));

  const LookaheadResult result =
      simulate_interval(wf, snap, predictor, test_config());
  // Task 1 restarts on instance 4 with the FULL 200 s estimate (its 150 s of
  // progress dies with the drained instance): 100 s remain at the horizon.
  bool found = false;
  for (const UpcomingTask& u : result.upcoming) {
    if (u.task == 1) {
      found = true;
      EXPECT_NEAR(u.remaining_occupancy, 100.0, 1.0);
    }
  }
  EXPECT_TRUE(found);
  // The draining instance never carries restart cost.
  EXPECT_FALSE(result.restart_cost.count(3));
}

TEST(Lookahead, NoInstancesMeansEverythingStaysQueued) {
  const dag::Workflow wf = workload::linear_workflow(1, 3, 50.0);
  predict::TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf, 0.0);
  for (TaskId t = 0; t < 3; ++t) {
    snap.tasks[t].phase = TaskPhase::Ready;
    snap.ready_queue.push_back(t);
  }
  predictor.observe(snap);
  const LookaheadResult result =
      simulate_interval(wf, snap, predictor, test_config());
  EXPECT_EQ(result.upcoming.size(), 3u);
  EXPECT_EQ(result.projected_completions, 0u);
  EXPECT_TRUE(result.restart_cost.empty());
}

}  // namespace
}  // namespace wire::core
