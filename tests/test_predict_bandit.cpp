// Differential chaos suite for online predictor selection
// (predict::BanditSelector) and the reconfiguration seams it exercises:
// selector-off byte-identity (hexfloat, including fault chaos), same-seed
// replay determinism of the arm-switch sequence, regret sanity against the
// worst fixed arm, TaskPredictor::reconfigure cache/revision discipline
// (mid-run switches must leave the incremental lookahead bit-identical to
// the from-scratch reference), and the explorer unit behaviour on synthetic
// costs. WIRE_FUZZ_SEED widens the chaos seed set in CI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/controller.h"
#include "predict/bandit.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::predict {
namespace {

sim::CloudConfig quiet_cloud() {
  sim::CloudConfig config;
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 60.0;
  config.slots_per_instance = 4;
  config.max_instances = 12;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  return config;
}

/// quiet_cloud plus the hostile fault model of the ensemble chaos suites.
sim::CloudConfig crashy_cloud() {
  sim::CloudConfig config = quiet_cloud();
  config.faults.crash_rate_per_hour = 0.6;
  config.faults.crash_notice_seconds = 120.0;
  config.faults.provision_failure_prob = 0.1;
  config.faults.straggler_prob = 0.15;
  config.faults.task_failure_prob = 0.05;
  config.faults.monitor_dropout_prob = 0.1;
  return config;
}

sim::RunResult run(const dag::Workflow& wf, sim::ScalingPolicy& policy,
                   const sim::CloudConfig& site, std::uint64_t seed) {
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = 1;
  return sim::simulate(wf, policy, site, options);
}

/// Hexfloat signature of the run's continuous outcome: any bit of drift in
/// any double shows up as a string diff.
std::string hex_signature(const sim::RunResult& r) {
  char buf[64];
  std::string sig;
  auto add = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%a;", v);
    sig += buf;
  };
  add(r.makespan);
  add(r.cost_units);
  add(r.ready_instance_seconds);
  add(r.busy_slot_seconds);
  add(r.wasted_slot_seconds);
  add(r.utilization);
  for (const sim::TaskRuntime& t : r.task_records) {
    add(t.completed_at);
    add(t.exec_time);
    add(t.transfer_in_time);
  }
  return sig;
}

core::WireOptions selector_options(std::uint32_t arms, std::uint64_t seed,
                                   Explorer explorer =
                                       Explorer::EpsilonGreedyDecay) {
  core::WireOptions options;
  options.bandit.arms = arms;
  options.bandit.seed = seed;
  options.bandit.explorer = explorer;
  options.bandit.switch_period_ticks = 4;
  return options;
}

// ---------------------------------------------------------------------------
// The stock arm set

TEST(BanditArms, DefaultSetShape) {
  const std::vector<BanditArm> arms = default_bandit_arms();
  ASSERT_EQ(arms.size(), 9u);
  // Arm 0 is the paper default, so `arms == 1` degenerates to the fixed
  // predictor.
  const PredictorConfig paper;
  EXPECT_EQ(arms[0].config.use_mean, paper.use_mean);
  EXPECT_EQ(arms[0].config.disable_ogd, paper.disable_ogd);
  EXPECT_EQ(arms[0].config.harvest_failed_attempts,
            paper.harvest_failed_attempts);
  EXPECT_FALSE(arms[0].adaptive_horizon);
  // Labels are distinct, and the full centre x OGD x harvest grid is
  // covered by the eight non-horizon arms.
  std::vector<std::string> labels;
  int grid_seen[8] = {};
  for (const BanditArm& arm : arms) {
    for (const std::string& label : labels) EXPECT_NE(label, arm.label);
    labels.push_back(arm.label);
    EXPECT_EQ(arm.config.input_bucket_rel_tol, paper.input_bucket_rel_tol);
    if (!arm.adaptive_horizon) {
      const int cell = (arm.config.use_mean ? 4 : 0) +
                       (arm.config.disable_ogd ? 2 : 0) +
                       (arm.config.harvest_failed_attempts ? 1 : 0);
      ++grid_seen[cell];
    }
  }
  for (int cell = 0; cell < 8; ++cell) {
    EXPECT_EQ(grid_seen[cell], 1) << "ablation cell " << cell;
  }
}

TEST(BanditArms, SelectorContractViolations) {
  BanditOptions off;  // arms == 0: the off sentinel is not constructible
  EXPECT_THROW(BanditSelector{off}, util::ContractViolation);
  BanditOptions too_many;
  too_many.arms = 64;
  EXPECT_THROW(BanditSelector{too_many}, util::ContractViolation);
  BanditOptions mixed_tol;
  mixed_tol.arms = 2;
  mixed_tol.arm_set = default_bandit_arms();
  mixed_tol.arm_set[1].config.input_bucket_rel_tol = 0.5;
  EXPECT_THROW(BanditSelector{mixed_tol}, util::ContractViolation);
}

// ---------------------------------------------------------------------------
// Explorer unit behaviour on synthetic regret feeds

/// Feeds one full decision period of `cost` per completion.
void feed_period(BanditSelector& selector, double cost_per_completion,
                 std::uint32_t period_ticks) {
  for (std::uint32_t i = 0; i + 1 < period_ticks; ++i) {
    selector.tick(0.0, 0);
  }
  selector.tick(cost_per_completion, 1);
}

BanditOptions synthetic(std::uint32_t arms, Explorer explorer, double epsilon0,
                        std::uint64_t seed = 7) {
  BanditOptions options;
  options.arms = arms;
  options.explorer = explorer;
  options.epsilon0 = epsilon0;
  options.switch_period_ticks = 2;
  options.seed = seed;
  return options;
}

TEST(BanditSelector, PrimesArmsInIndexOrderThenExploits) {
  // epsilon0 = 0: pure exploitation after the priming sweep, so the
  // decision sequence is fully deterministic: 1, 2 (priming), then always
  // the cheapest arm (index 1 here).
  BanditSelector selector(
      synthetic(3, Explorer::EpsilonGreedyDecay, /*epsilon0=*/0.0));
  EXPECT_EQ(selector.current(), 0u);
  const double cost_of[3] = {5.0, 1.0, 9.0};
  for (int period = 0; period < 8; ++period) {
    feed_period(selector, cost_of[selector.current()], 2);
  }
  const std::vector<std::uint32_t>& d = selector.decisions();
  ASSERT_EQ(d.size(), 8u);
  EXPECT_EQ(d[0], 1u);  // arm 0 pulled by construction; prime 1 next
  EXPECT_EQ(d[1], 2u);
  for (std::size_t i = 2; i < d.size(); ++i) {
    EXPECT_EQ(d[i], 1u) << "decision " << i;
  }
  EXPECT_EQ(selector.stats(1).pulls, 6u);
  EXPECT_DOUBLE_EQ(selector.stats(1).mean_cost(), 1.0);
  EXPECT_EQ(selector.switches(), 3u);  // 0 -> 1 -> 2 -> 1, then pinned
}

TEST(BanditSelector, Ucb1PrefersLowCostAfterPriming) {
  // Moderate confidence width: the cheap arm's mean advantage (1 vs 10)
  // dominates the bonus, so after priming UCB1 settles on arm 0.
  BanditSelector selector(synthetic(2, Explorer::Ucb1, 0.0));
  const double cost_of[2] = {1.0, 10.0};
  for (int period = 0; period < 10; ++period) {
    feed_period(selector, cost_of[selector.current()], 2);
  }
  const std::vector<std::uint32_t>& d = selector.decisions();
  ASSERT_EQ(d.size(), 10u);
  for (std::size_t i = 4; i < d.size(); ++i) {
    EXPECT_EQ(d[i], 0u) << "decision " << i;
  }
  EXPECT_GT(selector.stats(0).pulls, selector.stats(1).pulls);
}

TEST(BanditSelector, EmptyPeriodsHoldTheArmAndDecideNothing) {
  BanditSelector selector(
      synthetic(3, Explorer::EpsilonGreedyDecay, /*epsilon0=*/1.0));
  for (int tick = 0; tick < 20; ++tick) {
    EXPECT_FALSE(selector.tick(0.0, 0));
  }
  EXPECT_TRUE(selector.decisions().empty());
  EXPECT_EQ(selector.current(), 0u);
  EXPECT_EQ(selector.stats(0).pulls, 0u);
  // Once a completion lands, the period that closes over it finalizes into
  // the live arm's stats as one pull.
  selector.tick(3.0, 2);
  selector.tick(0.0, 0);  // period boundary
  EXPECT_EQ(selector.stats(0).pulls, 1u);
  EXPECT_EQ(selector.stats(0).completions, 2u);
  EXPECT_DOUBLE_EQ(selector.stats(0).total_cost, 3.0);
}

TEST(BanditSelector, SameSeedReplaysTheSameDecisionSequence) {
  // Full-exploration selectors are pure functions of (seed, regret feed):
  // identical feeds must replay identical decision sequences, draw by draw.
  for (std::uint64_t seed : {1ull, 42ull, 0xfeedull}) {
    BanditSelector a(synthetic(4, Explorer::EpsilonGreedyDecay, 1.0, seed));
    BanditSelector b(synthetic(4, Explorer::EpsilonGreedyDecay, 1.0, seed));
    util::Rng feed(seed);
    for (int period = 0; period < 64; ++period) {
      const double cost = feed.uniform(0.0, 10.0);
      const std::uint32_t completions =
          static_cast<std::uint32_t>(feed.uniform_int(0, 3));
      const bool switched_a = a.tick(cost, completions);
      const bool switched_b = b.tick(cost, completions);
      EXPECT_EQ(switched_a, switched_b);
      EXPECT_EQ(a.current(), b.current());
    }
    EXPECT_EQ(a.decisions(), b.decisions());
    EXPECT_EQ(a.switches(), b.switches());
  }
}

// ---------------------------------------------------------------------------
// Reconfiguration seams (the bugfix satellites)

/// One 6-task stage plus a dependent 2-task stage (mirrors the predictor
/// policy suite's fixture).
dag::Workflow make_two_stage() {
  dag::WorkflowBuilder builder("pred");
  const auto s0 = builder.add_stage("wide");
  const auto s1 = builder.add_stage("tail");
  std::vector<dag::TaskId> firsts;
  const double sizes[6] = {10.0, 10.0, 20.0, 20.0, 40.0, 80.0};
  for (int i = 0; i < 6; ++i) {
    firsts.push_back(builder.add_task(s0, "w" + std::to_string(i), sizes[i],
                                      1.0, 5.0, {}));
  }
  builder.add_task(s1, "t0", 5.0, 1.0, 3.0, firsts);
  builder.add_task(s1, "t1", 5.0, 1.0, 3.0, firsts);
  return builder.build();
}

sim::MonitorSnapshot blank_snapshot(const dag::Workflow& wf) {
  sim::MonitorSnapshot snap;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  for (const dag::TaskSpec& t : wf.tasks()) {
    snap.tasks[t.id].input_mb = t.input_mb;
  }
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  return snap;
}

void complete(sim::MonitorSnapshot& snap, dag::TaskId t, double exec) {
  snap.tasks[t].phase = sim::TaskPhase::Completed;
  snap.tasks[t].exec_time = exec;
}

TEST(Reconfigure, SwapsCentreStatisticAndBumpsEveryRevision) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 4.0);
  complete(snap, 1, 6.0);
  complete(snap, 2, 20.0);
  predictor.observe(snap);
  // Pending task 3 reads the stage centre (policy 3): median of {4, 6, 20}.
  EXPECT_DOUBLE_EQ(predictor.predict_exec(3, snap).exec_seconds, 6.0);
  const std::uint64_t rev = predictor.revision();
  const std::uint64_t stage0 = predictor.stage_revision(0);
  const std::uint64_t stage1 = predictor.stage_revision(1);

  PredictorConfig mean_config;
  mean_config.use_mean = true;
  ASSERT_TRUE(predictor.reconfigure(mean_config));
  // The cached centre was rebuilt under the new statistic...
  EXPECT_DOUBLE_EQ(predictor.predict_exec(3, snap).exec_seconds, 10.0);
  EXPECT_TRUE(predictor.config().use_mean);
  // ...and EVERY revision moved, harvested stages or not — the memo
  // contract (a surviving key proves an unchanged estimate) demands it.
  EXPECT_GT(predictor.revision(), rev);
  EXPECT_GT(predictor.stage_revision(0), stage0);
  EXPECT_GT(predictor.stage_revision(1), stage1);

  // Identical config: a strict no-op, no revision churn (arms == 1
  // selectors must stay byte-identical to selector-off).
  const std::uint64_t rev2 = predictor.revision();
  EXPECT_FALSE(predictor.reconfigure(mean_config));
  EXPECT_EQ(predictor.revision(), rev2);

  // Toggling back reproduces the original centre bit-for-bit (mean from the
  // arrival-order sum, median from the sorted multiset — both reversible).
  ASSERT_TRUE(predictor.reconfigure(PredictorConfig{}));
  EXPECT_EQ(predictor.predict_exec(3, snap).exec_seconds, 6.0);
}

TEST(Reconfigure, RejectsBucketToleranceChanges) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  PredictorConfig rebucket;
  rebucket.input_bucket_rel_tol = 0.5;
  EXPECT_THROW(predictor.reconfigure(rebucket), util::ContractViolation);
}

TEST(Reconfigure, MemoryPredictorSwapsSizingAndBumpsRevisions) {
  const dag::Workflow wf = make_two_stage();
  sim::MemoryConfig mem;
  mem.instance_mem_mb = 4096.0;
  mem.sizing = sim::MemoryConfig::Sizing::Percentile;
  mem.percentile = 0.95;
  mem.safety_factor = 1.0;
  mem.min_reservation_mb = 0.0;
  MemoryPredictor predictor(wf, mem, /*slots_per_instance=*/4);
  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 4.0);
  snap.tasks[0].peak_mem_mb = 100.0;
  complete(snap, 1, 6.0);
  snap.tasks[1].peak_mem_mb = 300.0;
  predictor.observe(snap);
  const double p95 = predictor.predict_reservation(2, snap);
  const std::uint64_t rev = predictor.revision();
  const std::uint64_t stage1 = predictor.stage_revision(1);

  sim::MemoryConfig mean = mem;
  mean.sizing = sim::MemoryConfig::Sizing::Mean;
  ASSERT_TRUE(predictor.reconfigure(mean));
  const double avg = predictor.predict_reservation(2, snap);
  EXPECT_NE(avg, p95);
  EXPECT_DOUBLE_EQ(avg, 200.0);
  EXPECT_GT(predictor.revision(), rev);
  // Stage 1 never ingested a peak, but its reservation changes under the
  // new policy too (cold-start path) — its revision must move as well.
  EXPECT_GT(predictor.stage_revision(1), stage1);
  EXPECT_FALSE(predictor.reconfigure(mean));  // identical config: no-op
  sim::MemoryConfig off;
  EXPECT_THROW(predictor.reconfigure(off), util::ContractViolation);
}

TEST(Reconfigure, CounterfactualMatchesReadyPoliciesPreHarvest) {
  const dag::Workflow wf = make_two_stage();
  TaskPredictor predictor(wf);
  double out = 0.0;
  // No harvested completions: no counterfactual.
  EXPECT_FALSE(predictor.counterfactual_exec(0, &out));

  sim::MonitorSnapshot snap = blank_snapshot(wf);
  complete(snap, 0, 4.0);
  complete(snap, 2, 11.0);
  predictor.observe(snap);
  // Task 1 shares task 0's input size: the counterfactual is policy 4's
  // group centre, exactly what predict_exec returns for a Ready peer.
  snap.tasks[1].phase = sim::TaskPhase::Ready;
  ASSERT_TRUE(predictor.counterfactual_exec(1, &out));
  EXPECT_EQ(out, predictor.predict_exec(1, snap).exec_seconds);
  EXPECT_DOUBLE_EQ(out, 4.0);
  // Task 4 (40 MB, unseen size): policy 5, the OGD estimate — and never the
  // recorded actual, even after task 4 completes in a later snapshot.
  ASSERT_TRUE(predictor.counterfactual_exec(4, &out));
  EXPECT_EQ(out, predictor.stage_model(0).predict(40.0));
  sim::MonitorSnapshot later = snap;
  complete(later, 4, 77.0);
  double counterfactual = 0.0;
  ASSERT_TRUE(predictor.counterfactual_exec(4, &counterfactual));
  EXPECT_EQ(counterfactual, out);
  EXPECT_EQ(later.tasks[4].exec_time, 77.0);
}

// ---------------------------------------------------------------------------
// Whole-run identity and determinism contracts

dag::Workflow table1_workflow(std::uint64_t seed = 7) {
  return workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), seed);
}

TEST(BanditIdentity, SelectorOffAndSingleDefaultArmMatchBaseline) {
  // bandit.arms == 0 must be byte-identical to the pre-bandit controller,
  // and a single-default-arm selector (which can never switch and whose
  // initial arm IS the paper default) must be byte-identical to both —
  // under the quiet site and under fault chaos.
  const dag::Workflow wf = table1_workflow();
  for (bool chaotic : {false, true}) {
    const sim::CloudConfig site = chaotic ? crashy_cloud() : quiet_cloud();
    for (std::uint64_t seed : {3ull, 11ull}) {
      SCOPED_TRACE(std::string(chaotic ? "crashy" : "quiet") + " seed=" +
                   std::to_string(seed));
      core::WireController baseline{core::WireOptions{}};
      const sim::RunResult expect = run(wf, baseline, site, seed);

      core::WireController off{core::WireOptions{}};  // arms defaults to 0
      EXPECT_EQ(hex_signature(run(wf, off, site, seed)),
                hex_signature(expect));
      EXPECT_EQ(off.bandit(), nullptr);

      core::WireController single{selector_options(/*arms=*/1, /*seed=*/99)};
      const sim::RunResult single_run = run(wf, single, site, seed);
      EXPECT_EQ(hex_signature(single_run), hex_signature(expect));
      ASSERT_NE(single.bandit(), nullptr);
      EXPECT_EQ(single.bandit()->current(), 0u);
      EXPECT_EQ(single.bandit()->switches(), 0u);
    }
  }
}

TEST(BanditIdentity, OracleAndHistoryIgnoreTheSelector) {
  const dag::Workflow wf = table1_workflow();
  core::WireOptions oracle;
  oracle.oracle_estimator = true;
  core::WireController reference{oracle};
  const std::string expect = hex_signature(run(wf, reference, quiet_cloud(), 5));
  core::WireOptions oracle_bandit = oracle;
  oracle_bandit.bandit.arms = 4;
  core::WireController with_bandit{oracle_bandit};
  EXPECT_EQ(hex_signature(run(wf, with_bandit, quiet_cloud(), 5)), expect);
  EXPECT_EQ(with_bandit.bandit(), nullptr);
}

TEST(BanditDeterminism, SameSeedSameArmSequenceAndReport) {
  // The replay-determinism acceptance: with the selector enabled, the same
  // run seed yields the identical arm-switch sequence and the identical
  // final report across repeated runs — quiet and chaotic, both explorers.
  const dag::Workflow wf = table1_workflow();
  for (Explorer explorer :
       {Explorer::EpsilonGreedyDecay, Explorer::Ucb1}) {
    for (bool chaotic : {false, true}) {
      const sim::CloudConfig site = chaotic ? crashy_cloud() : quiet_cloud();
      SCOPED_TRACE(std::string(chaotic ? "crashy" : "quiet") + " explorer=" +
                   std::to_string(static_cast<int>(explorer)));
      core::WireController a{selector_options(9, /*seed=*/21, explorer)};
      core::WireController b{selector_options(9, /*seed=*/21, explorer)};
      const sim::RunResult ra = run(wf, a, site, 17);
      const sim::RunResult rb = run(wf, b, site, 17);
      EXPECT_EQ(hex_signature(ra), hex_signature(rb));
      ASSERT_NE(a.bandit(), nullptr);
      ASSERT_NE(b.bandit(), nullptr);
      EXPECT_EQ(a.bandit()->decisions(), b.bandit()->decisions());
      EXPECT_EQ(a.bandit()->total_cost(), b.bandit()->total_cost());
      EXPECT_EQ(ra.policy_name, "wire-bandit");
    }
  }
}

/// Mean misprediction cost of a fixed arm, measured through a single-arm
/// selector so the regret accounting is identical to the selector's own.
double fixed_arm_mean_cost(const dag::Workflow& wf, const BanditArm& arm,
                           const sim::CloudConfig& site, std::uint64_t seed) {
  core::WireOptions options;
  options.bandit.arms = 1;
  options.bandit.arm_set = {arm};
  options.bandit.seed = 1;
  core::WireController controller{options};
  run(wf, controller, site, seed);
  const BanditSelector* selector = controller.bandit();
  if (selector->total_completions() == 0) return 0.0;
  return selector->total_cost() /
         static_cast<double>(selector->total_completions());
}

TEST(BanditRegret, SelectorNoWorseThanTheWorstFixedArm) {
  // Regret-monotonicity sanity: across seeds, the selector's cumulative
  // misprediction cost per completion stays at or below the worst fixed
  // arm's. (The bench asserts the stronger within-10%-of-best property on
  // the full Table-I matrix; this is the cheap always-on floor.)
  const dag::Workflow wf = table1_workflow();
  const sim::CloudConfig site = crashy_cloud();
  const std::vector<BanditArm> arms = default_bandit_arms();
  const std::uint32_t k = 4;  // centre/OGD/horizon variants
  for (std::uint64_t seed : {2ull, 9ull, 23ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    double worst = 0.0;
    for (std::uint32_t i = 0; i < k; ++i) {
      worst = std::max(worst, fixed_arm_mean_cost(wf, arms[i], site, seed));
    }
    core::WireController controller{
        selector_options(k, util::derive_seed(seed, 77))};
    run(wf, controller, site, seed);
    const BanditSelector* selector = controller.bandit();
    ASSERT_NE(selector, nullptr);
    ASSERT_GT(selector->total_completions(), 0u);
    const double mean = selector->total_cost() /
                        static_cast<double>(selector->total_completions());
    EXPECT_LE(mean, worst * 1.0001);
  }
}

TEST(BanditDifferential, ArmSwitchesKeepCacheBitIdenticalToFromScratch) {
  // The reconfigure regression (pre-fix: an in-place config swap without
  // revision bumps leaves IncrementalLookahead serving stale exec memos):
  // a high-exploration selector switches arms all run long; the run with
  // the Analyze cache enabled must stay byte-identical to the from-scratch
  // (cache-off) reference at every tick, quiet and chaotic.
  const dag::Workflow wf = table1_workflow();
  for (bool chaotic : {false, true}) {
    const sim::CloudConfig site = chaotic ? crashy_cloud() : quiet_cloud();
    for (std::uint64_t seed : {4ull, 31ull}) {
      SCOPED_TRACE(std::string(chaotic ? "crashy" : "quiet") + " seed=" +
                   std::to_string(seed));
      core::WireOptions churn = selector_options(9, /*seed=*/5);
      churn.bandit.epsilon0 = 1.0;  // explore every decision
      churn.bandit.decay = 0.0;
      churn.bandit.switch_period_ticks = 2;

      core::WireOptions cached = churn;
      cached.lookahead_cache.enabled = true;
      core::WireOptions scratch = churn;
      scratch.lookahead_cache.enabled = false;

      core::WireController cached_controller{cached};
      core::WireController scratch_controller{scratch};
      const sim::RunResult a = run(wf, cached_controller, site, seed);
      const sim::RunResult b = run(wf, scratch_controller, site, seed);
      EXPECT_EQ(hex_signature(a), hex_signature(b));
      ASSERT_NE(cached_controller.bandit(), nullptr);
      EXPECT_EQ(cached_controller.bandit()->decisions(),
                scratch_controller.bandit()->decisions());
      // The churn setting must actually have switched arms, or this test
      // proves nothing.
      EXPECT_GT(cached_controller.bandit()->switches(), 0u);
    }
  }
}

TEST(BanditChaos, EnvironmentSeedRuns) {
  // CI chaos: WIRE_FUZZ_SEED (echoed in the job log) picks one extra seed
  // for the cache-vs-from-scratch differential under the hostile fault
  // model with constant arm churn.
  const char* env = std::getenv("WIRE_FUZZ_SEED");
  if (env == nullptr) GTEST_SKIP() << "WIRE_FUZZ_SEED not set";
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("WIRE_FUZZ_SEED=" + std::to_string(seed));
  std::printf("running bandit differential with WIRE_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  const dag::Workflow wf = table1_workflow();
  core::WireOptions churn = selector_options(9, util::derive_seed(seed, 3));
  churn.bandit.epsilon0 = 1.0;
  churn.bandit.decay = 0.0;
  churn.bandit.switch_period_ticks = 2;
  core::WireOptions scratch = churn;
  scratch.lookahead_cache.enabled = false;
  core::WireController cached_controller{churn};
  core::WireController scratch_controller{scratch};
  const sim::RunResult a = run(wf, cached_controller, crashy_cloud(), seed);
  const sim::RunResult b = run(wf, scratch_controller, crashy_cloud(), seed);
  EXPECT_EQ(hex_signature(a), hex_signature(b));
  EXPECT_EQ(cached_controller.bandit()->decisions(),
            scratch_controller.bandit()->decisions());
}

}  // namespace
}  // namespace wire::predict
