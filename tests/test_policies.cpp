// Tests for the baseline scaling policies (§IV-C settings): static,
// pure-reactive, and reactive-conserving.
#include <gtest/gtest.h>

#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"

namespace wire::policies {
namespace {

sim::CloudConfig exact_cloud(double u, double lag = 60.0,
                             std::uint32_t slots = 4,
                             std::uint32_t max_instances = 12) {
  sim::CloudConfig config;
  config.lag_seconds = lag;
  config.charging_unit_seconds = u;
  config.slots_per_instance = slots;
  config.max_instances = max_instances;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  config.variability.bandwidth_mb_per_s = 1e12;
  return config;
}

sim::MonitorSnapshot snapshot_with_instances(std::uint32_t n_ready_tasks,
                                             std::uint32_t n_instances,
                                             double r = 500.0) {
  sim::MonitorSnapshot snap;
  snap.tasks.assign(n_ready_tasks, sim::TaskObservation{});
  for (std::uint32_t t = 0; t < n_ready_tasks; ++t) {
    snap.tasks[t].phase = sim::TaskPhase::Ready;
    snap.ready_queue.push_back(t);
  }
  snap.incomplete_tasks = n_ready_tasks;
  for (std::uint32_t i = 0; i < n_instances; ++i) {
    sim::InstanceObservation obs;
    obs.id = i;
    obs.time_to_next_charge = r;
    obs.free_slots = 4;
    snap.instances.push_back(obs);
  }
  return snap;
}

TEST(StaticPolicy, NamesAndValidation) {
  EXPECT_EQ(StaticPolicy(3).name(), "static-3");
  EXPECT_EQ(StaticPolicy(12, "full-site").name(), "full-site");
  EXPECT_THROW(StaticPolicy(0), util::ContractViolation);
}

TEST(StaticPolicy, TopsUpBelowTarget) {
  StaticPolicy policy(4);
  const auto snap = snapshot_with_instances(8, 2);
  const sim::PoolCommand cmd = policy.plan(snap);
  EXPECT_EQ(cmd.grow, 2u);
  EXPECT_TRUE(cmd.releases.empty());
}

TEST(StaticPolicy, NeverReleases) {
  StaticPolicy policy(2);
  const auto snap = snapshot_with_instances(0, 5);
  const sim::PoolCommand cmd = policy.plan(snap);
  EXPECT_EQ(cmd.grow, 0u);
  EXPECT_TRUE(cmd.releases.empty());
}

TEST(PureReactive, TargetsCeilOfActiveOverSlots) {
  PureReactivePolicy policy;
  const dag::Workflow wf = workload::linear_workflow(1, 9, 10.0);
  policy.on_run_start(wf, exact_cloud(900.0));
  const auto snap = snapshot_with_instances(9, 1);
  // ceil(9/4) = 3 -> grow 2.
  const sim::PoolCommand cmd = policy.plan(snap);
  EXPECT_EQ(cmd.grow, 2u);
}

TEST(PureReactive, ShrinksImmediatelyAndPrefersIdleInstances) {
  PureReactivePolicy policy;
  const dag::Workflow wf = workload::linear_workflow(1, 4, 10.0);
  policy.on_run_start(wf, exact_cloud(900.0));
  auto snap = snapshot_with_instances(0, 3);
  snap.incomplete_tasks = 2;
  // Instance 1 is busy with two running tasks; 0 and 2 idle.
  snap.tasks.assign(2, sim::TaskObservation{});
  snap.tasks[0].phase = sim::TaskPhase::Running;
  snap.tasks[1].phase = sim::TaskPhase::Running;
  snap.ready_queue.clear();
  snap.instances[1].running_tasks = {0, 1};
  snap.instances[1].free_slots = 2;
  // active = 2 -> target ceil(2/4) = 1, m = 3 -> release 2, idle ones first.
  const sim::PoolCommand cmd = policy.plan(snap);
  ASSERT_EQ(cmd.releases.size(), 2u);
  EXPECT_FALSE(cmd.releases[0].at_charge_boundary);  // immediate
  EXPECT_EQ(cmd.releases[0].instance, 0u);
  EXPECT_EQ(cmd.releases[1].instance, 2u);
}

TEST(PureReactive, KeepsOneInstanceWhileWorkRemains) {
  PureReactivePolicy policy;
  const dag::Workflow wf = workload::linear_workflow(2, 1, 10.0);
  policy.on_run_start(wf, exact_cloud(900.0));
  auto snap = snapshot_with_instances(0, 1);
  snap.incomplete_tasks = 1;  // successor stage still pending
  const sim::PoolCommand cmd = policy.plan(snap);
  EXPECT_EQ(cmd.grow, 0u);
  EXPECT_TRUE(cmd.releases.empty());
}

TEST(ReactiveConserving, ReleasesOnlyAtExpiringBoundaries) {
  ReactiveConservingPolicy policy;
  const dag::Workflow wf = workload::linear_workflow(1, 4, 10.0);
  policy.on_run_start(wf, exact_cloud(900.0, 180.0));
  auto snap = snapshot_with_instances(0, 3);
  snap.incomplete_tasks = 1;
  snap.instances[0].time_to_next_charge = 100.0;  // expires within lag
  snap.instances[1].time_to_next_charge = 100.0;
  snap.instances[2].time_to_next_charge = 800.0;  // not yet
  const sim::PoolCommand cmd = policy.plan(snap);
  ASSERT_EQ(cmd.releases.size(), 2u);
  for (const sim::Release& rel : cmd.releases) {
    EXPECT_TRUE(rel.at_charge_boundary);
    EXPECT_NE(rel.instance, 2u);
  }
}

TEST(ReactiveConserving, SunkCostBlocksRelease) {
  ReactiveConservingPolicy policy;
  const dag::Workflow wf = workload::linear_workflow(1, 4, 10.0);
  policy.on_run_start(wf, exact_cloud(900.0, 180.0));
  auto snap = snapshot_with_instances(0, 2);
  snap.incomplete_tasks = 2;
  snap.tasks.assign(2, sim::TaskObservation{});
  snap.tasks[0].phase = sim::TaskPhase::Running;
  snap.tasks[0].elapsed = 400.0;  // > 0.2 * 900
  snap.tasks[1].phase = sim::TaskPhase::Running;
  snap.tasks[1].elapsed = 50.0;
  snap.instances[0].time_to_next_charge = 100.0;
  snap.instances[0].running_tasks = {0};
  snap.instances[1].time_to_next_charge = 100.0;
  snap.instances[1].running_tasks = {1};
  // target = 1, m = 2: only instance 1 (cheap restart) is releasable.
  const sim::PoolCommand cmd = policy.plan(snap);
  ASSERT_EQ(cmd.releases.size(), 1u);
  EXPECT_EQ(cmd.releases[0].instance, 1u);
}

TEST(Baselines, EndToEndCostOrderingOnWideWorkload) {
  // A stage needing ~4 instances: full-site burns 12 instances' units while
  // the reactive policies provision to demand; every policy completes all
  // tasks. (The WIRE comparison lives in test_core_controller.)
  const dag::Workflow wf = workload::linear_workflow(1, 16, 120.0);
  const sim::CloudConfig config = exact_cloud(900.0, 180.0);

  StaticPolicy full_site(12, "full-site");
  sim::RunOptions options;
  options.seed = 5;
  options.initial_instances = 12;
  const sim::RunResult rs = sim::simulate(wf, full_site, config, options);

  PureReactivePolicy reactive;
  options.initial_instances = 1;
  const sim::RunResult rr = sim::simulate(wf, reactive, config, options);

  ReactiveConservingPolicy conserving;
  const sim::RunResult rc = sim::simulate(wf, conserving, config, options);

  EXPECT_LE(rs.makespan, rr.makespan);
  EXPECT_GT(rs.cost_units, rr.cost_units);
  EXPECT_GT(rs.cost_units, rc.cost_units);
  for (const sim::RunResult* r : {&rs, &rr, &rc}) {
    for (const sim::TaskRuntime& rec : r->task_records) {
      EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
    }
  }
}

}  // namespace
}  // namespace wire::policies
