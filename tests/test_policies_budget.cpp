// Differential chaos suite for the budget-constrained policy wrapper
// (policies::BudgetPolicy): budget-off runs must be byte-identical to
// unwrapped baselines, ample budgets must reproduce the unconstrained
// schedule bitwise, and under fault chaos the spend / progress / monotonicity
// invariants must hold across seeds (WIRE_FUZZ_SEED widens the seed set).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "ensemble/arbiter.h"
#include "exp/settings.h"
#include "policies/baselines.h"
#include "policies/budget.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire::policies {
namespace {

sim::CloudConfig cloud(double u = 60.0, double lag = 60.0) {
  sim::CloudConfig config;
  config.lag_seconds = lag;
  config.charging_unit_seconds = u;
  config.slots_per_instance = 4;
  config.max_instances = 12;
  config.variability.instance_speed_sigma = 0.0;
  config.variability.interference_sigma = 0.0;
  config.variability.transfer_noise_sigma = 0.0;
  config.variability.transfer_latency_seconds = 0.0;
  return config;
}

/// cloud() plus the hostile fault model of the ensemble chaos suites:
/// crashes, provisioning failures, stragglers, transient task failures and
/// monitor dropouts all active.
sim::CloudConfig crashy() {
  sim::CloudConfig config = cloud();
  config.faults.crash_rate_per_hour = 0.6;
  config.faults.crash_notice_seconds = 120.0;
  config.faults.provision_failure_prob = 0.1;
  config.faults.straggler_prob = 0.15;
  config.faults.task_failure_prob = 0.05;
  config.faults.monitor_dropout_prob = 0.1;
  return config;
}

sim::RunResult run(const dag::Workflow& wf, sim::ScalingPolicy& policy,
                   const sim::CloudConfig& site, std::uint64_t seed) {
  sim::RunOptions options;
  options.seed = seed;
  options.initial_instances = 1;
  return sim::simulate(wf, policy, site, options);
}

BudgetOptions budget_of(double units, BudgetMode mode = BudgetMode::kHardCap,
                        double deadline = 0.0) {
  BudgetOptions options;
  options.budget_units = units;
  options.mode = mode;
  options.deadline_seconds = deadline;
  return options;
}

/// Hexfloat signature of the run's continuous outcome: any bit of drift in
/// any double shows up as a string diff (the "byte-identical" half of the
/// differential contract, readable in failure output).
std::string hex_signature(const sim::RunResult& r) {
  char buf[64];
  std::string sig;
  auto add = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%a;", v);
    sig += buf;
  };
  add(r.makespan);
  add(r.cost_units);
  add(r.ready_instance_seconds);
  add(r.busy_slot_seconds);
  add(r.wasted_slot_seconds);
  add(r.utilization);
  for (const sim::TaskRuntime& t : r.task_records) {
    add(t.completed_at);
    add(t.exec_time);
    add(t.transfer_in_time);
  }
  return sig;
}

void expect_same_run(const sim::RunResult& a, const sim::RunResult& b,
                     bool include_name) {
  if (include_name) {
    EXPECT_EQ(a.policy_name, b.policy_name);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.cost_units, b.cost_units);
  EXPECT_EQ(a.ready_instance_seconds, b.ready_instance_seconds);
  EXPECT_EQ(a.busy_slot_seconds, b.busy_slot_seconds);
  EXPECT_EQ(a.wasted_slot_seconds, b.wasted_slot_seconds);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.peak_instances, b.peak_instances);
  EXPECT_EQ(a.task_restarts, b.task_restarts);
  EXPECT_EQ(a.control_ticks, b.control_ticks);
  EXPECT_EQ(a.task_faults, b.task_faults);
  EXPECT_EQ(a.instance_crashes, b.instance_crashes);
  EXPECT_EQ(a.provision_failures, b.provision_failures);
  EXPECT_EQ(a.quarantined_tasks, b.quarantined_tasks);
  EXPECT_EQ(hex_signature(a), hex_signature(b));
  ASSERT_EQ(a.task_records.size(), b.task_records.size());
  for (std::size_t i = 0; i < a.task_records.size(); ++i) {
    const sim::TaskRuntime& ta = a.task_records[i];
    const sim::TaskRuntime& tb = b.task_records[i];
    EXPECT_EQ(ta.phase, tb.phase) << "task " << i;
    EXPECT_EQ(ta.completed_at, tb.completed_at) << "task " << i;
    EXPECT_EQ(ta.exec_time, tb.exec_time) << "task " << i;
    EXPECT_EQ(ta.instance, tb.instance) << "task " << i;
    EXPECT_EQ(ta.attempts, tb.attempts) << "task " << i;
  }
}

/// Every non-quarantined task completed — the no-livelock check (a stuck
/// budget floor would leave Pending/Ready records behind).
void expect_complete(const sim::RunResult& r) {
  for (std::size_t i = 0; i < r.task_records.size(); ++i) {
    const bool quarantined =
        std::find(r.quarantined_tasks.begin(), r.quarantined_tasks.end(),
                  static_cast<dag::TaskId>(i)) != r.quarantined_tasks.end();
    if (!quarantined) {
      EXPECT_EQ(r.task_records[i].phase, sim::TaskPhase::Completed)
          << "task " << i << " never completed";
    }
  }
}

// ---------------------------------------------------------------------------
// Construction and naming.
// ---------------------------------------------------------------------------

TEST(Budget, RejectsInvalidOptions) {
  EXPECT_THROW(BudgetPolicy(nullptr, budget_of(10.0)),
               util::ContractViolation);
  EXPECT_THROW(BudgetPolicy(std::make_unique<PureReactivePolicy>(),
                            budget_of(-1.0)),
               util::ContractViolation);
  // Enabled deadline-aware budgeting needs a positive deadline...
  EXPECT_THROW(BudgetPolicy(std::make_unique<PureReactivePolicy>(),
                            budget_of(10.0, BudgetMode::kDeadlineAware, 0.0)),
               util::ContractViolation);
  // ...but the disabled sentinel does not (mode is irrelevant when off).
  EXPECT_NO_THROW(BudgetPolicy(std::make_unique<PureReactivePolicy>(),
                               budget_of(0.0, BudgetMode::kDeadlineAware)));
}

TEST(Budget, NameIsPassthroughWhenDisabledAndTaggedWhenEnabled) {
  BudgetPolicy off(std::make_unique<PureReactivePolicy>(), budget_of(0.0));
  EXPECT_EQ(off.name(), PureReactivePolicy().name());
  EXPECT_FALSE(off.enabled());

  BudgetPolicy hard(std::make_unique<PureReactivePolicy>(), budget_of(24.0));
  EXPECT_EQ(hard.name(), PureReactivePolicy().name() + "+budget-hard-24");
  EXPECT_TRUE(hard.enabled());
  EXPECT_FALSE(hard.exhausted());
  EXPECT_EQ(hard.remaining_units(), 24.0);

  BudgetPolicy taper(std::make_unique<PureReactivePolicy>(),
                     budget_of(8.0, BudgetMode::kLinearTaper));
  EXPECT_EQ(taper.name(), PureReactivePolicy().name() + "+budget-taper-8");

  BudgetPolicy dl(std::make_unique<PureReactivePolicy>(),
                  budget_of(8.0, BudgetMode::kDeadlineAware, 3600.0));
  EXPECT_EQ(dl.name(), PureReactivePolicy().name() + "+budget-deadline-8");
}

// ---------------------------------------------------------------------------
// The budget-off identity contract: wrapping any baseline with the zero
// sentinel must not move a single byte of the run, fault chaos included.
// ---------------------------------------------------------------------------

TEST(Budget, DisabledIsBytePassthrough) {
  const std::vector<dag::Workflow> workflows = {
      workload::make_workflow(workload::tpch6_profile(workload::Scale::Small),
                              7),
      workload::make_workflow(
          workload::pagerank_profile(workload::Scale::Small), 7)};
  for (exp::PolicyKind kind :
       {exp::PolicyKind::PureReactive, exp::PolicyKind::ReactiveConserving,
        exp::PolicyKind::Wire}) {
    for (std::size_t w = 0; w < workflows.size(); ++w) {
      SCOPED_TRACE(std::string("policy=") + exp::policy_label(kind) +
                   " workflow=" + std::to_string(w));
      auto bare = exp::make_policy(kind);
      const sim::RunResult reference = run(workflows[w], *bare, cloud(), 3);
      BudgetPolicy wrapped(exp::make_policy(kind), budget_of(0.0));
      const sim::RunResult off = run(workflows[w], wrapped, cloud(), 3);
      expect_same_run(reference, off, /*include_name=*/true);
    }
  }
}

TEST(Budget, DisabledIsBytePassthroughUnderFaultChaos) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  for (std::uint64_t seed : {5ull, 11ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto bare = exp::make_policy(exp::PolicyKind::Wire);
    const sim::RunResult reference = run(wf, *bare, crashy(), seed);
    BudgetPolicy wrapped(exp::make_policy(exp::PolicyKind::Wire),
                         budget_of(0.0));
    const sim::RunResult off = run(wf, wrapped, crashy(), seed);
    expect_same_run(reference, off, /*include_name=*/true);
  }
}

TEST(Budget, DisabledFactoryMatchesPlainFactory) {
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Small), 7);
  auto plain = exp::policy_factory(exp::PolicyKind::ReactiveConserving);
  auto budgeted = exp::budget_policy_factory(
      exp::PolicyKind::ReactiveConserving, budget_of(0.0));
  auto a = plain();
  auto b = budgeted();
  expect_same_run(run(wf, *a, cloud(), 7), run(wf, *b, cloud(), 7),
                  /*include_name=*/true);
}

// ---------------------------------------------------------------------------
// Ample budgets: the constraint never binds, so the schedule (everything but
// the policy name) reproduces the unconstrained run bit for bit.
// ---------------------------------------------------------------------------

TEST(Budget, AmpleBudgetReproducesUnconstrainedSchedule) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  for (exp::PolicyKind kind :
       {exp::PolicyKind::ReactiveConserving, exp::PolicyKind::Wire}) {
    SCOPED_TRACE(std::string("policy=") + exp::policy_label(kind));
    auto bare = exp::make_policy(kind);
    const sim::RunResult reference = run(wf, *bare, cloud(), 3);
    BudgetPolicy ample(exp::make_policy(kind), budget_of(1e6));
    const sim::RunResult constrained = run(wf, ample, cloud(), 3);
    expect_same_run(reference, constrained, /*include_name=*/false);
    EXPECT_NE(reference.policy_name, constrained.policy_name);
    EXPECT_FALSE(ample.exhausted());
  }
}

TEST(Budget, AmpleBudgetReproducesUnconstrainedScheduleUnderChaos) {
  const dag::Workflow wf = workload::make_workflow(
      workload::pagerank_profile(workload::Scale::Small), 7);
  auto bare = exp::make_policy(exp::PolicyKind::Wire);
  const sim::RunResult reference = run(wf, *bare, crashy(), 11);
  BudgetPolicy ample(exp::make_policy(exp::PolicyKind::Wire),
                     budget_of(1e6));
  const sim::RunResult constrained = run(wf, ample, crashy(), 11);
  expect_same_run(reference, constrained, /*include_name=*/false);
}

// ---------------------------------------------------------------------------
// Spend invariants. Feasible budgets are derived from an unconstrained probe
// run (a budget the job *can* meet), so the bound is meaningful: projected
// enforcement keeps the bill within budget plus one charging-unit quantum of
// projection slack. Under crash chaos the monitoring mirror can under-count
// each crashed instance by at most one unit (it dies between control ticks),
// so the allowance widens by one unit per crash; a run that was driven to
// exhaustion is additionally allowed its minimum-progress floor burn (one
// instance to the end of the run).
// ---------------------------------------------------------------------------

void spend_property(const dag::Workflow& wf, const sim::CloudConfig& site,
                    std::uint64_t seed, double budget_scale) {
  auto probe = exp::make_policy(exp::PolicyKind::Wire);
  const sim::RunResult unconstrained = run(wf, *probe, site, seed);
  const double budget = std::ceil(unconstrained.cost_units * budget_scale);
  ASSERT_GT(budget, 0.0);

  BudgetPolicy policy(exp::make_policy(exp::PolicyKind::Wire),
                      budget_of(budget));
  const sim::RunResult r = run(wf, policy, site, seed);
  expect_complete(r);

  const double u = site.charging_unit_seconds;
  double allowance = 1.0 + static_cast<double>(r.instance_crashes);
  if (policy.exhausted()) allowance += std::ceil(r.makespan / u);
  EXPECT_LE(r.cost_units, budget + allowance)
      << "seed " << seed << " scale " << budget_scale << ": billed "
      << r.cost_units << " against budget " << budget << " (unconstrained "
      << unconstrained.cost_units << ", crashes " << r.instance_crashes
      << ", exhausted " << policy.exhausted() << ")";
  EXPECT_GT(policy.committed_units(), 0.0);
}

TEST(Budget, SpendStaysWithinFeasibleBudget) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  for (double scale : {1.0, 0.8}) {
    SCOPED_TRACE("scale=" + std::to_string(scale));
    spend_property(wf, cloud(), 3, scale);
  }
}

TEST(BudgetChaos, SpendInvariantHoldsAcrossSeeds) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  for (std::uint64_t seed : {5ull, 11ull, 29ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    spend_property(wf, crashy(), seed, 0.9);
  }
}

/// Same property on a seed taken from the environment — the fuzz hook shared
/// with the fault suites: WIRE_FUZZ_SEED=<n> ctest -R BudgetChaos.
TEST(BudgetChaos, EnvironmentSeedRuns) {
  const char* env = std::getenv("WIRE_FUZZ_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "WIRE_FUZZ_SEED not set";
  }
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("WIRE_FUZZ_SEED=" + std::to_string(seed));
  std::printf("fuzzing budget spend invariant with seed %llu\n",
              static_cast<unsigned long long>(seed));
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  spend_property(wf, crashy(), seed, 0.9);
  spend_property(wf, crashy(), seed, 1.0);
}

// ---------------------------------------------------------------------------
// Exhaustion: a budget far below the cheapest possible run must degrade to
// the minimum-progress floor — the run still completes (no livelock), the
// pool collapses, and the overrun is the floor's burn rather than unbounded.
// ---------------------------------------------------------------------------

TEST(Budget, ExhaustionDegradesToMinimumProgress) {
  const dag::Workflow wf = workload::linear_workflow(1, 64, 300.0);
  auto bare = exp::make_policy(exp::PolicyKind::Wire);
  const sim::RunResult unconstrained = run(wf, *bare, cloud(), 3);

  BudgetPolicy policy(exp::make_policy(exp::PolicyKind::Wire),
                      budget_of(2.0));
  const sim::RunResult r = run(wf, policy, cloud(), 3);
  expect_complete(r);
  EXPECT_TRUE(policy.exhausted());
  EXPECT_EQ(policy.remaining_units(), 0.0);
  EXPECT_GT(r.cost_units, 2.0);  // the permitted floor overrun
  // The floor bound: one instance to the end of the run, plus the unit of
  // projection slack.
  EXPECT_LE(r.cost_units,
            2.0 + std::ceil(r.makespan / cloud().charging_unit_seconds) + 1.0);
  EXPECT_LT(r.peak_instances, unconstrained.peak_instances);
  EXPECT_GT(r.makespan, unconstrained.makespan);
}

TEST(BudgetChaos, ExhaustionStillCompletesUnderFaults) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  BudgetPolicy policy(exp::make_policy(exp::PolicyKind::Wire),
                      budget_of(2.0));
  const sim::RunResult r = run(wf, policy, crashy(), 11);
  expect_complete(r);
  EXPECT_TRUE(policy.exhausted());
}

// ---------------------------------------------------------------------------
// Monotonicity: on the deterministic quiet site, a larger budget can only
// help — its makespan never exceeds a smaller budget's (small multiplicative
// slack for charge-boundary discretization).
// ---------------------------------------------------------------------------

TEST(Budget, MakespanMonotoneInBudget) {
  const dag::Workflow wf = workload::linear_workflow(1, 64, 300.0);
  double previous = 0.0;
  for (double budget : {6.0, 12.0, 24.0, 48.0, 96.0}) {
    BudgetPolicy policy(exp::make_policy(exp::PolicyKind::ReactiveConserving),
                        budget_of(budget));
    const sim::RunResult r = run(wf, policy, cloud(), 3);
    expect_complete(r);
    if (previous > 0.0) {
      EXPECT_LE(r.makespan, previous * 1.05) << "budget " << budget;
    }
    previous = r.makespan;
  }
}

// ---------------------------------------------------------------------------
// Mode shaping.
// ---------------------------------------------------------------------------

TEST(Budget, TaperThrottlesBeforeTheWall) {
  const dag::Workflow wf = workload::linear_workflow(1, 64, 300.0);
  auto probe = exp::make_policy(exp::PolicyKind::ReactiveConserving);
  const double budget = std::ceil(run(wf, *probe, cloud(), 3).cost_units);

  BudgetPolicy hard(exp::make_policy(exp::PolicyKind::ReactiveConserving),
                    budget_of(budget));
  const sim::RunResult hard_run = run(wf, hard, cloud(), 3);
  BudgetPolicy taper(exp::make_policy(exp::PolicyKind::ReactiveConserving),
                     budget_of(budget, BudgetMode::kLinearTaper));
  const sim::RunResult taper_run = run(wf, taper, cloud(), 3);

  expect_complete(hard_run);
  expect_complete(taper_run);
  // The taper spends the same budget more gradually: never a taller pool
  // than the hard cap's full-tilt run. Deceleration stretches the run (the
  // shrinking pool churns through charge quanta less efficiently), so the
  // bill may pass the budget — but only by the minimum-progress floor tail,
  // like any exhausted run.
  EXPECT_LE(taper_run.peak_instances, hard_run.peak_instances);
  double allowance = 1.0;
  if (taper.exhausted()) {
    allowance += std::ceil(taper_run.makespan / cloud().charging_unit_seconds);
  }
  EXPECT_LE(taper_run.cost_units, budget + allowance);
  EXPECT_GE(taper_run.makespan, hard_run.makespan);
}

TEST(Budget, DeadlineAwarePacesSpendToTheSlack) {
  const dag::Workflow wf = workload::linear_workflow(1, 64, 300.0);
  auto probe = exp::make_policy(exp::PolicyKind::ReactiveConserving);
  const sim::RunResult unconstrained = run(wf, *probe, cloud(), 3);
  const double budget = std::ceil(unconstrained.cost_units);
  const double loose = 3.0 * unconstrained.makespan;

  BudgetPolicy paced(exp::make_policy(exp::PolicyKind::ReactiveConserving),
                     budget_of(budget, BudgetMode::kDeadlineAware, loose));
  const sim::RunResult paced_run = run(wf, paced, cloud(), 3);
  expect_complete(paced_run);
  // With triple the slack the pacer runs a smaller pool for longer: cheaper
  // than the all-out run, still inside the deadline.
  EXPECT_LT(paced_run.cost_units, unconstrained.cost_units);
  EXPECT_LT(paced_run.peak_instances, unconstrained.peak_instances);
  EXPECT_LE(paced_run.makespan, loose * 1.1);
  EXPECT_GE(paced_run.makespan, unconstrained.makespan);

  // A deadline with no slack degenerates to (at most) the all-out schedule.
  BudgetPolicy tight(exp::make_policy(exp::PolicyKind::ReactiveConserving),
                     budget_of(budget, BudgetMode::kDeadlineAware,
                               unconstrained.makespan));
  const sim::RunResult tight_run = run(wf, tight, cloud(), 3);
  expect_complete(tight_run);
  EXPECT_LE(tight_run.makespan, paced_run.makespan);
}

// ---------------------------------------------------------------------------
// The demand-signal surface: plan() must publish remaining budget on the
// command (the arbiter's third bidding axis) and keep the minimum-progress
// floor from an empty pool.
// ---------------------------------------------------------------------------

sim::MonitorSnapshot empty_pool_snapshot(const dag::Workflow& wf) {
  sim::MonitorSnapshot snapshot;
  snapshot.now = 0.0;
  snapshot.tasks.resize(wf.task_count());
  snapshot.tasks[0].phase = sim::TaskPhase::Ready;
  snapshot.tasks[0].ready_since = 0.0;
  snapshot.ready_queue.push_back(0);
  snapshot.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  return snapshot;
}

TEST(Budget, PlanPublishesTheRemainingBudgetSignal) {
  const dag::Workflow wf = workload::linear_workflow(1, 8, 100.0);

  BudgetPolicy off(std::make_unique<PureReactivePolicy>(), budget_of(0.0));
  off.on_run_start(wf, cloud());
  const sim::PoolCommand off_cmd = off.plan(empty_pool_snapshot(wf));
  EXPECT_EQ(off_cmd.remaining_budget_units, -1.0);  // passthrough: unreported

  BudgetPolicy on(std::make_unique<PureReactivePolicy>(), budget_of(12.0));
  on.on_run_start(wf, cloud());
  const sim::PoolCommand on_cmd = on.plan(empty_pool_snapshot(wf));
  EXPECT_EQ(on_cmd.remaining_budget_units, 12.0);  // nothing committed yet
  EXPECT_GE(on_cmd.desired_pool, 1u);
  EXPECT_GE(on_cmd.grow, 1u);  // work remains, pool empty: must boot
}

/// Scripted inner policy: replays one fixed command every tick, so the
/// wrapper's enforcement can be driven through hand-built pool states the
/// engine rarely surfaces at tick instants (in-flight boots, reclaimed
/// drains).
class ScriptedPolicy final : public sim::ScalingPolicy {
 public:
  explicit ScriptedPolicy(sim::PoolCommand cmd) : cmd_(std::move(cmd)) {}
  std::string name() const override { return "scripted"; }
  void on_run_start(const dag::Workflow&, const sim::CloudConfig&) override {}
  sim::PoolCommand plan(const sim::MonitorSnapshot&) override { return cmd_; }

 private:
  sim::PoolCommand cmd_;
};

TEST(Budget, EnforcementTightensInTheDocumentedOrder) {
  // Pool: two ready rows (recharging at 30 s and 45 s), one boot in flight,
  // one draining row the inner command reclaims, plus two grow requests.
  // Committed spend is 3 units (the drain is a billed row too) against a
  // budget of 3, so enforcement must strip the command down in the
  // documented order — reclaimed drain first, then grows, then the boot
  // (immediate release), then the soonest-recharge ready row (boundary
  // release) — stopping at the one-instance floor.
  sim::PoolCommand inner_cmd;
  inner_cmd.grow = 2;
  inner_cmd.cancel_drains.push_back(3);
  BudgetPolicy policy(std::make_unique<ScriptedPolicy>(inner_cmd),
                      budget_of(3.0));
  const dag::Workflow wf = workload::linear_workflow(1, 8, 100.0);
  policy.on_run_start(wf, cloud());

  sim::MonitorSnapshot snapshot;
  snapshot.now = 30.0;
  snapshot.incomplete_tasks = 8;
  auto add_instance = [&](sim::InstanceId id, bool provisioning,
                          double ready_at, double ttc, bool draining) {
    sim::InstanceObservation inst;
    inst.id = id;
    inst.provisioning = provisioning;
    inst.ready_at = ready_at;
    inst.time_to_next_charge = ttc;
    inst.draining = draining;
    inst.free_slots = 4;
    snapshot.instances.push_back(inst);
  };
  add_instance(0, false, 0.0, 30.0, false);   // ready, recharges first
  add_instance(1, false, 15.0, 45.0, false);  // ready, recharges later
  add_instance(2, true, 70.0, 0.0, false);    // boot in flight
  add_instance(3, false, 0.0, 50.0, true);    // draining, reclaimed by inner

  const sim::PoolCommand cmd = policy.plan(snapshot);
  // Three billed rows (two ready + the draining one), 1 unit each; only the
  // provisioning boot is free until it lands.
  EXPECT_EQ(policy.committed_units(), 3.0);
  EXPECT_TRUE(cmd.cancel_drains.empty());    // reclaim dropped first
  EXPECT_EQ(cmd.grow, 0u);                   // grows cut second
  ASSERT_EQ(cmd.releases.size(), 2u);
  EXPECT_EQ(cmd.releases[0].instance, 2u);   // boot cancelled third...
  EXPECT_FALSE(cmd.releases[0].at_charge_boundary);  // ...immediately
  EXPECT_EQ(cmd.releases[1].instance, 0u);   // soonest-recharge ready row...
  EXPECT_TRUE(cmd.releases[1].at_charge_boundary);   // ...drains at boundary
  EXPECT_EQ(cmd.desired_pool, 1u);           // the minimum-progress floor
  EXPECT_EQ(cmd.remaining_budget_units, 0.0);
}

TEST(Budget, FloorBootsFromAnEmptyPool) {
  // An inner command with no pool at all while work remains: the wrapper
  // must boot the minimum-progress instance even though the budget cannot
  // pay for it.
  BudgetPolicy policy(std::make_unique<ScriptedPolicy>(sim::PoolCommand{}),
                      budget_of(1.0));
  const dag::Workflow wf = workload::linear_workflow(1, 8, 100.0);
  policy.on_run_start(wf, cloud());
  sim::MonitorSnapshot snapshot;
  snapshot.now = 0.0;
  snapshot.incomplete_tasks = 8;
  const sim::PoolCommand cmd = policy.plan(snapshot);
  EXPECT_EQ(cmd.grow, 1u);
  EXPECT_EQ(cmd.desired_pool, 1u);
}

TEST(Budget, ExhaustedPlanReportsZeroAndKeepsTheFloor) {
  const dag::Workflow wf = workload::linear_workflow(1, 8, 100.0);
  BudgetPolicy policy(std::make_unique<PureReactivePolicy>(), budget_of(1.0));
  policy.on_run_start(wf, cloud());

  // One ready instance alive for ten charging units: committed spend 10 >> 1.
  sim::MonitorSnapshot snapshot = empty_pool_snapshot(wf);
  snapshot.now = 600.0;
  sim::InstanceObservation inst;
  inst.id = 0;
  inst.provisioning = false;
  inst.ready_at = 0.0;
  inst.time_to_next_charge = 60.0;
  inst.free_slots = 4;
  snapshot.instances.push_back(inst);

  const sim::PoolCommand cmd = policy.plan(snapshot);
  EXPECT_TRUE(policy.exhausted());
  EXPECT_EQ(policy.remaining_units(), 0.0);
  EXPECT_EQ(cmd.remaining_budget_units, 0.0);  // exhausted is a real report
  // The floor: the single instance survives enforcement.
  EXPECT_TRUE(cmd.releases.empty());
  EXPECT_EQ(cmd.desired_pool, 1u);
}

TEST(BudgetArbitration, TinyPositiveBudgetStillOutbidsExhaustion) {
  // The fixed-point rounding regression: a tenant with remaining budget
  // just above 0 (here 1/64 of a charging unit — llround(units * 16) == 0)
  // must bid ABOVE the documented exhausted floor, not be starved at
  // weight 0 like a tenant whose money is actually gone. Pre-fix, tenant 1
  // below rounds to weight 0: with only zero-weight bidders left the spare
  // capacity is withheld entirely ("capacity waits") and the solvent
  // tenant is pinned at its floor share.
  std::vector<ensemble::TenantDemand> tenants(2);
  tenants[0].job = 0;
  tenants[0].arrival_seconds = 0.0;
  tenants[0].live_instances = 1;
  tenants[0].requested_pool = 4;
  tenants[0].remaining_budget_units = 0.0;  // genuinely exhausted
  tenants[1].job = 1;
  tenants[1].arrival_seconds = 10.0;
  tenants[1].live_instances = 1;
  tenants[1].requested_pool = 4;
  tenants[1].remaining_budget_units = 1.0 / 64.0;  // nearly broke, solvent
  const std::vector<std::uint32_t> shares = ensemble::allocate_shares(
      ensemble::ArbiterStrategy::BudgetWeighted, /*site_cap=*/8, tenants);
  ASSERT_EQ(shares.size(), 2u);
  // The exhausted tenant keeps only what it holds; the solvent one's
  // fixed-point weight is floored at 1, so its full unmet demand is funded
  // (it is the only solvent bidder and the spare covers it).
  EXPECT_EQ(shares[0], 1u);
  EXPECT_EQ(shares[1], 4u);

  // The floor must not disturb the existing rounding anywhere above it: a
  // tenant at or above 1/32 of a unit rounds to a nonzero weight already,
  // and an unreported tenant (-1) still bids as one unit (weight 16).
  tenants[1].remaining_budget_units = -1.0;
  const std::vector<std::uint32_t> unreported = ensemble::allocate_shares(
      ensemble::ArbiterStrategy::BudgetWeighted, 8, tenants);
  EXPECT_EQ(unreported[1], 4u);
}

}  // namespace
}  // namespace wire::policies
