// Driver robustness: the simulator must tolerate hostile or buggy scaling
// policies without corrupting state — nonsense instance ids, releases of
// provisioning instances, duplicate releases, oversized grow requests,
// oscillating commands. Every task must still complete and billing must stay
// consistent.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "policies/baselines.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace wire::sim {
namespace {

CloudConfig small_cloud() {
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 5;
  return config;
}

/// Issues deliberately malformed commands.
class HostilePolicy final : public ScalingPolicy {
 public:
  explicit HostilePolicy(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "hostile"; }
  void on_run_start(const dag::Workflow&, const CloudConfig&) override {}

  PoolCommand plan(const MonitorSnapshot& snapshot) override {
    PoolCommand cmd;
    switch (rng_.uniform_int(0, 5)) {
      case 0:
        cmd.grow = 1000;  // far beyond the site cap
        break;
      case 1:
        // Release an instance id that does not exist.
        cmd.releases.push_back(Release{987654u, true});
        cmd.releases.push_back(Release{kInvalidInstance, false});
        break;
      case 2:
        // Release everything, twice, mixing modes.
        for (const InstanceObservation& inst : snapshot.instances) {
          cmd.releases.push_back(Release{inst.id, true});
          cmd.releases.push_back(Release{inst.id, false});
        }
        cmd.grow = 2;
        break;
      case 3:
        // Release provisioning instances specifically.
        for (const InstanceObservation& inst : snapshot.instances) {
          if (inst.provisioning) {
            cmd.releases.push_back(Release{inst.id, true});
          }
        }
        break;
      case 4:
        cmd.grow = 3;
        break;
      default:
        break;  // do nothing
    }
    return cmd;
  }

 private:
  util::Rng rng_;
};

class HostileSweep : public ::testing::TestWithParam<int> {};

TEST_P(HostileSweep, RunsSurviveMalformedCommands) {
  SCOPED_TRACE("dag/policy seed " + std::to_string(GetParam()));
  const dag::Workflow wf = workload::random_layered(
      workload::RandomDagOptions{}, static_cast<std::uint64_t>(GetParam()));
  HostilePolicy policy(static_cast<std::uint64_t>(GetParam()) + 99);
  RunOptions options;
  options.seed = 7;
  options.initial_instances = 1;
  options.max_sim_seconds = 3.0e6;

  const RunResult r = simulate(wf, policy, small_cloud(), options);
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, TaskPhase::Completed);
  }
  EXPECT_LE(r.peak_instances, 5u);
  EXPECT_GE(r.cost_units, 1.0);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
}

TEST_P(HostileSweep, SteppableEngineSurvivesMalformedCommands) {
  // The same chaos through the steppable JobEngine path the ensemble
  // multiplexer drives, stepping one event at a time instead of letting
  // simulate() own the loop. On failure the trace names the seed so the run
  // reproduces (see DESIGN.md, "Randomized tests print their seeds").
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  SCOPED_TRACE("dag/policy seed " + std::to_string(seed));
  const dag::Workflow wf = workload::random_layered(
      workload::RandomDagOptions{}, seed);
  HostilePolicy policy(seed + 99);
  const CloudConfig config = small_cloud();
  RunOptions options;
  options.seed = 7;
  options.initial_instances = 1;
  options.max_sim_seconds = 3.0e6;

  JobEngine engine(wf, policy, config, options);
  engine.start();
  while (!engine.done()) {
    engine.step();
    ASSERT_LE(engine.live_instances(), config.max_instances);
  }
  const RunResult r = engine.result();

  // Completion invariant: every task completes exactly once (no fault
  // injection here, so nothing may be quarantined).
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, TaskPhase::Completed);
  }
  EXPECT_TRUE(r.quarantined_tasks.empty());

  // Billing invariants against the ground-truth pool: the result's cost is
  // exactly the per-instance charge sum; instances the hostile policy
  // released before their boot completed are never charged; terminated
  // instances stop accruing at their termination time.
  const CloudPool& cloud = engine.cloud();
  double charged = 0.0;
  for (const Instance& inst : cloud.instances()) {
    const double units = cloud.charged_units(inst.id, r.makespan);
    charged += units;
    if (inst.state == InstanceState::Terminated &&
        inst.terminated_at <= inst.ready_at) {
      EXPECT_EQ(units, 0.0) << "charged a never-ready instance " << inst.id;
    }
    if (inst.state == InstanceState::Terminated) {
      EXPECT_EQ(units, cloud.charged_units(inst.id, inst.terminated_at))
          << "instance " << inst.id << " accrued charge after termination";
    }
  }
  EXPECT_NEAR(r.cost_units, charged, 1e-9);
  EXPECT_LE(r.peak_instances, config.max_instances);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileSweep, ::testing::Range(0, 10));

TEST(Robustness, ConstantChurnStillFinishes) {
  // A policy that kills every instance except one at every tick while also
  // requesting replacements — constant resubmission churn. (Killing the
  // *entire* pool every tick starves the run forever by construction: the
  // control interval equals the provisioning lag, so replacements boot
  // exactly when the next purge fires — that case is the Starver test
  // below.) The survivor makes progress; every task must still complete.
  class KillAllButOne final : public ScalingPolicy {
   public:
    std::string name() const override { return "kill-all-but-one"; }
    void on_run_start(const dag::Workflow&, const CloudConfig&) override {}
    PoolCommand plan(const MonitorSnapshot& snapshot) override {
      PoolCommand cmd;
      bool spared = false;
      for (const InstanceObservation& inst : snapshot.instances) {
        if (!inst.provisioning && !spared) {
          spared = true;
          continue;
        }
        cmd.releases.push_back(Release{inst.id, false});
      }
      cmd.grow = 2;
      return cmd;
    }
  };
  const dag::Workflow wf = workload::linear_workflow(2, 6, 10.0);
  KillAllButOne policy;
  const CloudConfig config = small_cloud();
  RunOptions options;
  options.initial_instances = 2;
  const RunResult r = simulate(wf, policy, config, options);
  for (const TaskRuntime& rec : r.task_records) {
    EXPECT_EQ(rec.phase, TaskPhase::Completed);
  }
}

TEST(Robustness, StuckPolicyHitsTheTimeGuard) {
  // Zero instances forever: the driver must throw the max_sim_seconds guard
  // rather than loop silently.
  class Starver final : public ScalingPolicy {
   public:
    std::string name() const override { return "starver"; }
    void on_run_start(const dag::Workflow&, const CloudConfig&) override {}
    PoolCommand plan(const MonitorSnapshot& snapshot) override {
      PoolCommand cmd;
      for (const InstanceObservation& inst : snapshot.instances) {
        cmd.releases.push_back(Release{inst.id, false});
      }
      return cmd;
    }
  };
  const dag::Workflow wf = workload::linear_workflow(1, 3, 50.0);
  Starver policy;
  RunOptions options;
  options.initial_instances = 1;
  options.max_sim_seconds = 10000.0;
  EXPECT_THROW(simulate(wf, policy, small_cloud(), options),
               std::runtime_error);
}

}  // namespace
}  // namespace wire::sim
