// Tests for ThreadPool::run_batch (the sharded ensemble driver's engine):
// index coverage, small-batch/inline paths, exception ordering, the
// reentrancy guard, shutdown behaviour, and parallel_for built on top.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace wire::util {
namespace {

TEST(RunBatch, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.run_batch(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunBatch, CountSmallerThanWorkers) {
  // More workers than indices: the extra workers must go back to sleep and
  // the batch must still cover each index exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run_batch(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunBatch, SingleIndexRunsInlineOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.run_batch(1, [&ran_on](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(RunBatch, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.run_batch(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(RunBatch, LowestIndexExceptionWins) {
  // Two indices throw; the contract says the LOWEST index's exception is the
  // one that propagates, independent of which thread ran it first.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.run_batch(16, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("low");
        if (i == 11) throw std::runtime_error("high");
      });
      FAIL() << "batch must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "low");
    }
  }
}

TEST(RunBatch, AllIndicesRunDespiteException) {
  // One index throwing must not short-circuit the rest of the batch.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(pool.run_batch(hits.size(),
                              [&hits](std::size_t i) {
                                hits[i].fetch_add(1);
                                if (i == 5) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunBatch, PoolUsableAfterAFailedBatch) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_batch(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<int> counter{0};
  pool.run_batch(8, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
  // submit() still works too (the batch machinery resets cleanly).
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(RunBatch, ReentrantCallIsRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_batch(4,
                              [&pool](std::size_t) {
                                pool.run_batch(2, [](std::size_t) {});
                              }),
               ContractViolation);
}

TEST(RunBatch, InterleavesWithSubmittedJobs) {
  // A batch must make progress even when every worker is pinned behind long
  // submitted jobs: the calling thread participates.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::vector<std::future<void>> blockers;
  for (std::size_t i = 0; i < pool.thread_count(); ++i) {
    blockers.push_back(pool.submit([&release] {
      while (!release.load()) std::this_thread::yield();
    }));
  }
  std::vector<std::atomic<int>> hits(16);
  pool.run_batch(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  release.store(true);
  for (auto& b : blockers) b.get();
}

TEST(ThreadPool, ShutdownDrainsPendingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins only after the queue is empty
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmittedExceptionSurfacesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("job"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CountSmallerThanWorkers) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(
      hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, LowestIndexExceptionWins) {
  try {
    parallel_for(
        32,
        [](std::size_t i) {
          if (i == 2) throw std::runtime_error("low");
          if (i == 30) throw std::runtime_error("high");
        },
        4);
    FAIL() << "must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "low");
  }
}

}  // namespace
}  // namespace wire::util
