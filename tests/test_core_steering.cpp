// Tests for Algorithm 3 (resize_pool) and Algorithm 2 (steer): bin-packing
// semantics, the leftover rule, release preconditions (r_j <= t,
// c_j <= 0.2u), and victim ordering by restart cost.
#include <gtest/gtest.h>

#include "core/steering.h"
#include "util/check.h"

namespace wire::core {
namespace {

TEST(ResizePool, EmptyLoadNeedsNothing) {
  EXPECT_EQ(resize_pool({}, 900.0, 4), 0u);
}

TEST(ResizePool, TinyLoadGetsOneInstance) {
  // Line 28: p == 0 after the loop -> one instance.
  EXPECT_EQ(resize_pool({1.0, 2.0, 3.0}, 900.0, 4), 1u);
  EXPECT_EQ(resize_pool({0.0}, 900.0, 4), 1u);
}

TEST(ResizePool, FullSlotsForAUnitCountOneInstance) {
  // 4 tasks of exactly u on 4 slots: one fully charged instance, and the
  // tasks retire with it (no leftover).
  EXPECT_EQ(resize_pool({900.0, 900.0, 900.0, 900.0}, 900.0, 4), 1u);
}

TEST(ResizePool, LongTasksClaimOneInstancePerSlotGroup) {
  // 8 tasks of 2u on 4 slots: two instances fully busy for >= u each.
  const std::vector<double> load(8, 1800.0);
  EXPECT_EQ(resize_pool(load, 900.0, 4), 2u);
}

TEST(ResizePool, ShortTasksShareAnInstance) {
  // 16 tasks of u/4 on 4 slots: together they fill exactly one instance for
  // one unit.
  const std::vector<double> load(16, 225.0);
  EXPECT_EQ(resize_pool(load, 900.0, 4), 1u);
}

TEST(ResizePool, LeftoverAboveThresholdAddsAnInstance) {
  // One instance fully charged, then a leftover task of 0.3u (> 0.2u).
  std::vector<double> load(4, 900.0);
  load.push_back(270.0);
  EXPECT_EQ(resize_pool(load, 900.0, 4), 2u);
}

TEST(ResizePool, LeftoverBelowThresholdIsAbsorbed) {
  // Same, but the leftover is 0.1u (< 0.2u): no extra instance.
  std::vector<double> load(4, 900.0);
  load.push_back(90.0);
  EXPECT_EQ(resize_pool(load, 900.0, 4), 1u);
}

TEST(ResizePool, ThresholdIsConfigurable) {
  std::vector<double> load(4, 900.0);
  load.push_back(90.0);  // 0.1u leftover
  EXPECT_EQ(resize_pool(load, 900.0, 4, /*leftover_fraction=*/0.05), 2u);
}

TEST(ResizePool, ZeroPredictionsNeverAccumulate) {
  // Policy-1 tasks (predicted 0) flow through the slots without consuming
  // charged time: conservative sizing keeps one instance.
  const std::vector<double> load(100, 0.0);
  EXPECT_EQ(resize_pool(load, 900.0, 4), 1u);
}

TEST(ResizePool, MixedLoadMatchesHandComputation) {
  // l = 2, u = 10. Poll order: [10, 10, 4, 6, 8].
  //  - {10,10}: t_min 10 >= u -> p = 1.
  //  - {4,6}: t_min 4, T = 4; retire 4, {2}; add 8 -> {2,8}: t_min 2, T = 6;
  //    retire 2 -> {6}; queue empty, leftover max 6 > 0.2u -> p = 2.
  EXPECT_EQ(resize_pool({10.0, 10.0, 4.0, 6.0, 8.0}, 10.0, 2), 2u);
}

TEST(ResizePool, SingleSlotSequentialAccumulation) {
  // l = 1: pure sequential accumulation. 10 tasks of 1s, u = 5: two full
  // units -> 2 instances... wait: T accumulates 1s each until 5 -> p=1,
  // then the next 5 accumulate -> p=2. Exactly NR/U.
  const std::vector<double> load(10, 1.0);
  EXPECT_EQ(resize_pool(load, 5.0, 1), 2u);
}

TEST(ResizePool, InvalidArgumentsThrow) {
  EXPECT_THROW(resize_pool({1.0}, 0.0, 4), util::ContractViolation);
  EXPECT_THROW(resize_pool({1.0}, 10.0, 0), util::ContractViolation);
}

// ---------------------------------------------------------------------------
// Algorithm 2 (steer)
// ---------------------------------------------------------------------------

sim::CloudConfig test_config() {
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  return config;
}

sim::InstanceObservation instance(sim::InstanceId id, double r,
                                  bool draining = false,
                                  bool provisioning = false) {
  sim::InstanceObservation obs;
  obs.id = id;
  obs.time_to_next_charge = r;
  obs.draining = draining;
  obs.provisioning = provisioning;
  obs.free_slots = 4;
  return obs;
}

TEST(Steer, GrowsToPlannedSize) {
  LookaheadResult lookahead;
  for (int i = 0; i < 8; ++i) {
    lookahead.upcoming.push_back(UpcomingTask{1800.0,
                                              static_cast<dag::TaskId>(i)});
  }
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 8;
  snap.instances.push_back(instance(0, 500.0));
  const sim::PoolCommand cmd = steer(lookahead, snap, test_config());
  EXPECT_EQ(cmd.grow, 1u);  // p = 2, m = 1
  EXPECT_TRUE(cmd.releases.empty());
}

TEST(Steer, EmptyLoadRetainsMinimalPool) {
  LookaheadResult lookahead;
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 3;
  const sim::PoolCommand grow_cmd = steer(lookahead, snap, test_config());
  EXPECT_EQ(grow_cmd.grow, 1u);  // m = 0 but tasks remain

  snap.instances.push_back(instance(0, 500.0));
  const sim::PoolCommand hold_cmd = steer(lookahead, snap, test_config());
  EXPECT_EQ(hold_cmd.grow, 0u);
  EXPECT_TRUE(hold_cmd.releases.empty());  // r_j > lag: cannot release yet
}

TEST(Steer, ReleasesOnlyWhenUnitExpiresBeforeNextInterval) {
  LookaheadResult lookahead;  // empty load -> p = 1
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 1;
  snap.instances.push_back(instance(0, 100.0));  // expires within lag
  snap.instances.push_back(instance(1, 100.0));
  snap.instances.push_back(instance(2, 800.0));  // does not
  const sim::PoolCommand cmd = steer(lookahead, snap, test_config());
  // p = 1, m = 3: release up to 2, but only ids 0/1 qualify.
  ASSERT_EQ(cmd.releases.size(), 2u);
  EXPECT_TRUE(cmd.releases[0].at_charge_boundary);
  EXPECT_EQ(cmd.releases[0].instance, 0u);
  EXPECT_EQ(cmd.releases[1].instance, 1u);
}

TEST(Steer, RestartCostBlocksRelease) {
  LookaheadResult lookahead;
  lookahead.restart_cost[0] = 0.5 * 900.0;  // > 0.2u: protected
  lookahead.restart_cost[1] = 0.1 * 900.0;  // <= 0.2u: releasable
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 2;
  snap.instances.push_back(instance(0, 50.0));
  snap.instances.push_back(instance(1, 50.0));
  const sim::PoolCommand cmd = steer(lookahead, snap, test_config());
  ASSERT_EQ(cmd.releases.size(), 1u);
  EXPECT_EQ(cmd.releases[0].instance, 1u);
}

TEST(Steer, VictimsOrderedByRestartCost) {
  LookaheadResult lookahead;
  lookahead.restart_cost[0] = 120.0;
  lookahead.restart_cost[1] = 30.0;
  lookahead.restart_cost[2] = 60.0;
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 3;
  for (sim::InstanceId id = 0; id < 3; ++id) {
    snap.instances.push_back(instance(id, 50.0));
  }
  // Load sized for p = 1 -> release two: cheapest restart costs first.
  lookahead.upcoming.push_back(UpcomingTask{10.0, 0});
  const sim::PoolCommand cmd = steer(lookahead, snap, test_config());
  ASSERT_EQ(cmd.releases.size(), 2u);
  EXPECT_EQ(cmd.releases[0].instance, 1u);
  EXPECT_EQ(cmd.releases[1].instance, 2u);
}

TEST(Steer, EqualRestartCostsBreakTiesByInstanceIdDeterministically) {
  // Two victims with bit-identical restart costs: the ordering must not
  // depend on the standard library's sort internals (introsort is not
  // stable), or byte-identical replay breaks on a toolchain change. The
  // comparator's explicit id tie-break pins ascending-id order — under both
  // snapshot orderings.
  for (bool reversed : {false, true}) {
    SCOPED_TRACE(reversed ? "snapshot lists 2 before 1"
                          : "snapshot lists 1 before 2");
    LookaheadResult lookahead;
    lookahead.restart_cost[1] = 30.0;
    lookahead.restart_cost[2] = 30.0;  // identical victim key
    lookahead.upcoming.push_back(UpcomingTask{10.0, 0});  // p = 1
    sim::MonitorSnapshot snap;
    snap.incomplete_tasks = 3;
    snap.instances.push_back(instance(0, 800.0));  // not expiring: survivor
    if (reversed) {
      snap.instances.push_back(instance(2, 50.0));
      snap.instances.push_back(instance(1, 50.0));
    } else {
      snap.instances.push_back(instance(1, 50.0));
      snap.instances.push_back(instance(2, 50.0));
    }
    const sim::PoolCommand cmd = steer(lookahead, snap, test_config());
    ASSERT_EQ(cmd.releases.size(), 2u);
    EXPECT_EQ(cmd.releases[0].instance, 1u);
    EXPECT_EQ(cmd.releases[1].instance, 2u);
  }
}

TEST(Steer, StampedPlanIsConsumedDirectly) {
  // A plan-stamped lookahead must steer from planned_pool without rebuilding
  // Q_task — and give the same command the from-scratch path computes from
  // the identical upcoming load.
  LookaheadResult from_scratch;
  for (int i = 0; i < 8; ++i) {
    from_scratch.upcoming.push_back(
        UpcomingTask{1800.0, static_cast<dag::TaskId>(i), /*on_slot=*/false});
  }
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 8;
  snap.instances.push_back(instance(0, 500.0));
  std::uint32_t planned_scratch = 0;
  const sim::PoolCommand ref =
      steer(from_scratch, snap, test_config(), &planned_scratch);

  LookaheadResult stamped = from_scratch;
  stamped.plan_valid = true;
  stamped.planned_pool = planned_scratch;
  std::uint32_t planned_stamped = 0;
  const sim::PoolCommand got =
      steer(stamped, snap, test_config(), &planned_stamped);
  EXPECT_EQ(planned_stamped, planned_scratch);
  EXPECT_EQ(got.desired_pool, ref.desired_pool);
  EXPECT_EQ(got.grow, ref.grow);
  ASSERT_EQ(got.releases.size(), ref.releases.size());

  // A deliberately wrong stamp is consumed verbatim — proof steering did not
  // silently fall back to the rebuild path.
  stamped.planned_pool = planned_scratch + 3;
  const sim::PoolCommand inflated = steer(stamped, snap, test_config());
  EXPECT_EQ(inflated.desired_pool, planned_scratch + 3);
}

TEST(Steer, DrainingAndProvisioningAreNotVictims) {
  LookaheadResult lookahead;
  lookahead.upcoming.push_back(UpcomingTask{10.0, 0});  // p = 1
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 1;
  snap.instances.push_back(instance(0, 50.0, /*draining=*/true));
  snap.instances.push_back(instance(1, 50.0, false, /*provisioning=*/true));
  snap.instances.push_back(instance(2, 50.0));
  // m counts the non-draining pair {1, 2}; p = 1 -> one release, and it must
  // be the ready instance 2 (provisioning instances are not candidates).
  const sim::PoolCommand cmd = steer(lookahead, snap, test_config());
  ASSERT_EQ(cmd.releases.size(), 1u);
  EXPECT_EQ(cmd.releases[0].instance, 2u);
}

TEST(Steer, NoChangeWhenPlannedEqualsCurrent) {
  LookaheadResult lookahead;
  for (int i = 0; i < 4; ++i) {
    lookahead.upcoming.push_back(UpcomingTask{900.0,
                                              static_cast<dag::TaskId>(i)});
  }
  sim::MonitorSnapshot snap;
  snap.incomplete_tasks = 4;
  snap.instances.push_back(instance(0, 400.0));
  const sim::PoolCommand cmd = steer(lookahead, snap, test_config());
  EXPECT_EQ(cmd.grow, 0u);
  EXPECT_TRUE(cmd.releases.empty());
}

}  // namespace
}  // namespace wire::core
