// Tests for horizontal task clustering: structure preservation, work
// conservation, dependency correctness, and end-to-end equivalence.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "dag/analysis.h"
#include "dag/clustering.h"
#include "sim/driver.h"
#include "util/check.h"
#include "workload/generators.h"
#include "workload/pegasus_extra.h"
#include "workload/profiles.h"

namespace wire::dag {
namespace {

TEST(Clustering, MergesWideStagesByFactor) {
  const Workflow wf = workload::linear_workflow(2, 16, 10.0);
  ClusterOptions options;
  options.factor = 4;
  const ClusteredWorkflow c = cluster_horizontal(wf, options);
  EXPECT_EQ(c.workflow.task_count(), 8u);  // 16/4 per stage, 2 stages
  EXPECT_EQ(c.workflow.stage_count(), 2u);
  EXPECT_EQ(c.merged_jobs, 8u);
  // Work conservation.
  EXPECT_DOUBLE_EQ(c.workflow.aggregate_ref_exec_seconds(),
                   wf.aggregate_ref_exec_seconds());
  // Each clustered job runs 4 x 10 s sequentially.
  for (const TaskSpec& t : c.workflow.tasks()) {
    EXPECT_DOUBLE_EQ(t.ref_exec_seconds, 40.0);
  }
}

TEST(Clustering, NarrowStagesAreLeftAlone) {
  const Workflow wf = workload::linear_workflow(3, 4, 10.0);
  ClusterOptions options;
  options.factor = 4;
  options.min_stage_tasks = 8;
  const ClusteredWorkflow c = cluster_horizontal(wf, options);
  EXPECT_EQ(c.workflow.task_count(), wf.task_count());
  EXPECT_EQ(c.merged_jobs, 0u);
  for (TaskId t = 0; t < wf.task_count(); ++t) {
    EXPECT_EQ(c.workflow.task(c.task_mapping[t]).name, wf.task(t).name);
  }
}

TEST(Clustering, DependenciesAreMappedThrough) {
  const Workflow wf = workload::linear_workflow(2, 16, 10.0);
  const ClusteredWorkflow c = cluster_horizontal(wf, {4, 8});
  // Stage barrier preserved: every stage-1 cluster depends on every stage-0
  // cluster (all-to-all mapped through).
  for (TaskId t : c.workflow.stage_tasks(1)) {
    EXPECT_EQ(c.workflow.predecessors(t).size(), 4u);
  }
  // Mapping is surjective onto the clustered ids.
  for (TaskId t = 0; t < wf.task_count(); ++t) {
    EXPECT_LT(c.task_mapping[t], c.workflow.task_count());
  }
}

TEST(Clustering, PartialFinalGroup) {
  const Workflow wf = workload::linear_workflow(1, 10, 5.0);
  const ClusteredWorkflow c = cluster_horizontal(wf, {4, 4});
  // 10 tasks at factor 4 -> groups of 4, 4, 2.
  EXPECT_EQ(c.workflow.task_count(), 3u);
  EXPECT_DOUBLE_EQ(c.workflow.task(2).ref_exec_seconds, 10.0);
}

TEST(Clustering, WorksOnCrossStageEdges) {
  // Montage has cross-stage edges (mBackground -> {mProject, mBgModel});
  // layered-stage clustering must still produce a valid DAG with the same
  // aggregate work.
  const Workflow wf = workload::montage(64, 7);
  const ClusteredWorkflow c = cluster_horizontal(wf, {4, 8});
  EXPECT_LT(c.workflow.task_count(), wf.task_count());
  EXPECT_NEAR(c.workflow.aggregate_ref_exec_seconds(),
              wf.aggregate_ref_exec_seconds(), 1e-6);
  EXPECT_EQ(c.workflow.stage_count(), wf.stage_count());
}

TEST(Clustering, FactorOneIsIdentityOnStructure) {
  const Workflow wf = workload::make_workflow(
      workload::tpch1_profile(workload::Scale::Small), 7);
  const ClusteredWorkflow c = cluster_horizontal(wf, {1, 1});
  EXPECT_EQ(c.workflow.task_count(), wf.task_count());
  EXPECT_EQ(c.merged_jobs, 0u);
  for (TaskId t = 0; t < wf.task_count(); ++t) {
    EXPECT_EQ(c.task_mapping[t], t);
    EXPECT_EQ(c.workflow.predecessors(t).size(),
              wf.predecessors(t).size());
  }
}

TEST(Clustering, InvalidOptionsThrow) {
  const Workflow wf = workload::linear_workflow(1, 4, 5.0);
  ClusterOptions options;
  options.factor = 0;
  EXPECT_THROW(cluster_horizontal(wf, options), util::ContractViolation);
}

TEST(Clustering, ClusteredRunCompletesAndLengthensTasks) {
  // End to end: the clustered genome runs under WIRE; at a long charging
  // unit the clustered variant wastes no more than the original (longer
  // tasks fill units better).
  const Workflow wf = workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), 7);
  const ClusteredWorkflow c = cluster_horizontal(wf, {8, 16});

  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 1800.0;
  config.slots_per_instance = 4;
  config.max_instances = 12;
  sim::RunOptions options;
  options.seed = 3;
  options.initial_instances = 1;

  core::WireController a;
  const sim::RunResult plain = sim::simulate(wf, a, config, options);
  core::WireController b;
  const sim::RunResult clustered =
      sim::simulate(c.workflow, b, config, options);

  for (const sim::TaskRuntime& rec : clustered.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
  EXPECT_LE(clustered.cost_units, plain.cost_units * 1.5);
}

TEST(VerticalClustering, CollapsesPipelineChains) {
  // Epigenomics: 100 per-chunk filter->sol2sanger->fast2bfq->map chains.
  const Workflow wf = workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), 7);
  const ClusteredWorkflow c = cluster_vertical(wf);
  // Each 4-task chunk chain becomes one job (100 merges), and the serial
  // maqIndex->pileup pair is a chain too: 405 - 3*100 - 1 = 104 tasks.
  EXPECT_EQ(c.workflow.task_count(), 104u);
  EXPECT_EQ(c.merged_jobs, 101u);
  // Work conserved.
  EXPECT_NEAR(c.workflow.aggregate_ref_exec_seconds(),
              wf.aggregate_ref_exec_seconds(), 1e-6);
  // The absorbed stages vanished (sol2sanger, fast2bfq, map, pileup).
  EXPECT_EQ(c.workflow.stage_count(), 4u);
  // All four chain members map to the same job.
  const TaskId filter0 = wf.stage_tasks(1)[0];
  TaskId cursor = filter0;
  for (int hops = 0; hops < 3; ++hops) {
    ASSERT_EQ(wf.successors(cursor).size(), 1u);
    cursor = wf.successors(cursor)[0];
    EXPECT_EQ(c.task_mapping[cursor], c.task_mapping[filter0]);
  }
}

TEST(VerticalClustering, ChainEndpointsKeepIoProfile) {
  dag::WorkflowBuilder builder("chain");
  const auto s0 = builder.add_stage("a");
  const auto s1 = builder.add_stage("b");
  const auto s2 = builder.add_stage("c");
  const TaskId a = builder.add_task(s0, "a0", 10.0, 4.0, 5.0, {});
  const TaskId b = builder.add_task(s1, "b0", 4.0, 2.0, 7.0, {a});
  builder.add_task(s2, "c0", 2.0, 1.0, 3.0, {b});
  const Workflow wf = builder.build();
  const ClusteredWorkflow c = cluster_vertical(wf);
  ASSERT_EQ(c.workflow.task_count(), 1u);
  const TaskSpec& job = c.workflow.task(0);
  EXPECT_DOUBLE_EQ(job.ref_exec_seconds, 15.0);
  EXPECT_DOUBLE_EQ(job.input_mb, 10.0);  // the head's input
  EXPECT_DOUBLE_EQ(job.output_mb, 1.0);  // the tail's output
}

TEST(VerticalClustering, FanInAndFanOutBreakChains) {
  // Diamond: nothing is a 1:1 chain, so the transform is the identity on
  // structure.
  dag::WorkflowBuilder builder("diamond");
  const auto s0 = builder.add_stage("s0");
  const auto s1 = builder.add_stage("s1");
  const auto s2 = builder.add_stage("s2");
  const TaskId a = builder.add_task(s0, "a", 1, 1, 1.0, {});
  const TaskId b = builder.add_task(s1, "b", 1, 1, 1.0, {a});
  const TaskId cc = builder.add_task(s1, "c", 1, 1, 1.0, {a});
  builder.add_task(s2, "d", 1, 1, 1.0, {b, cc});
  const ClusteredWorkflow c = cluster_vertical(builder.build());
  EXPECT_EQ(c.workflow.task_count(), 4u);
  EXPECT_EQ(c.merged_jobs, 0u);
}

TEST(VerticalClustering, ChainedWorkflowRunsUnderWire) {
  const Workflow wf = workload::make_workflow(
      workload::epigenomics_profile(workload::Scale::Small), 7);
  const ClusteredWorkflow c = cluster_vertical(wf);
  core::WireController controller;
  sim::CloudConfig config;
  config.lag_seconds = 180.0;
  config.charging_unit_seconds = 900.0;
  config.slots_per_instance = 4;
  config.max_instances = 12;
  config.dispatch_overhead_seconds = 10.0;
  sim::RunOptions options;
  options.seed = 3;
  options.initial_instances = 1;
  const sim::RunResult chained =
      sim::simulate(c.workflow, controller, config, options);
  for (const sim::TaskRuntime& rec : chained.task_records) {
    EXPECT_EQ(rec.phase, sim::TaskPhase::Completed);
  }
  // With per-dispatch overheads, collapsing 300 dispatches must not slow the
  // run down.
  core::WireController plain_controller;
  const sim::RunResult plain =
      sim::simulate(wf, plain_controller, config, options);
  EXPECT_LE(chained.makespan, plain.makespan * 1.10);
}

}  // namespace
}  // namespace wire::dag
