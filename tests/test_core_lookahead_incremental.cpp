// Differential chaos suite and property tests for the incremental lookahead
// (core/lookahead_cache.*).
//
// The hard contract: IncrementalLookahead::tick(delta) equals the
// from-scratch simulate_interval — full `upcoming` vector, `restart_cost`
// map, `projected_completions` — at EVERY control tick, compared with exact
// (bitwise) double equality, under every fault-model scenario the chaos
// suite knows (crashes with revocation notice, straggler boots, provision
// failures, transient task faults, dropout-coalesced deltas). A single ulp
// of drift in the memoized path shows up here before it can flip a steering
// decision.
//
// Alongside, seeded property sweeps pin the lookahead's output invariants
// over random DAGs × predictors. Two of the stated invariants deserve their
// honest, implementation-true form:
//   - "restart_cost[i] <= horizon - now" holds only for instances whose
//     projected tasks were all dispatched inside the lookahead
//     (attempt_start >= now). An observed-running task's sunk cost counts
//     from its real occupancy_start, which can precede now by many lags, so
//     the global bound is horizon - min(observed occupancy_start, now).
//   - Q_task ordering: the on-slot entries form a strict prefix — first the
//     still-busy tasks with strictly positive remaining occupancy in
//     non-decreasing order, then the speculative completions pinned at zero
//     (they never release their slots) — followed by the projected ready
//     queue in dispatch order, preserving the relative order of the
//     surviving snapshot ready-queue members.
//
// Every randomized test announces its seed via SCOPED_TRACE, and
// WIRE_FUZZ_SEED adds one environment-chosen chaos seed (DESIGN.md §4.10).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/lookahead.h"
#include "core/lookahead_cache.h"
#include "core/run_state.h"
#include "core/steering.h"
#include "predict/oracle.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "workload/generators.h"

namespace wire::core {
namespace {

using dag::TaskId;
using sim::CloudConfig;
using sim::MonitorSnapshot;
using sim::TaskPhase;

void expect_lookahead_eq(const LookaheadResult& got,
                         const LookaheadResult& want) {
  ASSERT_EQ(got.upcoming.size(), want.upcoming.size());
  for (std::size_t i = 0; i < got.upcoming.size(); ++i) {
    SCOPED_TRACE("upcoming entry " + std::to_string(i));
    EXPECT_EQ(got.upcoming[i].task, want.upcoming[i].task);
    // Bitwise double equality: EXPECT_EQ, not EXPECT_DOUBLE_EQ — ulp drift
    // is exactly the bug class this suite exists to catch.
    EXPECT_EQ(got.upcoming[i].remaining_occupancy,
              want.upcoming[i].remaining_occupancy);
    EXPECT_EQ(got.upcoming[i].on_slot, want.upcoming[i].on_slot);
  }
  EXPECT_EQ(got.projected_completions, want.projected_completions);
  EXPECT_EQ(got.truncated_tasks, want.truncated_tasks);
  ASSERT_EQ(got.restart_cost.size(), want.restart_cost.size());
  for (const auto& [inst, cost] : want.restart_cost) {
    const auto it = got.restart_cost.find(inst);
    ASSERT_NE(it, got.restart_cost.end()) << "missing instance " << inst;
    EXPECT_EQ(it->second, cost) << "restart cost drift on instance " << inst;
  }
}

void expect_lookahead_invariants(const MonitorSnapshot& snap,
                                 const LookaheadResult& result,
                                 const CloudConfig& config) {
  const double horizon = snap.now + config.lag_seconds;

  // No task appears twice in Q_task.
  std::set<TaskId> seen;
  for (const UpcomingTask& u : result.upcoming) {
    EXPECT_TRUE(seen.insert(u.task).second)
        << "task " << u.task << " appears twice in upcoming";
  }

  // Ordering: on-slot prefix (positives non-decreasing, then zeros), then
  // the queued suffix.
  std::size_t first_queued = result.upcoming.size();
  for (std::size_t i = 0; i < result.upcoming.size(); ++i) {
    if (!result.upcoming[i].on_slot) {
      first_queued = i;
      break;
    }
  }
  double prev_positive = 0.0;
  bool in_zero_tail = false;
  for (std::size_t i = 0; i < result.upcoming.size(); ++i) {
    const UpcomingTask& u = result.upcoming[i];
    if (i >= first_queued) {
      EXPECT_FALSE(u.on_slot) << "on-slot entry after the queued suffix began";
      continue;
    }
    if (u.remaining_occupancy > 0.0) {
      EXPECT_FALSE(in_zero_tail)
          << "still-busy entry after a speculative completion";
      EXPECT_GE(u.remaining_occupancy, prev_positive)
          << "still-busy prefix not ordered by projected completion";
      prev_positive = u.remaining_occupancy;
    } else {
      in_zero_tail = true;  // speculative completions: pinned at zero
    }
  }

  // Speculative completions never release slots: every task observed Running
  // on a stable (non-draining, non-revoking, ready) instance stays on a slot
  // at the horizon.
  for (const sim::InstanceObservation& inst : snap.instances) {
    if (inst.draining || inst.revoking || inst.provisioning) continue;
    for (TaskId task : inst.running_tasks) {
      bool found_on_slot = false;
      for (const UpcomingTask& u : result.upcoming) {
        if (u.task == task) {
          found_on_slot = u.on_slot;
          break;
        }
      }
      EXPECT_TRUE(found_on_slot)
          << "running task " << task << " lost its slot in the projection";
    }
  }

  // Queued suffix preserves the relative order of the surviving snapshot
  // ready-queue members (FIFO dispatch consumes only the front).
  std::map<TaskId, std::size_t> queue_rank;
  for (std::size_t i = 0; i < snap.ready_queue.size(); ++i) {
    queue_rank.emplace(snap.ready_queue[i], i);
  }
  std::size_t last_rank = 0;
  bool have_rank = false;
  for (std::size_t i = first_queued; i < result.upcoming.size(); ++i) {
    const auto it = queue_rank.find(result.upcoming[i].task);
    if (it == queue_rank.end()) continue;  // fired or requeued in-lookahead
    if (have_rank) {
      EXPECT_GT(it->second, last_rank)
          << "ready-queue order not preserved at task "
          << result.upcoming[i].task;
    }
    last_rank = it->second;
    have_rank = true;
  }

  // Restart costs: positive, and bounded by the sunk horizon. For instances
  // hosting only lookahead-dispatched tasks the bound is the lag itself;
  // observed-running tasks push it back to their real occupancy_start.
  double min_start = snap.now;
  std::map<sim::InstanceId, bool> has_observed_running;
  for (const sim::InstanceObservation& inst : snap.instances) {
    bool any = false;
    for (TaskId task : inst.running_tasks) {
      if (snap.tasks[task].phase != TaskPhase::Running) continue;
      any = true;
      min_start = std::min(min_start, snap.tasks[task].occupancy_start);
    }
    has_observed_running[inst.id] = any;
  }
  for (const auto& [inst, cost] : result.restart_cost) {
    EXPECT_GT(cost, 0.0);
    EXPECT_LE(cost, horizon - min_start);
    const auto it = has_observed_running.find(inst);
    if (it == has_observed_running.end() || !it->second) {
      // Only speculative work: attempt_start >= now, so cost <= lag.
      EXPECT_LE(cost, horizon - snap.now)
          << "speculative-only instance " << inst << " overcharged";
    }
  }
}

void expect_pool_command_eq(const sim::PoolCommand& got,
                            const sim::PoolCommand& want) {
  EXPECT_EQ(got.desired_pool, want.desired_pool);
  EXPECT_EQ(got.grow, want.grow);
  EXPECT_EQ(got.cancel_drains, want.cancel_drains);
  ASSERT_EQ(got.releases.size(), want.releases.size());
  for (std::size_t i = 0; i < got.releases.size(); ++i) {
    EXPECT_EQ(got.releases[i].instance, want.releases[i].instance);
    EXPECT_EQ(got.releases[i].at_charge_boundary,
              want.releases[i].at_charge_boundary);
  }
}

/// Plan-stamp consistency: a stamped result must be self-describing — the
/// stamps alone reproduce the clamped Algorithm-3 inputs, the packed pool
/// size, and the restart-cost map, all bitwise.
void expect_plan_stamps_consistent(const MonitorSnapshot& snap,
                                   const LookaheadResult& result,
                                   const CloudConfig& config) {
  ASSERT_EQ(result.stamps.size(), result.upcoming.size());
  const double horizon = snap.now + config.lag_seconds;
  std::vector<double> packed;
  packed.reserve(result.stamps.size());
  std::map<sim::InstanceId, double> rebuilt_cost;
  for (std::size_t i = 0; i < result.stamps.size(); ++i) {
    SCOPED_TRACE("stamp " + std::to_string(i));
    const UpcomingTask& u = result.upcoming[i];
    const WavefrontStamp& s = result.stamps[i];
    // The stamp carries the steering clamp already applied (bitwise).
    const double want_packed =
        u.on_slot
            ? std::max(u.remaining_occupancy, config.charging_unit_seconds)
            : u.remaining_occupancy;
    EXPECT_EQ(s.packed_occupancy, want_packed);
    packed.push_back(s.packed_occupancy);
    if (!u.on_slot) {
      EXPECT_EQ(s.instance, sim::kInvalidInstance);
      EXPECT_EQ(s.deadline, -1.0);
      EXPECT_EQ(s.start, -1.0);
      continue;
    }
    EXPECT_NE(s.instance, sim::kInvalidInstance);
    if (s.deadline > horizon) {
      // Still busy at the interval start: charged restart cost from its
      // attempt start.
      auto [it, inserted] = rebuilt_cost.emplace(s.instance, 0.0);
      it->second = std::max(it->second, horizon - s.start);
    } else {
      // Speculative completion: projected to finish inside the interval,
      // pinned at zero remaining occupancy, never restart-charged.
      EXPECT_EQ(u.remaining_occupancy, 0.0);
    }
  }
  // The stamped pool size is exactly what Algorithm 3 computes from the
  // stamped occupancies.
  EXPECT_EQ(resize_pool(packed, config.charging_unit_seconds,
                        config.slots_per_instance,
                        config.restart_cost_fraction),
            result.planned_pool);
  // The restart-cost map is exactly reconstructible from the stamps.
  ASSERT_EQ(rebuilt_cost.size(), result.restart_cost.size());
  for (const auto& [inst, cost] : rebuilt_cost) {
    const auto it = result.restart_cost.find(inst);
    ASSERT_NE(it, result.restart_cost.end()) << "missing instance " << inst;
    EXPECT_EQ(it->second, cost);
  }
}

/// The WIRE MAPE loop with both Analyze paths run side by side: at every
/// control tick the incremental cache's result is compared (bitwise) against
/// the from-scratch reference, the output invariants are checked, the
/// steering command computed from the (possibly Plan-stamped) cache result
/// is compared against the command from the unstamped reference, and —
/// optionally — a second cache with the adaptive horizon cap verifies that
/// truncation never changes the steering command.
class DifferentialWirePolicy final : public sim::ScalingPolicy {
 public:
  explicit DifferentialWirePolicy(bool use_oracle = false,
                                  predict::PredictorConfig predictor_config = {},
                                  bool check_adaptive = true)
      : use_oracle_(use_oracle),
        predictor_config_(predictor_config),
        check_adaptive_(check_adaptive) {}

  std::string name() const override { return "wire-differential"; }

  void on_run_start(const dag::Workflow& workflow,
                    const CloudConfig& config) override {
    workflow_ = &workflow;
    config_ = config;
    if (use_oracle_) {
      estimator_ = std::make_unique<predict::OracleEstimator>(
          workflow, config.variability.transfer_latency_seconds,
          config.variability.bandwidth_mb_per_s);
      online_ = nullptr;
    } else {
      auto online = std::make_unique<predict::TaskPredictor>(
          workflow, predictor_config_);
      online_ = online.get();
      estimator_ = std::move(online);
    }
    run_state_.reset();
    cache_ = IncrementalLookahead(LookaheadCacheOptions{});
    cache_.reset(workflow);
    LookaheadCacheOptions capped;
    capped.adaptive_horizon = true;
    capped_cache_ = IncrementalLookahead(capped);
    capped_cache_.reset(workflow);
  }

  sim::PoolCommand plan(const MonitorSnapshot& snapshot) override {
    estimator_->observe(snapshot);
    run_state_.update(*workflow_, snapshot);

    const LookaheadResult reference = simulate_interval(
        *workflow_, snapshot, *estimator_, config_, &run_state_);
    const LookaheadResult& incremental = cache_.tick(
        *workflow_, snapshot, *estimator_, online_, config_, &run_state_);
    {
      SCOPED_TRACE("tick at t=" + std::to_string(snapshot.now) + " (path " +
                   std::string(analyze_path_label(cache_.last_path())) + ")");
      expect_lookahead_eq(incremental, reference);
      expect_lookahead_invariants(snapshot, incremental, config_);
    }

    std::uint32_t planned = 0;
    sim::PoolCommand cmd =
        steer(incremental, snapshot, config_, &planned, false);

    // Plan differential: the command steered from the cache's result (which
    // carries an inline Plan stamp on quiet ticks) must equal the command
    // rebuilt from scratch off the unstamped reference — bitwise, at every
    // tick, under chaos.
    {
      SCOPED_TRACE("plan differential at t=" + std::to_string(snapshot.now) +
                   (incremental.plan_valid ? " (stamped)" : " (unstamped)"));
      EXPECT_FALSE(reference.plan_valid)
          << "simulate_interval must never stamp";
      std::uint32_t ref_planned = 0;
      const sim::PoolCommand ref_cmd =
          steer(reference, snapshot, config_, &ref_planned, false);
      EXPECT_EQ(planned, ref_planned);
      expect_pool_command_eq(cmd, ref_cmd);
      if (incremental.plan_valid) {
        ++stamped_ticks_;
        expect_plan_stamps_consistent(snapshot, incremental, config_);
      } else {
        EXPECT_TRUE(incremental.stamps.empty());
      }
    }

    if (check_adaptive_) {
      const LookaheadResult& capped = capped_cache_.tick(
          *workflow_, snapshot, *estimator_, online_, config_, &run_state_);
      std::uint32_t capped_planned = 0;
      const sim::PoolCommand capped_cmd =
          steer(capped, snapshot, config_, &capped_planned, false);
      SCOPED_TRACE("adaptive horizon at t=" + std::to_string(snapshot.now));
      EXPECT_EQ(capped_cmd.grow, cmd.grow);
      EXPECT_EQ(capped_cmd.cancel_drains, cmd.cancel_drains);
      EXPECT_EQ(capped_cmd.releases.size(), cmd.releases.size());
      for (std::size_t i = 0;
           i < std::min(cmd.releases.size(), capped_cmd.releases.size());
           ++i) {
        EXPECT_EQ(capped_cmd.releases[i].instance, cmd.releases[i].instance);
        EXPECT_EQ(capped_cmd.releases[i].at_charge_boundary,
                  cmd.releases[i].at_charge_boundary);
      }
      if (capped.truncated_tasks == 0) {
        // Cap idle: the projection itself must be untouched.
        expect_lookahead_eq(capped, reference);
      }
    }
    return cmd;
  }

  const LookaheadCacheStats& cache_stats() const { return cache_.stats(); }
  const LookaheadCacheStats& capped_stats() const {
    return capped_cache_.stats();
  }
  std::uint64_t stamped_ticks() const { return stamped_ticks_; }

 private:
  bool use_oracle_;
  predict::PredictorConfig predictor_config_;
  bool check_adaptive_;
  const dag::Workflow* workflow_ = nullptr;
  CloudConfig config_;
  std::unique_ptr<predict::Estimator> estimator_;
  predict::TaskPredictor* online_ = nullptr;
  RunState run_state_;
  IncrementalLookahead cache_;
  IncrementalLookahead capped_cache_;
  std::uint64_t stamped_ticks_ = 0;
};

/// The chaos suite's fault scenarios (mirrors test_sim_faults.cpp).
enum class Scenario {
  kHostileMix,
  kDropoutAlways,
  kRevocationHeavy,
  kFlakyBoots,
  kReliable,
};

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kHostileMix:
      return "hostile-mix";
    case Scenario::kDropoutAlways:
      return "dropout-always";
    case Scenario::kRevocationHeavy:
      return "revocation-heavy";
    case Scenario::kFlakyBoots:
      return "flaky-boots";
    case Scenario::kReliable:
      return "reliable";
  }
  return "unknown";
}

CloudConfig scenario_config(Scenario s) {
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 6;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_seconds = 5.0;
  config.retry.backoff_factor = 2.0;
  switch (s) {
    case Scenario::kHostileMix:
      config.faults.crash_rate_per_hour = 20.0;
      config.faults.crash_notice_seconds = 20.0;
      config.faults.provision_failure_prob = 0.2;
      config.faults.straggler_prob = 0.3;
      config.faults.straggler_lag_multiplier = 2.5;
      config.faults.task_failure_prob = 0.15;
      config.faults.monitor_dropout_prob = 0.2;
      break;
    case Scenario::kDropoutAlways:
      config.faults.monitor_dropout_prob = 1.0;
      break;
    case Scenario::kRevocationHeavy:
      config.faults.crash_rate_per_hour = 40.0;
      config.faults.crash_notice_seconds = 30.0;
      break;
    case Scenario::kFlakyBoots:
      config.faults.provision_failure_prob = 0.4;
      config.faults.straggler_prob = 0.5;
      config.faults.straggler_lag_multiplier = 3.0;
      break;
    case Scenario::kReliable:
      break;
  }
  return config;
}

void run_differential(Scenario scenario, std::uint64_t seed,
                      DifferentialWirePolicy& policy) {
  const dag::Workflow wf =
      workload::random_layered(workload::RandomDagOptions{}, seed);
  sim::RunOptions options;
  options.seed = seed + 101;
  options.initial_instances = 1;
  options.max_sim_seconds = 3.0e6;

  sim::JobEngine engine(wf, policy, scenario_config(scenario), options);
  engine.start();
  std::uint64_t steps = 0;
  while (!engine.done()) {
    ASSERT_LT(steps, 400000u) << "differential run failed to converge";
    engine.step();
    ++steps;
  }
}

class LookaheadDifferential : public ::testing::TestWithParam<int> {};

TEST_P(LookaheadDifferential, CacheMatchesReferenceAtEveryTickUnderChaos) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (Scenario scenario :
       {Scenario::kHostileMix, Scenario::kDropoutAlways,
        Scenario::kRevocationHeavy, Scenario::kFlakyBoots,
        Scenario::kReliable}) {
    SCOPED_TRACE(std::string("scenario ") + scenario_name(scenario) +
                 " seed " + std::to_string(seed));
    DifferentialWirePolicy policy;
    run_differential(scenario, seed, policy);
    const LookaheadCacheStats& stats = policy.cache_stats();
    EXPECT_GT(stats.ticks, 0u);
    // (The random chaos DAGs are too short-lived to guarantee a quiet tick;
    // SteadyStateExercisesTheIncrementalPath below pins the fast path on a
    // long steady-state run.)
    if (scenario == Scenario::kDropoutAlways) {
      EXPECT_EQ(
          stats.by_path[static_cast<std::size_t>(AnalyzePath::kIncremental)],
          0u)
          << "non-exact deltas must never classify as incremental";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookaheadDifferential, ::testing::Range(0, 3));

TEST(LookaheadDifferential, SteadyStateExercisesTheIncrementalPath) {
  // A quiet cloud must actually exercise the memoized fast path — the
  // per-tick equality assertions would be vacuous if every tick fell back.
  // Long identical stages on a saturated pool give many consecutive ticks
  // with no completions, no pool lifecycle changes, and no refits.
  const dag::Workflow wf = workload::linear_workflow(4, 40, 300.0);
  DifferentialWirePolicy policy;
  sim::RunOptions options;
  options.seed = 3;
  options.initial_instances = 1;
  sim::JobEngine engine(wf, policy, scenario_config(Scenario::kReliable),
                        options);
  engine.start();
  std::uint64_t steps = 0;
  while (!engine.done()) {
    ASSERT_LT(steps, 400000u) << "steady-state run failed to converge";
    engine.step();
    ++steps;
  }
  const LookaheadCacheStats& stats = policy.cache_stats();
  EXPECT_GT(stats.by_path[static_cast<std::size_t>(AnalyzePath::kIncremental)],
            0u)
      << "steady-state run never hit the incremental path";
  EXPECT_GT(stats.memo_hits, 0u);
  EXPECT_GT(stats.matched_completions, 0u);
  // The Plan stamp rides every incremental tick — the stamped-steering
  // assertions above would be vacuous if no tick ever stamped.
  EXPECT_EQ(stats.stamped_plan_ticks,
            stats.by_path[static_cast<std::size_t>(AnalyzePath::kIncremental)]);
  EXPECT_GT(policy.stamped_ticks(), 0u)
      << "steady-state run never exercised stamped steering";
}

TEST(LookaheadDifferential, EnvironmentSeedRuns) {
  const char* env = std::getenv("WIRE_FUZZ_SEED");
  if (env == nullptr) GTEST_SKIP() << "WIRE_FUZZ_SEED not set";
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("WIRE_FUZZ_SEED=" + std::to_string(seed));
  std::printf("running lookahead differential with WIRE_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  DifferentialWirePolicy policy;
  run_differential(Scenario::kHostileMix, seed, policy);
}

TEST(LookaheadProperties, InvariantsHoldAcrossPredictorsAndDags) {
  // Seeded sweep over random DAGs × predictor variants. The per-tick
  // invariant checks live inside DifferentialWirePolicy::plan, so driving a
  // run to completion sweeps them over every reachable wavefront shape.
  struct Variant {
    const char* label;
    bool oracle;
    predict::PredictorConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"online-median", false, {}});
  {
    predict::PredictorConfig mean;
    mean.use_mean = true;
    variants.push_back({"online-mean", false, mean});
  }
  {
    predict::PredictorConfig no_ogd;
    no_ogd.disable_ogd = true;
    variants.push_back({"online-no-ogd", false, no_ogd});
  }
  variants.push_back({"oracle", true, {}});

  for (const Variant& v : variants) {
    for (std::uint64_t seed : {11u, 12u}) {
      for (Scenario scenario :
           {Scenario::kReliable, Scenario::kRevocationHeavy}) {
        SCOPED_TRACE(std::string("predictor ") + v.label + " seed " +
                     std::to_string(seed) + " scenario " +
                     scenario_name(scenario));
        DifferentialWirePolicy policy(v.oracle, v.config);
        run_differential(scenario, seed, policy);
      }
    }
  }
}

TEST(LookaheadProperties, ReplayedSnapshotIsIdempotent) {
  // Benches replay the same snapshot into plan(); the cache must return the
  // identical projection every time (its classification may differ — a
  // replayed completion set looks like a misprediction — but outputs must
  // not).
  const dag::Workflow wf = workload::linear_workflow(2, 4, 60.0);
  predict::TaskPredictor predictor(wf);
  RunState run_state;
  CloudConfig config = scenario_config(Scenario::kReliable);

  MonitorSnapshot snap;
  snap.now = 300.0;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  for (const dag::TaskSpec& t : wf.tasks()) {
    snap.tasks[t.id].input_mb = t.input_mb;
  }
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  snap.tasks[0].phase = TaskPhase::Completed;
  snap.tasks[0].exec_time = 60.0;
  snap.tasks[0].transfer_time = 1.0;
  --snap.incomplete_tasks;
  snap.tasks[1].phase = TaskPhase::Running;
  snap.tasks[1].ready_since = 250.0;
  snap.tasks[1].occupancy_start = 250.0;
  snap.tasks[1].elapsed = 50.0;
  snap.tasks[1].elapsed_exec = 49.0;
  snap.tasks[1].transfer_in_time = 1.0;
  snap.tasks[1].instance = 0;
  snap.tasks[2].phase = TaskPhase::Ready;
  snap.tasks[2].ready_since = 260.0;
  snap.tasks[3].phase = TaskPhase::Ready;
  snap.tasks[3].ready_since = 260.0;
  snap.ready_queue = {2, 3};
  sim::InstanceObservation inst;
  inst.id = 0;
  inst.time_to_next_charge = 80.0;
  inst.running_tasks = {1};
  inst.free_slots = 1;
  snap.instances.push_back(inst);

  predictor.observe(snap);
  run_state.update(wf, snap);

  IncrementalLookahead cache;
  cache.reset(wf);
  const LookaheadResult reference =
      simulate_interval(wf, snap, predictor, config, &run_state);
  const LookaheadResult first =
      cache.tick(wf, snap, predictor, &predictor, config, &run_state);
  expect_lookahead_eq(first, reference);
  const LookaheadResult& second =
      cache.tick(wf, snap, predictor, &predictor, config, &run_state);
  expect_lookahead_eq(second, reference);
  // Borrowed predecessor counters must be restored exactly.
  const LookaheadResult again =
      simulate_interval(wf, snap, predictor, config, &run_state);
  expect_lookahead_eq(again, reference);
}

TEST(LookaheadDedupe, RequeuedDrainingTaskAlreadyInReadyQueueProjectsOnce) {
  // The crash/refresh race: a task requeued off a draining instance is
  // already back in snapshot.ready_queue (phase Ready) while the instance's
  // stale row still lists it under running_tasks. Before the dedupe fix the
  // drain-requeue loop pushed it a second time — double dispatch, phantom
  // load, and a predecessor-underflow trip once both copies completed.
  // Execution times dwarf the lag so the dispatched task is still on its
  // slot at the horizon (a double dispatch would surface as two entries; a
  // task that completes inside the horizon legitimately leaves Q_task).
  const dag::Workflow wf = workload::linear_workflow(2, 2, 300.0);
  predict::TaskPredictor predictor(wf);
  MonitorSnapshot snap;
  snap.now = 100.0;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  for (const dag::TaskSpec& t : wf.tasks()) {
    snap.tasks[t.id].input_mb = t.input_mb;
  }
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());
  snap.tasks[0].phase = TaskPhase::Completed;
  snap.tasks[0].exec_time = 300.0;
  snap.tasks[0].transfer_time = 0.5;
  --snap.incomplete_tasks;
  // Task 1: requeued (Ready, in the queue) but still listed on the draining
  // instance's stale row.
  snap.tasks[1].phase = TaskPhase::Ready;
  snap.tasks[1].ready_since = 95.0;
  snap.ready_queue = {1};
  sim::InstanceObservation draining;
  draining.id = 0;
  draining.draining = true;
  draining.time_to_next_charge = 10.0;
  draining.running_tasks = {1};  // stale
  snap.instances.push_back(draining);
  sim::InstanceObservation stable;
  stable.id = 1;
  stable.time_to_next_charge = 100.0;
  stable.free_slots = 2;
  snap.instances.push_back(stable);
  predictor.observe(snap);

  const sim::CloudConfig config = scenario_config(Scenario::kReliable);
  const LookaheadResult result =
      simulate_interval(wf, snap, predictor, config);
  std::size_t task1_count = 0;
  for (const UpcomingTask& u : result.upcoming) {
    if (u.task == 1) ++task1_count;
  }
  EXPECT_EQ(task1_count, 1u) << "requeued task projected twice";
  expect_lookahead_invariants(snap, result, config);
  // A genuinely stranded task (still observed Running on the draining
  // instance) is still requeued and projected.
  snap.ready_queue.clear();
  snap.tasks[1].phase = TaskPhase::Running;
  snap.tasks[1].occupancy_start = 95.0;
  snap.tasks[1].elapsed = 5.0;
  snap.tasks[1].instance = 0;
  const LookaheadResult stranded =
      simulate_interval(wf, snap, predictor, config);
  task1_count = 0;
  for (const UpcomingTask& u : stranded.upcoming) {
    if (u.task == 1) ++task1_count;
  }
  EXPECT_EQ(task1_count, 1u);
}

TEST(LookaheadAdaptiveHorizon, CapEngagesAndPreservesTheRunByteForByte) {
  // A wide stage overloading a small site: hundreds of queued tasks against
  // a 3-instance ceiling. With the cap on, the queue tail is truncated once
  // Algorithm 3's pool size saturates the ceiling — and the whole run must
  // still reproduce byte-for-byte, because the clamped steering decision
  // never changes (the unclamped demand signal saturates, which single-
  // tenant runs do not consume).
  const dag::Workflow wf = workload::linear_workflow(2, 200, 300.0);
  CloudConfig config;
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 300.0;
  config.slots_per_instance = 2;
  config.max_instances = 3;
  sim::RunOptions options;
  options.seed = 7;
  options.initial_instances = 1;

  WireController plain;
  const sim::RunResult base = sim::simulate(wf, plain, config, options);

  WireOptions capped_options;
  capped_options.lookahead_cache.adaptive_horizon = true;
  WireController capped(capped_options);
  const sim::RunResult capped_result =
      sim::simulate(wf, capped, config, options);

  EXPECT_GT(capped.lookahead_stats().capped_ticks, 0u)
      << "overload scenario never engaged the cap";
  EXPECT_GT(capped.lookahead_stats().truncated_tasks, 0u);
  EXPECT_EQ(capped_result.makespan, base.makespan);
  EXPECT_EQ(capped_result.cost_units, base.cost_units);
  EXPECT_EQ(capped_result.control_ticks, base.control_ticks);
  EXPECT_EQ(capped_result.task_restarts, base.task_restarts);
}

TEST(LookaheadCacheStatsTest, DisabledCacheClassifiesEveryTickDisabled) {
  const dag::Workflow wf = workload::linear_workflow(2, 6, 30.0);
  WireOptions options;
  options.lookahead_cache.enabled = false;
  WireController controller(options);
  CloudConfig config = scenario_config(Scenario::kReliable);
  sim::RunOptions run_options;
  run_options.seed = 5;
  run_options.initial_instances = 1;
  const sim::RunResult r = sim::simulate(wf, controller, config, run_options);
  EXPECT_GT(r.control_ticks, 0u);
  const LookaheadCacheStats& stats = controller.lookahead_stats();
  EXPECT_EQ(stats.ticks, static_cast<std::uint64_t>(r.control_ticks));
  EXPECT_EQ(stats.by_path[static_cast<std::size_t>(AnalyzePath::kDisabled)],
            stats.ticks);
  EXPECT_EQ(stats.memo_hits + stats.memo_misses, 0u);
}

}  // namespace
}  // namespace wire::core
