// Tests for the metrics collectors and the experiment harness (settings
// matrix, repetition runner, prediction-replay harness).
#include <gtest/gtest.h>

#include "exp/prediction_harness.h"
#include "exp/runner.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "util/check.h"
#include "workload/generators.h"

namespace wire {
namespace {

TEST(Metrics, ErrorDefinitionsMatchThePaper) {
  EXPECT_DOUBLE_EQ(metrics::true_error(12.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(metrics::true_error(8.0, 10.0), -2.0);
  EXPECT_DOUBLE_EQ(metrics::relative_true_error(12.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(metrics::relative_true_error(5.0, 10.0), -0.5);
  EXPECT_THROW(metrics::relative_true_error(1.0, 0.0),
               util::ContractViolation);
}

TEST(Metrics, NormalizeToBest) {
  const auto normalized = metrics::normalize_to_best({30.0, 15.0, 45.0});
  ASSERT_EQ(normalized.size(), 3u);
  EXPECT_DOUBLE_EQ(normalized[0], 2.0);
  EXPECT_DOUBLE_EQ(normalized[1], 1.0);
  EXPECT_DOUBLE_EQ(normalized[2], 3.0);
  EXPECT_THROW(metrics::normalize_to_best({}), util::ContractViolation);
  EXPECT_THROW(metrics::normalize_to_best({0.0, 1.0}),
               util::ContractViolation);
}

TEST(Metrics, CellStatsAggregates) {
  metrics::CellStats stats;
  sim::RunResult r;
  r.cost_units = 4.0;
  r.makespan = 100.0;
  r.utilization = 0.5;
  stats.add(r);
  r.cost_units = 6.0;
  r.makespan = 200.0;
  r.utilization = 0.9;
  stats.add(r);
  EXPECT_EQ(stats.runs(), 2u);
  EXPECT_DOUBLE_EQ(stats.cost_units.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.makespan_seconds.mean(), 150.0);
  EXPECT_DOUBLE_EQ(stats.utilization.mean(), 0.7);
}

TEST(Settings, PaperMatrixShape) {
  EXPECT_EQ(exp::all_policies().size(), 4u);
  const auto units = exp::paper_charging_units();
  ASSERT_EQ(units.size(), 4u);
  EXPECT_DOUBLE_EQ(units[0], 60.0);
  EXPECT_DOUBLE_EQ(units[3], 3600.0);
  const sim::CloudConfig config = exp::paper_cloud(900.0);
  EXPECT_DOUBLE_EQ(config.lag_seconds, 180.0);
  EXPECT_EQ(config.slots_per_instance, 4u);
  EXPECT_EQ(config.max_instances, 12u);
}

TEST(Settings, PolicyFactoryProducesDistinctPolicies) {
  for (exp::PolicyKind kind : exp::all_policies()) {
    const auto policy = exp::make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), exp::policy_label(kind));
  }
  EXPECT_EQ(exp::initial_instances(exp::PolicyKind::FullSite,
                                   exp::paper_cloud(60.0)),
            12u);
  EXPECT_EQ(exp::initial_instances(exp::PolicyKind::Wire,
                                   exp::paper_cloud(60.0)),
            1u);
}

TEST(Runner, CellIsReproducible) {
  const dag::Workflow wf = workload::make_workflow(
      workload::tpch6_profile(workload::Scale::Small), 7);
  exp::MatrixOptions options;
  options.repetitions = 2;
  const exp::CellResult a =
      exp::run_cell(wf, exp::PolicyKind::PureReactive, 900.0, options, 3);
  const exp::CellResult b =
      exp::run_cell(wf, exp::PolicyKind::PureReactive, 900.0, options, 3);
  ASSERT_EQ(a.runs.size(), 2u);
  EXPECT_DOUBLE_EQ(a.stats.cost_units.mean(), b.stats.cost_units.mean());
  EXPECT_DOUBLE_EQ(a.runs[0].makespan, b.runs[0].makespan);
  // Different repetitions within the cell use different seeds.
  EXPECT_NE(a.runs[0].makespan, a.runs[1].makespan);
}

TEST(Runner, MatrixCoversEveryCell) {
  exp::MatrixOptions options;
  options.repetitions = 1;
  options.policies = {exp::PolicyKind::FullSite, exp::PolicyKind::Wire};
  options.charging_units = {60.0, 900.0};
  options.threads = 4;
  const auto results = exp::run_matrix(
      {workload::tpch6_profile(workload::Scale::Small)}, options);
  ASSERT_EQ(results.size(), 4u);
  for (const exp::CellResult& cell : results) {
    EXPECT_EQ(cell.workflow, "TPCH-6 S");
    EXPECT_EQ(cell.stats.runs(), 1u);
    EXPECT_GE(cell.stats.cost_units.min(), 1.0);
  }
  // Full-site at u=60 must cost more than wire at u=60.
  EXPECT_GT(results[0].stats.cost_units.mean(),
            results[2].stats.cost_units.mean());
}

TEST(PredictionHarness, ReplayAlignsPredictionsWithActuals) {
  const dag::Workflow wf = workload::linear_workflow(1, 10, 50.0, "stage");
  std::vector<double> actual(wf.task_count(), 0.0);
  for (dag::TaskId t = 0; t < 10; ++t) {
    actual[t] = 40.0 + t;  // mild spread
  }
  std::vector<dag::TaskId> order;
  for (dag::TaskId t = 0; t < 10; ++t) order.push_back(t);
  const exp::StageReplay replay = exp::replay_stage(wf, 0, actual, order);
  // First task excluded: 9 predictions.
  ASSERT_EQ(replay.actual.size(), 9u);
  ASSERT_EQ(replay.predicted_ready.size(), 9u);
  ASSERT_EQ(replay.predicted_pending.size(), 9u);
  ASSERT_EQ(replay.ready_policy.size(), 9u);
  // All tasks share input size 0 -> policy 4 group medians everywhere, and
  // every prediction is within the observed spread.
  for (std::size_t i = 0; i < replay.actual.size(); ++i) {
    EXPECT_EQ(replay.ready_policy[i], predict::Policy::CompletedKnownSize);
    EXPECT_GE(replay.predicted_ready[i], 40.0);
    EXPECT_LE(replay.predicted_ready[i], 49.0);
  }
}

TEST(PredictionHarness, AccurateForHomogeneousStages) {
  const dag::Workflow wf = workload::linear_workflow(1, 20, 30.0, "flat");
  std::vector<double> actual(wf.task_count(), 30.0);
  const auto replays = exp::replay_stage_random_orders(wf, 0, actual,
                                                       /*n_orders=*/5, 42);
  ASSERT_EQ(replays.size(), 5u);
  for (const exp::StageReplay& r : replays) {
    for (std::size_t i = 0; i < r.actual.size(); ++i) {
      EXPECT_DOUBLE_EQ(r.predicted_ready[i], 30.0);
      EXPECT_DOUBLE_EQ(r.predicted_pending[i], 30.0);
    }
  }
}

TEST(PredictionHarness, RandomOrdersDiffer) {
  const dag::Workflow wf = workload::linear_workflow(1, 12, 30.0, "skewed");
  std::vector<double> actual(wf.task_count());
  for (dag::TaskId t = 0; t < 12; ++t) {
    actual[t] = 5.0 + 10.0 * t;  // strong order sensitivity
  }
  const auto replays =
      exp::replay_stage_random_orders(wf, 0, actual, 4, 7);
  // At least two orders must produce different first predictions.
  bool differ = false;
  for (std::size_t i = 1; i < replays.size(); ++i) {
    if (replays[i].predicted_ready.front() !=
        replays[0].predicted_ready.front()) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(PredictionHarness, RejectsBadInputs) {
  const dag::Workflow wf = workload::linear_workflow(1, 4, 30.0);
  std::vector<double> actual(wf.task_count(), 30.0);
  std::vector<dag::TaskId> short_order{0, 1};
  EXPECT_THROW(exp::replay_stage(wf, 0, actual, short_order),
               util::ContractViolation);
  std::vector<double> missing(wf.task_count(), 0.0);
  std::vector<dag::TaskId> order{0, 1, 2, 3};
  EXPECT_THROW(exp::replay_stage(wf, 0, missing, order),
               util::ContractViolation);
}

}  // namespace
}  // namespace wire
