// The memory dimension's test suite: sizing algebra, the controller-side
// predictor, OOM-retry semantics, and the two identity contracts that make
// memory a safe second resource axis:
//
//   1. Memory OFF is byte-identical to the pre-memory implementation — the
//      MemoryConfig knobs are inert while instance_mem_mb == 0, and an
//      ample-capacity memory-ON run (where admission never blocks and OOM
//      never fires) reproduces the memory-off schedule bit-for-bit, because
//      both dispatchers pick the first ascending-id instance with a free
//      slot and the true-peak draws come from a private RNG stream.
//
//   2. Memory ON keeps the incremental Analyze/Plan contract: at EVERY
//      control tick, under fault chaos and memory pressure alike, the
//      IncrementalLookahead's projection — including the new per-entry
//      reservation — equals the memory-aware from-scratch simulate_interval
//      bitwise, and the steering command derived from either is identical.
//
// Every randomized test announces its seed via SCOPED_TRACE, and
// WIRE_FUZZ_SEED adds one environment-chosen chaos seed (DESIGN.md §4.10).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/lookahead.h"
#include "core/lookahead_cache.h"
#include "core/run_state.h"
#include "core/steering.h"
#include "exp/settings.h"
#include "predict/memory_predictor.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "sim/engine.h"
#include "sim/memory.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace wire {
namespace {

using core::IncrementalLookahead;
using core::LookaheadResult;
using core::UpcomingTask;
using dag::TaskId;
using sim::CloudConfig;
using sim::MemoryConfig;
using sim::MonitorSnapshot;
using sim::TaskPhase;

// ---------------------------------------------------------------------------
// Sizing algebra (sim/memory.h): the statistical core both sides share.
// ---------------------------------------------------------------------------

MemoryConfig tight_config(double cap_mb) {
  MemoryConfig config;
  config.instance_mem_mb = cap_mb;
  return config;
}

TEST(MemorySizing, ClampIsMonotoneFlooredAndCapped) {
  MemoryConfig config = tight_config(4096.0);
  config.min_reservation_mb = 64.0;
  config.upsize_factor = 2.0;
  // Monotone non-decreasing in the OOM count, for bases above and below the
  // floor.
  for (double base : {1.0, 40.0, 100.0, 700.0}) {
    double prev = 0.0;
    for (std::uint32_t ooms = 0; ooms <= 8; ++ooms) {
      const double res = sim::clamp_reservation(base, config, ooms);
      EXPECT_GE(res, prev) << "upsizing shrank base " << base << " at oom "
                           << ooms;
      EXPECT_GE(res, config.min_reservation_mb);
      EXPECT_LE(res, config.instance_mem_mb);
      prev = res;
    }
  }
  // Floor engages below it, exact growth above it, ceiling past the cap.
  EXPECT_EQ(sim::clamp_reservation(10.0, config, 0), 64.0);
  EXPECT_EQ(sim::clamp_reservation(100.0, config, 0), 100.0);
  EXPECT_EQ(sim::clamp_reservation(100.0, config, 1), 200.0);
  EXPECT_EQ(sim::clamp_reservation(100.0, config, 2), 400.0);
  EXPECT_EQ(sim::clamp_reservation(3000.0, config, 1), 4096.0);
}

TEST(MemorySizing, PercentilePicksTheCoveringSample) {
  MemoryConfig config = tight_config(1.0e6);
  config.sizing = MemoryConfig::Sizing::Percentile;
  config.safety_factor = 1.0;
  const std::vector<double> peaks = {10.0, 20.0, 30.0, 40.0, 50.0,
                                     60.0, 70.0, 80.0, 90.0, 100.0};
  // q = 0.95 over 10 samples: ceil(9.5) - 1 = index 9, the maximum.
  config.percentile = 0.95;
  EXPECT_EQ(sim::sized_from_history(peaks, config, 0.0, 0.0), 100.0);
  // q = 0.5: ceil(5) - 1 = index 4 (the smallest sample covering half).
  config.percentile = 0.5;
  EXPECT_EQ(sim::sized_from_history(peaks, config, 0.0, 0.0), 50.0);
  // q = 1.0 is the maximum; the safety factor multiplies on top.
  config.percentile = 1.0;
  config.safety_factor = 1.1;
  EXPECT_EQ(sim::sized_from_history(peaks, config, 0.0, 0.0), 100.0 * 1.1);
  // Mean sizing folds the sorted history.
  config.sizing = MemoryConfig::Sizing::Mean;
  config.safety_factor = 1.0;
  EXPECT_EQ(sim::sized_from_history(peaks, config, 0.0, 0.0), 55.0);
  // Oracle ignores the history entirely.
  config.sizing = MemoryConfig::Sizing::Oracle;
  config.safety_factor = 1.1;
  EXPECT_EQ(sim::sized_from_history(peaks, config, 0.0, 123.0), 123.0 * 1.1);
}

TEST(MemorySizing, SizerColdStartIsFairShareAndHistoryIsOrderInsensitive) {
  MemoryConfig config = tight_config(1000.0);
  config.sizing = MemoryConfig::Sizing::Percentile;
  config.percentile = 0.95;
  config.safety_factor = 1.0;
  config.min_reservation_mb = 64.0;
  sim::TaskMemorySizer cold(config, /*slots_per_instance=*/4,
                            /*stage_count=*/2);
  // No history: the fair share instance_mem_mb / slots (above the floor).
  EXPECT_EQ(cold.reservation_mb(0, 0.0, 0), 250.0);
  // default_mb overrides the fair share when set.
  MemoryConfig with_default = config;
  with_default.default_mb = 333.0;
  sim::TaskMemorySizer defaulted(with_default, 4, 2);
  EXPECT_EQ(defaulted.reservation_mb(0, 0.0, 0), 333.0);

  // Two sizers fed the same peaks in different orders agree bitwise (the
  // history is kept sorted; this is what lets the engine-side and the
  // controller-side observers converge on identical reservations).
  sim::TaskMemorySizer a(config, 4, 2);
  sim::TaskMemorySizer b(config, 4, 2);
  const std::vector<double> peaks = {512.0, 130.0, 470.0, 130.0, 260.0};
  for (double p : peaks) a.observe_peak(0, p);
  for (auto it = peaks.rbegin(); it != peaks.rend(); ++it) {
    b.observe_peak(0, *it);
  }
  for (std::uint32_t ooms = 0; ooms < 3; ++ooms) {
    EXPECT_EQ(a.reservation_mb(0, 0.0, ooms), b.reservation_mb(0, 0.0, ooms));
  }
  // Stage 1 saw nothing; it still sizes at the cold-start fair share.
  EXPECT_EQ(a.reservation_mb(1, 0.0, 0), 250.0);
}

// ---------------------------------------------------------------------------
// The controller-side MemoryPredictor mirrors the engine-side sizer.
// ---------------------------------------------------------------------------

TEST(MemoryPredictorTest, MirrorsEngineSizerAndTracksRevisions) {
  const dag::Workflow wf = workload::linear_workflow(2, 2, 60.0);
  MemoryConfig config = tight_config(2048.0);
  config.sizing = MemoryConfig::Sizing::Percentile;
  predict::MemoryPredictor predictor(wf, config, /*slots_per_instance=*/4);

  MonitorSnapshot snap;
  snap.now = 120.0;
  snap.tasks.assign(wf.task_count(), sim::TaskObservation{});
  snap.incomplete_tasks = static_cast<std::uint32_t>(wf.task_count());

  const dag::StageId stage0 = wf.task(0).stage;
  const std::uint64_t rev0 = predictor.stage_revision(stage0);
  EXPECT_EQ(predictor.stage_samples(stage0), 0u);

  // Cold start: every prediction is the sized-and-clamped fair share, and it
  // matches the engine-side sizer with the same (empty) history bitwise.
  sim::TaskMemorySizer sizer(config, 4, wf.stage_count());
  EXPECT_EQ(predictor.predict_reservation(0, snap),
            sizer.reservation_mb(stage0, wf.task(0).ref_peak_mem_mb, 0));

  // One completion reveals its peak; the harvest bumps the stage revision
  // exactly once and is idempotent on a replayed snapshot.
  snap.tasks[0].phase = TaskPhase::Completed;
  snap.tasks[0].exec_time = 60.0;
  snap.tasks[0].peak_mem_mb = 612.0;
  --snap.incomplete_tasks;
  predictor.observe(snap);
  sizer.observe_peak(stage0, 612.0);
  EXPECT_EQ(predictor.stage_samples(stage0), 1u);
  EXPECT_GT(predictor.stage_revision(stage0), rev0);
  const std::uint64_t rev_after = predictor.stage_revision(stage0);
  const std::uint64_t global_after = predictor.revision();
  predictor.observe(snap);  // replay: nothing new to ingest
  EXPECT_EQ(predictor.stage_samples(stage0), 1u);
  EXPECT_EQ(predictor.stage_revision(stage0), rev_after);
  EXPECT_EQ(predictor.revision(), global_after);

  // The peer of the completed task now sizes from the one-sample history —
  // bitwise what the engine's sizer computes — including under upsizing.
  snap.tasks[1].phase = TaskPhase::Ready;
  snap.tasks[1].ready_since = 100.0;
  for (std::uint32_t ooms = 0; ooms < 3; ++ooms) {
    snap.tasks[1].oom_attempts = ooms;
    EXPECT_EQ(predictor.predict_reservation(1, snap),
              sizer.reservation_mb(stage0, wf.task(1).ref_peak_mem_mb, ooms));
  }
  snap.tasks[1].oom_attempts = 0;

  // A running task's booked reservation is observable, not predicted.
  snap.tasks[1].phase = TaskPhase::Running;
  snap.tasks[1].occupancy_start = 110.0;
  snap.tasks[1].mem_reservation_mb = 777.0;
  EXPECT_EQ(predictor.predict_reservation(1, snap), 777.0);

  // State accounting covers the harvested history it just accumulated.
  EXPECT_GT(predictor.state_bytes(), sizeof(predict::MemoryPredictor));
}

// ---------------------------------------------------------------------------
// Differential chaos suite: memory-aware incremental == from-scratch
// memory-aware reference, bitwise, at every control tick.
// ---------------------------------------------------------------------------

void expect_lookahead_mem_eq(const LookaheadResult& got,
                             const LookaheadResult& want) {
  ASSERT_EQ(got.upcoming.size(), want.upcoming.size());
  for (std::size_t i = 0; i < got.upcoming.size(); ++i) {
    SCOPED_TRACE("upcoming entry " + std::to_string(i));
    EXPECT_EQ(got.upcoming[i].task, want.upcoming[i].task);
    // Bitwise double equality throughout — ulp drift on either the time or
    // the memory axis is exactly the bug class this suite exists to catch.
    EXPECT_EQ(got.upcoming[i].remaining_occupancy,
              want.upcoming[i].remaining_occupancy);
    EXPECT_EQ(got.upcoming[i].on_slot, want.upcoming[i].on_slot);
    EXPECT_EQ(got.upcoming[i].mem_mb, want.upcoming[i].mem_mb);
  }
  EXPECT_EQ(got.projected_completions, want.projected_completions);
  ASSERT_EQ(got.restart_cost.size(), want.restart_cost.size());
  for (const auto& [inst, cost] : want.restart_cost) {
    const auto it = got.restart_cost.find(inst);
    ASSERT_NE(it, got.restart_cost.end()) << "missing instance " << inst;
    EXPECT_EQ(it->second, cost) << "restart cost drift on instance " << inst;
  }
}

void expect_memory_invariants(const MonitorSnapshot& snap,
                              const LookaheadResult& result,
                              const CloudConfig& config) {
  for (const UpcomingTask& u : result.upcoming) {
    EXPECT_GE(u.mem_mb, 0.0);
    // Reservations are clamped to instance capacity (anything larger could
    // never be admitted and would deadlock both dispatchers).
    EXPECT_LE(u.mem_mb, config.memory.instance_mem_mb + 1e-9)
        << "task " << u.task << " projected above instance capacity";
  }
  // An observed-running task's projected reservation is the booked one.
  for (const sim::InstanceObservation& inst : snap.instances) {
    if (inst.draining || inst.revoking || inst.provisioning) continue;
    for (TaskId task : inst.running_tasks) {
      if (snap.tasks[task].phase != TaskPhase::Running) continue;
      for (const UpcomingTask& u : result.upcoming) {
        if (u.task != task || !u.on_slot) continue;
        EXPECT_EQ(u.mem_mb,
                  std::max(0.0, snap.tasks[task].mem_reservation_mb))
            << "running task " << task << " lost its booked reservation";
        break;
      }
    }
  }
}

void expect_pool_command_eq(const sim::PoolCommand& got,
                            const sim::PoolCommand& want) {
  EXPECT_EQ(got.desired_pool, want.desired_pool);
  EXPECT_EQ(got.grow, want.grow);
  EXPECT_EQ(got.cancel_drains, want.cancel_drains);
  ASSERT_EQ(got.releases.size(), want.releases.size());
  for (std::size_t i = 0; i < got.releases.size(); ++i) {
    EXPECT_EQ(got.releases[i].instance, want.releases[i].instance);
    EXPECT_EQ(got.releases[i].at_charge_boundary,
              want.releases[i].at_charge_boundary);
  }
}

/// The WIRE MAPE loop with the memory dimension on and both Analyze paths
/// run side by side: one shared MemoryPredictor feeds the incremental cache
/// and the from-scratch reference (exactly how WireController wires it), and
/// every tick's projection and steering command are compared bitwise.
class DifferentialMemoryPolicy final : public sim::ScalingPolicy {
 public:
  std::string name() const override { return "wire-memory-differential"; }

  void on_run_start(const dag::Workflow& workflow,
                    const CloudConfig& config) override {
    workflow_ = &workflow;
    config_ = config;
    WIRE_REQUIRE(config.memory.enabled(),
                 "the memory differential needs the memory dimension on");
    auto online =
        std::make_unique<predict::TaskPredictor>(workflow,
                                                 predict::PredictorConfig{});
    online_ = online.get();
    estimator_ = std::move(online);
    memory_ = std::make_unique<predict::MemoryPredictor>(
        workflow, config.memory, config.slots_per_instance);
    run_state_.reset();
    cache_ = IncrementalLookahead(core::LookaheadCacheOptions{});
    cache_.reset(workflow);
  }

  sim::PoolCommand plan(const MonitorSnapshot& snapshot) override {
    estimator_->observe(snapshot);
    memory_->observe(snapshot);
    run_state_.update(*workflow_, snapshot);

    const LookaheadResult reference =
        simulate_interval(*workflow_, snapshot, *estimator_, config_,
                          &run_state_, nullptr, memory_.get());
    const LookaheadResult& incremental =
        cache_.tick(*workflow_, snapshot, *estimator_, online_, config_,
                    &run_state_, memory_.get());
    {
      SCOPED_TRACE("tick at t=" + std::to_string(snapshot.now) + " (path " +
                   std::string(analyze_path_label(cache_.last_path())) + ")");
      expect_lookahead_mem_eq(incremental, reference);
      expect_memory_invariants(snapshot, incremental, config_);
    }

    // Plan differential: steering consumes the per-entry reservations (the
    // memory-aware Algorithm 3); the command from the cache's result must
    // equal the command rebuilt from the unstamped reference.
    std::uint32_t planned = 0;
    sim::PoolCommand cmd =
        steer(incremental, snapshot, config_, &planned, false);
    {
      SCOPED_TRACE("plan differential at t=" + std::to_string(snapshot.now));
      std::uint32_t ref_planned = 0;
      const sim::PoolCommand ref_cmd =
          steer(reference, snapshot, config_, &ref_planned, false);
      EXPECT_EQ(planned, ref_planned);
      expect_pool_command_eq(cmd, ref_cmd);
    }
    return cmd;
  }

  const core::LookaheadCacheStats& cache_stats() const {
    return cache_.stats();
  }

 private:
  const dag::Workflow* workflow_ = nullptr;
  CloudConfig config_;
  std::unique_ptr<predict::Estimator> estimator_;
  predict::TaskPredictor* online_ = nullptr;
  std::unique_ptr<predict::MemoryPredictor> memory_;
  core::RunState run_state_;
  IncrementalLookahead cache_;
};

/// Fault chaos (mirrors the incremental suite's scenarios).
enum class Faults { kHostileMix, kDropoutAlways, kReliable };

const char* faults_name(Faults f) {
  switch (f) {
    case Faults::kHostileMix:
      return "hostile-mix";
    case Faults::kDropoutAlways:
      return "dropout-always";
    case Faults::kReliable:
      return "reliable";
  }
  return "unknown";
}

/// Memory pressure: ample capacity (admission never blocks) vs a tight cap
/// that forces head-of-line blocking, OOM retries and quarantine.
enum class Pressure { kAmple, kTight };

const char* pressure_name(Pressure p) {
  return p == Pressure::kAmple ? "ample" : "tight";
}

CloudConfig memory_chaos_config(Faults faults, Pressure pressure) {
  CloudConfig config;
  config.lag_seconds = 30.0;
  config.charging_unit_seconds = 120.0;
  config.slots_per_instance = 2;
  config.max_instances = 6;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_seconds = 5.0;
  config.retry.backoff_factor = 2.0;
  switch (faults) {
    case Faults::kHostileMix:
      config.faults.crash_rate_per_hour = 20.0;
      config.faults.crash_notice_seconds = 20.0;
      config.faults.provision_failure_prob = 0.2;
      config.faults.straggler_prob = 0.3;
      config.faults.straggler_lag_multiplier = 2.5;
      config.faults.task_failure_prob = 0.15;
      config.faults.monitor_dropout_prob = 0.2;
      break;
    case Faults::kDropoutAlways:
      config.faults.monitor_dropout_prob = 1.0;
      break;
    case Faults::kReliable:
      break;
  }
  // Mean task peak is ~600 MB (see run_memory_differential): ample capacity
  // fits both slots with headroom; the tight cap cannot even hold one
  // upsized task past ~900 MB, so some tasks quarantine through the OOM cap.
  config.memory.instance_mem_mb = pressure == Pressure::kAmple ? 4096.0
                                                               : 900.0;
  config.memory.noise_sigma = 0.3;
  return config;
}

void run_memory_differential(Faults faults, Pressure pressure,
                             std::uint64_t seed,
                             DifferentialMemoryPolicy& policy) {
  workload::RandomDagOptions dag_options;
  dag_options.mean_peak_mem_mb = 600.0;
  const dag::Workflow wf = workload::random_layered(dag_options, seed);
  sim::RunOptions options;
  options.seed = seed + 101;
  options.initial_instances = 1;
  options.max_sim_seconds = 3.0e6;

  sim::JobEngine engine(wf, policy, memory_chaos_config(faults, pressure),
                        options);
  engine.start();
  std::uint64_t steps = 0;
  while (!engine.done()) {
    ASSERT_LT(steps, 400000u) << "memory differential failed to converge";
    engine.step();
    ++steps;
  }
}

class MemoryDifferential : public ::testing::TestWithParam<int> {};

TEST_P(MemoryDifferential, CacheMatchesMemoryAwareReferenceAtEveryTick) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (Pressure pressure : {Pressure::kAmple, Pressure::kTight}) {
    for (Faults faults :
         {Faults::kHostileMix, Faults::kDropoutAlways, Faults::kReliable}) {
      SCOPED_TRACE(std::string("faults ") + faults_name(faults) +
                   " pressure " + pressure_name(pressure) + " seed " +
                   std::to_string(seed));
      DifferentialMemoryPolicy policy;
      run_memory_differential(faults, pressure, seed, policy);
      EXPECT_GT(policy.cache_stats().ticks, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryDifferential, ::testing::Range(0, 2));

TEST(MemoryDifferential, EnvironmentSeedRuns) {
  const char* env = std::getenv("WIRE_FUZZ_SEED");
  if (env == nullptr) GTEST_SKIP() << "WIRE_FUZZ_SEED not set";
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  SCOPED_TRACE("WIRE_FUZZ_SEED=" + std::to_string(seed));
  std::printf("running memory differential with WIRE_FUZZ_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  DifferentialMemoryPolicy policy;
  run_memory_differential(Faults::kHostileMix, Pressure::kTight, seed,
                          policy);
}

// ---------------------------------------------------------------------------
// OOM-retry semantics on the ground-truth engine.
// ---------------------------------------------------------------------------

TEST(OomSemantics, KillsRetriesUpsizesAndQuarantinesExactlyOnce) {
  // Deliberate under-provisioning: ~600 MB peaks against a 250 MB cold-start
  // fair share (1000 MB / 4 slots). First attempts OOM, upsized retries
  // climb toward the capacity clamp; tasks whose true peak exceeds even the
  // full instance quarantine through max_oom_attempts.
  workload::RandomDagOptions dag_options;
  dag_options.mean_peak_mem_mb = 600.0;
  const dag::Workflow wf = workload::random_layered(dag_options, 42);
  CloudConfig config;
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 300.0;
  config.slots_per_instance = 4;
  config.max_instances = 6;
  config.memory.instance_mem_mb = 1000.0;
  config.memory.noise_sigma = 0.3;
  sim::RunOptions options;
  options.seed = 7;
  options.initial_instances = 1;

  core::WireController controller;
  const sim::RunResult result = sim::simulate(wf, controller, config, options);

  // The pressure is real: this scenario must actually exercise the machinery.
  EXPECT_GT(result.oom_kills, 0u) << "under-provisioned run never OOM-killed";

  // Exactly-once journaling: every kill is one OomKill event, the trace's
  // per-task attempt numbers count 1..k with no gaps or repeats, and the
  // result counter equals both the journal and the per-task records.
  std::map<TaskId, std::uint32_t> ooms_seen;
  std::uint32_t journaled = 0;
  for (const sim::FaultEvent& e : result.fault_trace) {
    if (e.kind != sim::FaultKind::OomKill) continue;
    ++journaled;
    const TaskId task = e.subject;
    EXPECT_EQ(e.attempt, ooms_seen[task] + 1)
        << "task " << task << " OOM attempts not consecutive";
    ooms_seen[task] = e.attempt;
    EXPECT_GT(e.detail, 0.0) << "OomKill journaled without its true peak";
  }
  EXPECT_EQ(result.oom_kills, journaled);
  std::uint32_t from_records = 0;
  for (const sim::TaskRuntime& rt : result.task_records) {
    from_records += rt.oom_attempts;
  }
  EXPECT_EQ(result.oom_kills, from_records);

  // Per-task outcome: every OOM-killed task either eventually completed on a
  // reservation covering its true peak, or was quarantined at the cap.
  std::vector<bool> quarantined(wf.task_count(), false);
  for (TaskId t : result.quarantined_tasks) quarantined[t] = true;
  for (TaskId t = 0; t < static_cast<TaskId>(wf.task_count()); ++t) {
    const sim::TaskRuntime& rt = result.task_records[t];
    EXPECT_EQ(rt.oom_attempts, ooms_seen.count(t) ? ooms_seen[t] : 0u);
    if (rt.phase == TaskPhase::Completed && rt.true_peak_mem_mb >= 0.0) {
      // Survival means the final attempt's reservation held the peak.
      EXPECT_GE(rt.mem_reservation_mb, rt.true_peak_mem_mb)
          << "task " << t << " completed above its reservation";
    }
    if (rt.oom_attempts >= config.memory.max_oom_attempts) {
      EXPECT_TRUE(quarantined[t])
          << "task " << t << " exhausted OOM retries but escaped quarantine";
    }
    if (rt.oom_attempts > 0 && !quarantined[t]) {
      EXPECT_EQ(rt.phase, TaskPhase::Completed)
          << "OOM-killed task " << t << " neither completed nor quarantined";
    }
  }

  // Wastage accounting: every successful attempt reserved at least its true
  // peak, so the reserved integral dominates the clairvoyant one.
  EXPECT_GT(result.mem_reserved_mb_seconds, 0.0);
  EXPECT_GT(result.mem_used_mb_seconds, 0.0);
  EXPECT_GE(result.mem_reserved_mb_seconds, result.mem_used_mb_seconds);
}

// ---------------------------------------------------------------------------
// Memory-off bit-identity: the knobs are inert while instance_mem_mb == 0,
// and ample capacity reproduces the memory-off schedule exactly.
// ---------------------------------------------------------------------------

void expect_run_result_bitwise_eq(const sim::RunResult& got,
                                  const sim::RunResult& want) {
  EXPECT_EQ(got.makespan, want.makespan);
  EXPECT_EQ(got.cost_units, want.cost_units);
  EXPECT_EQ(got.ready_instance_seconds, want.ready_instance_seconds);
  EXPECT_EQ(got.busy_slot_seconds, want.busy_slot_seconds);
  EXPECT_EQ(got.wasted_slot_seconds, want.wasted_slot_seconds);
  EXPECT_EQ(got.utilization, want.utilization);
  EXPECT_EQ(got.peak_instances, want.peak_instances);
  EXPECT_EQ(got.task_restarts, want.task_restarts);
  EXPECT_EQ(got.control_ticks, want.control_ticks);
  EXPECT_EQ(sim::render_fault_trace(got.fault_trace),
            sim::render_fault_trace(want.fault_trace));
}

TEST(MemoryOffBitIdentity, PerturbedKnobsAreInertOnTableOne) {
  // A Table-I baseline run (which carries a memory profile in its stages)
  // with every MemoryConfig knob perturbed — but the capacity master switch
  // at 0 — must be byte-identical to the default-config run: with memory
  // off, no mem RNG stream is seeded, no reservation is sized, no predictor
  // is constructed, and no code path reads the remaining knobs.
  const dag::Workflow wf =
      workload::make_workflow(workload::tpch6_profile(workload::Scale::Small),
                              7);
  const CloudConfig base_config = exp::paper_cloud(900.0);
  sim::RunOptions options;
  options.seed = 11;
  options.initial_instances = 1;

  core::WireController base;
  const sim::RunResult want = sim::simulate(wf, base, base_config, options);
  EXPECT_EQ(base.memory_predictor(), nullptr);

  CloudConfig perturbed_config = base_config;
  perturbed_config.memory.instance_mem_mb = 0.0;  // the master switch
  perturbed_config.memory.noise_sigma = 0.7;
  perturbed_config.memory.sizing = MemoryConfig::Sizing::Mean;
  perturbed_config.memory.percentile = 0.5;
  perturbed_config.memory.safety_factor = 2.0;
  perturbed_config.memory.default_mb = 999.0;
  perturbed_config.memory.min_reservation_mb = 1.0;
  perturbed_config.memory.upsize_factor = 3.0;
  perturbed_config.memory.max_oom_attempts = 1;
  core::WireController perturbed;
  const sim::RunResult got =
      sim::simulate(wf, perturbed, perturbed_config, options);

  expect_run_result_bitwise_eq(got, want);
  EXPECT_EQ(got.oom_kills, 0u);
  EXPECT_EQ(got.mem_reserved_mb_seconds, 0.0);
  EXPECT_EQ(got.mem_used_mb_seconds, 0.0);
  for (const sim::TaskRuntime& rt : got.task_records) {
    EXPECT_LT(rt.mem_reservation_mb, 0.0);
    EXPECT_LT(rt.true_peak_mem_mb, 0.0);
    EXPECT_EQ(rt.oom_attempts, 0u);
  }
}

TEST(MemoryOffBitIdentity, AmpleCapacityReproducesTheMemoryOffSchedule) {
  // With capacity so large admission never blocks, no OOM ever fires
  // (noise-free oracle sizing reserves safety_factor × the true peak), and
  // the true-peak draws come from a private RNG stream, the memory-on run
  // must replay the memory-off schedule bit-for-bit: both dispatchers pick
  // the first ascending-id instance with a free slot, and the memory-aware
  // Algorithm 3 never hits its capacity retire condition.
  workload::RandomDagOptions dag_options;
  dag_options.mean_peak_mem_mb = 400.0;
  const dag::Workflow wf = workload::random_layered(dag_options, 5);
  CloudConfig config;
  config.lag_seconds = 60.0;
  config.charging_unit_seconds = 300.0;
  config.slots_per_instance = 4;
  config.max_instances = 6;
  sim::RunOptions options;
  options.seed = 13;
  options.initial_instances = 1;

  core::WireController off;
  const sim::RunResult want = sim::simulate(wf, off, config, options);

  CloudConfig ample = config;
  ample.memory.instance_mem_mb = 1.0e7;
  ample.memory.noise_sigma = 0.0;
  ample.memory.sizing = MemoryConfig::Sizing::Oracle;
  core::WireController on;
  const sim::RunResult got = sim::simulate(wf, on, ample, options);
  EXPECT_NE(on.memory_predictor(), nullptr);

  expect_run_result_bitwise_eq(got, want);
  EXPECT_EQ(got.oom_kills, 0u);
  EXPECT_TRUE(got.quarantined_tasks.empty());
  // The memory dimension was live: reservations were booked and integrated.
  EXPECT_GT(got.mem_reserved_mb_seconds, 0.0);
  EXPECT_GE(got.mem_reserved_mb_seconds, got.mem_used_mb_seconds);
}

}  // namespace
}  // namespace wire
