// Metric aggregation over repeated runs, matching the paper's reporting:
// resource cost in charging units (Fig. 5, mean ± std), execution time
// normalized to the best setting (Fig. 6), utilization, and the §IV-D
// prediction-error definitions.
#pragma once

#include <string>
#include <vector>

#include "sim/driver.h"
#include "util/stats.h"

namespace wire::metrics {

/// Aggregate of one experiment cell (same workflow, policy, charging unit)
/// across repetitions.
struct CellStats {
  util::RunningStats cost_units;
  util::RunningStats makespan_seconds;
  util::RunningStats utilization;
  util::RunningStats peak_instances;
  util::RunningStats restarts;

  void add(const sim::RunResult& result);
  std::size_t runs() const { return cost_units.count(); }
};

/// Aggregate of one ensemble experiment cell (same arrival stream, arbiter
/// strategy, tenant policy) across the jobs of the stream: per-job slowdown
/// vs the dedicated-site makespan, queue wait, and billed cost — the
/// multi-tenant counterparts of CellStats' per-run metrics.
struct EnsembleCellStats {
  util::RunningStats slowdown;
  util::RunningStats queue_wait_seconds;
  util::RunningStats cost_units;

  void add(double job_slowdown, double job_queue_wait, double job_cost);
  std::size_t jobs() const { return slowdown.count(); }
};

/// §IV-D error definitions: for a task with actual execution time t and
/// estimate t', the true error is t' - t and the relative true error is
/// (t' - t)/t.
double true_error(double estimate, double actual);
double relative_true_error(double estimate, double actual);

/// Normalizes each value to the minimum of the set ("relative execution
/// time ... normalize the times across settings ... to the best
/// performance"). Requires a non-empty, positive-valued input.
std::vector<double> normalize_to_best(const std::vector<double>& values);

}  // namespace wire::metrics
