// Run-artifact exporters: Gantt charts and pool timelines as CSV, for
// plotting outside the library (gnuplot / pandas / spreadsheets).
#pragma once

#include <string>

#include "dag/workflow.h"
#include "sim/driver.h"

namespace wire::metrics {

/// Writes one row per task: id, name, stage, instance, occupancy start,
/// transfer-in end, execution end, completion — the columns of a Gantt
/// chart. Requires a completed run (all task records Completed).
void write_gantt_csv(const std::string& path, const dag::Workflow& workflow,
                     const sim::RunResult& result);

/// Writes the pool timeline (one row per MAPE tick: time, live instances,
/// running tasks, ready tasks). Requires RunOptions::record_pool_timeline to
/// have been set for the run.
void write_timeline_csv(const std::string& path,
                        const sim::RunResult& result);

/// Writes a one-row run summary (policy, makespan, cost, utilization, peak,
/// restarts) with a header; appends if the file already has content when
/// `append` is true.
void write_summary_csv(const std::string& path, const sim::RunResult& result,
                       bool append = false);

/// Writes the run's fault journal (one row per injected fault event:
/// time, kind, subject, attempt, detail — hexfloat times, so two runs of the
/// same seed produce byte-identical files). Valid for fault-free runs too:
/// the file then holds just the header.
void write_fault_trace_csv(const std::string& path,
                           const sim::RunResult& result);

}  // namespace wire::metrics
