#include "metrics/report.h"

#include <algorithm>

#include "util/check.h"

namespace wire::metrics {

void CellStats::add(const sim::RunResult& result) {
  cost_units.add(result.cost_units);
  makespan_seconds.add(result.makespan);
  utilization.add(result.utilization);
  peak_instances.add(static_cast<double>(result.peak_instances));
  restarts.add(static_cast<double>(result.task_restarts));
}

void EnsembleCellStats::add(double job_slowdown, double job_queue_wait,
                            double job_cost) {
  slowdown.add(job_slowdown);
  queue_wait_seconds.add(job_queue_wait);
  cost_units.add(job_cost);
}

double true_error(double estimate, double actual) { return estimate - actual; }

double relative_true_error(double estimate, double actual) {
  WIRE_REQUIRE(actual > 0.0, "relative error needs a positive actual time");
  return (estimate - actual) / actual;
}

std::vector<double> normalize_to_best(const std::vector<double>& values) {
  WIRE_REQUIRE(!values.empty(), "normalize_to_best of empty set");
  const double best = *std::min_element(values.begin(), values.end());
  WIRE_REQUIRE(best > 0.0, "normalize_to_best needs positive values");
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(v / best);
  return out;
}

}  // namespace wire::metrics
