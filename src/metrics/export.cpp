#include "metrics/export.h"

#include <filesystem>
#include <fstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/table.h"

namespace wire::metrics {

void write_gantt_csv(const std::string& path, const dag::Workflow& workflow,
                     const sim::RunResult& result) {
  WIRE_REQUIRE(result.task_records.size() == workflow.task_count(),
               "run result does not match the workflow");
  util::CsvWriter csv(path);
  csv.write_row({"task", "name", "stage", "instance", "occupancy_start",
                 "exec_start", "exec_end", "completed_at", "attempts"});
  for (dag::TaskId t = 0; t < workflow.task_count(); ++t) {
    const sim::TaskRuntime& rec = result.task_records[t];
    WIRE_REQUIRE(rec.phase == sim::TaskPhase::Completed,
                 "gantt export requires a completed run");
    const dag::TaskSpec& spec = workflow.task(t);
    csv.write_row({std::to_string(t), spec.name,
                   workflow.stage(spec.stage).name,
                   std::to_string(rec.instance),
                   util::fmt(rec.occupancy_start, 3),
                   util::fmt(rec.exec_start, 3),
                   util::fmt(rec.exec_start + rec.exec_time, 3),
                   util::fmt(rec.completed_at, 3),
                   std::to_string(rec.attempts)});
  }
}

void write_timeline_csv(const std::string& path,
                        const sim::RunResult& result) {
  WIRE_REQUIRE(!result.pool_timeline.empty(),
               "no pool timeline recorded (set record_pool_timeline)");
  util::CsvWriter csv(path);
  csv.write_row({"time", "live_instances", "running_tasks", "ready_tasks"});
  for (const sim::PoolSample& s : result.pool_timeline) {
    csv.write_row({util::fmt(s.time, 1), std::to_string(s.live_instances),
                   std::to_string(s.running_tasks),
                   std::to_string(s.ready_tasks)});
  }
}

void write_summary_csv(const std::string& path, const sim::RunResult& result,
                       bool append) {
  const bool exists =
      append && std::filesystem::exists(path) &&
      std::filesystem::file_size(path) > 0;
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  WIRE_REQUIRE(static_cast<bool>(out), "cannot open " + path);
  if (!exists) {
    out << "policy,makespan_s,cost_units,utilization,peak_instances,"
           "restarts,control_ticks\n";
  }
  out << result.policy_name << ',' << util::fmt(result.makespan, 3) << ','
      << util::fmt(result.cost_units, 3) << ','
      << util::fmt(result.utilization, 4) << ',' << result.peak_instances
      << ',' << result.task_restarts << ',' << result.control_ticks << '\n';
}

void write_fault_trace_csv(const std::string& path,
                           const sim::RunResult& result) {
  std::ofstream out(path, std::ios::trunc);
  WIRE_REQUIRE(static_cast<bool>(out), "cannot open " + path);
  out << sim::render_fault_trace(result.fault_trace);
}

}  // namespace wire::metrics
