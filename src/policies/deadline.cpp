#include "policies/deadline.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace wire::policies {

DeadlinePolicy::DeadlinePolicy(
    double deadline_seconds,
    std::shared_ptr<const std::vector<predict::HistoryRecord>> history)
    : deadline_(deadline_seconds), history_(std::move(history)) {
  WIRE_REQUIRE(deadline_ > 0.0, "deadline must be positive");
}

std::string DeadlinePolicy::name() const {
  return std::string(history_ ? "deadline-history-" : "deadline-") +
         std::to_string(static_cast<long>(deadline_));
}

void DeadlinePolicy::on_run_start(const dag::Workflow& workflow,
                                  const sim::CloudConfig& config) {
  workflow_ = &workflow;
  config_ = config;
  if (history_) {
    predictor_ = std::make_unique<predict::HistoryEstimator>(workflow,
                                                             *history_);
  } else {
    predictor_ = std::make_unique<predict::TaskPredictor>(workflow);
  }
}

sim::PoolCommand DeadlinePolicy::plan(const sim::MonitorSnapshot& snapshot) {
  WIRE_REQUIRE(workflow_ != nullptr, "plan before on_run_start");
  predictor_->observe(snapshot);

  // Predicted remaining work (slot-seconds) across all incomplete tasks —
  // running tasks contribute their conservative minimum remainder, unstarted
  // ones their full estimate.
  double remaining_work = 0.0;
  std::uint32_t incomplete = 0;
  for (dag::TaskId t = 0; t < workflow_->task_count(); ++t) {
    if (snapshot.tasks[t].phase == sim::TaskPhase::Completed) continue;
    ++incomplete;
    remaining_work += predictor_->predict_remaining_occupancy(t, snapshot);
  }

  sim::PoolCommand cmd;
  std::uint32_t m = 0;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (!inst.draining) ++m;
  }
  if (incomplete == 0) return cmd;

  // Budget: capacity usable before the deadline. New instances only start
  // contributing after the provisioning lag, so the effective window for
  // *additional* capacity is one lag shorter. Conservative minimum
  // predictions under-estimate the work, so a 25% safety margin is applied.
  const double time_left = deadline_ - snapshot.now;
  const double window = std::max(config_.lag_seconds, time_left) -
                        config_.lag_seconds;
  // More instances than the incomplete tasks can occupy never help.
  const std::uint32_t useful_cap =
      (incomplete + config_.slots_per_instance - 1) /
      config_.slots_per_instance;
  std::uint32_t p;
  if (window <= 0.0) {
    // Past the point of no return: all hands on deck.
    p = config_.max_instances > 0 ? config_.max_instances : useful_cap;
  } else {
    const double needed_slots = 1.25 * remaining_work / window;
    p = static_cast<std::uint32_t>(std::ceil(
        needed_slots / config_.slots_per_instance));
    p = std::max(p, 1u);
  }
  p = std::min(p, useful_cap);
  if (config_.max_instances > 0) p = std::min(p, config_.max_instances);

  if (p > m) {
    cmd.grow = p - m;
    return cmd;
  }
  if (p >= m) return cmd;

  // Ahead of schedule: release under the steering discipline (charge
  // boundary within the next interval, cheap restart).
  struct Candidate {
    sim::InstanceId id;
    double sunk;
  };
  std::vector<Candidate> candidates;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (inst.provisioning || inst.draining) continue;
    if (inst.time_to_next_charge > config_.lag_seconds) continue;
    double sunk = 0.0;
    if (config_.checkpoint.enabled()) {
      // Scheduled checkpointing: charge each task's actual unsalvaged
      // progress past its last committed checkpoint, not a blanket discount.
      for (dag::TaskId task : inst.running_tasks) {
        const sim::TaskObservation& obs = snapshot.tasks[task];
        sunk = std::max(sunk,
                        std::max(0.0, obs.elapsed + inst.time_to_next_charge -
                                          obs.checkpointed_exec));
      }
    } else {
      for (dag::TaskId task : inst.running_tasks) {
        sunk = std::max(sunk, snapshot.tasks[task].elapsed +
                                  inst.time_to_next_charge);
      }
      sunk *= 1.0 - config_.checkpoint_fraction;
    }
    if (sunk > config_.restart_cost_fraction * config_.charging_unit_seconds) {
      continue;
    }
    candidates.push_back(Candidate{inst.id, sunk});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.sunk != b.sunk) return a.sunk < b.sunk;
              return a.id < b.id;
            });
  std::uint32_t remaining = m;
  for (const Candidate& c : candidates) {
    if (remaining == p) break;
    cmd.releases.push_back(sim::Release{c.id, /*at_charge_boundary=*/true});
    --remaining;
  }
  return cmd;
}

}  // namespace wire::policies
