// Deadline-aware autoscaling (extension beyond the paper).
//
// Jockey (§II, [4]) targets guaranteed job latency; WIRE targets efficiency.
// This policy composes WIRE's own building blocks — the online TaskPredictor
// and the lookahead load projection — into a latency-SLO controller: size
// the pool so the predicted remaining work finishes by the deadline, and
// release (under the steering discipline) when ahead of schedule. The
// deadline-sweep bench measures the cost of tightening the SLO.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "predict/history.h"
#include "predict/task_predictor.h"
#include "sim/scaling_policy.h"

namespace wire::policies {

class DeadlinePolicy final : public sim::ScalingPolicy {
 public:
  /// Targets completion within `deadline_seconds` of the run start. With a
  /// `history` archive (a prior run of the same workflow) the remaining-work
  /// estimate covers unstarted stages too — the Jockey recipe; without it,
  /// estimates are online-only (§III-C policies), which systematically
  /// under-counts deep DAGs whose later stages have produced no data yet
  /// (policy 1 predicts zero).
  explicit DeadlinePolicy(
      double deadline_seconds,
      std::shared_ptr<const std::vector<predict::HistoryRecord>> history =
          nullptr);

  std::string name() const override;
  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override;
  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override;

  double deadline_seconds() const { return deadline_; }

 private:
  double deadline_;
  std::shared_ptr<const std::vector<predict::HistoryRecord>> history_;
  const dag::Workflow* workflow_ = nullptr;
  sim::CloudConfig config_;
  std::unique_ptr<predict::Estimator> predictor_;
};

}  // namespace wire::policies
