#include "policies/baselines.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace wire::policies {

namespace {

/// Active load: tasks occupying slots plus tasks waiting in the ready queue.
/// Every Running task occupies a slot on exactly one live instance, so the
/// per-instance rosters sum to the Running count — O(live instances) instead
/// of a full O(total tasks) phase scan.
std::uint32_t active_tasks(const sim::MonitorSnapshot& snapshot) {
  std::uint32_t running = 0;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    running += static_cast<std::uint32_t>(inst.running_tasks.size());
  }
  return running + static_cast<std::uint32_t>(snapshot.ready_queue.size());
}

/// Clamps a planned pool size to the externally imposed ceiling, if any.
/// pool_cap == 0 is a genuine zero share (all growth blocked), distinct from
/// kNoInstanceCap (no ceiling). A zero share blocks growth but must not
/// strand the job: while work remains, one already-live instance is kept
/// rather than released — a blocked tenant can never regrow, so giving up
/// the last instance would deadlock the run. (Arbiters floor shares at the
/// live count, so this only arises under manually imposed caps.)
std::uint32_t clamp_to_cap(std::uint32_t planned,
                           const sim::MonitorSnapshot& snapshot) {
  if (snapshot.pool_cap == sim::kNoInstanceCap) return planned;
  std::uint32_t target = std::min(planned, snapshot.pool_cap);
  if (target == 0 && snapshot.incomplete_tasks > 0 &&
      !snapshot.instances.empty()) {
    target = 1;
  }
  return target;
}

/// Reactive target pool size for a given load.
std::uint32_t reactive_target(const sim::MonitorSnapshot& snapshot,
                              const sim::CloudConfig& config) {
  const std::uint32_t active = active_tasks(snapshot);
  if (active == 0) {
    return snapshot.incomplete_tasks > 0 ? 1u : 0u;
  }
  return (active + config.slots_per_instance - 1) / config.slots_per_instance;
}

/// Stable capacity at the next interval: live instances that are neither
/// draining nor under a revocation notice (the provider reclaims announced
/// instances on its own schedule, so they must not be counted).
std::uint32_t live_non_draining(const sim::MonitorSnapshot& snapshot) {
  std::uint32_t m = 0;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (!inst.draining && !inst.revoking) ++m;
  }
  return m;
}

/// Maximum observed elapsed occupancy among an instance's running tasks —
/// the monitorable stand-in for the restart cost c_j.
double observed_sunk_cost(const sim::InstanceObservation& inst,
                          const sim::MonitorSnapshot& snapshot) {
  double cost = 0.0;
  for (dag::TaskId task : inst.running_tasks) {
    cost = std::max(cost, snapshot.tasks[task].elapsed);
  }
  return cost;
}

/// Restart cost at risk if the instance is released, under the run's
/// checkpointing model. Scheduled checkpointing charges each task's actual
/// unsalvaged progress (elapsed beyond the last committed checkpoint); the
/// legacy fractional model discounts the blanket sunk cost instead.
double sunk_cost_at_risk(const sim::InstanceObservation& inst,
                         const sim::MonitorSnapshot& snapshot,
                         const sim::CloudConfig& config) {
  if (config.checkpoint.enabled()) {
    double cost = 0.0;
    for (dag::TaskId task : inst.running_tasks) {
      const sim::TaskObservation& obs = snapshot.tasks[task];
      cost = std::max(cost,
                      std::max(0.0, obs.elapsed - obs.checkpointed_exec));
    }
    return cost;
  }
  return observed_sunk_cost(inst, snapshot) *
         (1.0 - config.checkpoint_fraction);
}

}  // namespace

StaticPolicy::StaticPolicy(std::uint32_t size, std::string label)
    : size_(size), label_(std::move(label)) {
  WIRE_REQUIRE(size_ >= 1, "static pool needs at least one instance");
  if (label_.empty()) {
    label_ = "static-" + std::to_string(size_);
  }
}

void StaticPolicy::on_run_start(const dag::Workflow& /*workflow*/,
                                const sim::CloudConfig& /*config*/) {}

sim::PoolCommand StaticPolicy::plan(const sim::MonitorSnapshot& snapshot) {
  sim::PoolCommand cmd;
  cmd.desired_pool = size_;
  const std::uint32_t target = clamp_to_cap(size_, snapshot);
  const std::uint32_t live =
      static_cast<std::uint32_t>(snapshot.instances.size());
  if (live < target) cmd.grow = target - live;
  return cmd;
}

void PureReactivePolicy::on_run_start(const dag::Workflow& /*workflow*/,
                                      const sim::CloudConfig& config) {
  config_ = config;
}

sim::PoolCommand PureReactivePolicy::plan(
    const sim::MonitorSnapshot& snapshot) {
  sim::PoolCommand cmd;
  cmd.desired_pool = reactive_target(snapshot, config_);
  const std::uint32_t target = clamp_to_cap(cmd.desired_pool, snapshot);
  const std::uint32_t m = live_non_draining(snapshot);
  if (target > m) {
    cmd.grow = target - m;
    return cmd;
  }
  if (target == m) return cmd;

  // Shrink immediately, emptiest instances first (fewest running tasks), so
  // the restart churn is as small as a purely reactive policy can manage.
  std::vector<const sim::InstanceObservation*> ready;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    // Revoking instances are already written off (excluded from m); the
    // provider reclaims them, so releasing one would double-count the loss.
    if (!inst.provisioning && !inst.draining && !inst.revoking) {
      ready.push_back(&inst);
    }
  }
  std::sort(ready.begin(), ready.end(),
            [](const sim::InstanceObservation* a,
               const sim::InstanceObservation* b) {
              if (a->running_tasks.size() != b->running_tasks.size()) {
                return a->running_tasks.size() < b->running_tasks.size();
              }
              return a->id < b->id;
            });
  std::uint32_t remaining = m;
  for (const sim::InstanceObservation* inst : ready) {
    if (remaining == target) break;
    cmd.releases.push_back(
        sim::Release{inst->id, /*at_charge_boundary=*/false});
    --remaining;
  }
  return cmd;
}

void ReactiveConservingPolicy::on_run_start(const dag::Workflow& /*workflow*/,
                                            const sim::CloudConfig& config) {
  config_ = config;
}

sim::PoolCommand ReactiveConservingPolicy::plan(
    const sim::MonitorSnapshot& snapshot) {
  sim::PoolCommand cmd;
  cmd.desired_pool = reactive_target(snapshot, config_);
  const std::uint32_t target = clamp_to_cap(cmd.desired_pool, snapshot);
  const std::uint32_t m = live_non_draining(snapshot);
  if (target > m) {
    cmd.grow = target - m;
    return cmd;
  }
  if (target >= m) return cmd;

  // Steering-policy release discipline: drain at the charge boundary, only
  // when the unit expires before the next interval and the observed sunk
  // cost is under the threshold.
  struct Candidate {
    sim::InstanceId id;
    double sunk;
  };
  std::vector<Candidate> candidates;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (inst.provisioning || inst.draining || inst.revoking) continue;
    if (inst.time_to_next_charge > config_.lag_seconds) continue;
    const double sunk = sunk_cost_at_risk(inst, snapshot, config_);
    if (sunk >
        config_.restart_cost_fraction * config_.charging_unit_seconds) {
      continue;
    }
    candidates.push_back(Candidate{inst.id, sunk});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.sunk != b.sunk) return a.sunk < b.sunk;
              return a.id < b.id;
            });
  std::uint32_t remaining = m;
  for (const Candidate& c : candidates) {
    if (remaining == target) break;
    cmd.releases.push_back(sim::Release{c.id, /*at_charge_boundary=*/true});
    --remaining;
  }
  return cmd;
}

}  // namespace wire::policies
