#include "policies/budget.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/steering.h"
#include "util/check.h"

namespace wire::policies {
namespace {

/// Counterpart of sim::cloud's kBillingEps, on the *started* side: a unit
/// counts as committed the instant its window opens (cloud.cpp forgives the
/// first epsilon when an instance stops exactly on a boundary, but a policy
/// planning at that instant can no longer drain before the new unit runs —
/// the earliest drain is the *next* boundary). Rounding the corner up keeps
/// the projection conservative: the mirror may briefly over-count a row by
/// one unit at an exact boundary, never under-count it.
constexpr double kStartedEps = 1e-6;

/// Units a ready row has started after `elapsed` seconds alive (>= 1: the
/// first unit starts at boot).
double units_started(double elapsed, double charging_unit) {
  return std::max(1.0, std::ceil((elapsed + kStartedEps) / charging_unit));
}

std::string mode_tag(BudgetMode mode) {
  switch (mode) {
    case BudgetMode::kHardCap:
      return "hard";
    case BudgetMode::kLinearTaper:
      return "taper";
    case BudgetMode::kDeadlineAware:
      return "deadline";
  }
  return "?";
}

}  // namespace

BudgetPolicy::BudgetPolicy(std::unique_ptr<sim::ScalingPolicy> inner,
                           const BudgetOptions& options)
    : options_(options), inner_(std::move(inner)) {
  WIRE_REQUIRE(inner_ != nullptr, "budget policy needs a wrapped policy");
  WIRE_REQUIRE(options_.budget_units >= 0.0, "budget must be non-negative");
  WIRE_REQUIRE(options_.budget_units == 0.0 ||
                   options_.mode != BudgetMode::kDeadlineAware ||
                   options_.deadline_seconds > 0.0,
               "deadline-aware budgeting needs a positive deadline");
}

std::string BudgetPolicy::name() const {
  // Disabled is a pure passthrough, name included: reports from budget-off
  // runs must be byte-identical to unwrapped ones.
  if (!enabled()) return inner_->name();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "+budget-%s-%g", mode_tag(options_.mode).c_str(),
                options_.budget_units);
  return inner_->name() + buf;
}

void BudgetPolicy::on_run_start(const dag::Workflow& workflow,
                                const sim::CloudConfig& config) {
  charging_unit_ = config.charging_unit_seconds;
  lag_seconds_ = config.lag_seconds;
  live_committed_.clear();
  retired_units_ = 0.0;
  live_units_ = 0.0;
  inner_->on_run_start(workflow, config);
}

double BudgetPolicy::remaining_units() const {
  return std::max(0.0, options_.budget_units - committed_units());
}

void BudgetPolicy::refresh_spend(const sim::MonitorSnapshot& snapshot) {
  // One sweep: bump every live ready row to its current started-unit count
  // (monotone — a dropout tick's stale snapshot can only repeat old values),
  // then retire map entries whose instance vanished since the last tick.
  // Provisioning rows are not committed yet (a cancelled or boot-failed
  // instance bills zero); their obligation is charged by the burn projection
  // in plan() instead.
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (inst.provisioning) continue;
    const double units =
        units_started(snapshot.now - inst.ready_at, charging_unit_);
    auto [it, inserted] = live_committed_.try_emplace(inst.id, units);
    if (!inserted) it->second = std::max(it->second, units);
  }
  for (auto it = live_committed_.begin(); it != live_committed_.end();) {
    bool alive = false;
    for (const sim::InstanceObservation& inst : snapshot.instances) {
      if (inst.id == it->first) {
        alive = !inst.provisioning;
        break;
      }
    }
    if (alive) {
      ++it;
    } else {
      retired_units_ += it->second;
      it = live_committed_.erase(it);
    }
  }
  live_units_ = 0.0;
  for (const auto& [id, units] : live_committed_) live_units_ += units;
}

sim::PoolCommand BudgetPolicy::plan(const sim::MonitorSnapshot& snapshot) {
  sim::PoolCommand cmd = inner_->plan(snapshot);
  if (!enabled()) return cmd;

  refresh_spend(snapshot);
  const double u = charging_unit_;
  // The projection horizon is one control interval: every unit that can
  // start before the next plan() gets to react must be paid for now.
  const double h = lag_seconds_;
  const double remaining = options_.budget_units - committed_units();

  // ---- Classify the command's kept pool and its projected burn. ----------
  // Burn = charging units newly starting in (now, now + h] if the command
  // stands, via the same units_starting_within arithmetic the controller's
  // burn projection reports (core::planned_burn_units). Boots in flight and
  // grow requests carry committed-first-unit semantics: their first unit is
  // owed whenever they land, horizon or not.
  struct Kept {
    sim::InstanceId id = sim::kInvalidInstance;
    double burn = 0.0;
    /// Sort key: time to the row's next unit start (boots: time to ready).
    double key = 0.0;
  };
  std::vector<Kept> ready_kept;    // ready, not draining/revoking/released
  std::vector<Kept> boots_kept;    // provisioning, not released
  std::vector<Kept> cancels_kept;  // draining rows the inner cmd reclaims
  auto released = [&cmd](sim::InstanceId id) {
    for (const sim::Release& r : cmd.releases) {
      if (r.instance == id) return true;
    }
    return false;
  };
  auto cancelled = [&cmd](sim::InstanceId id) {
    return std::find(cmd.cancel_drains.begin(), cmd.cancel_drains.end(), id) !=
           cmd.cancel_drains.end();
  };
  double burn = 0.0;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (released(inst.id)) continue;  // drains at boundary / dies now: no new units
    if (inst.provisioning) {
      const double delta = std::max(0.0, inst.ready_at - snapshot.now);
      const double b =
          std::max(1.0, core::units_starting_within(delta, h, u));
      boots_kept.push_back(Kept{inst.id, b, delta});
      burn += b;
      continue;
    }
    if (inst.draining) {
      if (!cancelled(inst.id)) continue;  // expires at its boundary: no burn
      const double b =
          core::units_starting_within(inst.time_to_next_charge, h, u);
      cancels_kept.push_back(Kept{inst.id, b, inst.time_to_next_charge});
      burn += b;
      continue;
    }
    // Revoking rows are kept conservatively: the provider may bill their
    // recharges until the revocation lands, and releasing them saves
    // nothing the provider was not about to take anyway.
    const double b =
        core::units_starting_within(inst.time_to_next_charge, h, u);
    ready_kept.push_back(Kept{inst.id, b, inst.time_to_next_charge});
    burn += b;
  }
  const double grow_burn =
      std::max(1.0, core::units_starting_within(lag_seconds_, h, u));
  const std::uint32_t inner_grow = cmd.grow;
  std::uint32_t grow = inner_grow;
  burn += static_cast<double>(grow) * grow_burn;

  auto pool_target = [&]() {
    return static_cast<std::uint32_t>(ready_kept.size() + boots_kept.size() +
                                      cancels_kept.size()) +
           grow;
  };
  const std::uint32_t inner_target = pool_target();
  const std::uint32_t desired =
      cmd.desired_pool > 0 ? cmd.desired_pool : std::max(inner_target, 1u);

  // ---- Mode shaping: a soft pool cap ahead of the hard projection. -------
  std::uint32_t cap = sim::kNoInstanceCap;
  switch (options_.mode) {
    case BudgetMode::kHardCap:
      break;
    case BudgetMode::kLinearTaper: {
      const double frac = std::clamp(
          remaining / options_.budget_units, 0.0, 1.0);
      cap = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 std::ceil(static_cast<double>(desired) * frac)));
      break;
    }
    case BudgetMode::kDeadlineAware: {
      // Spend the remaining budget at the rate the deadline slack allows:
      // a pool of P burns P units every u seconds, so P = remaining * u /
      // time_left lands at the deadline as the budget runs out. Inside the
      // last interval the deadline no longer constrains (all-out; the hard
      // projection still binds).
      const double time_left = options_.deadline_seconds - snapshot.now;
      if (time_left > h) {
        cap = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::floor(std::max(0.0, remaining) * u / time_left)));
      }
      break;
    }
  }

  // ---- Tighten toward the caps, cheapest capacity first. -----------------
  // Shrink order: give back reclaimed drains (they just keep draining), cut
  // grow requests, cancel the boots that arrive last, then drain the ready
  // rows whose unit recharges soonest (largest near-term saving) — the same
  // order core::planned_burn_units projects, so enforcement matches the
  // reported projection. Ties break on id: deterministic replay is part of
  // the policy contract.
  std::sort(cancels_kept.begin(), cancels_kept.end(),
            [](const Kept& a, const Kept& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.id < b.id;
            });
  std::sort(boots_kept.begin(), boots_kept.end(),
            [](const Kept& a, const Kept& b) {
              if (a.key != b.key) return a.key > b.key;
              return a.id > b.id;
            });
  std::sort(ready_kept.begin(), ready_kept.end(),
            [](const Kept& a, const Kept& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.id < b.id;
            });
  std::size_t next_cancel = 0, next_boot = 0, next_ready = 0;
  std::vector<sim::InstanceId> dropped_cancels;
  auto tighten_one = [&]() -> bool {
    if (next_cancel < cancels_kept.size()) {
      burn -= cancels_kept[next_cancel].burn;
      dropped_cancels.push_back(cancels_kept[next_cancel].id);
      ++next_cancel;
      return true;
    }
    if (grow > 0) {
      --grow;
      burn -= grow_burn;
      return true;
    }
    if (next_boot < boots_kept.size()) {
      burn -= boots_kept[next_boot].burn;
      // An immediate release of a provisioning instance cancels the boot:
      // it never becomes ready and bills nothing.
      cmd.releases.push_back(
          sim::Release{boots_kept[next_boot].id, /*at_charge_boundary=*/false});
      ++next_boot;
      return true;
    }
    if (next_ready < ready_kept.size()) {
      burn -= ready_kept[next_ready].burn;
      cmd.releases.push_back(
          sim::Release{ready_kept[next_ready].id, /*at_charge_boundary=*/true});
      ++next_ready;
      return true;
    }
    return false;
  };
  auto shrunk_target = [&]() {
    const std::uint32_t dropped = static_cast<std::uint32_t>(
        next_cancel + next_boot + next_ready);
    const std::uint32_t base = inner_target - inner_grow + grow;
    return base > dropped ? base - dropped : 0u;
  };
  if (cap != sim::kNoInstanceCap) {
    while (shrunk_target() > cap && tighten_one()) {
    }
  }
  // The hard pass: never let the projected spend pass the budget while more
  // than the minimum-progress pool remains. At the floor (one instance) the
  // job keeps inching forward even exhausted — the overrun is the floor's
  // burn, by design, instead of a deadlock.
  while (committed_units() + burn > options_.budget_units &&
         shrunk_target() > 1 && tighten_one()) {
  }
  if (shrunk_target() == 0 && snapshot.incomplete_tasks > 0) {
    // Minimum-progress floor from nothing: everything died (or the inner
    // policy went idle) with work remaining — boot one instance even if the
    // budget cannot pay for it. Unreachable through tightening (both loops
    // stop at one kept instance); only an inner command with no pool at all
    // lands here.
    grow = 1;
  }
  cmd.grow = grow;
  if (!dropped_cancels.empty()) {
    cmd.cancel_drains.erase(
        std::remove_if(cmd.cancel_drains.begin(), cmd.cancel_drains.end(),
                       [&](sim::InstanceId id) {
                         return std::find(dropped_cancels.begin(),
                                          dropped_cancels.end(),
                                          id) != dropped_cancels.end();
                       }),
        cmd.cancel_drains.end());
  }

  // The demand signal under budget: bid what the throttled command actually
  // steers toward, never more than the wrapped policy wanted — an arbiter
  // granting capacity this job cannot pay for starves everyone else.
  cmd.desired_pool = std::max(1u, std::min(desired, std::max(shrunk_target(),
                                                             grow)));
  cmd.remaining_budget_units = std::max(0.0, remaining);
  return cmd;
}

}  // namespace wire::policies
