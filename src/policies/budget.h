// Budget-constrained autoscaling (Ilyushkin et al.: performance-feedback
// autoscaling with budget constraints), as a wrapper around any
// sim::ScalingPolicy.
//
// BudgetPolicy tracks spend against a per-job budget using the engine's own
// charging-unit accounting, mirrored from the monitoring surface alone (no
// back-channel into sim::CloudPool): a ready instance has committed
// ceil(elapsed / u) units, a vanished one retires its last known count. The
// enforcement signal is *projected* spend — committed units plus the burn the
// wrapped policy's command would start over the next control interval
// (core::planned_burn_units arithmetic) — so budgets bind before the money
// is gone, not after. Three throttle modes shape the wrapped policy's pool
// before the hard affordability pass:
//
//   kHardCap       — no shaping; only the projection ceiling binds (never
//                    start a unit you cannot pay for).
//   kLinearTaper   — the desired pool is scaled by remaining/budget, so the
//                    job decelerates smoothly instead of running full tilt
//                    into the wall.
//   kDeadlineAware — the pool is capped at the spend *rate* the deadline
//                    slack allows (remaining * u / time_left): the job
//                    arrives at the deadline exactly as the budget runs out,
//                    the Pareto-optimal schedule when both constraints bind.
//
// When the budget is exhausted the policy degrades to the minimum-progress
// pool — one instance while work remains — rather than deadlocking; the
// overrun is the floor's burn and nothing else. `budget_units == 0` is the
// disabled sentinel: name() and plan() are pure passthrough and every
// baseline stays byte-identical (the same zero-sentinel discipline as
// FaultConfig / MemoryConfig / CheckpointConfig).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "sim/scaling_policy.h"

namespace wire::policies {

enum class BudgetMode {
  kHardCap,
  kLinearTaper,
  kDeadlineAware,
};

struct BudgetOptions {
  /// Total budget in charging units; 0 disables the wrapper entirely
  /// (pure passthrough, bit-identical to the unwrapped policy).
  double budget_units = 0.0;
  BudgetMode mode = BudgetMode::kHardCap;
  /// Job-local deadline (seconds); required > 0 for kDeadlineAware.
  double deadline_seconds = 0.0;
};

class BudgetPolicy final : public sim::ScalingPolicy {
 public:
  /// Takes ownership of the wrapped policy. Requires inner != nullptr,
  /// budget_units >= 0, and a positive deadline when an enabled budget uses
  /// kDeadlineAware.
  BudgetPolicy(std::unique_ptr<sim::ScalingPolicy> inner,
               const BudgetOptions& options);

  std::string name() const override;
  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override;
  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override;

  bool enabled() const { return options_.budget_units > 0.0; }
  /// Charging units committed so far (live rows' started units + retired
  /// instances' final counts), refreshed at the last plan() call.
  double committed_units() const { return retired_units_ + live_units_; }
  double remaining_units() const;
  /// True once the committed spend has consumed the whole budget (the policy
  /// is running on the minimum-progress floor).
  bool exhausted() const { return enabled() && remaining_units() <= 0.0; }
  const sim::ScalingPolicy& inner() const { return *inner_; }

 private:
  /// Mirrors the cloud's billing from the snapshot: refreshes per-row
  /// started-unit counts and retires rows that vanished since last tick.
  void refresh_spend(const sim::MonitorSnapshot& snapshot);

  BudgetOptions options_;
  std::unique_ptr<sim::ScalingPolicy> inner_;
  double charging_unit_ = 0.0;
  double lag_seconds_ = 0.0;
  /// Started units per live ready instance (monotone per id; ordered map so
  /// retirement sweeps are deterministic).
  std::map<sim::InstanceId, double> live_committed_;
  double retired_units_ = 0.0;
  double live_units_ = 0.0;
};

}  // namespace wire::policies
