// Hazard-driven checkpoint-interval scheduling (extension beyond the paper:
// the SMURFS InterferingCheckpoints line of work).
//
// The scheduler owns an online hazard estimator fed by the observed fault
// stream — crashes per ready instance-hour, the same quantity
// FaultConfig::crash_rate_per_hour parameterizes, so on a long run the
// estimate converges to the configured rate (pinned by
// tests/test_sim_checkpoint_sched.cpp). From the estimate it picks
// Young/Daly-style intervals: T = sqrt(2 * write_cost * MTBF). A zero
// estimate (no prior, no crash observed yet) pushes the interval to
// infinity, so a reliable cloud never checkpoints; the Static policy is the
// ablation against which the hazard-driven interval must win on total waste
// (bench_checkpoint).
//
// Everything here is arithmetic over observed events — no RNG draws — which
// is what makes scheduled-checkpoint runs bit-replayable from a recorded
// FaultTrace.
// Header-only: the ground-truth engine (wire_sim) drives the scheduler for
// its checkpoint events while wire_policies links against wire_sim — an
// out-of-line definition here would cycle the two archives.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/config.h"

namespace wire::policies {

/// Online crash-hazard estimate: (prior mass + observed crashes) over
/// (prior weight + observed ready instance-hours).
class HazardEstimator {
 public:
  HazardEstimator(double prior_per_hour, double prior_weight_hours)
      : prior_per_hour_(prior_per_hour),
        prior_weight_hours_(prior_weight_hours) {}

  /// One observed instance crash/revocation.
  void record_crash() { ++crashes_; }
  /// Accumulates observed Ready instance time (the denominator's exposure).
  void add_exposure_hours(double hours) { exposure_hours_ += hours; }

  std::uint64_t crashes() const { return crashes_; }
  double exposure_hours() const { return exposure_hours_; }

  /// Crashes per instance-hour. Zero until either the prior or an observed
  /// crash contributes mass. With a zero-weight prior, crashes observed
  /// before any exposure accrues (instances killed while still
  /// provisioning, or a crash on the first control tick) must still yield a
  /// finite hazard: returning 0 here would declare the cloud reliable at
  /// the exact moment it demonstrated otherwise, and Young/Daly would pick
  /// an infinite checkpoint interval. The exposure denominator is floored
  /// at one instance-second.
  double hazard_per_hour() const {
    const double weight = prior_weight_hours_ + exposure_hours_;
    if (weight <= 0.0) {
      if (crashes_ == 0) return 0.0;
      return static_cast<double>(crashes_) / kMinExposureHours;
    }
    return (prior_per_hour_ * prior_weight_hours_ +
            static_cast<double>(crashes_)) /
           weight;
  }

 private:
  /// Exposure floor for the crash-before-exposure estimate: one
  /// instance-second, in hours.
  static constexpr double kMinExposureHours = 1.0 / 3600.0;

  double prior_per_hour_;
  double prior_weight_hours_;
  double exposure_hours_ = 0.0;
  std::uint64_t crashes_ = 0;
};

/// Picks the interval between a task's checkpoint writes.
class CheckpointScheduler {
 public:
  explicit CheckpointScheduler(const sim::CheckpointConfig& config)
      : config_(config),
        hazard_(config.hazard_prior_per_hour,
                config.hazard_prior_weight_hours) {}

  HazardEstimator& hazard() { return hazard_; }
  const HazardEstimator& hazard() const { return hazard_; }

  /// Seconds of execution between checkpoints for a task whose write costs
  /// `write_cost_seconds` at full channel bandwidth. Young/Daly uses the
  /// live hazard estimate and returns +infinity at zero hazard (never
  /// checkpoint on a cloud believed reliable); Static returns the fixed
  /// ablation interval. Both respect the configured floor.
  double interval_seconds(double write_cost_seconds) const {
    double interval = 0.0;
    switch (config_.interval_policy) {
      case sim::CheckpointConfig::IntervalPolicy::YoungDaly: {
        const double hazard_per_hour = hazard_.hazard_per_hour();
        if (hazard_per_hour <= 0.0 || write_cost_seconds <= 0.0) {
          return std::numeric_limits<double>::infinity();
        }
        // T = sqrt(2 * delta * MTBF): delta = the write cost, MTBF seconds.
        const double mtbf_seconds = 3600.0 / hazard_per_hour;
        interval = std::sqrt(2.0 * write_cost_seconds * mtbf_seconds);
        break;
      }
      case sim::CheckpointConfig::IntervalPolicy::Static:
        interval = config_.static_interval_seconds;
        break;
    }
    return std::max(interval, config_.min_interval_seconds);
  }

 private:
  sim::CheckpointConfig config_;
  HazardEstimator hazard_;
};

}  // namespace wire::policies
