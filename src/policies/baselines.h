// Baseline scaling policies from the paper's evaluation (§IV-C):
//
//   full-site / static      — a fixed pool (12 instances in the paper's
//                             "full-site runs"; P = 1 gives the sequential
//                             cost-optimal bound used by Figs. 2–3).
//   pure-reactive           — the pool tracks the number of active tasks
//                             every interval, growing and shrinking
//                             immediately ("capacities of these settings
//                             equal to the loads of active tasks").
//   reactive-conserving     — load is estimated reactively from the
//                             idle/running task count, but releases follow
//                             the resource-steering rules: only at a charge
//                             boundary that falls before the next interval,
//                             and only when the observed sunk cost of the
//                             instance's tasks is under the threshold.
#pragma once

#include <cstdint>
#include <string>

#include "sim/scaling_policy.h"

namespace wire::policies {

/// Fixed-size pool. Pair with RunOptions::initial_instances == size; the
/// policy also tops the pool back up if it ever falls below the target (it
/// never releases).
class StaticPolicy final : public sim::ScalingPolicy {
 public:
  /// `label` defaults to "static-<size>"; the paper's 12-instance setting is
  /// conventionally labelled "full-site".
  explicit StaticPolicy(std::uint32_t size, std::string label = {});

  std::string name() const override { return label_; }
  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override;
  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override;

  std::uint32_t size() const { return size_; }

 private:
  std::uint32_t size_;
  std::string label_;
};

/// Pool size = ceil(active tasks / slots per instance), applied immediately
/// in both directions. Victims are the emptiest instances; releases are
/// immediate (forfeiting the rest of the paid unit) — that is the point of
/// comparison with the conserving policies.
class PureReactivePolicy final : public sim::ScalingPolicy {
 public:
  std::string name() const override { return "pure-reactive"; }
  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override;
  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override;

 private:
  sim::CloudConfig config_;
};

/// Reactive load estimate + steering-policy release discipline.
class ReactiveConservingPolicy final : public sim::ScalingPolicy {
 public:
  std::string name() const override { return "reactive-conserving"; }
  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override;
  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override;

 private:
  sim::CloudConfig config_;
};

}  // namespace wire::policies
