#include "ensemble/arbiter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace wire::ensemble {

const char* strategy_name(ArbiterStrategy strategy) {
  switch (strategy) {
    case ArbiterStrategy::FifoExclusive: return "fifo-exclusive";
    case ArbiterStrategy::StaticFairShare: return "fair-share";
    case ArbiterStrategy::DemandWeighted: return "demand-weighted";
    case ArbiterStrategy::BudgetWeighted: return "budget-weighted";
  }
  return "unknown";
}

std::vector<ArbiterStrategy> all_strategies() {
  return {ArbiterStrategy::FifoExclusive, ArbiterStrategy::StaticFairShare,
          ArbiterStrategy::DemandWeighted, ArbiterStrategy::BudgetWeighted};
}

namespace {

/// Tenant indices in FIFO order: by arrival time, then job id.
std::vector<std::size_t> fifo_order(const std::vector<TenantDemand>& tenants) {
  std::vector<std::size_t> order(tenants.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tenants[a].arrival_seconds != tenants[b].arrival_seconds) {
      return tenants[a].arrival_seconds < tenants[b].arrival_seconds;
    }
    return tenants[a].job < tenants[b].job;
  });
  return order;
}

void fifo_exclusive(std::uint32_t spare,
                    const std::vector<std::size_t>& order,
                    std::vector<std::uint32_t>& shares) {
  // The whole remaining site backs the oldest job; everyone else is frozen
  // at their floor (zero for jobs that were never admitted).
  shares[order.front()] += spare;
}

void static_fair_share(std::uint32_t site_cap, std::uint32_t spare,
                       const std::vector<std::size_t>& order,
                       std::vector<std::uint32_t>& shares) {
  // Equal entitlements cap/n, the integer remainder going to the earliest
  // arrivals. Tenants whose floor already exceeds their entitlement keep the
  // floor (no preemption); the others are lifted toward the entitlement one
  // instance at a time in arrival order, which keeps the split exact when
  // the spare runs out mid-pass.
  const std::uint32_t n = static_cast<std::uint32_t>(order.size());
  std::vector<std::uint32_t> entitlement(shares.size(), site_cap / n);
  for (std::uint32_t k = 0; k < site_cap % n; ++k) {
    ++entitlement[order[k]];
  }
  bool lifted = true;
  while (spare > 0 && lifted) {
    lifted = false;
    for (std::size_t i : order) {
      if (spare == 0) break;
      if (shares[i] < entitlement[i]) {
        ++shares[i];
        --spare;
        lifted = true;
      }
    }
  }
  // Entitlements sum to the cap, so spare survives the lifting only when
  // some floors sit above their entitlement; hand it out round-robin.
  while (spare > 0) {
    for (std::size_t i : order) {
      if (spare == 0) break;
      ++shares[i];
      --spare;
    }
  }
}

void demand_weighted(std::uint32_t site_cap, double instance_mem_mb,
                     std::uint32_t spare,
                     const std::vector<TenantDemand>& tenants,
                     const std::vector<std::size_t>& order,
                     std::vector<std::uint32_t>& shares) {
  // Unmet demand: how far each tenant's requested pool sits above its floor.
  // With a per-instance memory capacity configured, a tenant's projected
  // footprint lifts its bid to the instance count needed to hold it.
  std::vector<std::uint32_t> extra(tenants.size(), 0);
  std::uint64_t total_extra = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    std::uint32_t requested = tenants[i].requested_pool;
    if (instance_mem_mb > 0.0 && tenants[i].requested_mem_mb > 0.0) {
      const double needed =
          std::ceil(tenants[i].requested_mem_mb / instance_mem_mb);
      if (needed > static_cast<double>(requested)) {
        requested = needed >= static_cast<double>(site_cap)
                        ? site_cap
                        : static_cast<std::uint32_t>(needed);
      }
    }
    const std::uint32_t want = std::max(tenants[i].live_instances,
                                        std::min(requested, site_cap));
    extra[i] = want - tenants[i].live_instances;
    total_extra += extra[i];
  }
  if (total_extra <= spare) {
    // Every demand fits; undemanded capacity stays unallocated until a
    // tenant asks for it at a later reallocation.
    for (std::size_t i = 0; i < shares.size(); ++i) shares[i] += extra[i];
    return;
  }
  // Largest-remainder proportional split of the spare over unmet demand —
  // exact integer arithmetic, so reallocation is deterministic.
  std::vector<std::uint64_t> remainder(tenants.size(), 0);
  std::uint32_t granted = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const std::uint64_t num =
        static_cast<std::uint64_t>(spare) * static_cast<std::uint64_t>(extra[i]);
    const std::uint32_t grant = static_cast<std::uint32_t>(num / total_extra);
    remainder[i] = num % total_extra;
    shares[i] += grant;
    granted += grant;
  }
  std::vector<std::size_t> by_remainder = order;
  std::stable_sort(by_remainder.begin(), by_remainder.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t i : by_remainder) {
    if (granted == spare) break;
    if (remainder[i] == 0) continue;
    ++shares[i];
    ++granted;
  }
}

/// The tenant's effective requested pool: the controller's ask, lifted by
/// the memory footprint when a per-instance capacity is configured, clamped
/// to the site. Shared by the demand- and budget-weighted strategies so the
/// two bid on the same demand signal.
std::uint32_t effective_requested(const TenantDemand& tenant,
                                  std::uint32_t site_cap,
                                  double instance_mem_mb) {
  std::uint32_t requested = tenant.requested_pool;
  if (instance_mem_mb > 0.0 && tenant.requested_mem_mb > 0.0) {
    const double needed = std::ceil(tenant.requested_mem_mb / instance_mem_mb);
    if (needed > static_cast<double>(requested)) {
      requested = needed >= static_cast<double>(site_cap)
                      ? site_cap
                      : static_cast<std::uint32_t>(needed);
    }
  }
  return std::min(requested, site_cap);
}

void budget_weighted(std::uint32_t site_cap, double instance_mem_mb,
                     std::uint32_t spare,
                     const std::vector<TenantDemand>& tenants,
                     const std::vector<std::size_t>& order,
                     std::vector<std::uint32_t>& shares) {
  // A tenant that reports no budget (-1) bids as if exactly one charging
  // unit remained — between an exhausted tenant (weight 0, floor only) and
  // any tenant with real money left.
  constexpr double kUnreportedUnits = 1.0;
  // Fixed-point weight scale: 1/16 charging unit of budget resolution is
  // plenty, and the clamp at 2^16 units keeps every bid product comfortably
  // inside 64 bits (bid <= extra * 2^20, num <= spare * 2^30 after the bid
  // clamp below).
  constexpr double kWeightScale = 16.0;
  constexpr double kMaxUnits = 65536.0;
  constexpr std::uint64_t kMaxBid = std::uint64_t{1} << 30;

  std::vector<std::uint32_t> extra(tenants.size(), 0);
  std::vector<std::uint64_t> weight(tenants.size(), 0);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const std::uint32_t want =
        std::max(tenants[i].live_instances,
                 effective_requested(tenants[i], site_cap, instance_mem_mb));
    extra[i] = want - tenants[i].live_instances;
    const double r = tenants[i].remaining_budget_units;
    const double units = r < 0.0 ? kUnreportedUnits : std::min(r, kMaxUnits);
    weight[i] = static_cast<std::uint64_t>(
        std::llround(std::max(0.0, units) * kWeightScale));
    // Any strictly-positive remaining budget must bid above the exhausted
    // floor: below 1/32 of a charging unit llround truncates the weight to
    // 0, which would starve a nearly-broke (but solvent) tenant exactly
    // like one at 0 — contradicting the documented exhausted-floor
    // semantics. Floor the fixed-point weight at 1.
    if (weight[i] == 0 && units > 0.0) weight[i] = 1;
  }

  // Minimum-progress floor, in FIFO order: a tenant with unmet demand and
  // nothing live gets one instance before any bidding — an exhausted tenant
  // (or one whose instance just crashed) inches forward instead of being
  // starved to death at zero by the solvent bidders.
  for (std::size_t i : order) {
    if (spare == 0) break;
    if (tenants[i].live_instances == 0 && shares[i] == 0 && extra[i] > 0) {
      ++shares[i];
      --extra[i];
      --spare;
    }
  }
  if (spare == 0) return;

  std::vector<std::uint64_t> bid(tenants.size(), 0);
  std::uint64_t total_bid = 0;
  std::uint64_t weighted_extra = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    bid[i] = std::min(static_cast<std::uint64_t>(extra[i]) * weight[i], kMaxBid);
    total_bid += bid[i];
    if (weight[i] > 0) weighted_extra += extra[i];
  }
  if (total_bid == 0) return;  // only exhausted demand left: capacity waits
  if (weighted_extra <= spare) {
    // Every solvent demand fits; exhausted tenants stay at their floor and
    // unbacked capacity is re-offered at the next reallocation.
    for (std::size_t i = 0; i < shares.size(); ++i) {
      if (weight[i] > 0) shares[i] += extra[i];
    }
    return;
  }

  // Largest-remainder split of the spare over the budget-scaled bids, each
  // grant capped at the tenant's unmet demand; capacity freed by the caps is
  // re-offered round-robin in FIFO order to solvent tenants still short.
  std::vector<std::uint64_t> remainder(tenants.size(), 0);
  std::vector<std::uint32_t> grant(tenants.size(), 0);
  std::uint32_t granted = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const std::uint64_t num = static_cast<std::uint64_t>(spare) * bid[i];
    grant[i] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(num / total_bid, extra[i]));
    remainder[i] = num % total_bid;
    granted += grant[i];
  }
  std::vector<std::size_t> by_remainder = order;
  std::stable_sort(by_remainder.begin(), by_remainder.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t i : by_remainder) {
    if (granted == spare) break;
    if (remainder[i] == 0 || weight[i] == 0 || grant[i] >= extra[i]) continue;
    ++grant[i];
    ++granted;
  }
  bool moved = true;
  while (granted < spare && moved) {
    moved = false;
    for (std::size_t i : order) {
      if (granted == spare) break;
      if (weight[i] > 0 && grant[i] < extra[i]) {
        ++grant[i];
        ++granted;
        moved = true;
      }
    }
  }
  for (std::size_t i = 0; i < shares.size(); ++i) shares[i] += grant[i];
}

}  // namespace

std::vector<std::uint32_t> allocate_shares(
    ArbiterStrategy strategy, std::uint32_t site_cap,
    const std::vector<TenantDemand>& tenants) {
  ArbiterConfig config;
  config.site_cap = site_cap;
  return allocate_shares(strategy, config, tenants);
}

std::vector<std::uint32_t> allocate_shares(
    ArbiterStrategy strategy, const ArbiterConfig& config,
    const std::vector<TenantDemand>& tenants) {
  const std::uint32_t site_cap = config.site_cap;
  WIRE_REQUIRE(site_cap >= 1, "site cap must be at least one instance");
  if (tenants.empty()) return {};

  std::uint64_t total_live = 0;
  for (const TenantDemand& t : tenants) total_live += t.live_instances;
  WIRE_REQUIRE(total_live <= site_cap,
               "tenants hold more instances than the site cap");

  // Floors: what each tenant already holds is never taken away.
  std::vector<std::uint32_t> shares(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    shares[i] = tenants[i].live_instances;
  }
  const std::uint32_t spare =
      site_cap - static_cast<std::uint32_t>(total_live);
  const std::vector<std::size_t> order = fifo_order(tenants);

  switch (strategy) {
    case ArbiterStrategy::FifoExclusive:
      fifo_exclusive(spare, order, shares);
      break;
    case ArbiterStrategy::StaticFairShare:
      static_fair_share(site_cap, spare, order, shares);
      break;
    case ArbiterStrategy::DemandWeighted:
      demand_weighted(site_cap, config.instance_mem_mb, spare, tenants, order,
                      shares);
      break;
    case ArbiterStrategy::BudgetWeighted:
      budget_weighted(site_cap, config.instance_mem_mb, spare, tenants, order,
                      shares);
      break;
  }

  std::uint64_t total = 0;
  for (std::uint32_t s : shares) total += s;
  WIRE_CHECK(total <= site_cap, "arbiter over-allocated the site");
  return shares;
}

std::vector<CheckpointGrant> allocate_checkpoint_windows(
    const ArbiterConfig& config, const std::vector<TenantDemand>& tenants) {
  WIRE_REQUIRE(config.checkpoint_bandwidth_mb_per_s > 0.0,
               "checkpoint-channel arbitration needs a channel");
  const double bandwidth = config.checkpoint_bandwidth_mb_per_s;
  std::vector<CheckpointGrant> grants(tenants.size());
  std::uint32_t demanding = 0;
  for (const TenantDemand& t : tenants) {
    if (t.checkpoint_mb > 0.0) ++demanding;
  }
  if (!config.stagger_checkpoints) {
    // Concurrent co-sited writes interfere: every tenant sees its diluted
    // share of the channel, always open.
    const double share =
        bandwidth / static_cast<double>(std::max(demanding, 1u));
    for (CheckpointGrant& g : grants) g.bandwidth_mb_per_s = share;
    return grants;
  }
  WIRE_REQUIRE(config.stagger_period_seconds > 0.0,
               "staggering needs a positive period");
  // Cooperative staggering: serialize channel access. Demanding tenants get
  // the full bandwidth inside exclusive FIFO-ordered slices of each period;
  // the rest keep an open window at full bandwidth (no recorded pressure).
  for (CheckpointGrant& g : grants) g.bandwidth_mb_per_s = bandwidth;
  if (demanding == 0) return grants;
  const double period = config.stagger_period_seconds;
  const double slice = period / static_cast<double>(demanding);
  std::uint32_t k = 0;
  for (std::size_t i : fifo_order(tenants)) {
    if (tenants[i].checkpoint_mb <= 0.0) continue;
    grants[i].window_offset_seconds = static_cast<double>(k) * slice;
    grants[i].window_length_seconds = slice;
    grants[i].window_period_seconds = period;
    ++k;
  }
  return grants;
}

}  // namespace wire::ensemble
