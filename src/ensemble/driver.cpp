#include "ensemble/driver.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/driver.h"
#include "sim/engine.h"
#include "util/check.h"
#include "workload/generators.h"

namespace wire::ensemble {

namespace {
constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::infinity();
}  // namespace

struct EnsembleDriver::Tenant {
  enum class State { Waiting, Active, Done };

  JobArrival arrival;
  dag::Workflow workflow;
  std::unique_ptr<sim::ScalingPolicy> policy;
  std::unique_ptr<sim::JobEngine> engine;
  State state = State::Waiting;
  sim::SimTime admitted_at = -1.0;
  sim::SimTime completed_at = -1.0;
  sim::RunResult result;

  Tenant(JobArrival a, dag::Workflow wf) : arrival(a), workflow(std::move(wf)) {}

  /// Site-clock time of the tenant's next internal event.
  sim::SimTime next_event_site_time() const {
    return admitted_at + engine->next_event_time();
  }
};

EnsembleDriver::~EnsembleDriver() = default;

EnsembleDriver::EnsembleDriver(std::vector<workload::WorkflowProfile> profiles,
                               ArrivalProcess arrivals,
                               PolicyFactory policy_factory,
                               const sim::CloudConfig& cloud,
                               const EnsembleOptions& options)
    : profiles_(std::move(profiles)),
      arrivals_(std::move(arrivals)),
      policy_factory_(std::move(policy_factory)),
      cloud_(cloud),
      options_(options) {
  WIRE_REQUIRE(!profiles_.empty(), "need at least one workflow profile");
  WIRE_REQUIRE(options_.site_cap >= 1, "site cap must be at least one");
  WIRE_REQUIRE(options_.initial_instances >= 1,
               "jobs bootstrap with at least one instance");
  WIRE_REQUIRE(static_cast<bool>(policy_factory_), "need a policy factory");
  for (const JobArrival& a : arrivals_.jobs()) {
    WIRE_REQUIRE(a.profile_index < profiles_.size(),
                 "arrival references an unknown profile");
  }
  // The arbiter share is the binding per-tenant ceiling; the per-tenant
  // engines must not additionally clip against a site-wide max_instances
  // they believe they own exclusively.
  cloud_.max_instances = 0;
}

void EnsembleDriver::admit(Tenant& tenant, sim::SimTime now) {
  tenant.state = Tenant::State::Active;
  tenant.admitted_at = now;
  tenant.engine->start();
}

void EnsembleDriver::retire(Tenant& tenant, sim::SimTime now) {
  tenant.state = Tenant::State::Done;
  tenant.completed_at = now;
  tenant.result = tenant.engine->result();
  busy_slot_seconds_ += tenant.result.busy_slot_seconds;
  allocated_instance_seconds_ += tenant.result.ready_instance_seconds;
}

void EnsembleDriver::rebalance(sim::SimTime now) {
  // Demands over every arrived-but-unfinished tenant, in arrival order
  // (tenants_ is appended in arrival order, so iteration order is FIFO).
  std::vector<Tenant*> open;
  std::vector<TenantDemand> demands;
  for (const std::unique_ptr<Tenant>& t : tenants_) {
    if (t->state == Tenant::State::Done) continue;
    TenantDemand d;
    d.job = t->arrival.job;
    d.arrival_seconds = t->arrival.arrival_seconds;
    if (t->state == Tenant::State::Active) {
      d.live_instances = t->engine->live_instances();
      d.requested_pool = t->engine->requested_pool();
    } else {
      d.live_instances = 0;
      d.requested_pool = options_.initial_instances;
    }
    open.push_back(t.get());
    demands.push_back(d);
  }
  if (open.empty()) return;

  const std::vector<std::uint32_t> shares =
      allocate_shares(options_.strategy, options_.site_cap, demands);

  std::uint32_t live_total = 0;
  for (std::size_t i = 0; i < open.size(); ++i) {
    Tenant& t = *open[i];
    t.engine->set_instance_cap(shares[i]);
    if (t.state == Tenant::State::Waiting && shares[i] >= 1) {
      admit(t, now);
    }
    live_total += t.engine->started() ? t.engine->live_instances() : 0;
  }
  WIRE_CHECK(live_total <= options_.site_cap,
             "tenants exceed the shared site cap");

  if (site_listener_) {
    SiteSample sample;
    sample.now = now;
    sample.site_cap = options_.site_cap;
    sample.live_total = live_total;
    for (std::size_t i = 0; i < open.size(); ++i) {
      sample.jobs.push_back(open[i]->arrival.job);
      sample.live.push_back(open[i]->engine->started()
                                ? open[i]->engine->live_instances()
                                : 0);
      sample.shares.push_back(shares[i]);
    }
    site_listener_(sample);
  }
}

double EnsembleDriver::dedicated_makespan(const Tenant& tenant) {
  // The counterfactual: the identical job (same DAG, same ground-truth
  // seed, same policy kind) alone on the full site.
  sim::CloudConfig dedicated = cloud_;
  dedicated.max_instances = options_.site_cap;
  const std::unique_ptr<sim::ScalingPolicy> policy = policy_factory_();
  sim::RunOptions run_options;
  run_options.seed = tenant.arrival.run_seed;
  run_options.initial_instances = options_.initial_instances;
  run_options.max_sim_seconds = options_.max_sim_seconds;
  return sim::simulate(tenant.workflow, *policy, dedicated, run_options)
      .makespan;
}

EnsembleReport EnsembleDriver::run() {
  WIRE_REQUIRE(!ran_, "ensemble already ran");
  ran_ = true;

  std::size_t next_arrival = 0;
  const std::vector<JobArrival>& stream = arrivals_.jobs();

  for (;;) {
    // Earliest pending site event: the next arrival or the earliest internal
    // event among active tenants (ties: arrivals first, then lowest job id —
    // both fixed by construction, so the interleaving is deterministic).
    const sim::SimTime arrival_time = next_arrival < stream.size()
                                          ? stream[next_arrival].arrival_seconds
                                          : kNever;
    Tenant* next_tenant = nullptr;
    sim::SimTime tenant_time = kNever;
    for (const std::unique_ptr<Tenant>& t : tenants_) {
      if (t->state != Tenant::State::Active) continue;
      const sim::SimTime when = t->next_event_site_time();
      if (when < tenant_time) {
        tenant_time = when;
        next_tenant = t.get();
      }
    }
    if (arrival_time == kNever && next_tenant == nullptr) break;

    const sim::SimTime now = std::min(arrival_time, tenant_time);
    if (now > options_.max_sim_seconds) {
      throw std::runtime_error(
          "ensemble exceeded max_sim_seconds — site appears stuck");
    }

    if (arrival_time <= tenant_time) {
      const JobArrival& a = stream[next_arrival++];
      auto tenant = std::make_unique<Tenant>(
          a, workload::make_workflow(profiles_[a.profile_index],
                                     a.workflow_seed));
      tenant->policy = policy_factory_();
      sim::RunOptions run_options;
      run_options.seed = a.run_seed;
      run_options.initial_instances = options_.initial_instances;
      run_options.max_sim_seconds = options_.max_sim_seconds;
      tenant->engine = std::make_unique<sim::JobEngine>(
          tenant->workflow, *tenant->policy, cloud_, run_options);
      tenants_.push_back(std::move(tenant));
    } else {
      next_tenant->engine->step();
      if (next_tenant->engine->done()) {
        retire(*next_tenant, now);
      }
    }
    // Rebalance after every event: demands move on control ticks, floors
    // move on boots/releases, and retirements free whole shares.
    rebalance(now);
  }

  EnsembleReport report;
  report.tenant_policy = tenants_.empty()
                             ? std::string("none")
                             : tenants_.front()->result.policy_name;
  report.arbiter_strategy = strategy_name(options_.strategy);
  report.site_cap = options_.site_cap;
  report.slots_per_instance = cloud_.slots_per_instance;
  for (const std::unique_ptr<Tenant>& t : tenants_) {
    WIRE_CHECK(t->state == Tenant::State::Done, "unfinished tenant at exit");
    JobOutcome j;
    j.job = t->arrival.job;
    j.workflow_name = t->workflow.name();
    j.arrival_seconds = t->arrival.arrival_seconds;
    j.admitted_seconds = t->admitted_at;
    j.completed_seconds = t->completed_at;
    j.queue_wait_seconds = t->admitted_at - t->arrival.arrival_seconds;
    j.makespan_seconds = t->result.makespan;
    if (options_.dedicated_baseline) {
      j.dedicated_makespan_seconds = dedicated_makespan(*t);
      j.slowdown = (j.queue_wait_seconds + j.makespan_seconds) /
                   j.dedicated_makespan_seconds;
    }
    j.cost_units = t->result.cost_units;
    j.peak_instances = t->result.peak_instances;
    j.task_restarts = t->result.task_restarts;
    j.task_faults = t->result.task_faults;
    j.instance_crashes = t->result.instance_crashes;
    j.quarantined_tasks =
        static_cast<std::uint32_t>(t->result.quarantined_tasks.size());
    report.jobs.push_back(std::move(j));
  }
  report.finalize(busy_slot_seconds_, allocated_instance_seconds_);
  return report;
}

}  // namespace wire::ensemble
