#include "ensemble/driver.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/driver.h"
#include "sim/engine.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace wire::ensemble {

namespace {
constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::infinity();
/// Below this many open tenants the two-phase demand gather runs serially:
/// the rows are O(1) each, so fan-out only pays off on wide sites. Purely a
/// scheduling choice — the rows land in the same canonical slots either way.
constexpr std::size_t kParallelDemandThreshold = 128;
}  // namespace

std::uint32_t tenant_shard(std::uint64_t shard_seed, std::uint32_t shards,
                           std::uint32_t job) {
  if (shards <= 1) return 0;
  return static_cast<std::uint32_t>(util::derive_seed(shard_seed, job) %
                                    shards);
}

struct EnsembleDriver::Tenant {
  enum class State { Waiting, Active, Done };

  JobArrival arrival;
  dag::Workflow workflow;
  std::unique_ptr<sim::ScalingPolicy> policy;
  std::unique_ptr<sim::JobEngine> engine;
  State state = State::Waiting;
  /// Index in tenants_ (== arrival order) — the canonical tie-break.
  std::size_t index = 0;
  /// Fixed shard this tenant is pinned to (tenant_shard of its job id).
  std::uint32_t shard = 0;
  sim::SimTime admitted_at = -1.0;
  sim::SimTime completed_at = -1.0;
  sim::RunResult result;

  Tenant(JobArrival a, dag::Workflow wf) : arrival(a), workflow(std::move(wf)) {}

  /// Site-clock time of the tenant's next internal event.
  sim::SimTime next_event_site_time() const {
    return admitted_at + engine->next_event_time();
  }

  /// Site-clock time of the tenant's next demand-relevant event (+inf for a
  /// completed engine awaiting retirement).
  sim::SimTime next_demand_site_time() const {
    return admitted_at + engine->next_demand_event_time();
  }
};

EnsembleDriver::~EnsembleDriver() = default;

EnsembleDriver::EnsembleDriver(std::vector<workload::WorkflowProfile> profiles,
                               ArrivalProcess arrivals,
                               PolicyFactory policy_factory,
                               const sim::CloudConfig& cloud,
                               const EnsembleOptions& options)
    : EnsembleDriver(std::move(profiles), std::move(arrivals),
                     ShardedPolicyFactory(), cloud, options) {
  WIRE_REQUIRE(static_cast<bool>(policy_factory), "need a policy factory");
  // Wrap the zero-arg factory; its policies may share scratch, so the
  // dedicated baselines must not run concurrently.
  policy_factory_ = [factory = std::move(policy_factory)](std::uint32_t) {
    return factory();
  };
  parallel_safe_factory_ = false;
}

EnsembleDriver::EnsembleDriver(std::vector<workload::WorkflowProfile> profiles,
                               ArrivalProcess arrivals,
                               ShardedPolicyFactory sharded_policy_factory,
                               const sim::CloudConfig& cloud,
                               const EnsembleOptions& options)
    : profiles_(std::move(profiles)),
      arrivals_(std::move(arrivals)),
      policy_factory_(std::move(sharded_policy_factory)),
      parallel_safe_factory_(true),
      cloud_(cloud),
      options_(options) {
  WIRE_REQUIRE(!profiles_.empty(), "need at least one workflow profile");
  WIRE_REQUIRE(options_.site_cap >= 1, "site cap must be at least one");
  WIRE_REQUIRE(options_.initial_instances >= 1,
               "jobs bootstrap with at least one instance");
  for (const JobArrival& a : arrivals_.jobs()) {
    WIRE_REQUIRE(a.profile_index < profiles_.size(),
                 "arrival references an unknown profile");
  }
  // The arbiter share is the binding per-tenant ceiling; the per-tenant
  // engines must not additionally clip against a site-wide max_instances
  // they believe they own exclusively.
  cloud_.max_instances = 0;
  shard_members_.resize(std::max(1u, options_.shards));
}

void EnsembleDriver::admit(Tenant& tenant, sim::SimTime now) {
  tenant.state = Tenant::State::Active;
  tenant.admitted_at = now;
  tenant.engine->start();
}

void EnsembleDriver::retire(Tenant& tenant, sim::SimTime now) {
  tenant.state = Tenant::State::Done;
  tenant.completed_at = now;
  tenant.result = tenant.engine->result();
  busy_slot_seconds_ += tenant.result.busy_slot_seconds;
  allocated_instance_seconds_ += tenant.result.ready_instance_seconds;
  const auto drop = [&tenant](std::vector<Tenant*>& v) {
    v.erase(std::find(v.begin(), v.end(), &tenant));
  };
  drop(open_);
  drop(shard_members_[tenant.shard]);
}

void EnsembleDriver::admit_arrival(const JobArrival& a) {
  auto tenant = std::make_unique<Tenant>(
      a, workload::make_workflow(profiles_[a.profile_index], a.workflow_seed));
  tenant->index = tenants_.size();
  tenant->shard = tenant_shard(options_.shard_seed,
                               std::max(1u, options_.shards), a.job);
  tenant->policy = policy_factory_(tenant->shard);
  sim::RunOptions run_options;
  run_options.seed = a.run_seed;
  run_options.initial_instances = options_.initial_instances;
  run_options.max_sim_seconds = options_.max_sim_seconds;
  tenant->engine = std::make_unique<sim::JobEngine>(
      tenant->workflow, *tenant->policy, cloud_, run_options);
  open_.push_back(tenant.get());
  shard_members_[tenant->shard].push_back(tenant.get());
  tenants_.push_back(std::move(tenant));
}

void EnsembleDriver::gather_demands(std::vector<TenantDemand>& demands) const {
  demands.resize(open_.size());
  const auto fill = [this, &demands](std::size_t i) {
    const Tenant& t = *open_[i];
    TenantDemand& d = demands[i];
    d.job = t.arrival.job;
    d.arrival_seconds = t.arrival.arrival_seconds;
    if (t.state == Tenant::State::Active) {
      d.live_instances = t.engine->live_instances();
      d.requested_pool = t.engine->requested_pool();
      d.requested_mem_mb =
          options_.memory_aware_demand ? t.engine->requested_mem_mb() : 0.0;
      d.checkpoint_mb = cloud_.checkpoint.enabled()
                            ? t.engine->checkpoint_demand_mb()
                            : 0.0;
      // Until the tenant's first control tick the engine still carries the
      // -1 "not reported" sentinel; a driver-level budget fills the gap so
      // a freshly admitted tenant bids with its full allowance instead of
      // the unbudgeted default weight.
      d.remaining_budget_units = t.engine->remaining_budget_units();
      if (d.remaining_budget_units < 0.0 && options_.budget_units > 0.0) {
        d.remaining_budget_units = options_.budget_units;
      }
    } else {
      d.live_instances = 0;
      d.requested_pool = options_.initial_instances;
      d.requested_mem_mb = 0.0;
      d.checkpoint_mb = 0.0;
      d.remaining_budget_units =
          options_.budget_units > 0.0 ? options_.budget_units : -1.0;
    }
  };
  if (pool_ && open_.size() >= kParallelDemandThreshold) {
    // Phase one of the two-phase arbitration: shards fill contiguous slices
    // of the canonical arrival-order row vector concurrently. Placement is
    // by canonical index, so the serial merge below sees rows independent of
    // which worker produced them.
    const std::size_t shards = shard_members_.size();
    const std::size_t chunk = (open_.size() + shards - 1) / shards;
    pool_->run_batch(shards, [&](std::size_t s) {
      const std::size_t begin = s * chunk;
      const std::size_t end = std::min(open_.size(), begin + chunk);
      for (std::size_t i = begin; i < end; ++i) fill(i);
    });
  } else {
    for (std::size_t i = 0; i < open_.size(); ++i) fill(i);
  }
}

void EnsembleDriver::rebalance(sim::SimTime now) {
  // Phase one: demand rows over every arrived-but-unfinished tenant, in
  // arrival order (open_ is appended at arrival and erased at retirement, so
  // its order is FIFO).
  if (open_.empty()) return;
  std::vector<TenantDemand> demands;
  gather_demands(demands);

  // Phase two: the serial merge — one allocation pass over the canonical
  // rows, then cap installation and admissions in the same canonical order.
  ArbiterConfig config;
  config.site_cap = options_.site_cap;
  if (options_.memory_aware_demand) {
    config.instance_mem_mb = cloud_.memory.instance_mem_mb;
  }
  const std::vector<std::uint32_t> shares =
      allocate_shares(options_.strategy, config, demands);

  // Checkpoint-channel arbitration rides the same serial merge. Grants are
  // installed on every rebalance; the engine treats an unchanged bandwidth
  // as a strict no-op, so only genuine changes (latched checkpoint demand
  // moved at a control tick) perturb a tenant's event stream — which keeps
  // the sequential and windowed loops byte-identical even though the
  // sequential loop rebalances at more points.
  std::vector<CheckpointGrant> ckpt_grants;
  if (cloud_.checkpoint.enabled()) {
    ArbiterConfig ckpt_config = config;
    ckpt_config.checkpoint_bandwidth_mb_per_s =
        cloud_.checkpoint.channel_bandwidth_mb_per_s;
    ckpt_config.stagger_checkpoints = options_.stagger_checkpoints;
    ckpt_config.stagger_period_seconds =
        options_.checkpoint_stagger_period_seconds > 0.0
            ? options_.checkpoint_stagger_period_seconds
            : cloud_.lag_seconds;
    ckpt_grants = allocate_checkpoint_windows(ckpt_config, demands);
  }

  std::uint32_t live_total = 0;
  // Admissions mutate open_ only by state flips (no reordering), but iterate
  // by index to stay robust.
  for (std::size_t i = 0; i < open_.size(); ++i) {
    Tenant& t = *open_[i];
    t.engine->set_instance_cap(shares[i]);
    if (t.state == Tenant::State::Waiting && shares[i] >= 1) {
      admit(t, now);
    }
    if (!ckpt_grants.empty() && t.state == Tenant::State::Active) {
      // Window offsets are site-anchored; the engine clock starts at
      // admission, so translate by -admitted_at.
      const CheckpointGrant& g = ckpt_grants[i];
      t.engine->set_checkpoint_channel(g.bandwidth_mb_per_s,
                                       now - t.admitted_at);
      t.engine->set_checkpoint_window(
          g.window_offset_seconds - t.admitted_at, g.window_length_seconds,
          g.window_period_seconds);
    }
    live_total += t.engine->started() ? t.engine->live_instances() : 0;
  }
  WIRE_CHECK(live_total <= options_.site_cap,
             "tenants exceed the shared site cap");

  if (site_listener_) {
    SiteSample sample;
    sample.now = now;
    sample.site_cap = options_.site_cap;
    sample.live_total = live_total;
    for (std::size_t i = 0; i < open_.size(); ++i) {
      sample.jobs.push_back(open_[i]->arrival.job);
      sample.live.push_back(open_[i]->engine->started()
                                ? open_[i]->engine->live_instances()
                                : 0);
      sample.shares.push_back(shares[i]);
    }
    site_listener_(sample);
  }
}

double EnsembleDriver::dedicated_makespan(const Tenant& tenant) {
  // The counterfactual: the identical job (same DAG, same ground-truth
  // seed, same policy kind) alone on the full site.
  sim::CloudConfig dedicated = cloud_;
  dedicated.max_instances = options_.site_cap;
  const std::unique_ptr<sim::ScalingPolicy> policy =
      policy_factory_(tenant.shard);
  sim::RunOptions run_options;
  run_options.seed = tenant.arrival.run_seed;
  run_options.initial_instances = options_.initial_instances;
  run_options.max_sim_seconds = options_.max_sim_seconds;
  return sim::simulate(tenant.workflow, *policy, dedicated, run_options)
      .makespan;
}

void EnsembleDriver::run_sequential_loop() {
  // The historical reference loop: pop one site event at a time, in global
  // time order, scanning every tenant per event. Kept verbatim behind
  // shards == 0 as the byte-identity oracle for the windowed engine.
  std::size_t next_arrival = 0;
  const std::vector<JobArrival>& stream = arrivals_.jobs();

  for (;;) {
    // Earliest pending site event: the next arrival or the earliest internal
    // event among active tenants (ties: arrivals first, then lowest job id —
    // both fixed by construction, so the interleaving is deterministic).
    const sim::SimTime arrival_time = next_arrival < stream.size()
                                          ? stream[next_arrival].arrival_seconds
                                          : kNever;
    Tenant* next_tenant = nullptr;
    sim::SimTime tenant_time = kNever;
    for (const std::unique_ptr<Tenant>& t : tenants_) {
      if (t->state != Tenant::State::Active) continue;
      const sim::SimTime when = t->next_event_site_time();
      if (when < tenant_time) {
        tenant_time = when;
        next_tenant = t.get();
      }
    }
    if (arrival_time == kNever && next_tenant == nullptr) break;

    const sim::SimTime now = std::min(arrival_time, tenant_time);
    if (now > options_.max_sim_seconds) {
      throw std::runtime_error(
          "ensemble exceeded max_sim_seconds — site appears stuck");
    }

    if (arrival_time <= tenant_time) {
      admit_arrival(stream[next_arrival++]);
    } else {
      next_tenant->engine->step();
      if (next_tenant->engine->done()) {
        retire(*next_tenant, now);
      }
    }
    // Rebalance after every event: demands move on control ticks, floors
    // move on boots/releases, and retirements free whole shares.
    rebalance(now);
  }
}

void EnsembleDriver::run_windowed_loop() {
  std::size_t next_arrival = 0;
  const std::vector<JobArrival>& stream = arrivals_.jobs();
  const std::size_t shards = shard_members_.size();
  if (shards > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
  const sim::SimTime max = options_.max_sim_seconds;

  for (;;) {
    const sim::SimTime arrival_time = next_arrival < stream.size()
                                          ? stream[next_arrival].arrival_seconds
                                          : kNever;

    // Horizon: the earliest pending event that can change any tenant's
    // demand state or read its cap. Everything strictly below it is local to
    // one engine and commutes across tenants.
    sim::SimTime horizon = arrival_time;
    bool advance_pending = false;
    for (const Tenant* t : open_) {
      if (t->state != Tenant::State::Active || t->engine->done()) continue;
      horizon = std::min(horizon, t->next_demand_site_time());
    }
    for (const Tenant* t : open_) {
      if (t->state != Tenant::State::Active || t->engine->done()) continue;
      const sim::SimTime when = t->next_event_site_time();
      if (when < horizon && when <= max) {
        advance_pending = true;
        break;
      }
    }

    if (advance_pending) {
      // Parallel phase: every shard advances its engines through their local
      // events strictly below the horizon. Local handlers never touch caps
      // or demand, so this is byte-equivalent to processing the same events
      // interleaved in global time order.
      const auto advance_shard = [&](std::size_t s) {
        for (Tenant* t : shard_members_[s]) {
          if (t->state != Tenant::State::Active) continue;
          sim::JobEngine& engine = *t->engine;
          while (!engine.done()) {
            const sim::SimTime when = t->next_event_site_time();
            if (when >= horizon || when > max) break;
            engine.step();
          }
          WIRE_CHECK(engine.done() || t->next_demand_site_time() >= horizon,
                     "local advance crossed a demand-relevant event");
        }
      };
      if (pool_) {
        pool_->run_batch(shards, advance_shard);
      } else {
        advance_shard(0);
      }
    }

    // Serial phase: exactly one site action — the earliest among the next
    // arrival, pending retirements (engines that completed during the
    // parallel phase, at their completion times), and tracked tenant events
    // (all >= horizon now). Ties: arrivals first, then lowest tenant index —
    // the same total order the sequential reference scan induces.
    Tenant* next_tenant = nullptr;
    sim::SimTime tenant_time = kNever;
    for (Tenant* t : open_) {
      if (t->state != Tenant::State::Active) continue;
      const sim::SimTime when = t->engine->done()
                                    ? t->admitted_at + t->engine->end_time()
                                    : t->next_event_site_time();
      if (when < tenant_time) {
        tenant_time = when;
        next_tenant = t;
      }
    }
    if (arrival_time == kNever && next_tenant == nullptr) break;

    const sim::SimTime now = std::min(arrival_time, tenant_time);
    if (now > max) {
      throw std::runtime_error(
          "ensemble exceeded max_sim_seconds — site appears stuck");
    }

    if (arrival_time <= tenant_time) {
      admit_arrival(stream[next_arrival++]);
    } else if (next_tenant->engine->done()) {
      retire(*next_tenant, now);
    } else {
      next_tenant->engine->step();
      if (next_tenant->engine->done()) {
        retire(*next_tenant, now);
      }
    }
    rebalance(now);
  }

  pool_.reset();
}

EnsembleReport EnsembleDriver::assemble_report() {
  EnsembleReport report;
  report.tenant_policy = tenants_.empty()
                             ? std::string("none")
                             : tenants_.front()->result.policy_name;
  report.arbiter_strategy = strategy_name(options_.strategy);
  report.site_cap = options_.site_cap;
  report.slots_per_instance = cloud_.slots_per_instance;

  // Dedicated-baseline counterfactuals are whole independent simulations, so
  // they parallelize across shards — but only when policies were minted by a
  // shard-aware factory (per-shard scratch); a plain factory may share
  // scratch across all tenants and must stay sequential. Each result lands
  // in its tenant's slot, so assembly below is order-independent.
  std::vector<double> dedicated(tenants_.size(), 0.0);
  if (options_.dedicated_baseline) {
    const std::size_t shards = shard_members_.size();
    if (parallel_safe_factory_ && shards > 1) {
      util::ThreadPool pool(options_.threads);
      pool.run_batch(shards, [&](std::size_t s) {
        for (const std::unique_ptr<Tenant>& t : tenants_) {
          if (t->shard != s) continue;
          dedicated[t->index] = dedicated_makespan(*t);
        }
      });
    } else {
      for (const std::unique_ptr<Tenant>& t : tenants_) {
        dedicated[t->index] = dedicated_makespan(*t);
      }
    }
  }

  for (const std::unique_ptr<Tenant>& t : tenants_) {
    WIRE_CHECK(t->state == Tenant::State::Done, "unfinished tenant at exit");
    JobOutcome j;
    j.job = t->arrival.job;
    j.workflow_name = t->workflow.name();
    j.arrival_seconds = t->arrival.arrival_seconds;
    j.admitted_seconds = t->admitted_at;
    j.completed_seconds = t->completed_at;
    j.queue_wait_seconds = t->admitted_at - t->arrival.arrival_seconds;
    j.makespan_seconds = t->result.makespan;
    if (options_.dedicated_baseline) {
      j.dedicated_makespan_seconds = dedicated[t->index];
      j.slowdown = (j.queue_wait_seconds + j.makespan_seconds) /
                   j.dedicated_makespan_seconds;
    }
    j.cost_units = t->result.cost_units;
    j.budget_units = options_.budget_units;
    if (j.budget_units > 0.0) {
      j.over_budget_units = std::max(0.0, j.cost_units - j.budget_units);
    }
    j.peak_instances = t->result.peak_instances;
    j.task_restarts = t->result.task_restarts;
    j.task_faults = t->result.task_faults;
    j.instance_crashes = t->result.instance_crashes;
    j.quarantined_tasks =
        static_cast<std::uint32_t>(t->result.quarantined_tasks.size());
    report.jobs.push_back(std::move(j));
  }
  report.finalize(busy_slot_seconds_, allocated_instance_seconds_);
  return report;
}

EnsembleReport EnsembleDriver::run() {
  WIRE_REQUIRE(!ran_, "ensemble already ran");
  ran_ = true;
  if (options_.shards == 0) {
    run_sequential_loop();
  } else {
    run_windowed_loop();
  }
  return assemble_report();
}

}  // namespace wire::ensemble
