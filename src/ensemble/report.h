// Ensemble metrics: per-job outcomes and site-level aggregates for one
// multi-tenant run. The per-job slowdown is measured against the same job's
// dedicated-site makespan (same workflow, policy, seeds, full site cap, no
// contention), so it isolates exactly what sharing cost the job: queue wait
// plus the stretch from running under an arbiter share.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"

namespace wire::ensemble {

/// Outcome of one job of the stream. All times are site-clock seconds.
struct JobOutcome {
  std::uint32_t job = 0;
  std::string workflow_name;
  sim::SimTime arrival_seconds = 0.0;
  /// When the arbiter first granted the job capacity (its engine bootstrap).
  sim::SimTime admitted_seconds = 0.0;
  sim::SimTime completed_seconds = 0.0;
  /// admitted - arrival.
  sim::SimTime queue_wait_seconds = 0.0;
  /// completed - admitted (the job's in-system makespan).
  sim::SimTime makespan_seconds = 0.0;
  /// Makespan of the identical run alone on the full site; 0 when the
  /// dedicated baseline was disabled.
  sim::SimTime dedicated_makespan_seconds = 0.0;
  /// (queue wait + makespan) / dedicated makespan; 0 when disabled.
  double slowdown = 0.0;
  /// Charging units billed to this job.
  double cost_units = 0.0;
  /// Budget (charging units) the job ran under; 0 = unbudgeted.
  double budget_units = 0.0;
  /// max(0, cost - budget) when budgeted — the minimum-progress overrun a
  /// budget policy is permitted past exhaustion. Always 0 when unbudgeted.
  double over_budget_units = 0.0;
  std::uint32_t peak_instances = 0;
  std::uint32_t task_restarts = 0;
  /// Transient task failures injected into this job's tasks (fault model).
  std::uint32_t task_faults = 0;
  /// Instance crashes suffered by this job's pool (fault model).
  std::uint32_t instance_crashes = 0;
  /// Tasks quarantined after exhausting their retry budget.
  std::uint32_t quarantined_tasks = 0;
};

/// Site-level result of one ensemble run.
struct EnsembleReport {
  std::string tenant_policy;
  std::string arbiter_strategy;
  std::uint32_t site_cap = 0;
  std::uint32_t slots_per_instance = 0;
  /// Jobs in arrival order.
  std::vector<JobOutcome> jobs;

  // --- Aggregates (filled by finalize()) ---
  /// Completion time of the last job (site clock).
  sim::SimTime horizon_seconds = 0.0;
  double total_cost_units = 0.0;
  /// Successful busy slot-seconds / (site_cap * slots * horizon): how much of
  /// the site's theoretical capacity did useful work.
  double site_utilization = 0.0;
  /// Allocated instance-seconds / (site_cap * horizon): how much of the site
  /// the tenants held.
  double allocation_ratio = 0.0;
  double throughput_jobs_per_hour = 0.0;
  double mean_queue_wait_seconds = 0.0;
  double mean_slowdown = 0.0;
  double max_slowdown = 0.0;
  /// Site-wide fault totals (all zero when the fault model is disabled).
  std::uint32_t total_task_faults = 0;
  std::uint32_t total_instance_crashes = 0;
  std::uint32_t total_quarantined_tasks = 0;
  /// Site-wide budget totals (all zero when no job carries a budget).
  double total_over_budget_units = 0.0;
  std::uint32_t jobs_over_budget = 0;

  /// Recomputes every aggregate from `jobs` plus the per-job raw inputs
  /// recorded by the driver. Called by the driver; exposed for tests.
  void finalize(double busy_slot_seconds, double allocated_instance_seconds);

  /// Fixed-width summary: one row per job plus the aggregate block.
  /// Byte-identical across runs with the same (arrival seed, config).
  std::string render() const;
};

bool operator==(const JobOutcome& a, const JobOutcome& b);
bool operator==(const EnsembleReport& a, const EnsembleReport& b);

}  // namespace wire::ensemble
