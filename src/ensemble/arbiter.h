// The site arbiter: partitions one shared instance cap among live tenants.
//
// Per-tenant cap semantics (the contract every strategy obeys):
//
//   1. `share[i] >= live_instances[i]` — a share never drops below what the
//      tenant currently holds. The arbiter does not preempt: capacity flows
//      between tenants only as their own scaling policies release instances
//      (at charge boundaries, under the steering discipline). A tenant whose
//      share shrank below its previous value simply cannot grow until its
//      pool drains down.
//   2. `sum(share) <= site_cap` — shares are an exclusive partition of the
//      site. Together with (1) and the engine-side grow clipping this makes
//      `sum(live) <= site_cap` an invariant at every event, not just at
//      control ticks.
//   3. Allocation is a pure function of (strategy, site_cap, tenants) with
//      deterministic tie-breaking (arrival time, then job id), so ensemble
//      runs are byte-reproducible.
//
// Strategies:
//   FifoExclusive   — the whole site goes to the oldest unfinished job;
//                     later arrivals wait in a FIFO queue (batch-queue
//                     semantics, the zero-sharing baseline).
//   StaticFairShare — every live tenant is entitled to ~cap/n; spare
//                     capacity beyond the entitlements is handed out
//                     round-robin in arrival order.
//   DemandWeighted  — spare capacity (cap - sum(live)) is split in
//                     proportion to each tenant's unmet demand, where demand
//                     is the pool size the tenant's controller last asked
//                     for (PoolCommand::desired_pool — WIRE's unclamped
//                     Algorithm-3 size, the reactive baselines' load
//                     target). Capacity nobody demands stays unallocated
//                     and is re-offered at the next reallocation.
//   BudgetWeighted  — tenants bid with their unmet demand *scaled by
//                     remaining budget* (TenantDemand::remaining_budget_units,
//                     the spend signal a policies::BudgetPolicy reports
//                     through the engine): money left to burn is what turns
//                     demand into a credible bid. An exhausted tenant
//                     (remaining == 0) bids nothing beyond the
//                     minimum-progress floor — one instance while it has
//                     unmet demand — and a tenant that reports no budget at
//                     all (-1) bids as if one unit remained, so mixed
//                     budgeted/unbudgeted ensembles stay well-defined.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.h"

namespace wire::ensemble {

enum class ArbiterStrategy {
  FifoExclusive,
  StaticFairShare,
  DemandWeighted,
  BudgetWeighted,
};

const char* strategy_name(ArbiterStrategy strategy);

/// All four strategies, in the order above (bench sweeps).
std::vector<ArbiterStrategy> all_strategies();

/// One tenant's state as the arbiter sees it.
struct TenantDemand {
  std::uint32_t job = 0;
  sim::SimTime arrival_seconds = 0.0;
  /// Instances the tenant currently holds (provisioning + ready) — the floor
  /// of its share.
  std::uint32_t live_instances = 0;
  /// Pool size the tenant's controller wants (>= 1 for a tenant that still
  /// has work; waiting tenants report their bootstrap size).
  std::uint32_t requested_pool = 0;
  /// Projected memory demand (MB) the tenant's controller reported
  /// (JobEngine::requested_mem_mb); 0.0 = not reported. Only consulted by
  /// memory-aware arbitration (ArbiterConfig::instance_mem_mb > 0).
  double requested_mem_mb = 0.0;
  /// Checkpoint bytes (MB) the tenant's running set would write
  /// (JobEngine::checkpoint_demand_mb); 0.0 = no checkpoint pressure. Only
  /// consulted by checkpoint-channel arbitration
  /// (ArbiterConfig::checkpoint_bandwidth_mb_per_s > 0).
  double checkpoint_mb = 0.0;
  /// Charging units of budget the tenant has left to spend
  /// (JobEngine::remaining_budget_units); -1.0 = no budget reported, 0.0 =
  /// exhausted. Only consulted by BudgetWeighted arbitration.
  double remaining_budget_units = -1.0;
};

/// Site-level arbitration parameters beyond the strategy itself.
struct ArbiterConfig {
  /// Shared instance cap; must be >= 1.
  std::uint32_t site_cap = 0;
  /// Per-instance memory capacity (MB). When > 0, DemandWeighted lifts each
  /// tenant's effective requested pool to at least
  /// ceil(requested_mem_mb / instance_mem_mb) — a tenant whose projected
  /// footprint cannot fit its instance-count demand bids for enough
  /// instances to hold it. 0 (the default) reproduces the instance-only
  /// arbitration byte-identically.
  double instance_mem_mb = 0.0;
  /// Shared checkpoint-channel bandwidth (CheckpointConfig's
  /// channel_bandwidth_mb_per_s). When > 0, allocate_checkpoint_windows
  /// arbitrates the channel among tenants with checkpoint pressure; 0 (the
  /// default) disables channel arbitration entirely.
  double checkpoint_bandwidth_mb_per_s = 0.0;
  /// Cooperative staggering: serialize tenants' channel access into
  /// round-robin windows instead of diluting the bandwidth.
  bool stagger_checkpoints = false;
  /// Staggering round length (seconds); each of the n demanding tenants gets
  /// a 1/n slice per round. Must be > 0 when stagger_checkpoints is set.
  double stagger_period_seconds = 0.0;
};

/// One tenant's grant on the shared checkpoint channel.
struct CheckpointGrant {
  /// Channel share (MB/s) the tenant may write at.
  double bandwidth_mb_per_s = 0.0;
  /// Staggering window in site time: writes may start in
  /// [offset + k*period, offset + k*period + length). period 0 = always open.
  sim::SimTime window_offset_seconds = 0.0;
  double window_length_seconds = 0.0;
  double window_period_seconds = 0.0;
};

/// Partitions `site_cap` among `tenants` under `strategy`. Returns one share
/// per tenant, in input order, satisfying the contract documented above.
/// Requires site_cap >= 1 and sum(live_instances) <= site_cap.
std::vector<std::uint32_t> allocate_shares(
    ArbiterStrategy strategy, std::uint32_t site_cap,
    const std::vector<TenantDemand>& tenants);

/// As above, with the full config (memory-aware demand lifting). The
/// three-argument overload forwards here with instance_mem_mb = 0.
std::vector<std::uint32_t> allocate_shares(
    ArbiterStrategy strategy, const ArbiterConfig& config,
    const std::vector<TenantDemand>& tenants);

/// Partitions the shared checkpoint channel among tenants, one grant per
/// tenant in input order. Pure and deterministic like allocate_shares (FIFO
/// tie-breaking by arrival, then job id). Without staggering, every tenant
/// gets bandwidth / max(1, n_demanding) and an always-open window —
/// concurrent cross-tenant writes dilute each other. With staggering, the
/// k-th demanding tenant (FIFO order) gets the full bandwidth inside its
/// exclusive slice [k*P/n, (k+1)*P/n) of each period P; tenants without
/// recorded pressure keep the full bandwidth and an open window (their
/// stray writes are corrected at the next reallocation — windows are
/// advisory, not a hard reservation). Requires
/// config.checkpoint_bandwidth_mb_per_s > 0.
std::vector<CheckpointGrant> allocate_checkpoint_windows(
    const ArbiterConfig& config, const std::vector<TenantDemand>& tenants);

}  // namespace wire::ensemble
