// Streaming job arrivals for the multi-tenant ensemble driver.
//
// An ArrivalProcess is a fully materialized, deterministic job stream: each
// arrival names a workflow profile (by index into the profile set handed to
// the driver), a site-clock arrival time, and two derived seeds — one for
// workflow instantiation (workload::make_workflow) and one for the job's
// ground-truth run variability. Materializing the stream up front keeps
// ensemble runs byte-reproducible from (config, seed) and lets tests inspect
// the exact trace the driver will see.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.h"

namespace wire::ensemble {

/// One job of the stream.
struct JobArrival {
  /// Dense job id in arrival order (assigned by the process).
  std::uint32_t job = 0;
  /// Site-clock arrival time, seconds.
  sim::SimTime arrival_seconds = 0.0;
  /// Index into the profile set the ensemble driver was constructed with.
  std::size_t profile_index = 0;
  /// Seed for workload::make_workflow (per-job DAG instantiation).
  std::uint64_t workflow_seed = 0;
  /// Seed for the job's ground-truth variability (sim::RunOptions::seed).
  std::uint64_t run_seed = 0;
};

/// Parameters of a Poisson job stream.
struct PoissonArrivalConfig {
  /// Mean interarrival time 1/λ, seconds.
  double mean_interarrival_seconds = 600.0;
  /// Number of jobs to draw.
  std::uint32_t job_count = 50;
  /// Root seed: drives interarrival draws, profile choices, and the derived
  /// per-job workflow/run seeds.
  std::uint64_t seed = 1;
};

/// A deterministic, pre-materialized stream of job arrivals.
class ArrivalProcess {
 public:
  /// Poisson process: exponential interarrivals with the configured mean,
  /// profiles drawn uniformly from [0, profile_count). Deterministic in
  /// (config, profile_count). Requires job_count >= 1, profile_count >= 1,
  /// mean_interarrival_seconds > 0.
  static ArrivalProcess poisson(const PoissonArrivalConfig& config,
                                std::size_t profile_count);

  /// Fixed trace: the caller supplies (arrival time, profile index) pairs
  /// explicitly; job ids and per-job seeds are (re)assigned in arrival
  /// order so the trace is normalized. Requires a non-empty trace with
  /// non-negative, non-decreasing-after-sort times.
  static ArrivalProcess fixed_trace(std::vector<JobArrival> trace,
                                    std::uint64_t seed = 1);

  /// Arrivals sorted by (arrival time, job id).
  const std::vector<JobArrival>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }

 private:
  explicit ArrivalProcess(std::vector<JobArrival> jobs)
      : jobs_(std::move(jobs)) {}

  std::vector<JobArrival> jobs_;
};

}  // namespace wire::ensemble
