// The ensemble driver: runs a stream of workflow jobs on one shared cloud
// site. Each job gets its own FrameworkMaster + ScalingPolicy instance (a
// fresh one from the policy factory) wrapped in a sim::JobEngine; the driver
// multiplexes the engines over a single site clock, interleaving their
// discrete events in global time order. The SiteArbiter partitions the site
// instance cap among live jobs after every event; each tenant's engine
// enforces its share on the grow path and surfaces it to the tenant's policy
// through MonitorSnapshot::pool_cap.
//
// Isolation contract: a tenant's policy sees only its own job — its DAG, its
// task observations, its instances, its share as pool_cap. Nothing about
// other tenants (not even their existence) leaks through the monitoring
// surface; cross-tenant coupling happens exclusively through the arbiter's
// capacity partition.
//
// pool_cap semantics under the arbiter: an admitted tenant always sees its
// explicit share (1..site_cap) — never sim::kNoInstanceCap, which would mean
// "no ceiling imposed". A share of 0 is reported as a genuine 0 (all growth
// blocked), no longer conflated with the unlimited sentinel; arbiters floor
// a tenant's share at its live instance count, so 0 can only reach a tenant
// that currently holds no instances.
//
// Serialization guarantee the Plan scratch sharing relies on: run() pops ONE
// site event at a time and advances ONE tenant engine (or admits/retires one
// job) before touching the next — tenant policies never plan concurrently.
// exp::policy_factory exploits this by minting every WIRE controller of an
// ensemble with one shared core::PlanScratch arena (the projection's
// transient buffers), so per-tenant lookahead cost stops scaling with
// allocation churn. Any custom PolicyFactory that shares state across the
// policies it mints inherits the same contract: safe under this driver,
// not safe under a hypothetical concurrent stepper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/report.h"
#include "sim/config.h"
#include "sim/scaling_policy.h"
#include "workload/profiles.h"

namespace wire::ensemble {

/// Creates one fresh policy instance per job (tenant controllers share no
/// state across jobs).
using PolicyFactory =
    std::function<std::unique_ptr<sim::ScalingPolicy>()>;

struct EnsembleOptions {
  ArbiterStrategy strategy = ArbiterStrategy::StaticFairShare;
  /// Shared site capacity partitioned by the arbiter (>= 1).
  std::uint32_t site_cap = 12;
  /// Per-job bootstrap pool at admission, clamped to the job's share.
  std::uint32_t initial_instances = 1;
  /// Hard guard against a stuck ensemble (site clock).
  sim::SimTime max_sim_seconds = 90.0 * 24.0 * 3600.0;
  /// Also run every job alone on the full site (same workflow, policy kind,
  /// seeds) to compute the dedicated-site makespan that per-job slowdown is
  /// measured against. Doubles the simulation work; disable for quick runs
  /// (slowdown and dedicated makespan then report 0).
  bool dedicated_baseline = true;
};

/// Site-level observation emitted after every processed event (arrival,
/// tenant event, retirement) once shares are rebalanced. Tests use it to
/// assert the capacity invariant at every control point.
struct SiteSample {
  sim::SimTime now = 0.0;
  std::uint32_t site_cap = 0;
  /// Sum of live instances across all tenants (<= site_cap, invariant).
  std::uint32_t live_total = 0;
  /// Per-tenant rows, one for every job that has arrived but not finished,
  /// in arrival order.
  std::vector<std::uint32_t> jobs;
  std::vector<std::uint32_t> live;
  std::vector<std::uint32_t> shares;
};

class EnsembleDriver {
 public:
  /// `profiles` is the workflow catalogue the arrival stream indexes into;
  /// `cloud` describes one site instance (its max_instances is ignored —
  /// EnsembleOptions::site_cap is the shared ceiling, and the per-tenant
  /// engines are capped by their arbiter shares instead).
  EnsembleDriver(std::vector<workload::WorkflowProfile> profiles,
                 ArrivalProcess arrivals, PolicyFactory policy_factory,
                 const sim::CloudConfig& cloud,
                 const EnsembleOptions& options = {});
  ~EnsembleDriver();  // out of line: Tenant is private to the .cpp

  /// Observer invoked after every processed site event (optional).
  void set_site_listener(std::function<void(const SiteSample&)> listener) {
    site_listener_ = std::move(listener);
  }

  /// Runs the whole stream to completion and reports. Deterministic in
  /// (profiles, arrivals, policy factory output, cloud, options): two runs
  /// with identical inputs produce byte-identical reports. Call once.
  EnsembleReport run();

 private:
  struct Tenant;

  void admit(Tenant& tenant, sim::SimTime now);
  void retire(Tenant& tenant, sim::SimTime now);
  void rebalance(sim::SimTime now);
  double dedicated_makespan(const Tenant& tenant);

  std::vector<workload::WorkflowProfile> profiles_;
  ArrivalProcess arrivals_;
  PolicyFactory policy_factory_;
  sim::CloudConfig cloud_;
  EnsembleOptions options_;
  std::function<void(const SiteSample&)> site_listener_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  double busy_slot_seconds_ = 0.0;
  double allocated_instance_seconds_ = 0.0;
  bool ran_ = false;
};

}  // namespace wire::ensemble
