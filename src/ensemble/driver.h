// The ensemble driver: runs a stream of workflow jobs on one shared cloud
// site. Each job gets its own FrameworkMaster + ScalingPolicy instance (a
// fresh one from the policy factory) wrapped in a sim::JobEngine; the driver
// multiplexes the engines over a single site clock, interleaving their
// discrete events in global time order. The SiteArbiter partitions the site
// instance cap among live jobs after every event; each tenant's engine
// enforces its share on the grow path and surfaces it to the tenant's policy
// through MonitorSnapshot::pool_cap.
//
// Isolation contract: a tenant's policy sees only its own job — its DAG, its
// task observations, its instances, its share as pool_cap. Nothing about
// other tenants (not even their existence) leaks through the monitoring
// surface; cross-tenant coupling happens exclusively through the arbiter's
// capacity partition.
//
// pool_cap semantics under the arbiter: an admitted tenant always sees its
// explicit share (1..site_cap) — never sim::kNoInstanceCap, which would mean
// "no ceiling imposed". A share of 0 is reported as a genuine 0 (all growth
// blocked), no longer conflated with the unlimited sentinel; arbiters floor
// a tenant's share at its live instance count, so 0 can only reach a tenant
// that currently holds no instances.
//
// Execution model (sharded windowed stepping): tenants are partitioned
// across `EnsembleOptions::shards` shards by a fixed seeded map
// (tenant_shard); the driver repeatedly computes a horizon H = the earliest
// pending *demand-relevant* site event (next arrival, or any tenant's next
// ControlTick / InstanceDrain / InstanceCrash / fault-mode InstanceReady —
// see JobEngine::next_demand_event_time), advances every shard's engines
// through their purely local events strictly below H in parallel on a
// util::ThreadPool, then serially processes exactly one site event (arrival,
// tracked tenant event, or retirement) and rebalances shares. Local events
// never read the instance cap and never move the demand signal, so the
// parallel phase commutes with the serial one and the result is
// byte-identical to the fully sequential reference for any shard and worker
// count (EnsembleOptions::shards == 0 keeps that reference loop;
// tests/test_ensemble_sharded.cpp proves the equivalence differentially).
//
// Arbitration is two-phase under sharding: per-tenant demand rows are
// gathered in parallel into canonical arrival-order slots, then one serial
// merge runs allocate_shares over the canonically ordered rows — so the
// allocation arithmetic and its (arrival, job id) tie-breaks never depend on
// shard or thread count.
//
// Policy-state sharing: tenant policies plan() only at serial points (control
// ticks), so even a PolicyFactory that shares one core::PlanScratch across
// the policies it mints is safe in the main loop. Dedicated-baseline runs DO
// execute whole jobs concurrently, so they are only parallelized when the
// driver was built with a shard-aware ShardedPolicyFactory
// (exp::sharded_policy_factory mints per-shard arenas); with a plain
// PolicyFactory the baselines fall back to sequential execution.
//
// Site listener cadence: the windowed engine emits SiteSamples at serial
// events only (arrivals, demand-relevant tenant events, retirements) — the
// points where shares can actually move. The shards == 0 reference loop
// keeps the historical after-every-event cadence. Share values and the
// capacity invariant are identical at the shared points.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/report.h"
#include "sim/config.h"
#include "sim/scaling_policy.h"
#include "util/thread_pool.h"
#include "workload/profiles.h"

namespace wire::ensemble {

/// Creates one fresh policy instance per job (tenant controllers share no
/// state across jobs).
using PolicyFactory =
    std::function<std::unique_ptr<sim::ScalingPolicy>()>;

/// Shard-aware policy factory: mints a fresh policy for a tenant pinned to
/// `shard`. Policies minted for the same shard may share scratch state
/// (exp::sharded_policy_factory shares one PlanScratch arena per shard);
/// policies of different shards must share nothing mutable, because
/// dedicated-baseline runs execute different shards concurrently.
using ShardedPolicyFactory =
    std::function<std::unique_ptr<sim::ScalingPolicy>(std::uint32_t shard)>;

/// Deterministic seeded tenant→shard map: which shard owns job `job` under
/// `shards`-way partitioning. Pure (SplitMix64 over (shard_seed, job)), so
/// the partition is stable across runs, platforms, and worker counts.
/// Returns 0 when shards <= 1.
std::uint32_t tenant_shard(std::uint64_t shard_seed, std::uint32_t shards,
                           std::uint32_t job);

struct EnsembleOptions {
  ArbiterStrategy strategy = ArbiterStrategy::StaticFairShare;
  /// Shared site capacity partitioned by the arbiter (>= 1).
  std::uint32_t site_cap = 12;
  /// Per-job bootstrap pool at admission, clamped to the job's share.
  std::uint32_t initial_instances = 1;
  /// Hard guard against a stuck ensemble (site clock).
  sim::SimTime max_sim_seconds = 90.0 * 24.0 * 3600.0;
  /// Also run every job alone on the full site (same workflow, policy kind,
  /// seeds) to compute the dedicated-site makespan that per-job slowdown is
  /// measured against. Doubles the simulation work; disable for quick runs
  /// (slowdown and dedicated makespan then report 0).
  bool dedicated_baseline = true;
  /// Tenant shards for the windowed parallel engine. 0 = the legacy fully
  /// sequential reference loop; 1 = windowed engine, single shard (no
  /// threads spawned); >= 2 = parallel shard advance + two-phase
  /// arbitration. The EnsembleReport is byte-identical across all values.
  std::uint32_t shards = 1;
  /// Worker threads backing the shard pool (0 = hardware concurrency).
  /// Never affects results, only wall-clock.
  std::uint32_t threads = 0;
  /// Seed of the tenant→shard map (kept fixed so recorded runs replay onto
  /// identical partitions).
  std::uint64_t shard_seed = 0x5A17D5ull;
  /// Feed each tenant's projected memory demand
  /// (JobEngine::requested_mem_mb) into demand-weighted arbitration via
  /// ArbiterConfig::instance_mem_mb taken from the site's MemoryConfig. Off
  /// by default: baselines stay byte-identical.
  bool memory_aware_demand = false;
  /// Per-tenant budget (charging units) every job of the stream runs under;
  /// 0 disables budget accounting entirely (byte-identical baselines). The
  /// driver does not enforce the budget itself — the tenant's own
  /// policies::BudgetPolicy does (mint one through exp::budget_policy_factory
  /// with BudgetOptions::budget_units equal to this) — but it seeds the
  /// demand signal: a tenant whose engine has not yet reported a remaining
  /// budget bids with the full amount, and the report's per-job budget /
  /// overrun counters are measured against it.
  double budget_units = 0.0;
  /// Cooperative checkpoint staggering on the shared checkpoint channel
  /// (only meaningful when the site's CheckpointConfig is enabled). Off:
  /// tenants with checkpoint pressure share the channel concurrently — each
  /// is installed its diluted bandwidth share. On: the arbiter serializes
  /// access into round-robin windows at full bandwidth
  /// (allocate_checkpoint_windows).
  bool stagger_checkpoints = false;
  /// Staggering round length (seconds); 0 = the site's control lag.
  double checkpoint_stagger_period_seconds = 0.0;
};

/// Site-level observation emitted after every processed event (arrival,
/// tenant event, retirement) once shares are rebalanced. Tests use it to
/// assert the capacity invariant at every control point.
struct SiteSample {
  sim::SimTime now = 0.0;
  std::uint32_t site_cap = 0;
  /// Sum of live instances across all tenants (<= site_cap, invariant).
  std::uint32_t live_total = 0;
  /// Per-tenant rows, one for every job that has arrived but not finished,
  /// in arrival order.
  std::vector<std::uint32_t> jobs;
  std::vector<std::uint32_t> live;
  std::vector<std::uint32_t> shares;
};

class EnsembleDriver {
 public:
  /// `profiles` is the workflow catalogue the arrival stream indexes into;
  /// `cloud` describes one site instance (its max_instances is ignored —
  /// EnsembleOptions::site_cap is the shared ceiling, and the per-tenant
  /// engines are capped by their arbiter shares instead). With a plain
  /// PolicyFactory the minted policies may share scratch (main loop plans
  /// serially), but dedicated-baseline runs stay sequential.
  EnsembleDriver(std::vector<workload::WorkflowProfile> profiles,
                 ArrivalProcess arrivals, PolicyFactory policy_factory,
                 const sim::CloudConfig& cloud,
                 const EnsembleOptions& options = {});

  /// Shard-aware overload: policies are minted per tenant shard
  /// (exp::sharded_policy_factory), which additionally lets
  /// dedicated-baseline runs execute shards in parallel.
  EnsembleDriver(std::vector<workload::WorkflowProfile> profiles,
                 ArrivalProcess arrivals,
                 ShardedPolicyFactory sharded_policy_factory,
                 const sim::CloudConfig& cloud,
                 const EnsembleOptions& options = {});
  ~EnsembleDriver();  // out of line: Tenant is private to the .cpp

  /// Observer invoked after every processed site event (optional).
  void set_site_listener(std::function<void(const SiteSample&)> listener) {
    site_listener_ = std::move(listener);
  }

  /// Runs the whole stream to completion and reports. Deterministic in
  /// (profiles, arrivals, policy factory output, cloud, options): two runs
  /// with identical inputs produce byte-identical reports. Call once.
  EnsembleReport run();

 private:
  struct Tenant;

  void admit(Tenant& tenant, sim::SimTime now);
  void retire(Tenant& tenant, sim::SimTime now);
  void rebalance(sim::SimTime now);
  void gather_demands(std::vector<TenantDemand>& demands) const;
  void admit_arrival(const JobArrival& a);
  void run_sequential_loop();
  void run_windowed_loop();
  EnsembleReport assemble_report();
  double dedicated_makespan(const Tenant& tenant);

  std::vector<workload::WorkflowProfile> profiles_;
  ArrivalProcess arrivals_;
  /// All policy minting goes through the sharded form; a plain PolicyFactory
  /// is wrapped to ignore the shard (and parallel_safe_factory_ is false).
  ShardedPolicyFactory policy_factory_;
  bool parallel_safe_factory_ = false;
  sim::CloudConfig cloud_;
  EnsembleOptions options_;
  std::function<void(const SiteSample&)> site_listener_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  /// Arrived, not yet retired tenants in arrival order (the serial scan
  /// set), and the per-shard partition of the same set (the parallel
  /// advance set). Maintained at arrival admission/retirement.
  std::vector<Tenant*> open_;
  std::vector<std::vector<Tenant*>> shard_members_;
  /// Worker pool for the windowed engine; null unless shards >= 2.
  std::unique_ptr<util::ThreadPool> pool_;
  double busy_slot_seconds_ = 0.0;
  double allocated_instance_seconds_ = 0.0;
  bool ran_ = false;
};

}  // namespace wire::ensemble
