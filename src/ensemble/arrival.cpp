#include "ensemble/arrival.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace wire::ensemble {

namespace {

/// Distinct seed streams per job: workflow instantiation and ground truth
/// must not be correlated draws of the same stream.
constexpr std::uint64_t kWorkflowStream = 0;
constexpr std::uint64_t kRunStream = 1;

void assign_seeds(std::vector<JobArrival>& jobs, std::uint64_t root) {
  for (std::uint32_t i = 0; i < jobs.size(); ++i) {
    jobs[i].job = i;
    jobs[i].workflow_seed =
        util::derive_seed(root, 2ull * i + kWorkflowStream);
    jobs[i].run_seed = util::derive_seed(root, 2ull * i + kRunStream);
  }
}

}  // namespace

ArrivalProcess ArrivalProcess::poisson(const PoissonArrivalConfig& config,
                                       std::size_t profile_count) {
  WIRE_REQUIRE(config.job_count >= 1, "need at least one job");
  WIRE_REQUIRE(profile_count >= 1, "need at least one workflow profile");
  WIRE_REQUIRE(config.mean_interarrival_seconds > 0.0,
               "mean interarrival must be positive");
  util::Rng rng(config.seed);
  std::vector<JobArrival> jobs;
  jobs.reserve(config.job_count);
  sim::SimTime clock = 0.0;
  for (std::uint32_t i = 0; i < config.job_count; ++i) {
    clock += rng.exponential(config.mean_interarrival_seconds);
    JobArrival a;
    a.arrival_seconds = clock;
    a.profile_index = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(profile_count) - 1));
    jobs.push_back(a);
  }
  assign_seeds(jobs, config.seed);
  return ArrivalProcess(std::move(jobs));
}

ArrivalProcess ArrivalProcess::fixed_trace(std::vector<JobArrival> trace,
                                           std::uint64_t seed) {
  WIRE_REQUIRE(!trace.empty(), "need at least one job");
  for (const JobArrival& a : trace) {
    WIRE_REQUIRE(a.arrival_seconds >= 0.0, "arrival times must be >= 0");
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const JobArrival& a, const JobArrival& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  assign_seeds(trace, seed);
  return ArrivalProcess(std::move(trace));
}

}  // namespace wire::ensemble
