#include "ensemble/report.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/table.h"

namespace wire::ensemble {

void EnsembleReport::finalize(double busy_slot_seconds,
                              double allocated_instance_seconds) {
  WIRE_REQUIRE(site_cap > 0 && slots_per_instance > 0,
               "finalize needs the site geometry");
  horizon_seconds = 0.0;
  total_cost_units = 0.0;
  mean_queue_wait_seconds = 0.0;
  mean_slowdown = 0.0;
  max_slowdown = 0.0;
  total_task_faults = 0;
  total_instance_crashes = 0;
  total_quarantined_tasks = 0;
  total_over_budget_units = 0.0;
  jobs_over_budget = 0;
  for (const JobOutcome& j : jobs) {
    horizon_seconds = std::max(horizon_seconds, j.completed_seconds);
    total_cost_units += j.cost_units;
    mean_queue_wait_seconds += j.queue_wait_seconds;
    mean_slowdown += j.slowdown;
    max_slowdown = std::max(max_slowdown, j.slowdown);
    total_task_faults += j.task_faults;
    total_instance_crashes += j.instance_crashes;
    total_quarantined_tasks += j.quarantined_tasks;
    total_over_budget_units += j.over_budget_units;
    if (j.budget_units > 0.0 && j.over_budget_units > 0.0) ++jobs_over_budget;
  }
  if (!jobs.empty()) {
    mean_queue_wait_seconds /= static_cast<double>(jobs.size());
    mean_slowdown /= static_cast<double>(jobs.size());
  }
  if (horizon_seconds > 0.0) {
    const double capacity_slot_seconds =
        static_cast<double>(site_cap) *
        static_cast<double>(slots_per_instance) * horizon_seconds;
    site_utilization = busy_slot_seconds / capacity_slot_seconds;
    allocation_ratio = allocated_instance_seconds /
                       (static_cast<double>(site_cap) * horizon_seconds);
    throughput_jobs_per_hour =
        static_cast<double>(jobs.size()) / horizon_seconds * 3600.0;
  } else {
    site_utilization = 0.0;
    allocation_ratio = 0.0;
    throughput_jobs_per_hour = 0.0;
  }
}

std::string EnsembleReport::render() const {
  util::TextTable table;
  table.set_header({"job", "workflow", "arrival", "wait", "makespan",
                    "dedicated", "slowdown", "cost", "peak", "restarts",
                    "faults", "crashes", "quar"});
  for (const JobOutcome& j : jobs) {
    table.add_row({std::to_string(j.job), j.workflow_name,
                   util::fmt(j.arrival_seconds, 1),
                   util::fmt(j.queue_wait_seconds, 1),
                   util::fmt(j.makespan_seconds, 1),
                   util::fmt(j.dedicated_makespan_seconds, 1),
                   util::fmt(j.slowdown, 3), util::fmt(j.cost_units, 2),
                   std::to_string(j.peak_instances),
                   std::to_string(j.task_restarts),
                   std::to_string(j.task_faults),
                   std::to_string(j.instance_crashes),
                   std::to_string(j.quarantined_tasks)});
  }
  std::ostringstream out;
  out << "ensemble: policy=" << tenant_policy
      << " arbiter=" << arbiter_strategy << " site_cap=" << site_cap
      << " jobs=" << jobs.size() << "\n";
  out << table.render();
  out << "horizon " << util::fmt(horizon_seconds, 1) << " s, total cost "
      << util::fmt(total_cost_units, 2) << " units, site utilization "
      << util::fmt(site_utilization, 4) << ", allocation ratio "
      << util::fmt(allocation_ratio, 4) << ", throughput "
      << util::fmt(throughput_jobs_per_hour, 3) << " jobs/h, mean wait "
      << util::fmt(mean_queue_wait_seconds, 1) << " s, slowdown mean "
      << util::fmt(mean_slowdown, 3) << " / max "
      << util::fmt(max_slowdown, 3) << "\n";
  if (total_task_faults > 0 || total_instance_crashes > 0 ||
      total_quarantined_tasks > 0) {
    out << "faults: task faults " << total_task_faults
        << ", instance crashes " << total_instance_crashes
        << ", quarantined tasks " << total_quarantined_tasks << "\n";
  }
  // Conditional like the fault line: unbudgeted runs keep the historical
  // bytes (the budget-off identity contract).
  bool budgeted = false;
  for (const JobOutcome& j : jobs) budgeted = budgeted || j.budget_units > 0.0;
  if (budgeted) {
    out << "budget: " << jobs_over_budget << "/" << jobs.size()
        << " jobs over budget, total overrun "
        << util::fmt(total_over_budget_units, 2) << " units\n";
  }
  return out.str();
}

bool operator==(const JobOutcome& a, const JobOutcome& b) {
  return a.job == b.job && a.workflow_name == b.workflow_name &&
         a.arrival_seconds == b.arrival_seconds &&
         a.admitted_seconds == b.admitted_seconds &&
         a.completed_seconds == b.completed_seconds &&
         a.queue_wait_seconds == b.queue_wait_seconds &&
         a.makespan_seconds == b.makespan_seconds &&
         a.dedicated_makespan_seconds == b.dedicated_makespan_seconds &&
         a.slowdown == b.slowdown && a.cost_units == b.cost_units &&
         a.budget_units == b.budget_units &&
         a.over_budget_units == b.over_budget_units &&
         a.peak_instances == b.peak_instances &&
         a.task_restarts == b.task_restarts &&
         a.task_faults == b.task_faults &&
         a.instance_crashes == b.instance_crashes &&
         a.quarantined_tasks == b.quarantined_tasks;
}

bool operator==(const EnsembleReport& a, const EnsembleReport& b) {
  return a.tenant_policy == b.tenant_policy &&
         a.arbiter_strategy == b.arbiter_strategy &&
         a.site_cap == b.site_cap &&
         a.slots_per_instance == b.slots_per_instance && a.jobs == b.jobs &&
         a.horizon_seconds == b.horizon_seconds &&
         a.total_cost_units == b.total_cost_units &&
         a.site_utilization == b.site_utilization &&
         a.allocation_ratio == b.allocation_ratio &&
         a.throughput_jobs_per_hour == b.throughput_jobs_per_hour &&
         a.mean_queue_wait_seconds == b.mean_queue_wait_seconds &&
         a.mean_slowdown == b.mean_slowdown &&
         a.max_slowdown == b.max_slowdown &&
         a.total_task_faults == b.total_task_faults &&
         a.total_instance_crashes == b.total_instance_crashes &&
         a.total_quarantined_tasks == b.total_quarantined_tasks &&
         a.total_over_budget_units == b.total_over_budget_units &&
         a.jobs_over_budget == b.jobs_over_budget;
}

}  // namespace wire::ensemble
