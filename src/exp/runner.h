// Repetition runner for the experiment matrix: executes (workflow × policy ×
// charging unit) cells with repeated seeds, fanning out across a thread pool.
// Each run is an isolated, single-threaded simulation, so results are
// independent of scheduling and fully reproducible from the base seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.h"
#include "dag/workflow.h"
#include "exp/settings.h"
#include "metrics/report.h"
#include "sim/driver.h"
#include "workload/profiles.h"

namespace wire::exp {

struct MatrixOptions {
  std::vector<PolicyKind> policies = all_policies();
  std::vector<double> charging_units = paper_charging_units();
  /// Repetitions per cell (the paper repeats each run 3–7 times).
  std::uint32_t repetitions = 3;
  std::uint64_t base_seed = 42;
  /// Worker threads for the sweep (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Seed used to instantiate workflow DAGs from profiles (fixed so the
  /// characterization matches Table I across the whole matrix).
  std::uint64_t dag_seed = 7;
  core::WireOptions wire_options;
};

/// One (workflow, policy, charging unit) cell of Figs. 5/6.
struct CellResult {
  std::string workflow;
  PolicyKind policy = PolicyKind::Wire;
  double charging_unit_seconds = 0.0;
  metrics::CellStats stats;
  std::vector<sim::RunResult> runs;
};

/// Runs one cell: `repetitions` seeded runs of `workflow` under `policy` on
/// the §IV-B site with the given charging unit.
CellResult run_cell(const dag::Workflow& workflow, PolicyKind policy,
                    double charging_unit_seconds, const MatrixOptions& options,
                    std::uint64_t cell_stream);

/// Runs the full matrix for the given workload profiles, in parallel.
/// Results are ordered (profile-major, then policy, then charging unit).
std::vector<CellResult> run_matrix(
    const std::vector<workload::WorkflowProfile>& profiles,
    const MatrixOptions& options);

}  // namespace wire::exp
