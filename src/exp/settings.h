// The experiment settings matrix of §IV-C: four resource-management policies
// × four charging units (1, 15, 30, 60 minutes), on the simulated ExoGENI
// site of §IV-B (12 XOXLarge instances max, 4 slots each, ~3 minute lag).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "policies/budget.h"
#include "sim/config.h"
#include "sim/scaling_policy.h"

namespace wire::exp {

/// The four §IV-C resource-management settings.
enum class PolicyKind {
  FullSite,            // static, 12 instances ("full-site runs")
  PureReactive,        // pool == active tasks
  ReactiveConserving,  // reactive load + steering release rules
  Wire,                // the WIRE controller
};

const char* policy_label(PolicyKind kind);

/// All four, in paper order.
std::vector<PolicyKind> all_policies();

/// The §IV-B charging units in seconds: 1, 15, 30, 60 minutes.
std::vector<double> paper_charging_units();

/// The §IV-B cloud site with the given charging unit.
sim::CloudConfig paper_cloud(double charging_unit_seconds);

/// Instantiates a policy. `wire_options` applies to PolicyKind::Wire only.
std::unique_ptr<sim::ScalingPolicy> make_policy(
    PolicyKind kind, const core::WireOptions& wire_options = {});

/// A reusable factory for `kind`: each call yields a fresh policy instance.
/// This is the shape the multi-tenant ensemble driver consumes (one
/// controller per concurrent job). For PolicyKind::Wire, every controller
/// from one factory shares a single Plan scratch arena (safe: the ensemble
/// driver only lets tenant policies plan() at serial points, never
/// concurrently; see core/plan_scratch.h) — pass WireOptions::plan_scratch
/// to override. Dedicated-baseline runs under this factory stay sequential;
/// use sharded_policy_factory to parallelize them.
///
/// With `wire_options.bandit` enabled, every minted controller carries its
/// OWN BanditSelector (per-tenant predictor selection), all seeded from the
/// same `bandit.seed`. The seed is deliberately NOT mixed with a mint-order
/// counter: the sharded factory mints from worker threads concurrently, so
/// mint order is nondeterministic — per-tenant selector streams still
/// diverge deterministically because each tenant feeds its selector its own
/// regret sequence. Selector-off (`bandit.arms == 0`) stays byte-identical
/// to the pre-bandit factories.
std::function<std::unique_ptr<sim::ScalingPolicy>()> policy_factory(
    PolicyKind kind, const core::WireOptions& wire_options = {});

/// Shard-aware factory for the sharded ensemble driver: policies minted for
/// the same shard share one Plan scratch arena (created lazily, under a
/// mutex so concurrent dedicated-baseline minting is safe); different shards
/// never share scratch, so whole jobs of different shards may run
/// concurrently. Scratch identity never affects results (the arena holds no
/// cross-tick state), so this factory is result-identical to policy_factory
/// for any shard assignment.
std::function<std::unique_ptr<sim::ScalingPolicy>(std::uint32_t)>
sharded_policy_factory(PolicyKind kind,
                       const core::WireOptions& wire_options = {});

/// As policy_factory, with every minted policy wrapped in a
/// policies::BudgetPolicy carrying `budget`. With budget.budget_units == 0
/// the wrapper is a pure passthrough and the factory's runs are
/// byte-identical to policy_factory's — the budget-off identity contract.
std::function<std::unique_ptr<sim::ScalingPolicy>()> budget_policy_factory(
    PolicyKind kind, const policies::BudgetOptions& budget,
    const core::WireOptions& wire_options = {});

/// As sharded_policy_factory, budget-wrapped the same way.
std::function<std::unique_ptr<sim::ScalingPolicy>(std::uint32_t)>
sharded_budget_policy_factory(PolicyKind kind,
                              const policies::BudgetOptions& budget,
                              const core::WireOptions& wire_options = {});

/// Bootstrap pool size for a policy on a site: the full site for FullSite,
/// one instance for the elastic policies.
std::uint32_t initial_instances(PolicyKind kind,
                                const sim::CloudConfig& config);

}  // namespace wire::exp
