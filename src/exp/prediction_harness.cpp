#include "exp/prediction_harness.h"

#include <algorithm>

#include "sim/monitor.h"
#include "util/check.h"
#include "util/rng.h"

namespace wire::exp {

using dag::StageId;
using dag::TaskId;

StageReplay replay_stage(const dag::Workflow& workflow, StageId stage,
                         const std::vector<double>& actual_exec,
                         const std::vector<TaskId>& order,
                         const predict::PredictorConfig& config) {
  WIRE_REQUIRE(actual_exec.size() == workflow.task_count(),
               "actual_exec must be indexed by TaskId");
  const auto members = workflow.stage_tasks(stage);
  WIRE_REQUIRE(order.size() == members.size(),
               "order must be a permutation of the stage");
  for (TaskId t : order) {
    WIRE_REQUIRE(workflow.task(t).stage == stage,
                 "order contains a task from another stage");
    WIRE_REQUIRE(actual_exec[t] > 0.0,
                 "stage member lacks an actual execution time");
  }

  predict::TaskPredictor predictor(workflow, config);
  sim::MonitorSnapshot snap;
  snap.tasks.assign(workflow.task_count(), sim::TaskObservation{});
  for (const dag::TaskSpec& t : workflow.tasks()) {
    snap.tasks[t.id].input_mb = t.input_mb;
  }
  snap.incomplete_tasks = static_cast<std::uint32_t>(workflow.task_count());

  StageReplay replay;
  replay.stage = stage;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const TaskId task = order[k];
    if (k > 0) {
      // Pending-task view first (policy 3)...
      snap.tasks[task].phase = sim::TaskPhase::Pending;
      const predict::Prediction pending = predictor.predict_exec(task, snap);
      // ...then the ready-to-run view (policies 4/5).
      snap.tasks[task].phase = sim::TaskPhase::Ready;
      const predict::Prediction ready = predictor.predict_exec(task, snap);
      replay.actual.push_back(actual_exec[task]);
      replay.predicted_pending.push_back(pending.exec_seconds);
      replay.predicted_ready.push_back(ready.exec_seconds);
      replay.ready_policy.push_back(ready.policy);
    }
    // The task completes; the predictor harvests it on the next iteration.
    snap.tasks[task].phase = sim::TaskPhase::Completed;
    snap.tasks[task].exec_time = actual_exec[task];
    snap.tasks[task].transfer_time = 0.0;
    snap.now += 1.0;
    predictor.observe(snap);
  }
  return replay;
}

std::vector<StageReplay> replay_stage_random_orders(
    const dag::Workflow& workflow, StageId stage,
    const std::vector<double>& actual_exec, std::uint32_t n_orders,
    std::uint64_t seed, const predict::PredictorConfig& config) {
  const auto members = workflow.stage_tasks(stage);
  std::vector<TaskId> order(members.begin(), members.end());
  std::vector<StageReplay> out;
  out.reserve(n_orders);
  util::Rng rng(seed);
  for (std::uint32_t i = 0; i < n_orders; ++i) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    out.push_back(replay_stage(workflow, stage, actual_exec, order, config));
  }
  return out;
}

}  // namespace wire::exp
