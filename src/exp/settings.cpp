#include "exp/settings.h"

#include <mutex>
#include <unordered_map>

#include "policies/baselines.h"
#include "util/check.h"

namespace wire::exp {

const char* policy_label(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::FullSite: return "full-site";
    case PolicyKind::PureReactive: return "pure-reactive";
    case PolicyKind::ReactiveConserving: return "reactive-conserving";
    case PolicyKind::Wire: return "wire";
  }
  return "?";
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::FullSite, PolicyKind::PureReactive,
          PolicyKind::ReactiveConserving, PolicyKind::Wire};
}

std::vector<double> paper_charging_units() {
  return {60.0, 900.0, 1800.0, 3600.0};
}

sim::CloudConfig paper_cloud(double charging_unit_seconds) {
  sim::CloudConfig config;
  config.lag_seconds = 180.0;  // ~3 minute VM instantiation (§IV-B)
  config.charging_unit_seconds = charging_unit_seconds;
  config.slots_per_instance = 4;  // XOXLarge hosts up to 4 concurrent tasks
  config.max_instances = 12;      // site maximum
  // Substrate realism for the §IV-C runs: the site's storage/network fabric
  // is shared (transfers contend), and each dispatch pays the Condor
  // negotiation/startup cost.
  config.variability.aggregate_bandwidth_mb_per_s = 300.0;
  config.dispatch_overhead_seconds = 10.0;
  return config;
}

std::unique_ptr<sim::ScalingPolicy> make_policy(
    PolicyKind kind, const core::WireOptions& wire_options) {
  switch (kind) {
    case PolicyKind::FullSite:
      return std::make_unique<policies::StaticPolicy>(12, "full-site");
    case PolicyKind::PureReactive:
      return std::make_unique<policies::PureReactivePolicy>();
    case PolicyKind::ReactiveConserving:
      return std::make_unique<policies::ReactiveConservingPolicy>();
    case PolicyKind::Wire:
      return std::make_unique<core::WireController>(wire_options);
  }
  WIRE_REQUIRE(false, "unknown policy kind");
  return nullptr;
}

std::function<std::unique_ptr<sim::ScalingPolicy>()> policy_factory(
    PolicyKind kind, const core::WireOptions& wire_options) {
  if (kind == PolicyKind::Wire) {
    // All WIRE controllers minted by this factory share ONE Plan scratch
    // arena: the ensemble driver serializes tenant planning (policies only
    // plan() at serial points of the windowed loop), so the arena is free
    // whenever the next tenant plans, and N tenants stop paying N sets of
    // projection-buffer allocation churn. A caller-supplied arena is
    // respected as-is.
    core::WireOptions shared = wire_options;
    if (!shared.plan_scratch) {
      shared.plan_scratch = std::make_shared<core::PlanScratch>();
    }
    return [kind, shared]() { return make_policy(kind, shared); };
  }
  return [kind, wire_options]() { return make_policy(kind, wire_options); };
}

std::function<std::unique_ptr<sim::ScalingPolicy>(std::uint32_t)>
sharded_policy_factory(PolicyKind kind,
                       const core::WireOptions& wire_options) {
  if (kind != PolicyKind::Wire) {
    return [kind, wire_options](std::uint32_t) {
      return make_policy(kind, wire_options);
    };
  }
  // One Plan scratch arena per shard, created on first use. The mutex makes
  // concurrent minting safe (the sharded driver mints dedicated-baseline
  // policies from worker threads); a caller-supplied arena is shared across
  // all shards as-is — callers doing that opt out of shard isolation.
  struct ArenaMap {
    std::mutex mutex;
    std::unordered_map<std::uint32_t, std::shared_ptr<core::PlanScratch>>
        arenas;
  };
  auto map = std::make_shared<ArenaMap>();
  return [kind, wire_options, map](std::uint32_t shard) {
    core::WireOptions shared = wire_options;
    if (!shared.plan_scratch) {
      std::lock_guard<std::mutex> lock(map->mutex);
      std::shared_ptr<core::PlanScratch>& arena = map->arenas[shard];
      if (!arena) arena = std::make_shared<core::PlanScratch>();
      shared.plan_scratch = arena;
    }
    return make_policy(kind, shared);
  };
}

std::function<std::unique_ptr<sim::ScalingPolicy>()> budget_policy_factory(
    PolicyKind kind, const policies::BudgetOptions& budget,
    const core::WireOptions& wire_options) {
  auto inner = policy_factory(kind, wire_options);
  return [inner, budget]() {
    return std::make_unique<policies::BudgetPolicy>(inner(), budget);
  };
}

std::function<std::unique_ptr<sim::ScalingPolicy>(std::uint32_t)>
sharded_budget_policy_factory(PolicyKind kind,
                              const policies::BudgetOptions& budget,
                              const core::WireOptions& wire_options) {
  auto inner = sharded_policy_factory(kind, wire_options);
  return [inner, budget](std::uint32_t shard) {
    return std::make_unique<policies::BudgetPolicy>(inner(shard), budget);
  };
}

std::uint32_t initial_instances(PolicyKind kind,
                                const sim::CloudConfig& config) {
  if (kind == PolicyKind::FullSite) {
    return config.max_instances > 0 ? config.max_instances : 12;
  }
  return 1;
}

}  // namespace wire::exp
