#include "exp/runner.h"

#include <atomic>

#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace wire::exp {

CellResult run_cell(const dag::Workflow& workflow, PolicyKind policy,
                    double charging_unit_seconds, const MatrixOptions& options,
                    std::uint64_t cell_stream) {
  CellResult cell;
  cell.workflow = workflow.name();
  cell.policy = policy;
  cell.charging_unit_seconds = charging_unit_seconds;

  const sim::CloudConfig config = paper_cloud(charging_unit_seconds);
  for (std::uint32_t rep = 0; rep < options.repetitions; ++rep) {
    auto policy_impl = make_policy(policy, options.wire_options);
    sim::RunOptions run_options;
    run_options.seed = util::derive_seed(options.base_seed,
                                         cell_stream * 1000 + rep);
    run_options.initial_instances = initial_instances(policy, config);
    sim::RunResult result =
        sim::simulate(workflow, *policy_impl, config, run_options);
    cell.stats.add(result);
    cell.runs.push_back(std::move(result));
  }
  return cell;
}

std::vector<CellResult> run_matrix(
    const std::vector<workload::WorkflowProfile>& profiles,
    const MatrixOptions& options) {
  // Materialize the DAGs once; they are shared read-only across runs.
  std::vector<dag::Workflow> workflows;
  workflows.reserve(profiles.size());
  for (const workload::WorkflowProfile& profile : profiles) {
    workflows.push_back(workload::make_workflow(profile, options.dag_seed));
  }

  struct Job {
    std::size_t profile_index;
    PolicyKind policy;
    double charging_unit;
    std::uint64_t cell_stream;
  };
  std::vector<Job> jobs;
  std::uint64_t stream = 0;
  for (std::size_t w = 0; w < workflows.size(); ++w) {
    for (PolicyKind policy : options.policies) {
      for (double u : options.charging_units) {
        jobs.push_back(Job{w, policy, u, stream++});
      }
    }
  }

  std::vector<CellResult> results(jobs.size());
  util::parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        const Job& job = jobs[i];
        results[i] = run_cell(workflows[job.profile_index], job.policy,
                              job.charging_unit, options, job.cell_stream);
      },
      options.threads);
  return results;
}

}  // namespace wire::exp
