// Prediction-accuracy harness (paper §IV-D, Fig. 4).
//
// The paper evaluates the online prediction policies per stage: task
// completions are replayed in randomly chosen orders, and each task's
// execution time is predicted from the peer completions that precede it.
// This harness replays a stage's completions (actual execution times taken
// from a ground-truth run) through a fresh TaskPredictor and records, per
// task:
//   - the prediction made just before the task runs, when it is ready
//     (policies 4/5 — input size matched against completed groups, or OGD), and
//   - the prediction for the same point while the task is still pending
//     (policy 3 — stage median), the estimate WIRE uses for tasks whose
//     inputs are not yet available.
// The first task of each order has no completed peers (policies 1/2) and is
// excluded, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "predict/task_predictor.h"

namespace wire::exp {

/// Per-order replay output for one stage.
struct StageReplay {
  dag::StageId stage = dag::kInvalidStage;
  /// Actual execution times of the predicted tasks, in replay order
  /// (excluding the first task of the order).
  std::vector<double> actual;
  /// Ready-task predictions (policy 4 or 5) aligned with `actual`.
  std::vector<double> predicted_ready;
  std::vector<predict::Policy> ready_policy;
  /// Pending-task predictions (policy 3) aligned with `actual`.
  std::vector<double> predicted_pending;
};

/// Replays the completions of `stage` in `order` (a permutation of the
/// stage's task ids). `actual_exec` is indexed by TaskId and must hold a
/// positive execution time for every stage member.
StageReplay replay_stage(const dag::Workflow& workflow, dag::StageId stage,
                         const std::vector<double>& actual_exec,
                         const std::vector<dag::TaskId>& order,
                         const predict::PredictorConfig& config = {});

/// Replays `n_orders` random permutations (seeded) of the stage.
std::vector<StageReplay> replay_stage_random_orders(
    const dag::Workflow& workflow, dag::StageId stage,
    const std::vector<double>& actual_exec, std::uint32_t n_orders,
    std::uint64_t seed, const predict::PredictorConfig& config = {});

}  // namespace wire::exp
