#include "predict/bandit.h"

#include <cmath>

#include "util/check.h"

namespace wire::predict {

std::vector<BanditArm> default_bandit_arms() {
  // Prefix-ordered so small `arms` values cover the most distinct variants
  // first: paper default, then the centre statistic, then the OGD ablation,
  // then the adaptive horizon, then the harvest-failed contamination grid.
  std::vector<BanditArm> arms;
  auto add = [&arms](bool use_mean, bool disable_ogd, bool harvest,
                     bool horizon, const char* label) {
    BanditArm arm;
    arm.config.use_mean = use_mean;
    arm.config.disable_ogd = disable_ogd;
    arm.config.harvest_failed_attempts = harvest;
    arm.adaptive_horizon = horizon;
    arm.label = label;
    arms.push_back(std::move(arm));
  };
  add(false, false, false, false, "median-ogd");
  add(true, false, false, false, "mean-ogd");
  add(false, true, false, false, "median-stage");
  add(false, false, false, true, "median-ogd-cap");
  add(true, true, false, false, "mean-stage");
  add(false, false, true, false, "median-ogd-harvest");
  add(true, false, true, false, "mean-ogd-harvest");
  add(false, true, true, false, "median-stage-harvest");
  add(true, true, true, false, "mean-stage-harvest");
  return arms;
}

BanditSelector::BanditSelector(const BanditOptions& options)
    : options_(options),
      arms_(options.arm_set.empty() ? default_bandit_arms()
                                    : options.arm_set),
      rng_(options.seed) {
  WIRE_REQUIRE(options_.arms > 0, "selector constructed with the off sentinel");
  WIRE_REQUIRE(options_.arms <= arms_.size(),
               "bandit arms exceed the arm set");
  WIRE_REQUIRE(options_.switch_period_ticks > 0,
               "bandit decision period must be positive");
  arms_.resize(options_.arms);
  stats_.resize(arms_.size());
  for (const BanditArm& arm : arms_) {
    WIRE_REQUIRE(arm.config.input_bucket_rel_tol ==
                     arms_.front().config.input_bucket_rel_tol,
                 "bandit arms must share one input bucket tolerance");
  }
}

const BanditArm& BanditSelector::arm(std::uint32_t index) const {
  WIRE_REQUIRE(index < arms_.size(), "unknown bandit arm");
  return arms_[index];
}

const ArmStats& BanditSelector::stats(std::uint32_t index) const {
  WIRE_REQUIRE(index < stats_.size(), "unknown bandit arm");
  return stats_[index];
}

bool BanditSelector::tick(double cost, std::uint32_t completions) {
  period_cost_ += cost;
  period_completions_ += completions;
  total_cost_ += cost;
  total_completions_ += completions;
  if (++period_ticks_ < options_.switch_period_ticks) return false;
  period_ticks_ = 0;
  if (period_completions_ == 0) {
    // Uninformative period (no completions, no regret signal): hold the arm
    // and keep accumulating. Deciding here would charge the live arm a
    // zero-cost pull it did not earn and spin the explorer on noise.
    return false;
  }
  ArmStats& live = stats_[current_];
  ++live.pulls;
  live.completions += period_completions_;
  live.total_cost += period_cost_;
  period_cost_ = 0.0;
  period_completions_ = 0;

  const std::uint32_t next = decide();
  decisions_.push_back(next);
  if (next == current_) return false;
  current_ = next;
  ++switches_;
  return true;
}

std::uint32_t BanditSelector::decide() {
  const std::uint32_t n = static_cast<std::uint32_t>(arms_.size());
  // Prime every arm once, in index order, before any scoring: both explorers
  // need an initial estimate per arm, and index order keeps the priming
  // sweep seed-independent.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (stats_[i].pulls == 0) return i;
  }

  if (options_.explorer == Explorer::EpsilonGreedyDecay) {
    const double eps =
        options_.epsilon0 /
        (1.0 + options_.decay * static_cast<double>(decisions_.size()));
    if (rng_.bernoulli(eps)) {
      return static_cast<std::uint32_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < n; ++i) {
      if (stats_[i].mean_cost() < stats_[best].mean_cost()) best = i;
    }
    return best;
  }

  // UCB1, cost-minimizing. The confidence bonus is scaled by the global mean
  // cost per completion so ucb_c is unitless (regret is in seconds and its
  // magnitude is workload-dependent).
  std::uint64_t total_pulls = 0;
  std::uint64_t completions = 0;
  double cost = 0.0;
  for (const ArmStats& s : stats_) {
    total_pulls += s.pulls;
    completions += s.completions;
    cost += s.total_cost;
  }
  const double scale =
      completions == 0 ? 1.0 : cost / static_cast<double>(completions);
  const double log_term = 2.0 * std::log(static_cast<double>(total_pulls));
  std::uint32_t best = 0;
  double best_score = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double bonus =
        options_.ucb_c * scale *
        std::sqrt(log_term / static_cast<double>(stats_[i].pulls));
    const double score = stats_[i].mean_cost() - bonus;
    if (i == 0 || score < best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::size_t BanditSelector::state_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += arms_.capacity() * sizeof(BanditArm);
  for (const BanditArm& arm : arms_) bytes += arm.label.capacity();
  bytes += stats_.capacity() * sizeof(ArmStats);
  bytes += decisions_.capacity() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace wire::predict
