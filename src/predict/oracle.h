// Clairvoyant estimator: reads the DAG's reference execution times instead
// of learning from monitoring data.
//
// Used to quantify the value of prediction accuracy (the paper's §IV-E
// observation that WIRE "is robust to imperfect prediction"): running the
// same steering policy with oracle estimates bounds how much better perfect
// prediction could do. The oracle is clairvoyant about the *nominal* task
// profile; it does not see the run's instance-speed or interference noise,
// so it is an upper bound on what any profile-based predictor can know.
#pragma once

#include "predict/estimator.h"

namespace wire::predict {

class OracleEstimator final : public Estimator {
 public:
  /// Binds to the workflow (kept by reference) and a nominal transfer-time
  /// model: expected transfer = latency + payload / bandwidth.
  OracleEstimator(const dag::Workflow& workflow,
                  double transfer_latency_seconds,
                  double bandwidth_mb_per_s);

  void observe(const sim::MonitorSnapshot& snapshot) override;

  double estimate_exec(dag::TaskId task,
                       const sim::MonitorSnapshot& snapshot) const override;

  double predict_remaining_occupancy(
      dag::TaskId task, const sim::MonitorSnapshot& snapshot) const override;

  double transfer_estimate() const override;

  std::size_t state_bytes() const override { return sizeof(*this); }

 private:
  double nominal_transfer(double payload_mb) const;

  const dag::Workflow* workflow_;
  double latency_;
  double bandwidth_;
  double mean_transfer_ = 0.0;
};

}  // namespace wire::predict
