// Online gradient descent model (paper Algorithm 1, Eq. 1).
//
// Per stage, task execution time is modeled as a linear function of input
// data size: t_i = a0_n + a1_n * d_i. Each MAPE iteration runs one gradient
// epoch over the stage's current training set (groups of completed tasks with
// the same input size, target = the group's median execution time), starting
// from the previous iteration's coefficients, with learning rate 0.1.
//
// Implementation note: Algorithm 1 as printed assumes features of order 1.
// With raw inputs in the hundreds of MB the step lr * d^2 diverges, so the
// model trains in a normalized space (d' = d/d_scale, t' = t/t_scale, scales
// tracked online from the training data) and converts coefficients back on
// prediction. The arithmetic inside the normalized space is exactly
// Algorithm 1. This is recorded as an implementation substitution in
// DESIGN.md.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace wire::predict {

/// One training point: a group M of completed peer tasks with (near-)equal
/// input size. `input_mb` is d_M; `exec_seconds` is t_M, the group's median
/// execution time.
struct TrainingPoint {
  double input_mb = 0.0;
  double exec_seconds = 0.0;
};

class OgdModel {
 public:
  explicit OgdModel(double learning_rate = 0.1)
      : learning_rate_(learning_rate) {}

  /// Runs one Algorithm-1 epoch over `training` (the stage's full current
  /// training set), updating the coefficients from their previous values.
  /// Empty training sets are a no-op.
  void update(const std::vector<TrainingPoint>& training);

  /// Predicted execution time (seconds) for a task with the given input
  /// size. Clamped at zero (a linear model can extrapolate negative).
  double predict(double input_mb) const;

  /// Coefficients in raw units: seconds and seconds/MB.
  double alpha0() const;
  double alpha1() const;

  /// Retargets the step size for subsequent epochs (predictor
  /// reconfiguration). Coefficients, scales and epoch count are untouched —
  /// the model continues from where the old rate left it.
  void set_learning_rate(double learning_rate) {
    learning_rate_ = learning_rate;
  }
  double learning_rate() const { return learning_rate_; }

  std::size_t epochs() const { return epochs_; }

 private:
  double learning_rate_;
  // Coefficients in normalized space; alpha = 0 initial state (paper takes
  // a0_0 = a1_0 = 0).
  double a0_ = 0.0;
  double a1_ = 0.0;
  // Normalization scales (1.0 until the first non-degenerate training set).
  double d_scale_ = 1.0;
  double t_scale_ = 1.0;
  bool scaled_ = false;
  std::size_t epochs_ = 0;
};

}  // namespace wire::predict
