// The estimator interface: what WIRE's planning layers need from a
// task-performance predictor.
//
// The production implementation is TaskPredictor (online, §III-C policies).
// OracleEstimator (oracle.h) is a clairvoyant variant used to quantify the
// value of prediction accuracy: it reads the DAG's reference execution times
// directly, which the online predictor can only approach asymptotically.
#pragma once

#include <cstddef>

#include "dag/workflow.h"
#include "sim/monitor.h"

namespace wire::predict {

struct Prediction;  // defined in task_predictor.h

class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Harvests one MAPE iteration's monitoring data.
  virtual void observe(const sim::MonitorSnapshot& snapshot) = 0;

  /// Estimated total execution time of a task (seconds).
  virtual double estimate_exec(dag::TaskId task,
                               const sim::MonitorSnapshot& snapshot) const = 0;

  /// Conservative minimum remaining slot occupancy at snapshot.now.
  virtual double predict_remaining_occupancy(
      dag::TaskId task, const sim::MonitorSnapshot& snapshot) const = 0;

  /// Current data-transfer time estimate (t̃_data), seconds.
  virtual double transfer_estimate() const = 0;

  /// Monotone revision counter over the estimator's *internal* model state:
  /// it must advance whenever an estimate this object could return for some
  /// fixed (task, snapshot) input may have changed. Consumers (the
  /// incremental lookahead cache) use it to detect refits between control
  /// ticks. Estimators whose estimates are pure functions of the workflow
  /// and cloud config (oracle, history) keep the default constant 0.
  virtual std::uint64_t revision() const { return 0; }

  /// Resident state footprint in bytes (overhead accounting).
  virtual std::size_t state_bytes() const = 0;
};

}  // namespace wire::predict
