#include "predict/ogd.h"

#include <algorithm>

#include "util/check.h"

namespace wire::predict {

void OgdModel::update(const std::vector<TrainingPoint>& training) {
  if (training.empty()) return;
  // Keep the normalization scales covering the training set (monotonically
  // growing, so normalized features stay in [0, 1] and the lr = 0.1 step is
  // always stable). Rescaling transforms the coefficients so the fitted
  // function t(d) is preserved exactly across scale changes.
  double d_max = d_scale_ > 0.0 && scaled_ ? d_scale_ : 0.0;
  double t_max = t_scale_ > 0.0 && scaled_ ? t_scale_ : 0.0;
  for (const TrainingPoint& p : training) {
    d_max = std::max(d_max, p.input_mb);
    t_max = std::max(t_max, p.exec_seconds);
  }
  const double new_d_scale = d_max > 0.0 ? d_max : 1.0;
  const double new_t_scale = t_max > 0.0 ? t_max : 1.0;
  if (!scaled_ || new_d_scale != d_scale_ || new_t_scale != t_scale_) {
    // Raw-space view: t = A0 + A1 * d with A0 = a0 * t_scale and
    // A1 = a1 * t_scale / d_scale. Re-express under the new scales.
    const double raw_a0 = scaled_ ? a0_ * t_scale_ : 0.0;
    const double raw_a1 = scaled_ ? a1_ * t_scale_ / d_scale_ : 0.0;
    d_scale_ = new_d_scale;
    t_scale_ = new_t_scale;
    a0_ = raw_a0 / t_scale_;
    a1_ = raw_a1 * d_scale_ / t_scale_;
    scaled_ = true;
  }

  // Algorithm 1, one epoch in normalized space.
  const double m = static_cast<double>(training.size());
  double g0 = 0.0;
  double g1 = 0.0;
  for (const TrainingPoint& p : training) {
    const double d = p.input_mb / d_scale_;
    const double t = p.exec_seconds / t_scale_;
    const double residual = t - (a1_ * d + a0_);
    g0 += -2.0 / m * residual;
    g1 += -2.0 / m * d * residual;
  }
  a0_ -= learning_rate_ * g0;
  a1_ -= learning_rate_ * g1;
  ++epochs_;
}

double OgdModel::predict(double input_mb) const {
  const double d = input_mb / d_scale_;
  const double t_norm = a0_ + a1_ * d;
  return std::max(0.0, t_norm * t_scale_);
}

double OgdModel::alpha0() const { return a0_ * t_scale_; }

double OgdModel::alpha1() const { return a1_ * t_scale_ / d_scale_; }

}  // namespace wire::predict
