#include "predict/task_predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/stats.h"

namespace wire::predict {

using dag::StageId;
using dag::TaskId;
using sim::TaskPhase;

TaskPredictor::TaskPredictor(const dag::Workflow& workflow,
                             const PredictorConfig& config)
    : workflow_(&workflow),
      config_(config),
      stages_(workflow.stage_count()),
      last_phase_(workflow.task_count(), TaskPhase::Pending),
      seen_failed_(workflow.task_count(), 0) {
  for (StageState& s : stages_) {
    s.model = OgdModel(config_.learning_rate);
  }
}

double TaskPredictor::center(std::vector<double> values) const {
  WIRE_CHECK(!values.empty(), "center of empty sample");
  return config_.use_mean ? util::mean(values)
                          : util::median(std::move(values));
}

long TaskPredictor::bucket_key(double input_mb) const {
  if (input_mb <= 0.0) return std::numeric_limits<long>::min();
  const double base = std::log1p(config_.input_bucket_rel_tol);
  return std::lround(std::log(input_mb) / base);
}

void TaskPredictor::add_sample(SampleSet& set, double value) const {
  set.pending.push_back(value);
  set.sum += value;
}

void TaskPredictor::flush_samples(SampleSet& set) const {
  if (!set.pending.empty()) {
    const std::size_t tail = set.sorted.size();
    set.sorted.insert(set.sorted.end(), set.pending.begin(),
                      set.pending.end());
    set.pending.clear();
    std::sort(set.sorted.begin() + static_cast<std::ptrdiff_t>(tail),
              set.sorted.end());
    std::inplace_merge(set.sorted.begin(),
                       set.sorted.begin() + static_cast<std::ptrdiff_t>(tail),
                       set.sorted.end());
  }
  if (set.sorted.empty()) return;
  if (config_.use_mean) {
    set.center = set.sum / static_cast<double>(set.sorted.size());
    return;
  }
  // util::median on a sorted sample: v[mid] is the mid-th order statistic and
  // max of the lower half is v[mid - 1].
  const std::size_t n = set.sorted.size();
  const std::size_t mid = n / 2;
  set.center = n % 2 == 1 ? set.sorted[mid]
                          : 0.5 * (set.sorted[mid - 1] + set.sorted[mid]);
}

void TaskPredictor::record_completion(TaskId task,
                                      const sim::TaskObservation& obs,
                                      std::vector<double>& interval_transfers) {
  const dag::TaskSpec& spec = workflow_->task(task);
  StageState& stage = stages_[spec.stage];
  WIRE_CHECK(obs.exec_time >= 0.0, "completed task without exec time");
  add_sample(stage.completed_exec, obs.exec_time);
  ++stage.completed;
  stage.dirty = true;

  Group& group = stage.groups[bucket_key(spec.input_mb)];
  add_sample(group.exec, obs.exec_time);
  group.input_mb_sum += spec.input_mb;

  if (obs.transfer_time > 0.0) {
    interval_transfers.push_back(obs.transfer_time);
  }
}

void TaskPredictor::observe_failure(TaskId task,
                                    const sim::TaskObservation& obs) {
  if (obs.failed_attempts <= seen_failed_[task]) return;
  seen_failed_[task] = obs.failed_attempts;
  if (!config_.harvest_failed_attempts) return;
  if (obs.last_failed_elapsed < 0.0) return;
  // Contamination ablation: treat the failed attempt's elapsed occupancy as
  // a finished-execution sample, exactly as a harvester that keys on "the
  // task left its slot" would. It pollutes the stage centre, the task's
  // input-size group, and (via dirty) the next OGD epoch's targets.
  const dag::TaskSpec& spec = workflow_->task(task);
  StageState& stage = stages_[spec.stage];
  add_sample(stage.completed_exec, obs.last_failed_elapsed);
  ++stage.completed;
  stage.dirty = true;
  Group& group = stage.groups[bucket_key(spec.input_mb)];
  add_sample(group.exec, obs.last_failed_elapsed);
  group.input_mb_sum += spec.input_mb;
}

void TaskPredictor::observe(const sim::MonitorSnapshot& snapshot) {
  WIRE_REQUIRE(snapshot.tasks.size() == workflow_->task_count(),
               "snapshot does not match the workflow");
  ++iterations_;
  last_refit_stages_ = 0;

  std::vector<double> interval_transfers;
  if (snapshot.delta.exact) {
    // O(changes): the journal lists every completion since the previous
    // snapshot, already in ascending TaskId order — the same order the scan
    // below visits them. The last_phase_ guard keeps observe idempotent when
    // the same snapshot is replayed (benches do).
    for (TaskId t : snapshot.delta.failed) {
      observe_failure(t, snapshot.tasks[t]);
    }
    for (TaskId t : snapshot.delta.completed) {
      if (last_phase_[t] == TaskPhase::Completed) continue;
      last_phase_[t] = TaskPhase::Completed;
      record_completion(t, snapshot.tasks[t], interval_transfers);
    }
  } else {
    for (TaskId t = 0; t < static_cast<TaskId>(snapshot.tasks.size()); ++t) {
      const sim::TaskObservation& obs = snapshot.tasks[t];
      observe_failure(t, obs);
      const bool newly_completed = obs.phase == TaskPhase::Completed &&
                                   last_phase_[t] != TaskPhase::Completed;
      last_phase_[t] = obs.phase;
      if (!newly_completed) continue;
      record_completion(t, obs, interval_transfers);
    }
  }

  // t̃_data: median transfer of the tasks completed in this interval; the
  // previous estimate persists through empty intervals.
  bool changed = false;
  if (!interval_transfers.empty()) {
    transfer_estimate_ = center(std::move(interval_transfers));
    has_transfer_estimate_ = true;
    changed = true;
  }

  // One Algorithm-1 epoch per stage with new completions. The training set is
  // the stage's groups of equivalent-input tasks, target = group median —
  // read from each group's cached centre instead of re-deriving it from a
  // copy of the full history.
  for (StageState& stage : stages_) {
    if (!stage.dirty) continue;
    stage.dirty = false;
    // All learned-state mutations (record_completion, observe_failure
    // ingestion, the model.update below) mark the stage dirty and land
    // before any predict call, so one bump per refit is exact. The pending
    // sample batches merge here, once per dirty stage per harvest.
    flush_samples(stage.completed_exec);
    for (auto& [key, group] : stage.groups) {
      flush_samples(group.exec);
    }
    ++stage.revision;
    ++last_refit_stages_;
    changed = true;
    std::vector<TrainingPoint> training;
    training.reserve(stage.groups.size());
    for (const auto& [key, group] : stage.groups) {
      TrainingPoint p;
      p.input_mb =
          group.input_mb_sum / static_cast<double>(group.exec.size());
      p.exec_seconds = group.exec.center;
      training.push_back(p);
    }
    stage.model.update(training);
  }
  // One estimator-revision bump per harvest, however bursty the delta:
  // consumers compare revisions for (in)equality, so collapsing the
  // per-stage/per-field bumps into one keeps every memo key semantically
  // identical while making a 200-completion tick cost the same invalidation
  // as a single completion.
  if (changed) ++revision_;
}

Prediction TaskPredictor::predict_exec(
    TaskId task, const sim::MonitorSnapshot& snapshot) const {
  WIRE_REQUIRE(task < workflow_->task_count(), "unknown task id");
  const dag::TaskSpec& spec = workflow_->task(task);
  const StageState& stage = stages_[spec.stage];
  const sim::TaskObservation& obs = snapshot.tasks[task];

  if (obs.phase == TaskPhase::Completed) {
    // Nothing to predict: report the recorded value.
    return {obs.exec_time, Policy::CompletedKnownSize};
  }

  if (stage.completed == 0) {
    // Policies 1 and 2: nothing completed in this stage yet. A running
    // task's "run time" counts from when it fired (became ready): the
    // unstarted peers are likely to run at least as long as the active ones
    // have been in flight since the stage fired. Measuring from the fire
    // time (rather than slot occupancy) keeps the estimate from diluting as
    // freshly dispatched peers join the running set.
    std::vector<double> running_time;
    for (TaskId peer : workflow_->stage_tasks(spec.stage)) {
      const sim::TaskObservation& p = snapshot.tasks[peer];
      if (p.phase == TaskPhase::Running && p.ready_since >= 0.0) {
        running_time.push_back(snapshot.now - p.ready_since);
      }
    }
    if (running_time.empty()) {
      return {0.0, Policy::NoneStarted};
    }
    return {center(std::move(running_time)), Policy::RunningOnly};
  }

  // Stage has completed tasks.
  const bool ready_to_run = obs.phase == TaskPhase::Ready ||
                            obs.phase == TaskPhase::Running;
  if (!ready_to_run) {
    // Policy 3: input data not yet available.
    return {stage.completed_exec.center, Policy::CompletedNotReady};
  }

  const auto it = stage.groups.find(bucket_key(spec.input_mb));
  if (it != stage.groups.end()) {
    // Policy 4: equivalent input size seen among completed peers.
    return {it->second.exec.center, Policy::CompletedKnownSize};
  }

  // Policy 5: new input size — OGD model. Falls back to the stage centre if
  // the model is disabled (ablation) or has not been trained yet (cannot
  // happen once completed > 0, but guarded for safety).
  if (config_.disable_ogd || stage.model.epochs() == 0) {
    return {stage.completed_exec.center, Policy::CompletedNotReady};
  }
  return {stage.model.predict(spec.input_mb), Policy::CompletedNewSize};
}

bool TaskPredictor::counterfactual_exec(TaskId task,
                                        double* exec_seconds) const {
  WIRE_REQUIRE(task < workflow_->task_count(), "unknown task id");
  const dag::TaskSpec& spec = workflow_->task(task);
  const StageState& stage = stages_[spec.stage];
  if (stage.completed == 0) return false;
  // The completed task was ready when it ran, so replay the ready-task
  // policies (4, then 5) against the pre-harvest state. Centres are always
  // flushed here: observe() flushes every dirty stage before returning.
  const auto it = stage.groups.find(bucket_key(spec.input_mb));
  if (it != stage.groups.end()) {
    *exec_seconds = it->second.exec.center;
    return true;
  }
  if (config_.disable_ogd || stage.model.epochs() == 0) {
    *exec_seconds = stage.completed_exec.center;
    return true;
  }
  *exec_seconds = stage.model.predict(spec.input_mb);
  return true;
}

bool TaskPredictor::reconfigure(const PredictorConfig& config) {
  WIRE_REQUIRE(config.input_bucket_rel_tol == config_.input_bucket_rel_tol,
               "reconfigure cannot change the input bucket tolerance");
  if (config.learning_rate == config_.learning_rate &&
      config.use_mean == config_.use_mean &&
      config.disable_ogd == config_.disable_ogd &&
      config.harvest_failed_attempts == config_.harvest_failed_attempts) {
    return false;
  }
  config_ = config;
  for (StageState& stage : stages_) {
    stage.model.set_learning_rate(config_.learning_rate);
    // Recompute every cached centre under the new statistic. Both centres
    // are derived from state the sets already carry (arrival-order sum,
    // sorted multiset), so toggling use_mean back and forth reproduces the
    // original doubles bit-for-bit.
    flush_samples(stage.completed_exec);
    for (auto& [key, group] : stage.groups) {
      flush_samples(group.exec);
    }
    // Every stage revision moves, data or not: predict_exec's output may
    // change for any stage (centre statistic, OGD fallback), and the memo
    // contract is that a surviving key proves the estimate is unchanged.
    ++stage.revision;
  }
  // The transfer estimate is a point value carried forward between
  // intervals; its source samples are not retained, so it keeps the value
  // computed under the old centre until the next non-empty interval.
  ++revision_;
  return true;
}

double TaskPredictor::predict_remaining_occupancy(
    TaskId task, const sim::MonitorSnapshot& snapshot) const {
  const sim::TaskObservation& obs = snapshot.tasks[task];
  if (obs.phase == TaskPhase::Completed) return 0.0;
  return remaining_occupancy_with(predict_exec(task, snapshot).exec_seconds,
                                  obs);
}

double TaskPredictor::remaining_occupancy_with(
    double exec_seconds, const sim::TaskObservation& obs) const {
  if (obs.phase == TaskPhase::Completed) return 0.0;
  const double t_data = has_transfer_estimate_ ? transfer_estimate_ : 0.0;

  if (obs.phase == TaskPhase::Running) {
    if (obs.transfer_in_time < 0.0) {
      // Still transferring input: remaining transfer (floored) + execution.
      const double remaining_transfer = std::max(0.0, t_data - obs.elapsed);
      return remaining_transfer + exec_seconds;
    }
    // Executing: predicted total minus elapsed, floored at zero ("about to
    // complete" when the prediction underestimates).
    return std::max(0.0, exec_seconds - obs.elapsed_exec);
  }

  // Ready or pending: full transfer + execution estimate.
  return t_data + exec_seconds;
}

std::uint64_t TaskPredictor::stage_revision(StageId stage) const {
  WIRE_REQUIRE(stage < stages_.size(), "unknown stage id");
  return stages_[stage].revision;
}

const OgdModel& TaskPredictor::stage_model(StageId stage) const {
  WIRE_REQUIRE(stage < stages_.size(), "unknown stage id");
  return stages_[stage].model;
}

std::size_t TaskPredictor::state_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += last_phase_.capacity() * sizeof(TaskPhase);
  bytes += seen_failed_.capacity() * sizeof(std::uint32_t);
  for (const StageState& s : stages_) {
    bytes += sizeof(StageState);
    bytes += (s.completed_exec.sorted.capacity() +
              s.completed_exec.pending.capacity()) * sizeof(double);
    for (const auto& [key, group] : s.groups) {
      bytes += sizeof(key) + sizeof(Group) +
               (group.exec.sorted.capacity() +
                group.exec.pending.capacity()) * sizeof(double);
    }
  }
  return bytes;
}

}  // namespace wire::predict
