#include "predict/memory_predictor.h"

#include "util/check.h"

namespace wire::predict {

using dag::StageId;
using dag::TaskId;
using sim::TaskPhase;

MemoryPredictor::MemoryPredictor(const dag::Workflow& workflow,
                                 const sim::MemoryConfig& config,
                                 std::uint32_t slots_per_instance)
    : workflow_(&workflow),
      config_(config),
      slots_per_instance_(slots_per_instance),
      sizer_(config, slots_per_instance, workflow.stage_count()),
      stage_counts_(workflow.stage_count(), 0),
      stage_revisions_(workflow.stage_count(), 0),
      stage_mark_(workflow.stage_count(), 0),
      harvested_(workflow.task_count(), false) {
  WIRE_REQUIRE(config.enabled(),
               "memory predictor constructed with the memory dimension off");
}

void MemoryPredictor::record_peak(TaskId task,
                                  const sim::TaskObservation& obs) {
  if (harvested_[task]) return;
  if (obs.peak_mem_mb < 0.0) return;  // completed before memory was modeled
  harvested_[task] = true;
  const StageId stage = workflow_->task(task).stage;
  sizer_.observe_peak(stage, obs.peak_mem_mb);
  ++stage_counts_[stage];
  if (stage_mark_[stage] != observe_epoch_) {
    // One refit per stage per observe(): a bursty delta completing many
    // same-stage tasks advances the stage revision once, so downstream
    // revision-keyed memos re-derive the stage estimate once, not per task.
    stage_mark_[stage] = observe_epoch_;
    ++stage_revisions_[stage];
    ++total_refits_;
  }
  observe_changed_ = true;
}

bool MemoryPredictor::reconfigure(const sim::MemoryConfig& config) {
  WIRE_REQUIRE(config.enabled(),
               "reconfigure cannot turn the memory dimension off");
  if (config.instance_mem_mb == config_.instance_mem_mb &&
      config.sizing == config_.sizing &&
      config.percentile == config_.percentile &&
      config.safety_factor == config_.safety_factor &&
      config.default_mb == config_.default_mb &&
      config.min_reservation_mb == config_.min_reservation_mb &&
      config.upsize_factor == config_.upsize_factor &&
      config.max_oom_attempts == config_.max_oom_attempts) {
    return false;
  }
  config_ = config;
  sizer_.reconfigure(config, slots_per_instance_);
  // predict_reservation output may change for every stage under the new
  // sizing policy; move every revision so no memoized reservation survives.
  for (std::uint64_t& rev : stage_revisions_) ++rev;
  ++revision_;
  return true;
}

void MemoryPredictor::observe(const sim::MonitorSnapshot& snapshot) {
  WIRE_REQUIRE(snapshot.tasks.size() == workflow_->task_count(),
               "snapshot does not match the workflow");
  observe_changed_ = false;
  ++observe_epoch_;
  if (snapshot.delta.exact) {
    for (TaskId t : snapshot.delta.completed) {
      record_peak(t, snapshot.tasks[t]);
    }
  } else {
    for (TaskId t = 0; t < static_cast<TaskId>(snapshot.tasks.size()); ++t) {
      if (snapshot.tasks[t].phase != TaskPhase::Completed) continue;
      record_peak(t, snapshot.tasks[t]);
    }
  }
  if (observe_changed_) ++revision_;
}

double MemoryPredictor::predict_reservation(
    TaskId task, const sim::MonitorSnapshot& snapshot) const {
  WIRE_REQUIRE(task < workflow_->task_count(), "unknown task id");
  const sim::TaskObservation& obs = snapshot.tasks[task];
  if (obs.phase == TaskPhase::Running && obs.mem_reservation_mb >= 0.0) {
    // In flight: the booked reservation is observable, not a projection.
    return obs.mem_reservation_mb;
  }
  return sizer_.reservation_mb(workflow_->task(task).stage,
                               workflow_->task(task).ref_peak_mem_mb,
                               obs.oom_attempts);
}

std::uint64_t MemoryPredictor::stage_revision(StageId stage) const {
  WIRE_REQUIRE(stage < stage_revisions_.size(), "unknown stage id");
  return stage_revisions_[stage];
}

std::size_t MemoryPredictor::stage_samples(StageId stage) const {
  WIRE_REQUIRE(stage < stage_counts_.size(), "unknown stage id");
  return stage_counts_[stage];
}

std::size_t MemoryPredictor::state_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += stage_counts_.capacity() * sizeof(std::size_t);
  bytes += stage_revisions_.capacity() * sizeof(std::uint64_t);
  bytes += stage_mark_.capacity() * sizeof(std::uint64_t);
  bytes += harvested_.capacity() / 8;
  for (StageId s = 0; s < stage_counts_.size(); ++s) {
    bytes += stage_counts_[s] * sizeof(double);
  }
  return bytes;
}

}  // namespace wire::predict
