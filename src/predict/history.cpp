#include "predict/history.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/stats.h"

namespace wire::predict {

std::vector<HistoryRecord> history_from_records(
    const std::vector<sim::TaskRuntime>& records) {
  std::vector<HistoryRecord> out;
  out.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const sim::TaskRuntime& rec = records[i];
    WIRE_REQUIRE(rec.phase == sim::TaskPhase::Completed,
                 "history requires a completed run");
    HistoryRecord h;
    h.task = static_cast<dag::TaskId>(i);
    h.exec_seconds = rec.exec_time;
    h.transfer_seconds = std::max(0.0, rec.transfer_in_time) +
                         std::max(0.0, rec.transfer_out_time);
    out.push_back(h);
  }
  return out;
}

HistoryEstimator::HistoryEstimator(const dag::Workflow& workflow,
                                   const std::vector<HistoryRecord>& prior_run,
                                   double input_bucket_rel_tol)
    : workflow_(&workflow),
      bucket_tol_(input_bucket_rel_tol),
      group_median_(workflow.stage_count()),
      stage_median_(workflow.stage_count(), 0.0) {
  WIRE_REQUIRE(!prior_run.empty(), "history estimator needs a prior run");

  std::vector<std::map<long, std::vector<double>>> groups(
      workflow.stage_count());
  std::vector<std::vector<double>> per_stage(workflow.stage_count());
  std::vector<double> transfers;
  for (const HistoryRecord& rec : prior_run) {
    WIRE_REQUIRE(rec.task < workflow.task_count(),
                 "history record for unknown task");
    WIRE_REQUIRE(rec.exec_seconds >= 0.0,
                 "history record with negative execution time");
    const dag::TaskSpec& spec = workflow.task(rec.task);
    groups[spec.stage][bucket_key(spec.input_mb)].push_back(rec.exec_seconds);
    per_stage[spec.stage].push_back(rec.exec_seconds);
    if (rec.transfer_seconds > 0.0) transfers.push_back(rec.transfer_seconds);
  }
  for (dag::StageId s = 0; s < workflow.stage_count(); ++s) {
    for (auto& [key, values] : groups[s]) {
      group_median_[s][key] = util::median(values);
    }
    if (!per_stage[s].empty()) {
      stage_median_[s] = util::median(per_stage[s]);
    }
  }
  if (!transfers.empty()) {
    transfer_estimate_ = util::median(transfers);
  }
}

long HistoryEstimator::bucket_key(double input_mb) const {
  if (input_mb <= 0.0) return std::numeric_limits<long>::min();
  return std::lround(std::log(input_mb) / std::log1p(bucket_tol_));
}

void HistoryEstimator::observe(const sim::MonitorSnapshot& /*snapshot*/) {
  // By design: Jockey-style predictors are trained offline.
}

double HistoryEstimator::estimate_exec(
    dag::TaskId task, const sim::MonitorSnapshot& /*snapshot*/) const {
  WIRE_REQUIRE(task < workflow_->task_count(), "unknown task id");
  const dag::TaskSpec& spec = workflow_->task(task);
  const auto& buckets = group_median_[spec.stage];
  const auto it = buckets.find(bucket_key(spec.input_mb));
  if (it != buckets.end()) return it->second;
  return stage_median_[spec.stage];
}

double HistoryEstimator::predict_remaining_occupancy(
    dag::TaskId task, const sim::MonitorSnapshot& snapshot) const {
  const sim::TaskObservation& obs = snapshot.tasks[task];
  if (obs.phase == sim::TaskPhase::Completed) return 0.0;
  const double exec = estimate_exec(task, snapshot);
  if (obs.phase == sim::TaskPhase::Running) {
    if (obs.transfer_in_time < 0.0) {
      return std::max(0.0, transfer_estimate_ - obs.elapsed) + exec;
    }
    return std::max(0.0, exec - obs.elapsed_exec);
  }
  return transfer_estimate_ + exec;
}

std::size_t HistoryEstimator::state_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& stage : group_median_) {
    bytes += stage.size() * (sizeof(long) + sizeof(double));
  }
  bytes += stage_median_.capacity() * sizeof(double);
  return bytes;
}

}  // namespace wire::predict
