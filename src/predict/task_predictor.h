// Online task-performance prediction (paper §III-B1 and §III-C).
//
// The predictor harvests monitoring snapshots once per MAPE iteration and
// maintains, per stage: the completed-task execution times, groups of
// completed tasks with equivalent input sizes, and an online gradient descent
// model (Algorithm 1). It estimates the execution time of an incomplete or
// unstarted task with the paper's five policies:
//
//   (1) no task of the stage has started          -> 0 (nothing is known)
//   (2) running tasks only                        -> median elapsed run time
//       ("conservatively presume the running tasks are about to complete")
//   (3) completed tasks exist, task not ready     -> median completed time
//   (4) completed tasks exist, task ready, input
//       size matches a completed group L          -> median time of L
//   (5) completed tasks exist, task ready, input
//       size unseen                               -> OGD model prediction
//
// Data-transfer time is estimated separately as the median of the transfer
// times observed in the most recent control interval (t̃_data, §III-B1),
// carrying the previous estimate through empty intervals.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dag/workflow.h"
#include "predict/estimator.h"
#include "predict/ogd.h"
#include "sim/monitor.h"

namespace wire::predict {

struct PredictorConfig {
  /// Algorithm 1 learning rate.
  double learning_rate = 0.1;
  /// Relative tolerance for "equivalent input size" grouping (policy 4 and
  /// the OGD training-set groups): sizes within one geometric bucket of width
  /// (1 + tol) are the same group.
  double input_bucket_rel_tol = 0.02;
  /// Ablation: use the mean instead of the median everywhere the paper takes
  /// medians (the paper argues the median is the right centre for skewed
  /// distributions — this knob measures that choice).
  bool use_mean = false;
  /// Ablation: disable the OGD model; policy 5 falls back to the stage
  /// median (policy 3's estimate).
  bool disable_ogd = false;
  /// Ablation: harvest failed-attempt occupancy spans as if they were
  /// execution samples. The robust default (false) learns from successful
  /// completions only, so transient task faults cannot poison the stage
  /// medians, the input-size groups, or the OGD training targets; turning
  /// this on measures how much a naive any-finished-attempt harvest degrades
  /// the predictions under faults.
  bool harvest_failed_attempts = false;
};

/// Which of the five §III-C policies produced an estimate.
enum class Policy : std::uint8_t {
  NoneStarted = 1,
  RunningOnly = 2,
  CompletedNotReady = 3,
  CompletedKnownSize = 4,
  CompletedNewSize = 5,
};

struct Prediction {
  /// Estimated minimum execution time (seconds).
  double exec_seconds = 0.0;
  Policy policy = Policy::NoneStarted;
};

class TaskPredictor : public Estimator {
 public:
  /// Binds to a workflow (kept by reference; must outlive the predictor).
  explicit TaskPredictor(const dag::Workflow& workflow,
                         const PredictorConfig& config = {});

  /// Harvests one MAPE iteration's monitoring data: records newly completed
  /// tasks into the per-stage training state, refreshes the transfer-time
  /// median, and runs one OGD epoch per stage with new data. When the
  /// snapshot carries an exact delta journal (engine-produced snapshots do),
  /// only `delta.completed` is visited — O(changes); otherwise falls back to
  /// the full O(tasks) phase scan (hand-built snapshots in tests/harnesses).
  void observe(const sim::MonitorSnapshot& snapshot) override;

  /// Policies 1–5 estimate of `task`'s total execution time, given the
  /// current snapshot (which also supplies the task's readiness and the
  /// stage's running-task elapsed times).
  Prediction predict_exec(dag::TaskId task,
                          const sim::MonitorSnapshot& snapshot) const;

  /// Counterfactual execution estimate for a task that just completed: what
  /// the ready-task policies (4/5) would have predicted from the *current*
  /// learned state — i.e. before the completion is harvested. Unlike
  /// predict_exec it never passes through the recorded actual, so
  /// |counterfactual - actual| is a genuine out-of-sample misprediction
  /// regret (the BanditSelector's reward signal). Returns false (no
  /// estimate) while the task's stage has no harvested completions.
  bool counterfactual_exec(dag::TaskId task, double* exec_seconds) const;

  /// Switches the live configuration in place — the BanditSelector's
  /// arm-switch hook. Rebuilds every cached sample centre under the new
  /// centre statistic (bit-identical to a from-scratch predictor fed the
  /// same history: mean = sum/size, median from the sorted multiset — both
  /// reversible), retargets the per-stage OGD learning rate, and bumps every
  /// stage revision plus the estimator revision so downstream
  /// revision-keyed memos (core::IncrementalLookahead) cannot serve
  /// estimates computed under the old config. A no-op returning false when
  /// `config` matches the live one (no revision bumps — `arms == 1`
  /// selectors stay byte-identical to selector-off). `input_bucket_rel_tol`
  /// must not change: the group buckets are keyed by it and merged
  /// histories cannot be re-bucketed.
  bool reconfigure(const PredictorConfig& config);

  const PredictorConfig& config() const { return config_; }

  /// Estimator interface: predict_exec's scalar value.
  double estimate_exec(dag::TaskId task,
                       const sim::MonitorSnapshot& snapshot) const override {
    return predict_exec(task, snapshot).exec_seconds;
  }

  /// Conservative minimum remaining slot occupancy of `task` at
  /// snapshot.now: for running tasks the predicted total minus elapsed
  /// (floored at zero — "about to complete"); for unstarted tasks transfer
  /// estimate plus predicted execution.
  double predict_remaining_occupancy(
      dag::TaskId task, const sim::MonitorSnapshot& snapshot) const override;

  /// The remaining-occupancy composition with the execution estimate
  /// supplied by the caller (the incremental lookahead's revision-validated
  /// memo). predict_remaining_occupancy(t, snap) ==
  /// remaining_occupancy_with(predict_exec(t, snap).exec_seconds,
  /// snap.tasks[t]) bit-for-bit — both route through this one
  /// implementation, so a memoized exec estimate cannot drift from the
  /// direct path by a reassociated expression.
  double remaining_occupancy_with(double exec_seconds,
                                  const sim::TaskObservation& obs) const;

  /// Monotone revision of `stage`'s learned state (completion centres,
  /// input-size groups, OGD model): advances exactly when a harvest refits
  /// the stage. Once a stage has completions, predict_exec is a pure
  /// function of (stage revision, task spec, readiness class) — the
  /// incremental lookahead memoizes on that key.
  std::uint64_t stage_revision(dag::StageId stage) const;

  /// Estimator revision: advances whenever any stage refits or the
  /// transfer-time estimate moves.
  std::uint64_t revision() const override { return revision_; }

  /// Number of stages refit by the most recent observe() call — the
  /// incremental lookahead's model-drift signal.
  std::uint32_t last_refit_stages() const { return last_refit_stages_; }

  /// Current t̃_data estimate (total in+out transfer, seconds). Zero until
  /// the first observation.
  double transfer_estimate() const override { return transfer_estimate_; }

  /// The per-stage OGD model (exposed for tests and the ablation bench).
  const OgdModel& stage_model(dag::StageId stage) const;

  /// Approximate resident state size in bytes (§IV-F overhead accounting).
  std::size_t state_bytes() const override;

  std::size_t iterations() const { return iterations_; }

 private:
  /// Geometric bucket key for an input size; equal keys = "equivalent".
  long bucket_key(double input_mb) const;

  /// The configured centre statistic: median (paper default) or mean
  /// (ablation).
  double center(std::vector<double> values) const;

  /// A completion sample set kept ready for O(1) centre queries: the values
  /// stay sorted and a running sum accumulates in arrival order, so the
  /// cached centre reproduces util::median / util::mean bit-for-bit without
  /// copying the history on every query. Arrivals within one observe() are
  /// batched: add_sample appends to `pending` (O(1)), and flush_samples
  /// sorts the batch and merges it in one inplace_merge pass — on a bursty
  /// delta that is one O(n + k log k) coalesce instead of k O(n) insertions.
  /// The merged array is the same sorted multiset either way, and the sum
  /// folds in arrival order, so the recomputed centre is bit-identical to
  /// the former insert-one-at-a-time path.
  struct SampleSet {
    std::vector<double> sorted;
    std::vector<double> pending;  // this interval's arrivals, pre-merge
    double sum = 0.0;     // accumulated in arrival order (== util::mean fold)
    double center = 0.0;  // cached centre; valid once flushed && !empty()
    std::size_t size() const { return sorted.size() + pending.size(); }
    bool empty() const { return sorted.empty() && pending.empty(); }
  };

  /// Stages a sample for the next flush (sum folds immediately, in arrival
  /// order).
  void add_sample(SampleSet& set, double value) const;
  /// Merges the pending batch into the sorted history and refreshes the
  /// cached centre.
  void flush_samples(SampleSet& set) const;

  struct Group {
    SampleSet exec;
    double input_mb_sum = 0.0;  // representative d_M = sum / count
  };

  struct StageState {
    OgdModel model;
    SampleSet completed_exec;
    std::map<long, Group> groups;
    std::uint32_t completed = 0;
    std::uint64_t revision = 0;  // bumped per refit (see stage_revision)
    bool dirty = false;          // new completions since the last OGD epoch
  };

  /// Records one newly observed completion (shared by the delta and the
  /// full-scan paths of observe()).
  void record_completion(dag::TaskId task, const sim::TaskObservation& obs,
                         std::vector<double>& interval_transfers);

  /// Notes a newly observed failed attempt (detected via the failure counter,
  /// so replayed snapshots stay idempotent) and — only under the
  /// harvest_failed_attempts ablation — ingests its elapsed span as an
  /// execution sample. When several attempts fail between two snapshots only
  /// the last span is observable (and ingested).
  void observe_failure(dag::TaskId task, const sim::TaskObservation& obs);

  const dag::Workflow* workflow_;
  PredictorConfig config_;
  std::vector<StageState> stages_;
  /// Last observed phase per task, to detect completions between iterations.
  std::vector<sim::TaskPhase> last_phase_;
  /// Last observed failed-attempt count per task, to detect new failures
  /// between iterations (and to keep observe_failure idempotent on replays).
  std::vector<std::uint32_t> seen_failed_;
  double transfer_estimate_ = 0.0;
  bool has_transfer_estimate_ = false;
  std::uint64_t revision_ = 0;
  std::uint32_t last_refit_stages_ = 0;
  std::size_t iterations_ = 0;
};

}  // namespace wire::predict
