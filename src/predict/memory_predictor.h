// Online peak-memory prediction — the controller-side mirror of the engine's
// TaskMemorySizer (sim/memory.h).
//
// Harvests completed tasks' revealed true peaks (TaskObservation::peak_mem_mb,
// the kickstart record) from monitoring snapshots and sizes reservations with
// the exact statistical core the engine sizes with (sim::sized_from_history +
// sim::clamp_reservation). At any control tick both sides have ingested the
// same completion set in the same sorted order, so the lookahead's projected
// reservations match what the engine would book if it dispatched at that
// instant; later completions can shift the engine's actual sizing, which is
// ordinary prediction error, not a monitoring-boundary leak.
//
// Running tasks report their actual booked reservation in the snapshot, so
// the projection seeds in-flight attempts exactly.
//
// Revision discipline follows TaskPredictor: `revision()` advances at most
// once per observe(), `stage_revision(s)` exactly when stage `s` ingested new
// peaks — the same monotone-counter scheme core::IncrementalLookahead keys
// its memos on.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "sim/config.h"
#include "sim/memory.h"
#include "sim/monitor.h"

namespace wire::predict {

class MemoryPredictor {
 public:
  /// Binds to a workflow (kept by reference; must outlive the predictor).
  /// `config` and `slots_per_instance` must match the engine's CloudConfig
  /// for the projection to mirror the engine's sizing.
  MemoryPredictor(const dag::Workflow& workflow,
                  const sim::MemoryConfig& config,
                  std::uint32_t slots_per_instance);

  /// Harvests one MAPE iteration's revealed peaks. Exact deltas visit only
  /// `delta.completed` (O(changes)); otherwise falls back to the full
  /// O(tasks) phase scan. Idempotent on replayed snapshots.
  void observe(const sim::MonitorSnapshot& snapshot);

  /// Projected reservation (MB) the engine would book for `task` if it
  /// dispatched now: a running task's actual booked reservation when the
  /// snapshot carries one, else the sized-and-clamped estimate for the
  /// task's stage after its observed OOM count.
  double predict_reservation(dag::TaskId task,
                             const sim::MonitorSnapshot& snapshot) const;

  /// Swaps the live sizing configuration in place (the reconfiguration seam
  /// TaskPredictor::reconfigure opens on the execution side). Keeps every
  /// accumulated peak history; bumps every stage revision and the predictor
  /// revision because predict_reservation is a pure function of (config,
  /// stage history, oom count) and any revision-keyed memo of it would
  /// otherwise serve estimates sized under the old policy. A no-op
  /// returning false when `config` matches the live one bitwise-relevant
  /// fields included. The memory dimension cannot be toggled on a live
  /// predictor (`enabled()` must stay true) and `slots_per_instance` is the
  /// bound instance shape.
  bool reconfigure(const sim::MemoryConfig& config);

  /// Monotone revision of `stage`'s peak history: advances (at most once per
  /// observe()) exactly when a harvest ingested new peaks for the stage.
  /// Batched like TaskPredictor's stage revisions: a bursty delta completing
  /// many same-stage tasks in one tick is ONE refit, not one per task, so
  /// revision-keyed memos (core::IncrementalLookahead) re-derive once.
  std::uint64_t stage_revision(dag::StageId stage) const;

  /// Total stage refits (stage-revision bumps) across the run — the batching
  /// observable: bounded by observe() calls times touched stages, not by
  /// ingested peaks (asserted by the monitor-store chaos probe).
  std::uint64_t total_refits() const { return total_refits_; }

  /// Predictor revision: advances (once) per observe() that changed any
  /// stage history.
  std::uint64_t revision() const { return revision_; }

  /// Completed peaks ingested for `stage` so far.
  std::size_t stage_samples(dag::StageId stage) const;

  /// Approximate resident state size in bytes (§IV-F overhead accounting).
  std::size_t state_bytes() const;

 private:
  void record_peak(dag::TaskId task, const sim::TaskObservation& obs);

  const dag::Workflow* workflow_;
  sim::MemoryConfig config_;
  std::uint32_t slots_per_instance_;
  /// The shared sizing core; holds the per-stage sorted peak histories.
  sim::TaskMemorySizer sizer_;
  std::vector<std::size_t> stage_counts_;
  std::vector<std::uint64_t> stage_revisions_;
  /// Per-stage epoch mark: stage_revisions_[s] is bumped only when
  /// stage_mark_[s] != observe_epoch_ — the first ingested peak of the stage
  /// this observe(); subsequent same-stage peaks in the same burst ride on
  /// the same bump.
  std::vector<std::uint64_t> stage_mark_;
  /// Tasks whose completion peak was already ingested (idempotence guard).
  std::vector<bool> harvested_;
  std::uint64_t revision_ = 0;
  std::uint64_t observe_epoch_ = 0;
  std::uint64_t total_refits_ = 0;
  bool observe_changed_ = false;
};

}  // namespace wire::predict
