#include "predict/oracle.h"

#include <algorithm>

#include "util/check.h"

namespace wire::predict {

OracleEstimator::OracleEstimator(const dag::Workflow& workflow,
                                 double transfer_latency_seconds,
                                 double bandwidth_mb_per_s)
    : workflow_(&workflow),
      latency_(transfer_latency_seconds),
      bandwidth_(std::max(1e-9, bandwidth_mb_per_s)) {
  double total = 0.0;
  for (const dag::TaskSpec& t : workflow.tasks()) {
    total += nominal_transfer(t.input_mb) + nominal_transfer(t.output_mb);
  }
  mean_transfer_ = total / static_cast<double>(workflow.task_count());
}

double OracleEstimator::nominal_transfer(double payload_mb) const {
  if (payload_mb <= 0.0) return 0.0;
  return latency_ + payload_mb / bandwidth_;
}

void OracleEstimator::observe(const sim::MonitorSnapshot& /*snapshot*/) {
  // Nothing to learn: the oracle already knows the nominal profile.
}

double OracleEstimator::estimate_exec(
    dag::TaskId task, const sim::MonitorSnapshot& /*snapshot*/) const {
  return workflow_->task(task).ref_exec_seconds;
}

double OracleEstimator::predict_remaining_occupancy(
    dag::TaskId task, const sim::MonitorSnapshot& snapshot) const {
  const sim::TaskObservation& obs = snapshot.tasks[task];
  if (obs.phase == sim::TaskPhase::Completed) return 0.0;
  const dag::TaskSpec& spec = workflow_->task(task);
  if (obs.phase == sim::TaskPhase::Running) {
    if (obs.transfer_in_time < 0.0) {
      const double remaining_transfer =
          std::max(0.0, nominal_transfer(spec.input_mb) - obs.elapsed);
      return remaining_transfer + spec.ref_exec_seconds +
             nominal_transfer(spec.output_mb);
    }
    return std::max(0.0, spec.ref_exec_seconds - obs.elapsed_exec) +
           nominal_transfer(spec.output_mb);
  }
  return nominal_transfer(spec.input_mb) + spec.ref_exec_seconds +
         nominal_transfer(spec.output_mb);
}

double OracleEstimator::transfer_estimate() const { return mean_transfer_; }

}  // namespace wire::predict
