// History-based estimator: the related-work strawman.
//
// Systems like Jockey and Apollo (§II-B) predict task performance from the
// statistics of *previous runs*. This estimator is built from a prior run's
// kickstart archive: per stage, the median execution time of the previous
// run's tasks, grouped by (near-)equal input size — the strongest reasonable
// per-stage history model. It never updates from the current run.
//
// Its purpose is to reproduce the paper's Observation 2: task execution
// times vary across runs (datasets, resource types, co-location), so
// history mispredicts by the run-to-run factor while online prediction
// adapts. bench_motivation measures exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "predict/estimator.h"
#include "sim/framework.h"

namespace wire::predict {

/// Per-task record of a completed prior run, as harvested from the
/// framework's kickstart archive.
struct HistoryRecord {
  dag::TaskId task = dag::kInvalidTask;
  double exec_seconds = 0.0;
  /// Total transfer (in + out) seconds; negative if not recorded.
  double transfer_seconds = -1.0;
};

/// Converts a completed run's kickstart archive (RunResult::task_records)
/// into history records.
std::vector<HistoryRecord> history_from_records(
    const std::vector<sim::TaskRuntime>& records);

class HistoryEstimator final : public Estimator {
 public:
  /// Builds the per-stage, per-input-size-group medians from a prior run of
  /// the same workflow. `input_bucket_rel_tol` matches TaskPredictor's
  /// grouping so the two estimators see the same equivalence classes.
  HistoryEstimator(const dag::Workflow& workflow,
                   const std::vector<HistoryRecord>& prior_run,
                   double input_bucket_rel_tol = 0.02);

  /// History never learns from the current run.
  void observe(const sim::MonitorSnapshot& snapshot) override;

  double estimate_exec(dag::TaskId task,
                       const sim::MonitorSnapshot& snapshot) const override;

  double predict_remaining_occupancy(
      dag::TaskId task, const sim::MonitorSnapshot& snapshot) const override;

  double transfer_estimate() const override { return transfer_estimate_; }

  std::size_t state_bytes() const override;

 private:
  long bucket_key(double input_mb) const;

  const dag::Workflow* workflow_;
  double bucket_tol_;
  /// stage -> bucket -> median exec of the prior run's group.
  std::vector<std::map<long, double>> group_median_;
  /// stage -> median exec across the whole stage (bucket-miss fallback).
  std::vector<double> stage_median_;
  double transfer_estimate_ = 0.0;
};

}  // namespace wire::predict
