// Online predictor selection via seeded bandits (ROADMAP: the C++ analogue
// of the MAB predictor-manager exemplar).
//
// The repo benchmarks a static ablation matrix of predictor variants (centre
// statistic, OGD grouping, harvest-failed contamination, adaptive horizon
// cap) without ever choosing among them at runtime. BanditSelector turns
// that matrix into a self-tuning system: a per-controller meta-controller
// over a small arm set of predictor configurations, scoring arms by observed
// misprediction cost (|predicted - actual| execution-time regret per
// completed task, fed once per control tick from the controller's delta
// journal) and switching the live TaskPredictor config between control ticks
// with a seeded explorer.
//
// Determinism contract:
//   - `BanditOptions::arms == 0` is the off sentinel: no selector is
//     constructed, no RNG stream is created, and every existing baseline is
//     byte-identical (hexfloat) to the pre-bandit build.
//   - The explorer draws from its own util::Rng seeded by the caller
//     (typically util::derive_seed from the run seed on a dedicated stream),
//     so enabling the selector perturbs no other stochastic draw in the
//     simulation; the same seed replays the identical arm-switch sequence.
//   - Arm switches are applied through TaskPredictor::reconfigure, which
//     bumps every stage revision — the Analyze/Plan memo keys — so cached
//     estimates can never outlive the config that produced them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "predict/task_predictor.h"
#include "util/rng.h"

namespace wire::predict {

/// One selectable predictor configuration. `adaptive_horizon` rides along
/// because the horizon cap lives in the lookahead, not the predictor — the
/// controller applies it to its IncrementalLookahead on switch.
struct BanditArm {
  PredictorConfig config;
  bool adaptive_horizon = false;
  std::string label;
};

/// The stock arm set: the full centre × OGD × harvest-failed ablation grid
/// (8 arms) plus one adaptive-horizon variant of the paper default. Index 0
/// is the paper-default configuration, so `arms == 1` degenerates to the
/// ordinary fixed predictor; `BanditOptions::arms` selects a prefix ordered
/// so small prefixes cover the most distinct variants first.
std::vector<BanditArm> default_bandit_arms();

/// Exploration strategy over the arm set.
enum class Explorer : std::uint8_t {
  /// Epsilon-greedy with hyperbolic decay: explore uniformly with
  /// probability epsilon0 / (1 + decay * decisions), else exploit the
  /// lowest-mean-cost arm. The only consumer of the selector's RNG stream.
  EpsilonGreedyDecay = 0,
  /// UCB1 adapted to cost minimization: pick the arm minimizing
  /// mean_i - ucb_c * scale * sqrt(2 ln N / n_i), where `scale` is the
  /// global mean cost per completion (unit-matching the confidence bonus to
  /// the regret signal). Entirely RNG-free.
  Ucb1 = 1,
};

struct BanditOptions {
  /// Number of arms in play: 0 disables the selector entirely (the off
  /// sentinel — byte-identity to every baseline); k > 0 plays the first k
  /// arms of `arm_set` (or of default_bandit_arms() when empty). `arms == 1`
  /// pins the single arm forever: the explorer never switches, so a
  /// single-default-arm selector is byte-identical to selector-off.
  std::uint32_t arms = 0;
  Explorer explorer = Explorer::EpsilonGreedyDecay;
  /// EpsilonGreedyDecay initial exploration probability.
  double epsilon0 = 0.5;
  /// EpsilonGreedyDecay hyperbolic decay rate per decision.
  double decay = 0.15;
  /// Ucb1 confidence width (in units of the global mean cost/completion).
  double ucb_c = 1.0;
  /// Control ticks per decision period. Regret accumulates across the
  /// period; the explorer re-decides (and may switch) at period boundaries
  /// only, so the predictor is never reconfigured mid-interval.
  std::uint32_t switch_period_ticks = 8;
  /// Explorer RNG seed. Callers derive it from the run seed on a dedicated
  /// stream (util::derive_seed) so the selector's draws are independent of
  /// every other stream.
  std::uint64_t seed = 0;
  /// Custom arm set; empty uses default_bandit_arms(). All arms must share
  /// arm 0's input_bucket_rel_tol (groups cannot be re-bucketed on a live
  /// predictor — see TaskPredictor::reconfigure).
  std::vector<BanditArm> arm_set;

  bool enabled() const { return arms > 0; }
};

/// Per-arm observed statistics. A "pull" is one decision period in which at
/// least one completion produced a regret sample; empty periods (no
/// completions) extend the current pull rather than polluting the mean with
/// zero-cost noise.
struct ArmStats {
  std::uint64_t pulls = 0;
  std::uint64_t completions = 0;
  double total_cost = 0.0;

  /// Mean misprediction cost per completed task; the explorer's score.
  double mean_cost() const {
    return completions == 0 ? 0.0
                            : total_cost / static_cast<double>(completions);
  }
};

class BanditSelector {
 public:
  explicit BanditSelector(const BanditOptions& options);

  std::size_t arm_count() const { return arms_.size(); }
  const BanditArm& arm(std::uint32_t index) const;
  /// The arm currently live on the predictor.
  std::uint32_t current() const { return current_; }

  /// Feeds one control tick's regret: `cost` is the summed
  /// |predicted - actual| execution time over the tick's newly completed
  /// tasks with a counterfactual prediction, `completions` how many such
  /// tasks contributed. Returns true when the period boundary switched the
  /// live arm (the caller must then reconfigure the predictor).
  bool tick(double cost, std::uint32_t completions);

  /// Every period-boundary decision, in order (the replay-determinism
  /// observable: same seed => identical sequence).
  const std::vector<std::uint32_t>& decisions() const { return decisions_; }
  std::uint64_t switches() const { return switches_; }

  const ArmStats& stats(std::uint32_t index) const;
  /// Cumulative misprediction cost across all arms and ticks (including the
  /// not-yet-finalized period) — the bench's headline metric.
  double total_cost() const { return total_cost_; }
  std::uint64_t total_completions() const { return total_completions_; }

  std::size_t state_bytes() const;

 private:
  /// Picks the next period's arm from the finalized statistics.
  std::uint32_t decide();

  BanditOptions options_;
  std::vector<BanditArm> arms_;
  std::vector<ArmStats> stats_;
  util::Rng rng_;
  std::uint32_t current_ = 0;
  std::uint32_t period_ticks_ = 0;
  std::uint32_t period_completions_ = 0;
  double period_cost_ = 0.0;
  double total_cost_ = 0.0;
  std::uint64_t total_completions_ = 0;
  std::uint64_t switches_ = 0;
  std::vector<std::uint32_t> decisions_;
};

}  // namespace wire::predict
