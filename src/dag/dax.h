// Pegasus DAX import.
//
// Pegasus workflows — including the synthetic workflow gallery the research
// community uses for Montage/CyberShake/Epigenomics/... — ship as DAX XML:
//
//   <adag name="montage" ...>
//     <job id="ID00000" namespace="montage" name="mProjectPP"
//          version="1.0" runtime="13.59">
//       <uses file="region.hdr" link="input" size="304"/>
//       <uses file="proj.fits" link="output" size="4222600"/>
//     </job>
//     ...
//     <child ref="ID00001"><parent ref="ID00000"/></child>
//   </adag>
//
// This importer reads the subset of DAX 3.x those files use: <job> elements
// with id/name/runtime attributes, <uses> file sizes (bytes), and
// <child>/<parent> dependency edges. Jobs are grouped into stages by their
// transformation name (the paper's stage definition: "tasks share the same
// executable"). The embedded XML scanner handles exactly what DAX needs —
// elements, attributes, self-closing tags, comments, XML declarations — and
// rejects anything else loudly.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "dag/workflow.h"

namespace wire::dag {

/// Thrown on any malformed DAX input: broken XML (truncated tags,
/// unterminated comments or attribute values), missing or non-numeric
/// attributes, duplicate job ids, edges referencing unknown jobs, cycles, or
/// documents without jobs. The message carries "source:line:" context for
/// tag-level errors ("source:" alone for document-level ones such as cycles),
/// so a bad gallery file points at the offending element instead of silently
/// producing a partial workflow.
class DaxParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a DAX document into a Workflow. Throws DaxParseError on malformed
/// input; `source` labels the document in error messages (pass the file
/// name).
Workflow read_dax(std::istream& is, const std::string& source = "<dax>");

/// Parses DAX from a string.
Workflow dax_from_string(const std::string& text,
                         const std::string& source = "<dax>");

}  // namespace wire::dag
