// Pegasus DAX import.
//
// Pegasus workflows — including the synthetic workflow gallery the research
// community uses for Montage/CyberShake/Epigenomics/... — ship as DAX XML:
//
//   <adag name="montage" ...>
//     <job id="ID00000" namespace="montage" name="mProjectPP"
//          version="1.0" runtime="13.59">
//       <uses file="region.hdr" link="input" size="304"/>
//       <uses file="proj.fits" link="output" size="4222600"/>
//     </job>
//     ...
//     <child ref="ID00001"><parent ref="ID00000"/></child>
//   </adag>
//
// This importer reads the subset of DAX 3.x those files use: <job> elements
// with id/name/runtime attributes, <uses> file sizes (bytes), and
// <child>/<parent> dependency edges. Jobs are grouped into stages by their
// transformation name (the paper's stage definition: "tasks share the same
// executable"). The embedded XML scanner handles exactly what DAX needs —
// elements, attributes, self-closing tags, comments, XML declarations — and
// rejects anything else loudly.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/workflow.h"

namespace wire::dag {

/// Parses a DAX document into a Workflow. Throws util::ContractViolation on
/// malformed XML, unknown job references, cyclic dependencies, or jobs
/// without a runtime attribute.
Workflow read_dax(std::istream& is);

/// Parses DAX from a string.
Workflow dax_from_string(const std::string& text);

}  // namespace wire::dag
