#include "dag/workflow.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace wire::dag {

const TaskSpec& Workflow::task(TaskId id) const {
  WIRE_REQUIRE(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

const StageSpec& Workflow::stage(StageId id) const {
  WIRE_REQUIRE(id < stages_.size(), "stage id out of range");
  return stages_[id];
}

std::span<const TaskId> Workflow::predecessors(TaskId id) const {
  WIRE_REQUIRE(id < tasks_.size(), "task id out of range");
  return {pred_edges_.data() + pred_offsets_[id],
          pred_offsets_[id + 1] - pred_offsets_[id]};
}

std::span<const TaskId> Workflow::successors(TaskId id) const {
  WIRE_REQUIRE(id < tasks_.size(), "task id out of range");
  return {succ_edges_.data() + succ_offsets_[id],
          succ_offsets_[id + 1] - succ_offsets_[id]};
}

std::span<const TaskId> Workflow::stage_tasks(StageId id) const {
  WIRE_REQUIRE(id < stages_.size(), "stage id out of range");
  return {stage_members_.data() + stage_offsets_[id],
          stage_offsets_[id + 1] - stage_offsets_[id]};
}

double Workflow::input_dataset_mb() const {
  double total = 0.0;
  for (TaskId root : roots_) total += tasks_[root].input_mb;
  return total;
}

WorkflowBuilder::WorkflowBuilder(std::string workflow_name)
    : name_(std::move(workflow_name)) {}

StageId WorkflowBuilder::add_stage(std::string name, std::string executable) {
  StageSpec spec;
  spec.id = static_cast<StageId>(stages_.size());
  spec.name = std::move(name);
  spec.executable = std::move(executable);
  stages_.push_back(std::move(spec));
  return stages_.back().id;
}

TaskId WorkflowBuilder::add_task(StageId stage, std::string name,
                                 double input_mb, double output_mb,
                                 double ref_exec_seconds,
                                 std::vector<TaskId> predecessors,
                                 double ref_peak_mem_mb) {
  WIRE_REQUIRE(stage < stages_.size(), "unknown stage id");
  WIRE_REQUIRE(input_mb >= 0.0, "negative input size");
  WIRE_REQUIRE(output_mb >= 0.0, "negative output size");
  WIRE_REQUIRE(ref_exec_seconds >= 0.0, "negative execution time");
  WIRE_REQUIRE(ref_peak_mem_mb >= 0.0, "negative peak memory");
  const TaskId id = static_cast<TaskId>(tasks_.size());
  for (TaskId pred : predecessors) {
    WIRE_REQUIRE(pred < id, "predecessor must be added before its successor");
  }
  std::sort(predecessors.begin(), predecessors.end());
  predecessors.erase(
      std::unique(predecessors.begin(), predecessors.end()),
      predecessors.end());

  TaskSpec spec;
  spec.id = id;
  spec.stage = stage;
  spec.name = std::move(name);
  spec.input_mb = input_mb;
  spec.output_mb = output_mb;
  spec.ref_exec_seconds = ref_exec_seconds;
  spec.ref_peak_mem_mb = ref_peak_mem_mb;
  tasks_.push_back(std::move(spec));
  preds_.push_back(std::move(predecessors));
  return id;
}

Workflow WorkflowBuilder::build() {
  WIRE_REQUIRE(!tasks_.empty(), "workflow has no tasks");
  for (const StageSpec& s : stages_) {
    bool used = false;
    for (const TaskSpec& t : tasks_) {
      if (t.stage == s.id) {
        used = true;
        break;
      }
    }
    WIRE_REQUIRE(used, "stage '" + s.name + "' has no tasks");
  }

  Workflow wf;
  wf.name_ = std::move(name_);
  wf.tasks_ = std::move(tasks_);
  wf.stages_ = std::move(stages_);
  const std::size_t n = wf.tasks_.size();

  // Predecessor CSR.
  wf.pred_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    wf.pred_offsets_[i + 1] =
        wf.pred_offsets_[i] + static_cast<std::uint32_t>(preds_[i].size());
  }
  wf.pred_edges_.reserve(wf.pred_offsets_[n]);
  for (const auto& p : preds_) {
    wf.pred_edges_.insert(wf.pred_edges_.end(), p.begin(), p.end());
  }

  // Successor CSR (transpose).
  std::vector<std::uint32_t> out_degree(n, 0);
  for (const auto& p : preds_) {
    for (TaskId pred : p) ++out_degree[pred];
  }
  wf.succ_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    wf.succ_offsets_[i + 1] = wf.succ_offsets_[i] + out_degree[i];
  }
  wf.succ_edges_.assign(wf.succ_offsets_[n], kInvalidTask);
  {
    std::vector<std::uint32_t> cursor(wf.succ_offsets_.begin(),
                                      wf.succ_offsets_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      for (TaskId pred : preds_[i]) {
        wf.succ_edges_[cursor[pred]++] = static_cast<TaskId>(i);
      }
    }
  }

  // Stage membership CSR (task ids are already in id order per stage).
  const std::size_t s = wf.stages_.size();
  std::vector<std::uint32_t> stage_size(s, 0);
  for (const TaskSpec& t : wf.tasks_) ++stage_size[t.stage];
  wf.stage_offsets_.assign(s + 1, 0);
  for (std::size_t i = 0; i < s; ++i) {
    wf.stage_offsets_[i + 1] = wf.stage_offsets_[i] + stage_size[i];
  }
  wf.stage_members_.assign(wf.stage_offsets_[s], kInvalidTask);
  {
    std::vector<std::uint32_t> cursor(wf.stage_offsets_.begin(),
                                      wf.stage_offsets_.end() - 1);
    for (const TaskSpec& t : wf.tasks_) {
      wf.stage_members_[cursor[t.stage]++] = t.id;
    }
  }

  // Roots, sinks, aggregate time.
  for (const TaskSpec& t : wf.tasks_) {
    if (wf.predecessors(t.id).empty()) wf.roots_.push_back(t.id);
    if (wf.successors(t.id).empty()) wf.sinks_.push_back(t.id);
    wf.aggregate_exec_ += t.ref_exec_seconds;
  }

  // Topological order via Kahn's algorithm with a min-id heap; also the
  // defensive acyclicity check (the builder discipline already prevents
  // cycles, but serialization paths reuse this).
  std::vector<std::uint32_t> in_degree(n);
  for (std::size_t i = 0; i < n; ++i) {
    in_degree[i] = wf.pred_offsets_[i + 1] - wf.pred_offsets_[i];
  }
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<TaskId>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  wf.topo_.reserve(n);
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    wf.topo_.push_back(t);
    for (TaskId succ : wf.successors(t)) {
      if (--in_degree[succ] == 0) ready.push(succ);
    }
  }
  WIRE_CHECK(wf.topo_.size() == n, "workflow graph contains a cycle");

  preds_.clear();
  return wf;
}

}  // namespace wire::dag
