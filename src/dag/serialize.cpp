#include "dag/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace wire::dag {

std::string escape_token(const std::string& raw) {
  if (raw.empty()) return "\\e";
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    switch (ch) {
      case ' ': out += "\\s"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string unescape_token(const std::string& token) {
  if (token == "\\e") return {};
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\') {
      out += token[i];
      continue;
    }
    WIRE_REQUIRE(i + 1 < token.size(), "dangling escape in token");
    switch (token[++i]) {
      case 's': out += ' '; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'e': break;  // empty marker inside a token: contributes nothing
      default:
        WIRE_REQUIRE(false, "unknown escape in token");
    }
  }
  return out;
}

void write_workflow(std::ostream& os, const Workflow& wf) {
  os << "workflow " << escape_token(wf.name()) << '\n';
  for (const StageSpec& s : wf.stages()) {
    os << "stage " << s.id << ' ' << escape_token(s.name) << ' '
       << escape_token(s.executable) << '\n';
  }
  os.precision(17);
  for (const TaskSpec& t : wf.tasks()) {
    os << "task " << t.id << ' ' << t.stage << ' ' << escape_token(t.name)
       << ' ' << t.input_mb << ' ' << t.output_mb << ' ' << t.ref_exec_seconds;
    const auto preds = wf.predecessors(t.id);
    os << ' ' << preds.size();
    for (TaskId p : preds) os << ' ' << p;
    os << '\n';
  }
  os << "end\n";
}

std::string to_string(const Workflow& wf) {
  std::ostringstream os;
  write_workflow(os, wf);
  return os.str();
}

Workflow read_workflow(std::istream& is) {
  std::string keyword;
  WIRE_REQUIRE(static_cast<bool>(is >> keyword) && keyword == "workflow",
               "expected 'workflow' header");
  std::string name_token;
  WIRE_REQUIRE(static_cast<bool>(is >> name_token), "missing workflow name");
  WorkflowBuilder builder(unescape_token(name_token));

  bool saw_end = false;
  while (is >> keyword) {
    if (keyword == "end") {
      saw_end = true;
      break;
    }
    if (keyword == "stage") {
      StageId id;
      std::string name, exe;
      WIRE_REQUIRE(static_cast<bool>(is >> id >> name >> exe),
                   "malformed stage line");
      const StageId assigned =
          builder.add_stage(unescape_token(name), unescape_token(exe));
      WIRE_REQUIRE(assigned == id, "stage ids must be dense and in order");
    } else if (keyword == "task") {
      TaskId id;
      StageId stage;
      std::string name;
      double input_mb, output_mb, exec_s;
      std::size_t npred;
      WIRE_REQUIRE(static_cast<bool>(is >> id >> stage >> name >> input_mb >>
                                     output_mb >> exec_s >> npred),
                   "malformed task line");
      std::vector<TaskId> preds(npred);
      for (std::size_t i = 0; i < npred; ++i) {
        WIRE_REQUIRE(static_cast<bool>(is >> preds[i]),
                     "malformed predecessor list");
      }
      const TaskId assigned =
          builder.add_task(stage, unescape_token(name), input_mb, output_mb,
                           exec_s, std::move(preds));
      WIRE_REQUIRE(assigned == id, "task ids must be dense and in order");
    } else {
      WIRE_REQUIRE(false, "unknown keyword '" + keyword + "'");
    }
  }
  WIRE_REQUIRE(saw_end, "missing 'end' terminator");
  return builder.build();
}

Workflow from_string(const std::string& text) {
  std::istringstream is(text);
  return read_workflow(is);
}

}  // namespace wire::dag
