// The workflow DAG model (paper §I, §II-C).
//
// A workflow is a static DAG of tasks. Tasks that share the same executable
// and the same dependent predecessor stages form a *stage*; WIRE's online
// prediction policies operate per stage ("task executions are comparable",
// Observation 3). The DAG here carries the *declared* profile of each task —
// input/output data sizes and a reference execution time. Actual runtimes are
// produced by the ground-truth simulator's variability model (src/sim/), never
// read from the DAG by the controller.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace wire::dag {

using TaskId = std::uint32_t;
using StageId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
inline constexpr StageId kInvalidStage = std::numeric_limits<StageId>::max();

/// Declared (static) description of one task.
struct TaskSpec {
  TaskId id = kInvalidTask;
  StageId stage = kInvalidStage;
  std::string name;
  /// Input data size in MB — the feature of the paper's OGD model (Eq. 1).
  double input_mb = 0.0;
  /// Output data size in MB — drives the successor's transfer-in time.
  double output_mb = 0.0;
  /// Reference execution time (seconds) on a nominal instance. The simulator
  /// perturbs this with skew/interference; the controller never sees it.
  double ref_exec_seconds = 0.0;
  /// Reference peak memory (MB) on a nominal instance. The simulator perturbs
  /// this with per-task noise (MemoryConfig::noise_sigma); the controller
  /// never sees it. 0 = the workload declares no memory profile.
  double ref_peak_mem_mb = 0.0;
};

/// Declared description of one stage (a group of peer tasks).
struct StageSpec {
  StageId id = kInvalidStage;
  std::string name;
  /// Identifier of the shared executable (informational).
  std::string executable;
};

/// Immutable, validated workflow DAG. Construct via WorkflowBuilder.
class Workflow {
 public:
  const std::string& name() const { return name_; }

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t stage_count() const { return stages_.size(); }

  const TaskSpec& task(TaskId id) const;
  const StageSpec& stage(StageId id) const;

  /// Direct predecessors / successors in dependency order (stable).
  std::span<const TaskId> predecessors(TaskId id) const;
  std::span<const TaskId> successors(TaskId id) const;

  /// Tasks belonging to a stage, in id order.
  std::span<const TaskId> stage_tasks(StageId id) const;

  /// Tasks with no predecessors / no successors.
  std::span<const TaskId> roots() const { return roots_; }
  std::span<const TaskId> sinks() const { return sinks_; }

  /// A valid topological order of all tasks (deterministic: Kahn's algorithm
  /// with a min-id tie break).
  const std::vector<TaskId>& topological_order() const { return topo_; }

  /// Sum of the reference execution times of all tasks (seconds) — the
  /// paper's "aggregate task execution time" column in Table I.
  double aggregate_ref_exec_seconds() const { return aggregate_exec_; }

  /// Sum of declared input sizes of root-stage tasks (MB) — the workload's
  /// external dataset size, Table I's "Data Size" column.
  double input_dataset_mb() const;

  /// All tasks, for iteration.
  std::span<const TaskSpec> tasks() const { return tasks_; }
  std::span<const StageSpec> stages() const { return stages_; }

 private:
  friend class WorkflowBuilder;
  Workflow() = default;

  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<StageSpec> stages_;
  // CSR-style adjacency (predecessors and successors).
  std::vector<std::uint32_t> pred_offsets_, succ_offsets_;
  std::vector<TaskId> pred_edges_, succ_edges_;
  std::vector<std::uint32_t> stage_offsets_;
  std::vector<TaskId> stage_members_;
  std::vector<TaskId> roots_, sinks_, topo_;
  double aggregate_exec_ = 0.0;
};

/// Incremental builder; `build()` validates and freezes the DAG.
class WorkflowBuilder {
 public:
  explicit WorkflowBuilder(std::string workflow_name);

  /// Declares a stage; returns its id (ids are dense, in declaration order).
  StageId add_stage(std::string name, std::string executable = {});

  /// Declares a task in `stage` with the given profile and predecessor set.
  /// Predecessors must already have been added (forward declarations would
  /// permit cycles). Returns the new task id.
  TaskId add_task(StageId stage, std::string name, double input_mb,
                  double output_mb, double ref_exec_seconds,
                  std::vector<TaskId> predecessors,
                  double ref_peak_mem_mb = 0.0);

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t stage_count() const { return stages_.size(); }

  /// Validates (dependencies exist, stages non-empty, graph is a DAG — the
  /// add-order discipline guarantees acyclicity, revalidated defensively) and
  /// returns the immutable workflow. The builder is left empty.
  Workflow build();

 private:
  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<StageSpec> stages_;
  std::vector<std::vector<TaskId>> preds_;
};

}  // namespace wire::dag
