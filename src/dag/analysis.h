// Structural analysis over workflow DAGs: level decomposition, parallelism
// (width) profile, critical path, and the per-stage summaries behind the
// paper's Table I characterization.
#pragma once

#include <string>
#include <vector>

#include "dag/workflow.h"

namespace wire::dag {

/// Per-task depth: length (in hops) of the longest predecessor chain. Roots
/// are level 0.
std::vector<std::uint32_t> task_levels(const Workflow& wf);

/// Number of tasks at each level — the workflow's available-parallelism
/// profile ("the available parallelism (width) of a workflow may vary
/// dramatically as it runs", §I).
std::vector<std::uint32_t> width_profile(const Workflow& wf);

/// Maximum entry of width_profile.
std::uint32_t max_width(const Workflow& wf);

/// Length (seconds, by reference execution times) of the longest path —
/// a lower bound on makespan with unbounded resources and free transfers.
double critical_path_seconds(const Workflow& wf);

/// Table-I style summary of one stage.
struct StageSummary {
  StageId stage = kInvalidStage;
  std::string name;
  std::uint32_t task_count = 0;
  double mean_ref_exec_seconds = 0.0;
  double min_ref_exec_seconds = 0.0;
  double max_ref_exec_seconds = 0.0;
  double total_input_mb = 0.0;
};

/// Paper §IV-D stage classification by mean task execution time:
/// short (<= 10 s), medium (10–30 s), long (> 30 s).
enum class StageClass { Short, Medium, Long };

StageClass classify_stage(double mean_exec_seconds);
const char* stage_class_name(StageClass c);

/// Summaries for all stages, in stage-id order.
std::vector<StageSummary> summarize_stages(const Workflow& wf);

/// Ranges over the per-stage summaries (Table I rows "Number of Tasks at a
/// Stage" and "Average Task Execution Time of a Stage").
struct WorkflowSummary {
  std::string name;
  std::uint32_t stage_count = 0;
  std::uint32_t task_count = 0;
  double aggregate_exec_hours = 0.0;
  double dataset_gb = 0.0;
  std::uint32_t min_stage_tasks = 0;
  std::uint32_t max_stage_tasks = 0;
  double min_stage_mean_exec = 0.0;
  double max_stage_mean_exec = 0.0;
  /// Distinct StageClass values present, e.g. "short/medium/long".
  std::string task_type_mix;
};

WorkflowSummary summarize_workflow(const Workflow& wf);

/// True if every predecessor of every task in `stage` lies in a stage with a
/// smaller id — the layered-stage discipline all our generators follow.
bool stages_are_layered(const Workflow& wf);

}  // namespace wire::dag
