// Horizontal task clustering (the Pegasus technique the paper cites via
// Chen et al. [8], "Using imbalance metrics to optimize task clustering in
// scientific workflow executions").
//
// Clustering merges groups of peer tasks within a stage into single
// "clustered jobs" that run their members sequentially on one slot. It
// trades parallelism for lower per-task overhead and longer slot occupancy —
// which interacts directly with WIRE's charging-unit economics: Figure 3
// shows elasticity collapsing when tasks are short relative to u, and
// clustering is the classic lever that lengthens tasks. bench_clustering
// measures that interaction.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"

namespace wire::dag {

struct ClusterOptions {
  /// Maximum members per clustered job.
  std::uint32_t factor = 4;
  /// Stages with fewer tasks than this are left unclustered (clustering a
  /// narrow stage only serializes it).
  std::uint32_t min_stage_tasks = 8;
};

/// Result of a clustering transformation.
struct ClusteredWorkflow {
  Workflow workflow;
  /// Original task id -> clustered task id (surjective).
  std::vector<TaskId> task_mapping;
  /// Number of clustered jobs that contain more than one original task.
  std::uint32_t merged_jobs = 0;
};

/// Clusters each eligible stage horizontally: members are grouped in id
/// order, `factor` per job. A clustered job's execution time is the sum of
/// its members' (sequential execution on one slot), its input/output sizes
/// are the sums, and its predecessors are the union of the members'
/// predecessors mapped through the transformation. Stage structure is
/// preserved (one output stage per input stage).
ClusteredWorkflow cluster_horizontal(const Workflow& workflow,
                                     const ClusterOptions& options = {});

/// Vertical (chain) clustering: merges maximal 1:1 pipeline chains — a task
/// whose single successor has it as its single predecessor — into one job
/// that runs the chain sequentially on a slot. This is Pegasus's other
/// clustering mode; it collapses the per-chunk filter→convert→map pipelines
/// of Epigenomics-style workflows, removing the per-hop dispatch and
/// transfer overheads. The merged job lives in the chain head's stage; its
/// execution time is the chain sum, its input is the head's, its output the
/// tail's. Stages emptied by merging are dropped.
ClusteredWorkflow cluster_vertical(const Workflow& workflow);

}  // namespace wire::dag
