#include "dag/analysis.h"

#include <algorithm>

#include "util/check.h"

namespace wire::dag {

std::vector<std::uint32_t> task_levels(const Workflow& wf) {
  std::vector<std::uint32_t> level(wf.task_count(), 0);
  for (TaskId t : wf.topological_order()) {
    for (TaskId pred : wf.predecessors(t)) {
      level[t] = std::max(level[t], level[pred] + 1);
    }
  }
  return level;
}

std::vector<std::uint32_t> width_profile(const Workflow& wf) {
  const auto levels = task_levels(wf);
  const std::uint32_t depth =
      levels.empty() ? 0 : *std::max_element(levels.begin(), levels.end()) + 1;
  std::vector<std::uint32_t> width(depth, 0);
  for (std::uint32_t lvl : levels) ++width[lvl];
  return width;
}

std::uint32_t max_width(const Workflow& wf) {
  const auto profile = width_profile(wf);
  return profile.empty() ? 0
                         : *std::max_element(profile.begin(), profile.end());
}

double critical_path_seconds(const Workflow& wf) {
  std::vector<double> finish(wf.task_count(), 0.0);
  double best = 0.0;
  for (TaskId t : wf.topological_order()) {
    double start = 0.0;
    for (TaskId pred : wf.predecessors(t)) {
      start = std::max(start, finish[pred]);
    }
    finish[t] = start + wf.task(t).ref_exec_seconds;
    best = std::max(best, finish[t]);
  }
  return best;
}

StageClass classify_stage(double mean_exec_seconds) {
  if (mean_exec_seconds <= 10.0) return StageClass::Short;
  if (mean_exec_seconds <= 30.0) return StageClass::Medium;
  return StageClass::Long;
}

const char* stage_class_name(StageClass c) {
  switch (c) {
    case StageClass::Short: return "short";
    case StageClass::Medium: return "medium";
    case StageClass::Long: return "long";
  }
  return "?";
}

std::vector<StageSummary> summarize_stages(const Workflow& wf) {
  std::vector<StageSummary> out;
  out.reserve(wf.stage_count());
  for (const StageSpec& s : wf.stages()) {
    StageSummary sum;
    sum.stage = s.id;
    sum.name = s.name;
    const auto members = wf.stage_tasks(s.id);
    sum.task_count = static_cast<std::uint32_t>(members.size());
    WIRE_CHECK(!members.empty(), "stage without tasks survived build()");
    double total = 0.0;
    sum.min_ref_exec_seconds = wf.task(members.front()).ref_exec_seconds;
    sum.max_ref_exec_seconds = sum.min_ref_exec_seconds;
    for (TaskId t : members) {
      const TaskSpec& spec = wf.task(t);
      total += spec.ref_exec_seconds;
      sum.min_ref_exec_seconds =
          std::min(sum.min_ref_exec_seconds, spec.ref_exec_seconds);
      sum.max_ref_exec_seconds =
          std::max(sum.max_ref_exec_seconds, spec.ref_exec_seconds);
      sum.total_input_mb += spec.input_mb;
    }
    sum.mean_ref_exec_seconds = total / static_cast<double>(members.size());
    out.push_back(std::move(sum));
  }
  return out;
}

WorkflowSummary summarize_workflow(const Workflow& wf) {
  WorkflowSummary out;
  out.name = wf.name();
  out.stage_count = static_cast<std::uint32_t>(wf.stage_count());
  out.task_count = static_cast<std::uint32_t>(wf.task_count());
  out.aggregate_exec_hours = wf.aggregate_ref_exec_seconds() / 3600.0;
  out.dataset_gb = wf.input_dataset_mb() / 1024.0;

  const auto stages = summarize_stages(wf);
  out.min_stage_tasks = stages.front().task_count;
  out.max_stage_tasks = stages.front().task_count;
  out.min_stage_mean_exec = stages.front().mean_ref_exec_seconds;
  out.max_stage_mean_exec = stages.front().mean_ref_exec_seconds;
  bool has_class[3] = {false, false, false};
  for (const StageSummary& s : stages) {
    out.min_stage_tasks = std::min(out.min_stage_tasks, s.task_count);
    out.max_stage_tasks = std::max(out.max_stage_tasks, s.task_count);
    out.min_stage_mean_exec =
        std::min(out.min_stage_mean_exec, s.mean_ref_exec_seconds);
    out.max_stage_mean_exec =
        std::max(out.max_stage_mean_exec, s.mean_ref_exec_seconds);
    has_class[static_cast<int>(classify_stage(s.mean_ref_exec_seconds))] =
        true;
  }
  const char* names[3] = {"short", "medium", "long"};
  for (int i = 0; i < 3; ++i) {
    if (has_class[i]) {
      if (!out.task_type_mix.empty()) out.task_type_mix += '/';
      out.task_type_mix += names[i];
    }
  }
  return out;
}

bool stages_are_layered(const Workflow& wf) {
  for (const TaskSpec& t : wf.tasks()) {
    for (TaskId pred : wf.predecessors(t.id)) {
      if (wf.task(pred).stage >= t.stage) return false;
    }
  }
  return true;
}

}  // namespace wire::dag
