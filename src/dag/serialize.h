// Plain-text workflow serialization (a DAX-like format).
//
// Pegasus workflows ship as DAX XML files; our equivalent is a line-oriented
// text format that round-trips every field of the DAG model. Used by the
// examples to persist generated workflows and by tests to validate
// round-tripping.
//
// Format:
//   workflow <name>
//   stage <id> <name> <executable>
//   task <id> <stage> <name> <input_mb> <output_mb> <exec_s> <npred> <pred>*
//   end
// Tokens are whitespace-separated; string tokens escape space, backslash and
// newline.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/workflow.h"

namespace wire::dag {

/// Writes `wf` to `os` in the text format above.
void write_workflow(std::ostream& os, const Workflow& wf);

/// Serializes to a string.
std::string to_string(const Workflow& wf);

/// Parses a workflow; throws util::ContractViolation on malformed input.
Workflow read_workflow(std::istream& is);

/// Parses from a string.
Workflow from_string(const std::string& text);

/// Escapes a string token (space -> "\s", backslash -> "\\", newline -> "\n",
/// empty -> "\e").
std::string escape_token(const std::string& raw);

/// Inverse of escape_token.
std::string unescape_token(const std::string& token);

}  // namespace wire::dag
