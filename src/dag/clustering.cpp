#include "dag/clustering.h"

#include <algorithm>
#include <string>

#include "dag/analysis.h"
#include "util/check.h"

namespace wire::dag {

ClusteredWorkflow cluster_horizontal(const Workflow& workflow,
                                     const ClusterOptions& options) {
  WIRE_REQUIRE(options.factor >= 1, "cluster factor must be >= 1");
  // Layered stages guarantee that grouping within a stage cannot create a
  // cycle (every predecessor lives in a lower stage).
  WIRE_REQUIRE(stages_are_layered(workflow),
               "horizontal clustering requires layered stages");

  WorkflowBuilder builder(workflow.name() + "-clustered");
  std::vector<TaskId> mapping(workflow.task_count(), kInvalidTask);
  std::uint32_t merged = 0;

  for (const StageSpec& stage : workflow.stages()) {
    const StageId new_stage =
        builder.add_stage(stage.name, stage.executable);
    const auto members = workflow.stage_tasks(stage.id);
    const std::uint32_t factor =
        members.size() < options.min_stage_tasks ? 1 : options.factor;

    for (std::size_t start = 0; start < members.size(); start += factor) {
      const std::size_t end = std::min(members.size(), start + factor);
      double exec = 0.0, input = 0.0, output = 0.0;
      std::vector<TaskId> preds;
      for (std::size_t i = start; i < end; ++i) {
        const TaskSpec& spec = workflow.task(members[i]);
        exec += spec.ref_exec_seconds;
        input += spec.input_mb;
        output += spec.output_mb;
        for (TaskId pred : workflow.predecessors(members[i])) {
          WIRE_CHECK(mapping[pred] != kInvalidTask,
                     "predecessor not yet clustered");
          preds.push_back(mapping[pred]);
        }
      }
      std::string name;
      if (end - start == 1) {
        name = workflow.task(members[start]).name;
      } else {
        name = "cluster_" + stage.name + "_" + std::to_string(start / factor);
        ++merged;
      }
      const TaskId job = builder.add_task(new_stage, std::move(name), input,
                                          output, exec, std::move(preds));
      for (std::size_t i = start; i < end; ++i) {
        mapping[members[i]] = job;
      }
    }
  }

  return ClusteredWorkflow{builder.build(), std::move(mapping), merged};
}

ClusteredWorkflow cluster_vertical(const Workflow& workflow) {
  const std::size_t n = workflow.task_count();
  // chain_next[t] = successor merged into t's job, or kInvalidTask.
  std::vector<TaskId> chain_next(n, kInvalidTask);
  std::vector<bool> absorbed(n, false);
  for (TaskId t = 0; t < n; ++t) {
    const auto succs = workflow.successors(t);
    if (succs.size() != 1) continue;
    const TaskId succ = succs[0];
    if (workflow.predecessors(succ).size() != 1) continue;
    chain_next[t] = succ;
    absorbed[succ] = true;
  }

  WorkflowBuilder builder(workflow.name() + "-chained");
  std::vector<TaskId> mapping(n, kInvalidTask);
  std::uint32_t merged = 0;

  // Stages are re-registered lazily (merging can empty a stage entirely).
  std::vector<StageId> new_stage(workflow.stage_count(), kInvalidStage);
  const auto stage_for = [&](StageId original) {
    if (new_stage[original] == kInvalidStage) {
      const StageSpec& spec = workflow.stage(original);
      new_stage[original] = builder.add_stage(spec.name, spec.executable);
    }
    return new_stage[original];
  };

  // Task ids are a topological order by construction, so walking heads in id
  // order guarantees predecessors were emitted first.
  for (TaskId head = 0; head < n; ++head) {
    if (absorbed[head]) continue;
    double exec = 0.0;
    double output_mb = 0.0;
    std::string name = workflow.task(head).name;
    TaskId tail = head;
    std::uint32_t length = 1;
    for (TaskId t = head;; t = chain_next[t]) {
      exec += workflow.task(t).ref_exec_seconds;
      output_mb = workflow.task(t).output_mb;
      tail = t;
      if (chain_next[t] == kInvalidTask) break;
      ++length;
    }
    if (length > 1) {
      name = "chain_" + workflow.task(head).name;
      ++merged;
    }
    std::vector<TaskId> preds;
    for (TaskId pred : workflow.predecessors(head)) {
      // The predecessor may sit inside a chain: map to its job.
      WIRE_CHECK(mapping[pred] != kInvalidTask,
                 "predecessor not yet emitted");
      preds.push_back(mapping[pred]);
    }
    const TaskId job = builder.add_task(
        stage_for(workflow.task(head).stage), std::move(name),
        workflow.task(head).input_mb, output_mb, exec, std::move(preds));
    for (TaskId t = head;; t = chain_next[t]) {
      mapping[t] = job;
      if (chain_next[t] == kInvalidTask) break;
    }
    (void)tail;
  }

  return ClusteredWorkflow{builder.build(), std::move(mapping), merged};
}

}  // namespace wire::dag
