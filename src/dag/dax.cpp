#include "dag/dax.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <map>
#include <queue>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace wire::dag {

namespace {

/// One parsed XML tag: name, attributes, whether it opens/closes, and the
/// 1-based line of its '<' in the source document (for error context).
struct Tag {
  std::string name;
  std::map<std::string, std::string> attributes;
  bool closing = false;       // </name>
  bool self_closing = false;  // <name ... />
  std::size_t line = 0;
};

/// Minimal XML tag scanner sufficient for DAX: yields tags in document
/// order, skipping text content, comments, CDATA-free documents assumed.
/// Every syntax error throws DaxParseError with source:line context — a
/// truncated or malformed document can never yield a silent partial tag
/// stream.
class XmlScanner {
 public:
  XmlScanner(const std::string& text, const std::string& source)
      : text_(text), source_(source) {}

  /// Returns false at end of document.
  bool next(Tag& out) {
    for (;;) {
      const std::size_t open = text_.find('<', pos_);
      if (open == std::string::npos) return false;
      const std::size_t line = line_at(open);
      pos_ = open + 1;
      if (text_.compare(pos_, 3, "!--") == 0) {
        const std::size_t end = text_.find("-->", pos_);
        if (end == std::string::npos) fail(line, "unterminated XML comment");
        pos_ = end + 3;
        continue;
      }
      if (pos_ < text_.size() && (text_[pos_] == '?' || text_[pos_] == '!')) {
        const std::size_t end = text_.find('>', pos_);
        if (end == std::string::npos) fail(line, "unterminated declaration");
        pos_ = end + 1;
        continue;
      }
      const std::size_t end = text_.find('>', pos_);
      if (end == std::string::npos) {
        fail(line, "unterminated tag (document truncated?)");
      }
      std::string body = text_.substr(pos_, end - pos_);
      pos_ = end + 1;
      parse_tag(std::move(body), line, out);
      out.line = line;
      return true;
    }
  }

  [[noreturn]] void fail(std::size_t line, const std::string& message) const {
    throw DaxParseError(source_ + ":" + std::to_string(line) + ": " +
                        message);
  }

  /// Document-level error: no single line to blame.
  [[noreturn]] void fail(const std::string& message) const {
    throw DaxParseError(source_ + ": " + message);
  }

 private:
  /// 1-based line of byte `pos`. Scan positions only move forward, so the
  /// newline count advances incrementally — O(document) total.
  std::size_t line_at(std::size_t pos) {
    while (counted_ < pos) {
      if (text_[counted_] == '\n') ++line_;
      ++counted_;
    }
    return line_;
  }

  void parse_tag(std::string body, std::size_t line, Tag& out) const {
    out = Tag{};
    if (body.empty()) fail(line, "empty tag");
    if (body.front() == '/') {
      out.closing = true;
      body.erase(body.begin());
    }
    if (!body.empty() && body.back() == '/') {
      out.self_closing = true;
      body.pop_back();
    }
    std::size_t i = 0;
    const auto skip_space = [&] {
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
    };
    skip_space();
    const std::size_t name_start = i;
    while (i < body.size() &&
           !std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    out.name = body.substr(name_start, i - name_start);
    if (out.name.empty()) fail(line, "tag without a name");

    while (true) {
      skip_space();
      if (i >= body.size()) break;
      const std::size_t key_start = i;
      while (i < body.size() && body[i] != '=' &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      const std::string key = body.substr(key_start, i - key_start);
      skip_space();
      if (i >= body.size() || body[i] != '=') {
        fail(line, "attribute '" + key + "' without value");
      }
      ++i;
      skip_space();
      if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
        fail(line, "unquoted attribute value for '" + key + "'");
      }
      const char quote = body[i++];
      const std::size_t value_start = i;
      while (i < body.size() && body[i] != quote) ++i;
      if (i >= body.size()) fail(line, "unterminated attribute value");
      out.attributes[key] = body.substr(value_start, i - value_start);
      ++i;
    }
  }

  const std::string& text_;
  const std::string& source_;
  std::size_t pos_ = 0;
  std::size_t counted_ = 0;
  std::size_t line_ = 1;
};

struct DaxJob {
  std::string id;
  std::string transformation;
  double runtime = -1.0;
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  std::vector<std::string> parents;
};

/// Full-string numeric parse; rejects partial parses like "12abc" that
/// std::stod would silently truncate.
double parse_number(const XmlScanner& scanner, std::size_t line,
                    const std::string& value, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) {
      scanner.fail(line, what + " is not a number: '" + value + "'");
    }
    return v;
  } catch (const DaxParseError&) {
    throw;
  } catch (const std::exception&) {
    scanner.fail(line, what + " is not a number: '" + value + "'");
  }
}

}  // namespace

Workflow read_dax(std::istream& is, const std::string& source) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return dax_from_string(buffer.str(), source);
}

Workflow dax_from_string(const std::string& text, const std::string& source) {
  XmlScanner scanner(text, source);
  Tag tag;

  std::string workflow_name = "dax";
  std::vector<DaxJob> jobs;
  std::map<std::string, std::size_t> job_index;
  std::map<std::string, std::size_t> job_line;  // first definition, for dups
  std::string current_child;  // inside a <child> element
  std::size_t current_job = static_cast<std::size_t>(-1);
  bool saw_adag = false;

  while (scanner.next(tag)) {
    if (tag.name == "adag" && !tag.closing) {
      saw_adag = true;
      const auto it = tag.attributes.find("name");
      if (it != tag.attributes.end() && !it->second.empty()) {
        workflow_name = it->second;
      }
    } else if (tag.name == "job" && !tag.closing) {
      DaxJob job;
      const auto id = tag.attributes.find("id");
      if (id == tag.attributes.end()) scanner.fail(tag.line, "job without id");
      job.id = id->second;
      const auto name = tag.attributes.find("name");
      if (name == tag.attributes.end()) {
        scanner.fail(tag.line,
                     "job " + job.id + " without a transformation name");
      }
      job.transformation = name->second;
      const auto runtime = tag.attributes.find("runtime");
      if (runtime == tag.attributes.end()) {
        scanner.fail(tag.line,
                     "job " + job.id + " without a runtime attribute");
      }
      job.runtime = parse_number(scanner, tag.line, runtime->second,
                                 "job " + job.id + " runtime");
      if (job.runtime < 0.0) {
        scanner.fail(tag.line, "job " + job.id + " has a negative runtime");
      }
      if (!job_index.emplace(job.id, jobs.size()).second) {
        scanner.fail(tag.line,
                     "duplicate job id " + job.id + " (first defined at line " +
                         std::to_string(job_line.at(job.id)) + ")");
      }
      job_line.emplace(job.id, tag.line);
      if (!tag.self_closing) current_job = jobs.size();
      jobs.push_back(std::move(job));
    } else if (tag.name == "job" && tag.closing) {
      current_job = static_cast<std::size_t>(-1);
    } else if (tag.name == "uses") {
      if (current_job == static_cast<std::size_t>(-1)) continue;
      const auto link = tag.attributes.find("link");
      const auto size = tag.attributes.find("size");
      if (link == tag.attributes.end() || size == tag.attributes.end()) {
        continue;
      }
      const double bytes =
          parse_number(scanner, tag.line, size->second,
                       "uses size of job " + jobs[current_job].id);
      if (link->second == "input") {
        jobs[current_job].input_bytes += bytes;
      } else if (link->second == "output") {
        jobs[current_job].output_bytes += bytes;
      }
    } else if (tag.name == "child" && !tag.closing) {
      const auto ref = tag.attributes.find("ref");
      if (ref == tag.attributes.end()) {
        scanner.fail(tag.line, "child without ref");
      }
      current_child = ref->second;
      if (job_index.find(current_child) == job_index.end()) {
        scanner.fail(tag.line,
                     "child references unknown job " + current_child);
      }
    } else if (tag.name == "child" && tag.closing) {
      current_child.clear();
    } else if (tag.name == "parent") {
      const auto ref = tag.attributes.find("ref");
      if (ref == tag.attributes.end()) {
        scanner.fail(tag.line, "parent without ref");
      }
      if (current_child.empty()) {
        scanner.fail(tag.line, "parent outside a child element");
      }
      if (job_index.count(ref->second) != 1) {
        scanner.fail(tag.line,
                     "parent references unknown job " + ref->second);
      }
      jobs[job_index.at(current_child)].parents.push_back(ref->second);
    }
  }
  if (!saw_adag) scanner.fail("not a DAX document (no <adag> element)");
  if (jobs.empty()) scanner.fail("DAX contains no jobs");

  // Topological order (the builder requires predecessors first).
  std::vector<std::vector<std::size_t>> successors(jobs.size());
  std::vector<std::uint32_t> in_degree(jobs.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const std::string& parent : jobs[j].parents) {
      successors[job_index.at(parent)].push_back(j);
      ++in_degree[j];
    }
  }
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (in_degree[j] == 0) ready.push(j);
  }
  std::vector<std::size_t> topo;
  topo.reserve(jobs.size());
  while (!ready.empty()) {
    const std::size_t j = ready.top();
    ready.pop();
    topo.push_back(j);
    for (std::size_t succ : successors[j]) {
      if (--in_degree[succ] == 0) ready.push(succ);
    }
  }
  if (topo.size() != jobs.size()) {
    scanner.fail("DAX dependencies contain a cycle");
  }

  // Stage per transformation name, in order of first appearance.
  WorkflowBuilder builder(workflow_name);
  std::map<std::string, StageId> stage_of;
  std::vector<TaskId> task_of(jobs.size(), kInvalidTask);
  constexpr double kBytesPerMb = 1024.0 * 1024.0;
  for (std::size_t j : topo) {
    const DaxJob& job = jobs[j];
    auto [it, inserted] = stage_of.try_emplace(job.transformation, 0);
    if (inserted) {
      it->second = builder.add_stage(job.transformation, job.transformation);
    }
    std::vector<TaskId> preds;
    preds.reserve(job.parents.size());
    for (const std::string& parent : job.parents) {
      preds.push_back(task_of[job_index.at(parent)]);
    }
    task_of[j] = builder.add_task(it->second, job.id,
                                  job.input_bytes / kBytesPerMb,
                                  job.output_bytes / kBytesPerMb, job.runtime,
                                  std::move(preds));
  }
  return builder.build();
}

}  // namespace wire::dag
