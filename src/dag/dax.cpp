#include "dag/dax.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <map>
#include <queue>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace wire::dag {

namespace {

/// One parsed XML tag: name, attributes, and whether it opens/closes.
struct Tag {
  std::string name;
  std::map<std::string, std::string> attributes;
  bool closing = false;       // </name>
  bool self_closing = false;  // <name ... />
};

/// Minimal XML tag scanner sufficient for DAX: yields tags in document
/// order, skipping text content, comments, CDATA-free documents assumed.
class XmlScanner {
 public:
  explicit XmlScanner(const std::string& text) : text_(text) {}

  /// Returns false at end of document.
  bool next(Tag& out) {
    for (;;) {
      const std::size_t open = text_.find('<', pos_);
      if (open == std::string::npos) return false;
      pos_ = open + 1;
      if (text_.compare(pos_, 3, "!--") == 0) {
        const std::size_t end = text_.find("-->", pos_);
        WIRE_REQUIRE(end != std::string::npos, "unterminated XML comment");
        pos_ = end + 3;
        continue;
      }
      if (pos_ < text_.size() && (text_[pos_] == '?' || text_[pos_] == '!')) {
        const std::size_t end = text_.find('>', pos_);
        WIRE_REQUIRE(end != std::string::npos, "unterminated declaration");
        pos_ = end + 1;
        continue;
      }
      const std::size_t end = text_.find('>', pos_);
      WIRE_REQUIRE(end != std::string::npos, "unterminated tag");
      std::string body = text_.substr(pos_, end - pos_);
      pos_ = end + 1;
      parse_tag(body, out);
      return true;
    }
  }

 private:
  static void parse_tag(std::string body, Tag& out) {
    out = Tag{};
    WIRE_REQUIRE(!body.empty(), "empty tag");
    if (body.front() == '/') {
      out.closing = true;
      body.erase(body.begin());
    }
    if (!body.empty() && body.back() == '/') {
      out.self_closing = true;
      body.pop_back();
    }
    std::size_t i = 0;
    const auto skip_space = [&] {
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
    };
    skip_space();
    const std::size_t name_start = i;
    while (i < body.size() &&
           !std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    out.name = body.substr(name_start, i - name_start);
    WIRE_REQUIRE(!out.name.empty(), "tag without a name");

    while (true) {
      skip_space();
      if (i >= body.size()) break;
      const std::size_t key_start = i;
      while (i < body.size() && body[i] != '=' &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      const std::string key = body.substr(key_start, i - key_start);
      skip_space();
      WIRE_REQUIRE(i < body.size() && body[i] == '=',
                   "attribute '" + key + "' without value");
      ++i;
      skip_space();
      WIRE_REQUIRE(i < body.size() && (body[i] == '"' || body[i] == '\''),
                   "unquoted attribute value for '" + key + "'");
      const char quote = body[i++];
      const std::size_t value_start = i;
      while (i < body.size() && body[i] != quote) ++i;
      WIRE_REQUIRE(i < body.size(), "unterminated attribute value");
      out.attributes[key] = body.substr(value_start, i - value_start);
      ++i;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct DaxJob {
  std::string id;
  std::string transformation;
  double runtime = -1.0;
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  std::vector<std::string> parents;
};

}  // namespace

Workflow read_dax(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return dax_from_string(buffer.str());
}

Workflow dax_from_string(const std::string& text) {
  XmlScanner scanner(text);
  Tag tag;

  std::string workflow_name = "dax";
  std::vector<DaxJob> jobs;
  std::map<std::string, std::size_t> job_index;
  std::string current_child;  // inside a <child> element
  std::size_t current_job = static_cast<std::size_t>(-1);
  bool saw_adag = false;

  while (scanner.next(tag)) {
    if (tag.name == "adag" && !tag.closing) {
      saw_adag = true;
      const auto it = tag.attributes.find("name");
      if (it != tag.attributes.end() && !it->second.empty()) {
        workflow_name = it->second;
      }
    } else if (tag.name == "job" && !tag.closing) {
      DaxJob job;
      const auto id = tag.attributes.find("id");
      WIRE_REQUIRE(id != tag.attributes.end(), "job without id");
      job.id = id->second;
      const auto name = tag.attributes.find("name");
      WIRE_REQUIRE(name != tag.attributes.end(),
                   "job " + job.id + " without a transformation name");
      job.transformation = name->second;
      const auto runtime = tag.attributes.find("runtime");
      WIRE_REQUIRE(runtime != tag.attributes.end(),
                   "job " + job.id + " without a runtime attribute");
      job.runtime = std::stod(runtime->second);
      WIRE_REQUIRE(job.runtime >= 0.0,
                   "job " + job.id + " has a negative runtime");
      WIRE_REQUIRE(job_index.emplace(job.id, jobs.size()).second,
                   "duplicate job id " + job.id);
      if (!tag.self_closing) current_job = jobs.size();
      jobs.push_back(std::move(job));
    } else if (tag.name == "job" && tag.closing) {
      current_job = static_cast<std::size_t>(-1);
    } else if (tag.name == "uses") {
      if (current_job == static_cast<std::size_t>(-1)) continue;
      const auto link = tag.attributes.find("link");
      const auto size = tag.attributes.find("size");
      if (link == tag.attributes.end() || size == tag.attributes.end()) {
        continue;
      }
      const double bytes = std::stod(size->second);
      if (link->second == "input") {
        jobs[current_job].input_bytes += bytes;
      } else if (link->second == "output") {
        jobs[current_job].output_bytes += bytes;
      }
    } else if (tag.name == "child" && !tag.closing) {
      const auto ref = tag.attributes.find("ref");
      WIRE_REQUIRE(ref != tag.attributes.end(), "child without ref");
      current_child = ref->second;
    } else if (tag.name == "child" && tag.closing) {
      current_child.clear();
    } else if (tag.name == "parent") {
      const auto ref = tag.attributes.find("ref");
      WIRE_REQUIRE(ref != tag.attributes.end(), "parent without ref");
      WIRE_REQUIRE(!current_child.empty(), "parent outside a child element");
      const auto child_it = job_index.find(current_child);
      WIRE_REQUIRE(child_it != job_index.end(),
                   "child references unknown job " + current_child);
      WIRE_REQUIRE(job_index.count(ref->second) == 1,
                   "parent references unknown job " + ref->second);
      jobs[child_it->second].parents.push_back(ref->second);
    }
  }
  WIRE_REQUIRE(saw_adag, "not a DAX document (no <adag> element)");
  WIRE_REQUIRE(!jobs.empty(), "DAX contains no jobs");

  // Topological order (the builder requires predecessors first).
  std::vector<std::vector<std::size_t>> successors(jobs.size());
  std::vector<std::uint32_t> in_degree(jobs.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const std::string& parent : jobs[j].parents) {
      successors[job_index.at(parent)].push_back(j);
      ++in_degree[j];
    }
  }
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (in_degree[j] == 0) ready.push(j);
  }
  std::vector<std::size_t> topo;
  topo.reserve(jobs.size());
  while (!ready.empty()) {
    const std::size_t j = ready.top();
    ready.pop();
    topo.push_back(j);
    for (std::size_t succ : successors[j]) {
      if (--in_degree[succ] == 0) ready.push(succ);
    }
  }
  WIRE_REQUIRE(topo.size() == jobs.size(), "DAX dependencies contain a cycle");

  // Stage per transformation name, in order of first appearance.
  WorkflowBuilder builder(workflow_name);
  std::map<std::string, StageId> stage_of;
  std::vector<TaskId> task_of(jobs.size(), kInvalidTask);
  constexpr double kBytesPerMb = 1024.0 * 1024.0;
  for (std::size_t j : topo) {
    const DaxJob& job = jobs[j];
    auto [it, inserted] = stage_of.try_emplace(job.transformation, 0);
    if (inserted) {
      it->second = builder.add_stage(job.transformation, job.transformation);
    }
    std::vector<TaskId> preds;
    preds.reserve(job.parents.size());
    for (const std::string& parent : job.parents) {
      preds.push_back(task_of[job_index.at(parent)]);
    }
    task_of[j] = builder.add_task(it->second, job.id,
                                  job.input_bytes / kBytesPerMb,
                                  job.output_bytes / kBytesPerMb, job.runtime,
                                  std::move(preds));
  }
  return builder.build();
}

}  // namespace wire::dag
