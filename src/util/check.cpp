#include "util/check.h"

#include <sstream>

namespace wire::util {

void raise_contract_violation(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& detail) {
  std::ostringstream os;
  os << "wire " << kind << " failed: (" << expr << ") at " << file << ':'
     << line;
  if (!detail.empty()) {
    os << " — " << detail;
  }
  throw ContractViolation(os.str());
}

}  // namespace wire::util
