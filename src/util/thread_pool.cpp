#include "util/thread_pool.h"

#include <algorithm>

namespace wire::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wire::util
