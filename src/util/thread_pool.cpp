#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace wire::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || !jobs_.empty() ||
               (batch_fn_ != nullptr && batch_next_ < batch_count_);
      });
      if (batch_fn_ != nullptr && batch_next_ < batch_count_) {
        drain_batch(lock);
        continue;
      }
      if (jobs_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::drain_batch(std::unique_lock<std::mutex>& lock) {
  while (batch_fn_ != nullptr && batch_next_ < batch_count_) {
    const std::size_t index = batch_next_++;
    const std::function<void(std::size_t)>* fn = batch_fn_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error) batch_errors_[index] = error;
    ++batch_done_;
    if (batch_done_ == batch_count_) batch_cv_.notify_all();
  }
}

void ThreadPool::run_batch(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // No parallelism available (or worthwhile): run inline, preserving the
    // lowest-index-first exception contract trivially.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  WIRE_REQUIRE(batch_fn_ == nullptr, "run_batch is not reentrant");
  batch_fn_ = &fn;
  batch_count_ = count;
  batch_next_ = 0;
  batch_done_ = 0;
  batch_errors_.assign(count, nullptr);
  cv_.notify_all();
  // The caller claims indices too, so progress never depends on workers being
  // free (they may be blocked behind long submit() jobs).
  drain_batch(lock);
  batch_cv_.wait(lock, [this] { return batch_done_ == batch_count_; });
  batch_fn_ = nullptr;
  std::exception_ptr first_error;
  for (std::exception_ptr& e : batch_errors_) {
    if (e) {
      first_error = e;
      break;
    }
  }
  batch_errors_.clear();
  lock.unlock();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  ThreadPool pool(threads);
  pool.run_batch(count, fn);
}

}  // namespace wire::util
