#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace wire::util {

void TextTable::set_header(std::vector<std::string> header) {
  WIRE_REQUIRE(!header.empty(), "table header must be non-empty");
  WIRE_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  WIRE_REQUIRE(row.size() == header_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string fmt_mean_std(double mean, double std, int digits) {
  return fmt(mean, digits) + " ± " + fmt(std, digits);
}

}  // namespace wire::util
