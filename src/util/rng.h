// Deterministic random-number utilities.
//
// Every stochastic component of the reproduction draws through `Rng`, a thin
// seeded wrapper over std::mt19937_64. Experiment sweeps derive independent
// child seeds with `derive_seed` so that (a) each run is reproducible from a
// single root seed and (b) results do not depend on the order in which a
// thread pool happens to schedule runs.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace wire::util {

/// Seeded pseudo-random generator. Copyable; copies continue the same
/// deterministic stream independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Lognormal such that the *median* of the distribution is `median` and the
  /// underlying normal has standard deviation `sigma` (sigma >= 0).
  double lognormal_median(double median, double sigma);

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

  /// Zipf-distributed rank in [1, n] with exponent s > 0. Sampled by inverse
  /// transform over the exact normalized mass function (n is small in all of
  /// our workloads, so O(n) setup per call pattern is handled by the caller
  /// via ZipfSampler when performance matters).
  std::uint32_t zipf(std::uint32_t n, double s);

  /// Access to the raw engine for std::shuffle and custom distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Pre-tabulated Zipf sampler for repeated draws with fixed (n, s).
class ZipfSampler {
 public:
  /// Requires n >= 1 and s > 0.
  ZipfSampler(std::uint32_t n, double s);

  /// Draws a rank in [1, n]; rank 1 is the most probable.
  std::uint32_t sample(Rng& rng) const;

  std::uint32_t n() const { return n_; }

 private:
  std::uint32_t n_;
  std::vector<double> cdf_;  // cumulative mass, cdf_.back() == 1.0
};

/// Derives a statistically independent child seed from a root seed and a
/// stream index (SplitMix64 finalizer). Stable across platforms.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream);

}  // namespace wire::util
