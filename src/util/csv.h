// Minimal CSV writer for exporting bench series (one file per figure) so the
// regenerated data can be re-plotted outside this repository.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace wire::util {

/// Streams rows to a CSV file. Fields containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: header + typed helpers.
  void write_row(std::initializer_list<std::string> fields);

 private:
  static std::string escape(const std::string& field);
  std::ofstream out_;
};

}  // namespace wire::util
