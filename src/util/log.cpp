#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace wire::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[wire:" << level_name(level) << "] " << message << '\n';
}

}  // namespace wire::util
