#include "util/csv.h"

#include <stdexcept>

namespace wire::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> fields) {
  write_row(std::vector<std::string>(fields));
}

}  // namespace wire::util
