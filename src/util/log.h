// Minimal leveled logging. Simulations are silent by default; set the level
// to Debug to trace MAPE iterations and pool decisions when debugging a run.
#pragma once

#include <sstream>
#include <string>

namespace wire::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a message at `level` to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

}  // namespace wire::util

#define WIRE_LOG(level, expr)                                           \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::wire::util::log_level())) {                  \
      std::ostringstream wire_log_os;                                   \
      wire_log_os << expr;                                              \
      ::wire::util::log_message(level, wire_log_os.str());              \
    }                                                                   \
  } while (false)

#define WIRE_DEBUG(expr) WIRE_LOG(::wire::util::LogLevel::Debug, expr)
#define WIRE_INFO(expr) WIRE_LOG(::wire::util::LogLevel::Info, expr)
#define WIRE_WARN(expr) WIRE_LOG(::wire::util::LogLevel::Warn, expr)
