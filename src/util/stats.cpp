#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wire::util {

double median(std::vector<double> values) {
  WIRE_REQUIRE(!values.empty(), "median of empty sample");
  const std::size_t n = values.size();
  const std::size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (n % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double quantile(std::vector<double> values, double q) {
  WIRE_REQUIRE(!values.empty(), "quantile of empty sample");
  WIRE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean(const std::vector<double>& values) {
  WIRE_REQUIRE(!values.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  WIRE_REQUIRE(!values.empty(), "stddev of empty sample");
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  WIRE_REQUIRE(n_ >= 1, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  WIRE_REQUIRE(n_ >= 1, "variance of empty RunningStats");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  WIRE_REQUIRE(n_ >= 1, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  WIRE_REQUIRE(n_ >= 1, "max of empty RunningStats");
  return max_;
}

void MovingMedian::add(double x) {
  values_.push_back(x);
  if (window_ != 0 && values_.size() > window_) {
    values_.pop_front();
  }
}

std::optional<double> MovingMedian::value() const {
  if (values_.empty()) return std::nullopt;
  return median(std::vector<double>(values_.begin(), values_.end()));
}

void CdfBuilder::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void CdfBuilder::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double CdfBuilder::fraction_at_most(double x) const {
  WIRE_REQUIRE(!samples_.empty(), "CDF of empty sample set");
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double CdfBuilder::fraction_within(double x) const {
  WIRE_REQUIRE(!samples_.empty(), "CDF of empty sample set");
  WIRE_REQUIRE(x >= 0.0, "fraction_within band must be non-negative");
  std::size_t hits = 0;
  for (double s : samples_) {
    if (std::abs(s) <= x) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> CdfBuilder::curve(
    double lo, double hi, std::size_t points) const {
  WIRE_REQUIRE(points >= 2, "CDF curve needs at least 2 points");
  WIRE_REQUIRE(lo < hi, "CDF curve range inverted");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_at_most(x));
  }
  return out;
}

double CdfBuilder::quantile(double q) const {
  WIRE_REQUIRE(!samples_.empty(), "quantile of empty sample set");
  ensure_sorted();
  return wire::util::quantile(samples_, q);
}

}  // namespace wire::util
