// Lightweight runtime-contract checking used across the WIRE libraries.
//
// These checks guard public API preconditions and internal invariants. They
// are always on (simulation correctness matters more than the nanoseconds a
// disabled assert would save) and throw `wire::util::ContractViolation` so
// tests can assert on misuse without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace wire::util {

/// Thrown when a WIRE_CHECK / WIRE_REQUIRE contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Builds the exception message for a failed check. Out-of-line so the
/// macro expansion stays small at every call site.
[[noreturn]] void raise_contract_violation(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const std::string& detail);

}  // namespace wire::util

/// Validates an argument/precondition of a public API.
#define WIRE_REQUIRE(cond, detail)                                             \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::wire::util::raise_contract_violation("precondition", #cond, __FILE__,  \
                                             __LINE__, (detail));              \
    }                                                                          \
  } while (false)

/// Validates an internal invariant; a failure indicates a library bug.
#define WIRE_CHECK(cond, detail)                                               \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::wire::util::raise_contract_violation("invariant", #cond, __FILE__,     \
                                             __LINE__, (detail));              \
    }                                                                          \
  } while (false)
