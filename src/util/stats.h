// Statistics primitives shared across the WIRE libraries.
//
// The paper leans on medians ("the median is more effective to capture the
// middle performance of skewed data distributions", §III-C), moving medians
// over MAPE intervals, and CDFs of prediction errors (Fig. 4). These helpers
// implement exactly those notions once so that the predictor, the metrics
// collectors, and the benches agree on definitions.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

namespace wire::util {

/// Median of a sample. For even sizes returns the mean of the two middle
/// order statistics. Requires a non-empty sample.
double median(std::vector<double> values);

/// q-quantile (q in [0,1]) by linear interpolation between order statistics
/// (type-7, the numpy default). Requires a non-empty sample.
double quantile(std::vector<double> values, double q);

/// Arithmetic mean. Requires a non-empty sample.
double mean(const std::vector<double>& values);

/// Population standard deviation (divides by N). Requires a non-empty sample.
double stddev(const std::vector<double>& values);

/// Streaming mean/variance accumulator (Welford). Numerically stable for the
/// long error streams produced by the Fig. 4 harness.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Requires count() >= 1.
  double mean() const;
  /// Population variance; requires count() >= 1.
  double variance() const;
  /// Population standard deviation; requires count() >= 1.
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Moving median over the most recent `window` observations, used for the
/// paper's \tilde{t}_data transfer-time estimator ("the median of the data
/// transfer times of the tasks between the (n-1)th and nth MAPE iterations")
/// generalized to a configurable horizon.
class MovingMedian {
 public:
  /// window == 0 means "unbounded": median over everything seen so far.
  explicit MovingMedian(std::size_t window) : window_(window) {}

  void add(double x);

  /// Median of the current window; nullopt if no observation yet.
  std::optional<double> value() const;

  std::size_t size() const { return values_.size(); }
  void clear() { values_.clear(); }

 private:
  std::size_t window_;
  std::deque<double> values_;
};

/// Empirical CDF builder. Collects samples, then reports P[X <= x] and
/// fixed-grid CDF curves for the Fig. 4 style plots.
class CdfBuilder {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x. Requires a non-empty sample set.
  double fraction_at_most(double x) const;

  /// Fraction of samples with |sample| <= x (symmetric band around zero, the
  /// paper's "tasks report <= 1 second prediction error" statistic).
  double fraction_within(double x) const;

  /// Evaluates the CDF at `points` evenly spaced values across [lo, hi].
  /// Returns pairs (x, P[X <= x]).
  std::vector<std::pair<double, double>> curve(double lo, double hi,
                                               std::size_t points) const;

  /// q-quantile of the collected samples.
  double quantile(double q) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace wire::util
