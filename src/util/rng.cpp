#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace wire::util {

double Rng::uniform(double lo, double hi) {
  WIRE_REQUIRE(lo <= hi, "uniform bounds inverted");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WIRE_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  WIRE_REQUIRE(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::lognormal_median(double median, double sigma) {
  WIRE_REQUIRE(median > 0.0, "lognormal median must be positive");
  WIRE_REQUIRE(sigma >= 0.0, "lognormal sigma must be non-negative");
  std::lognormal_distribution<double> dist(std::log(median), sigma);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  WIRE_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  WIRE_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p out of [0,1]");
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::uint32_t Rng::zipf(std::uint32_t n, double s) {
  return ZipfSampler(n, s).sample(*this);
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) : n_(n) {
  WIRE_REQUIRE(n >= 1, "zipf n must be >= 1");
  WIRE_REQUIRE(s > 0.0, "zipf exponent must be positive");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin()) + 1;
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  // SplitMix64 finalizer over the combined value; passes practical
  // independence requirements for experiment fan-out.
  std::uint64_t z = root + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace wire::util
