// Fixed-size worker pool used to fan experiment sweeps out across cores.
//
// Each submitted job is independent (its own simulator instance seeded from
// derive_seed), so the pool needs no work stealing or task graphs — a mutex-
// protected queue is more than fast enough for jobs that each run an entire
// workflow simulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wire::util {

/// Simple fixed-size thread pool. Destruction drains the queue (all submitted
/// jobs complete before the destructor returns).
class ThreadPool {
 public:
  /// Spawns `threads` workers; `threads == 0` uses hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a job and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, count) across the pool's workers and blocks
  /// until all complete; the calling thread participates, so a pool is never
  /// idle-blocked on its own batch and `count == 1` runs inline. Indices are
  /// claimed atomically in increasing order (which index lands on which
  /// thread is nondeterministic — callers must make fn(i) write only to
  /// slot i). Exceptions are collected per index; after the batch, the
  /// lowest-index exception rethrows. Not reentrant: fn must not call
  /// run_batch on the same pool.
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims and runs batch indices until the batch is exhausted. Expects
  /// `lock` held on entry; returns with it held.
  void drain_batch(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable batch_cv_;
  bool stopping_ = false;

  // State of the in-flight run_batch call (guarded by mutex_). batch_fn_ is
  // non-null exactly while a batch is active.
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_count_ = 0;
  std::size_t batch_next_ = 0;
  std::size_t batch_done_ = 0;
  std::vector<std::exception_ptr> batch_errors_;
};

/// Runs `fn(i)` for i in [0, count) across a pool and blocks until all
/// complete. Exceptions from jobs propagate (the first one encountered
/// rethrows after all jobs finish).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace wire::util
