// Fixed-size worker pool used to fan experiment sweeps out across cores.
//
// Each submitted job is independent (its own simulator instance seeded from
// derive_seed), so the pool needs no work stealing or task graphs — a mutex-
// protected queue is more than fast enough for jobs that each run an entire
// workflow simulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wire::util {

/// Simple fixed-size thread pool. Destruction drains the queue (all submitted
/// jobs complete before the destructor returns).
class ThreadPool {
 public:
  /// Spawns `threads` workers; `threads == 0` uses hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a job and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs `fn(i)` for i in [0, count) across a pool and blocks until all
/// complete. Exceptions from jobs propagate (the first one encountered
/// rethrows after all jobs finish).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace wire::util
