// Fixed-width ASCII table rendering for the bench harnesses.
//
// Every bench binary regenerates a paper table/figure as text; this keeps the
// formatting consistent (and diffable) across all of them.
#pragma once

#include <string>
#include <vector>

namespace wire::util {

/// Column-aligned ASCII table. Add a header once, then rows; render pads each
/// column to its widest cell.
class TextTable {
 public:
  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Row width must match the header width.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits (fixed notation).
std::string fmt(double value, int digits = 2);

/// Formats "mean ± std".
std::string fmt_mean_std(double mean, double std, int digits = 2);

}  // namespace wire::util
