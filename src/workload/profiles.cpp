#include "workload/profiles.h"

#include "util/check.h"

namespace wire::workload {

namespace {

/// Splits a dataset (MB) across stages with geometrically decaying volume:
/// stage k processes `total * decay^k`, normalized so stage 0 sees the raw
/// dataset. Mirrors the usual map->reduce volume reduction.
double stage_volume(double dataset_mb, std::size_t stage_index,
                    double decay = 0.5) {
  double v = dataset_mb;
  for (std::size_t i = 0; i < stage_index; ++i) v *= decay;
  return v;
}

}  // namespace

const char* scale_name(Scale s) {
  return s == Scale::Small ? "S" : "L";
}

WorkflowProfile epigenomics_profile(Scale scale) {
  // 8-stage USC Epigenome pipeline: fastQSplit fans out into per-chunk
  // filter/convert/map pipelines which merge back for indexing and pileup.
  // Table I: S = 405 tasks (stage widths 1–100), L = 4005 (1–1000);
  // stage mean exec 1–54.88 s (S), 1–57.57 s (L); dataset 2 MB / 13 MB;
  // aggregate exec 1.433 h / 13.895 h.
  const bool small = scale == Scale::Small;
  const std::uint32_t n = small ? 100 : 1000;
  const double dataset_mb = small ? 2.048 : 13.312;

  WorkflowProfile p;
  p.family = "Epigenomics";
  p.framework = "Condor";
  p.name = small ? "Genome S" : "Genome L";
  p.skew_class_probability = 0.45;  // genome chunks are heavily skewed
  const double map_mean = small ? 43.0 : 42.0;
  const double pileup_mean = small ? 54.88 : 57.57;
  // Peak-memory means: the reference-genome mapping stages are memory-heavy
  // (index resident in RAM); the per-chunk format converters are light.
  p.stages = {
      {"fastqSplit", 1, small ? 30.0 : 45.0, stage_volume(dataset_mb, 0),
       StageLink::Source, 1200.0},
      {"filterContams", n, small ? 2.5 : 3.0, stage_volume(dataset_mb, 1),
       StageLink::FanOut, 400.0},
      {"sol2sanger", n, 1.0, stage_volume(dataset_mb, 2),
       StageLink::Partition, 300.0},
      {"fast2bfq", n, small ? 3.0 : 4.2, stage_volume(dataset_mb, 3),
       StageLink::Partition, 350.0},
      {"map", n, map_mean, stage_volume(dataset_mb, 4), StageLink::Partition,
       small ? 1800.0 : 2200.0},
      {"mapMerge", 2, small ? 25.0 : 35.0, stage_volume(dataset_mb, 5),
       StageLink::AllToAll, 1400.0},
      {"maqIndex", 1, small ? 20.0 : 30.0, stage_volume(dataset_mb, 6),
       StageLink::AllToAll, 2200.0},
      {"pileup", 1, pileup_mean, stage_volume(dataset_mb, 7),
       StageLink::AllToAll, small ? 2400.0 : 2800.0},
  };
  return p;
}

WorkflowProfile tpch1_profile(Scale scale) {
  // TPC-H Q1 as a 4-stage Hadoop plan: scan/aggregate map, shuffle reduce,
  // second aggregation map, final reduce. Table I: S = 62 tasks (1–32 per
  // stage, stage means 2–13.24 s, 7.27 GB), L = 229 (1–124, 1.05–14.89 s,
  // 29.53 GB).
  const bool small = scale == Scale::Small;
  WorkflowProfile p;
  p.family = "TPC-H";
  p.framework = "Hadoop";
  p.name = small ? "TPCH-1 S" : "TPCH-1 L";
  p.skew_class_probability = 0.30;
  const double dataset_mb = (small ? 7.27 : 29.53) * 1024.0;
  // Peak-memory means: shuffle-side aggregation buffers dominate.
  if (small) {
    p.stages = {
        {"scan_map", 32, 13.24, stage_volume(dataset_mb, 0),
         StageLink::Source, 900.0},
        {"agg_reduce", 16, 9.0, stage_volume(dataset_mb, 1, 0.1),
         StageLink::AllToAll, 1500.0},
        {"regroup_map", 13, 5.0, stage_volume(dataset_mb, 2, 0.1),
         StageLink::AllToAll, 700.0},
        {"final_reduce", 1, 2.0, stage_volume(dataset_mb, 3, 0.1),
         StageLink::AllToAll, 500.0},
    };
  } else {
    p.stages = {
        {"scan_map", 124, 14.89, stage_volume(dataset_mb, 0),
         StageLink::Source, 1000.0},
        {"agg_reduce", 62, 10.0, stage_volume(dataset_mb, 1, 0.1),
         StageLink::AllToAll, 1700.0},
        {"regroup_map", 42, 5.0, stage_volume(dataset_mb, 2, 0.1),
         StageLink::AllToAll, 800.0},
        {"final_reduce", 1, 1.05, stage_volume(dataset_mb, 3, 0.1),
         StageLink::AllToAll, 500.0},
    };
  }
  return p;
}

WorkflowProfile tpch6_profile(Scale scale) {
  // TPC-H Q6 is a single filtered aggregation: wide scan map + one reduce.
  // Table I: S = 33 tasks (stage means 2–7.3 s), L = 118 (3–8.43 s).
  const bool small = scale == Scale::Small;
  WorkflowProfile p;
  p.family = "TPC-H";
  p.framework = "Hadoop";
  p.name = small ? "TPCH-6 S" : "TPCH-6 L";
  p.skew_class_probability = 0.25;
  const double dataset_mb = (small ? 7.27 : 29.53) * 1024.0;
  // Peak-memory means: a filtered-scan query is memory-light throughout.
  if (small) {
    p.stages = {
        {"scan_map", 32, 7.3, stage_volume(dataset_mb, 0), StageLink::Source,
         800.0},
        {"sum_reduce", 1, 2.0, stage_volume(dataset_mb, 1, 0.01),
         StageLink::AllToAll, 400.0},
    };
  } else {
    p.stages = {
        {"scan_map", 117, 8.43, stage_volume(dataset_mb, 0),
         StageLink::Source, 900.0},
        {"sum_reduce", 1, 3.0, stage_volume(dataset_mb, 1, 0.01),
         StageLink::AllToAll, 400.0},
    };
  }
  return p;
}

WorkflowProfile pagerank_profile(Scale scale) {
  // Intel HiBench PageRank: iterative map/reduce rounds (12 stages).
  // Table I: S = 115 tasks (6–18 per stage, means 5.28–21.5 s, 0.26 GB),
  // L = 313 (6–60 per stage, means 26.61–166.18 s, 2.88 GB).
  const bool small = scale == Scale::Small;
  WorkflowProfile p;
  p.family = "PageRank";
  p.framework = "Hadoop";
  p.name = small ? "PageRank S" : "PageRank L";
  p.skew_class_probability = 0.35;
  const double dataset_mb = (small ? 0.26 : 2.88) * 1024.0;

  struct Row { const char* name; std::uint32_t count; double mean;
               double mem; };
  // Alternating iteration map/reduce stages; widths sum to the Table I task
  // totals and means span exactly the published ranges. Peak-memory means:
  // the in-memory rank vector grows through the iterations, reduces buffer
  // the shuffled contributions.
  const std::vector<Row> rows_small = {
      {"hyperlink_map", 18, 21.5, 1100.0}, {"hyperlink_red", 12, 8.0, 700.0},
      {"iter1_map", 12, 14.0, 1200.0},     {"iter1_red", 9, 9.0, 800.0},
      {"iter2_map", 9, 13.0, 1300.0},      {"iter2_red", 9, 8.0, 800.0},
      {"iter3_map", 9, 12.0, 1400.0},      {"iter3_red", 9, 7.0, 800.0},
      {"rank_map", 9, 10.0, 1500.0},       {"rank_red", 7, 6.0, 900.0},
      {"sort_map", 6, 5.28, 600.0},        {"sort_red", 6, 9.0, 1000.0},
  };
  const std::vector<Row> rows_large = {
      {"hyperlink_map", 60, 166.18, 1400.0}, {"hyperlink_red", 40, 60.0, 900.0},
      {"iter1_map", 30, 90.0, 1500.0},       {"iter1_red", 30, 55.0, 1000.0},
      {"iter2_map", 25, 80.0, 1600.0},       {"iter2_red", 25, 50.0, 1000.0},
      {"iter3_map", 20, 70.0, 1700.0},       {"iter3_red", 20, 45.0, 1000.0},
      {"rank_map", 20, 60.0, 1800.0},        {"rank_red", 15, 35.0, 1100.0},
      {"sort_map", 6, 26.61, 700.0},         {"sort_red", 22, 40.0, 1200.0},
  };
  const auto& rows = small ? rows_small : rows_large;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    StageProfile sp;
    sp.name = rows[i].name;
    sp.task_count = rows[i].count;
    sp.mean_exec_seconds = rows[i].mean;
    sp.stage_input_mb = stage_volume(dataset_mb, i, 0.75);
    sp.link = i == 0 ? StageLink::Source : StageLink::AllToAll;
    sp.mean_peak_mem_mb = rows[i].mem;
    p.stages.push_back(std::move(sp));
  }
  return p;
}

std::vector<WorkflowProfile> table1_profiles() {
  return {
      epigenomics_profile(Scale::Small), epigenomics_profile(Scale::Large),
      tpch1_profile(Scale::Small),       tpch1_profile(Scale::Large),
      tpch6_profile(Scale::Small),       tpch6_profile(Scale::Large),
      pagerank_profile(Scale::Small),    pagerank_profile(Scale::Large),
  };
}

}  // namespace wire::workload
