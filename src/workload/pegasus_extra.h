// Additional Pegasus workflow families from Juve et al., "Characterizing and
// profiling scientific workflows" (FGCS 2013) — the characterization study
// the paper cites for Epigenomics. They are not part of Table I; they extend
// the evaluation to the other classic DAG shapes a workflow autoscaler meets
// in practice, with wiring the Table-I profile DSL cannot express (pairwise
// overlap stages, cross-stage edges):
//
//   Montage       — astronomy mosaicing: wide mProject fan-out, a pairwise
//                   mDiffFit overlap stage, a serial mConcatFit/mBgModel
//                   bottleneck, wide mBackground (cross-stage edges back to
//                   the projections), and a tree-structured mAdd.
//   CyberShake    — seismic hazard: a huge seismogram-synthesis stage fed by
//                   two extraction masters, with a tiny peak-calculation
//                   tail per seismogram and a final aggregation.
//   LIGO Inspiral — gravitational-wave search: repeated template-bank /
//                   inspiral / trigbank / veto rounds of medium tasks.
//
// Per-task execution times use the same small-residual noise model as the
// Table I generators; stage means follow the published characterization's
// relative weights.
#pragma once

#include <cstdint>

#include "dag/workflow.h"

namespace wire::workload {

/// Montage mosaic over `tiles` input images (the characterization's
/// 1-degree mosaic is ~50 tiles). Roughly 3.5x tiles tasks plus the serial
/// fitting bottleneck.
dag::Workflow montage(std::uint32_t tiles, std::uint64_t seed);

/// CyberShake hazard computation with `variations` rupture variations
/// (characterization scale ~400): 2 extraction masters -> `variations`
/// seismogram syntheses -> per-seismogram peak calculations -> aggregation.
dag::Workflow cybershake(std::uint32_t variations, std::uint64_t seed);

/// LIGO Inspiral analysis: `rounds` rounds of (template bank -> inspiral x
/// `templates` -> thinca), followed by a trigbank/veto round.
dag::Workflow ligo(std::uint32_t templates, std::uint32_t rounds,
                   std::uint64_t seed);

}  // namespace wire::workload
