// Declarative per-stage profiles for the paper's Table I sample workflows.
//
// The paper evaluates four workflows (Epigenomics, TPCH-1, TPCH-6, PageRank),
// each on a Small and a Large dataset — eight runs total. The original
// experiments replay recorded Hadoop/Condor traces through a task emulator;
// we instead synthesize workflows whose stage structure, task counts,
// per-stage mean execution times, and dataset sizes match the published
// characterization. Each profile below is one row group of Table I.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wire::workload {

/// How consecutive stages are wired together.
enum class StageLink {
  /// Stage has no predecessors (workflow roots).
  Source,
  /// One-to-one pipeline from the previous stage (requires equal width, or
  /// round-robin mapping when widths differ).
  Partition,
  /// Every task depends on every task of the previous stage (Hadoop shuffle /
  /// Pegasus merge barrier).
  AllToAll,
  /// Every task depends on a single task of the previous stage chosen
  /// round-robin (fan-out from a splitter).
  FanOut,
};

/// Declarative description of one stage.
struct StageProfile {
  std::string name;
  std::uint32_t task_count = 0;
  /// Target mean task execution time on the reference instance (seconds).
  double mean_exec_seconds = 0.0;
  /// Aggregate input bytes processed by the stage, MB.
  double stage_input_mb = 0.0;
  StageLink link = StageLink::AllToAll;
  /// Mean peak memory per task of the stage, MB (0 = no memory profile; the
  /// memory dimension stays inert for such stages). The published traces do
  /// not report per-stage memory, so these are plausible footprints chosen to
  /// exercise the memory-aware packing without dominating it.
  double mean_peak_mem_mb = 0.0;
};

/// One Table I run: a named list of stage profiles plus skew parameters.
///
/// Intra-stage load skew (Observation 1) is modeled the way it arises in
/// Hadoop/Pegasus runs: tasks process quantized input blocks (most tasks get
/// a full block, some get fractions or multiples from data skew), and
/// execution time is proportional to the input size up to a small residual.
/// This gives the predictor the same structure the paper exploits: peers
/// with equivalent input sizes behave alike (policy 4), new sizes follow an
/// approximately linear relation (policy 5 / OGD).
struct WorkflowProfile {
  std::string name;         // e.g. "Genome S"
  std::string family;       // e.g. "Epigenomics"
  std::string framework;    // "Condor" or "Hadoop"
  std::vector<StageProfile> stages;
  /// Lognormal sigma of the residual execution-time noise around the linear
  /// input-size relation.
  double exec_residual_sigma = 0.05;
  /// Probability that a task processes a non-standard block (heavier skew
  /// classes become more likely as this grows).
  double skew_class_probability = 0.35;
  /// Lognormal sigma of the per-task peak-memory spread around the stage
  /// mean (drawn from a separate RNG stream so enabling memory never changes
  /// the execution-time/skew draws).
  double mem_residual_sigma = 0.2;
};

/// Small/Large dataset selector (the two columns per workflow in Table I).
enum class Scale { Small, Large };

const char* scale_name(Scale s);

/// Profiles for the four paper workflows at a given scale.
WorkflowProfile epigenomics_profile(Scale scale);
WorkflowProfile tpch1_profile(Scale scale);
WorkflowProfile tpch6_profile(Scale scale);
WorkflowProfile pagerank_profile(Scale scale);

/// All eight Table I runs in paper order.
std::vector<WorkflowProfile> table1_profiles();

}  // namespace wire::workload
