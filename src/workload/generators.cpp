#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace wire::workload {

namespace {

using dag::StageId;
using dag::TaskId;
using dag::WorkflowBuilder;

/// Lognormal skew factor with unit mean (so stage means are preserved).
double unit_mean_lognormal(util::Rng& rng, double sigma) {
  if (sigma <= 0.0) return 1.0;
  return rng.lognormal_median(1.0, sigma) / std::exp(0.5 * sigma * sigma);
}

/// Stream index separating the peak-memory draws from the exec/skew stream,
/// so a workflow's execution times and input sizes are byte-identical whether
/// or not its profile declares memory footprints.
constexpr std::uint64_t kMemoryStream = 0x3E35EEDu;

/// Predecessors of task `index` (0-based within its stage) given the link
/// pattern and the previous stage's task ids.
std::vector<TaskId> link_predecessors(StageLink link,
                                      std::uint32_t index,
                                      const std::vector<TaskId>& prev) {
  switch (link) {
    case StageLink::Source:
      return {};
    case StageLink::AllToAll:
      return prev;
    case StageLink::Partition:
    case StageLink::FanOut:
      // Both pick one upstream producer round-robin; FanOut is the 1->N
      // special case (prev.size() == 1) named for intent.
      WIRE_CHECK(!prev.empty(), "non-source stage without predecessors");
      return {prev[index % prev.size()]};
  }
  return {};
}

}  // namespace

dag::Workflow make_workflow(const WorkflowProfile& profile,
                            std::uint64_t seed) {
  WIRE_REQUIRE(!profile.stages.empty(), "profile has no stages");
  util::Rng rng(seed);
  util::Rng mem_rng(util::derive_seed(seed, kMemoryStream));
  WorkflowBuilder builder(profile.name);

  std::vector<TaskId> prev_stage_tasks;
  for (std::size_t si = 0; si < profile.stages.size(); ++si) {
    const StageProfile& sp = profile.stages[si];
    WIRE_REQUIRE(sp.task_count > 0, "stage with zero tasks");
    WIRE_REQUIRE(si > 0 || sp.link == StageLink::Source,
                 "first stage must be a Source");
    WIRE_REQUIRE(si == 0 || sp.link != StageLink::Source,
                 "only the first stage may be a Source");

    const StageId stage = builder.add_stage(sp.name, sp.name + ".exe");
    const double per_task_mb =
        sp.stage_input_mb / static_cast<double>(sp.task_count);

    // Quantized block classes: most tasks process a standard block; skewed
    // tasks get a half block or a multiple (data skew). Class counts are
    // stratified (largest-remainder rounding of the class proportions, then
    // shuffled) so the stage's realized input volume and mean execution time
    // track the profile targets even for narrow stages.
    const double p_skew = profile.skew_class_probability;
    const double factors[4] = {0.5, 1.0, 2.0, 4.0};
    const double probs[4] = {p_skew * 0.5, 1.0 - p_skew, p_skew * 0.35,
                             p_skew * 0.15};
    std::vector<double> task_factor;
    task_factor.reserve(sp.task_count);
    {
      std::uint32_t assigned = 0;
      std::uint32_t counts[4];
      double remainders[4];
      for (int k = 0; k < 4; ++k) {
        const double exact = probs[k] * sp.task_count;
        counts[k] = static_cast<std::uint32_t>(exact);
        remainders[k] = exact - counts[k];
        assigned += counts[k];
      }
      while (assigned < sp.task_count) {
        int best = 0;
        for (int k = 1; k < 4; ++k) {
          if (remainders[k] > remainders[best]) best = k;
        }
        ++counts[best];
        remainders[best] = -1.0;
        ++assigned;
      }
      for (int k = 0; k < 4; ++k) {
        task_factor.insert(task_factor.end(), counts[k], factors[k]);
      }
      std::shuffle(task_factor.begin(), task_factor.end(), rng.engine());
    }
    double mean_factor = 0.0;
    for (double f : task_factor) mean_factor += f;
    mean_factor /= static_cast<double>(sp.task_count);

    std::vector<TaskId> current;
    current.reserve(sp.task_count);
    for (std::uint32_t i = 0; i < sp.task_count; ++i) {
      const double rel = task_factor[i] / mean_factor;
      const double input_mb = std::max(1e-4, per_task_mb * rel);
      // Execution time is proportional to the input size up to a small
      // residual — what makes peers with equivalent input sizes predictive
      // of each other (policy 4) and the input-size feature linear
      // (policy 5).
      const double exec = std::max(
          0.3, sp.mean_exec_seconds * rel *
                   unit_mean_lognormal(rng, profile.exec_residual_sigma));
      const double output_mb = input_mb * 0.5;
      // Peak memory spreads lognormally around the stage mean (per-stage
      // spread like exec times, Observation 3 applied to the memory
      // dimension) from a decoupled stream.
      const double peak_mem =
          sp.mean_peak_mem_mb > 0.0
              ? std::max(16.0, sp.mean_peak_mem_mb *
                                   unit_mean_lognormal(
                                       mem_rng, profile.mem_residual_sigma))
              : 0.0;
      current.push_back(builder.add_task(
          stage, sp.name + "_" + std::to_string(i), input_mb, output_mb, exec,
          link_predecessors(sp.link, i, prev_stage_tasks), peak_mem));
    }
    prev_stage_tasks = std::move(current);
  }
  return builder.build();
}

dag::Workflow linear_workflow(std::uint32_t n_stages,
                              std::uint32_t tasks_per_stage,
                              double exec_seconds, const std::string& name) {
  WIRE_REQUIRE(n_stages > 0, "linear workflow needs at least one stage");
  WIRE_REQUIRE(tasks_per_stage > 0, "linear workflow needs tasks");
  WIRE_REQUIRE(exec_seconds > 0.0, "task run time must be positive");
  WorkflowBuilder builder(name);
  std::vector<TaskId> prev;
  for (std::uint32_t s = 0; s < n_stages; ++s) {
    const StageId stage = builder.add_stage("stage" + std::to_string(s));
    std::vector<TaskId> current;
    current.reserve(tasks_per_stage);
    for (std::uint32_t i = 0; i < tasks_per_stage; ++i) {
      current.push_back(builder.add_task(
          stage, "t" + std::to_string(s) + "_" + std::to_string(i),
          /*input_mb=*/0.0, /*output_mb=*/0.0, exec_seconds, prev));
    }
    prev = std::move(current);
  }
  return builder.build();
}

dag::Workflow random_layered(const RandomDagOptions& options,
                             std::uint64_t seed) {
  WIRE_REQUIRE(options.min_layers >= 1, "need at least one layer");
  WIRE_REQUIRE(options.min_layers <= options.max_layers, "layer range inverted");
  WIRE_REQUIRE(options.min_width >= 1, "need width >= 1");
  WIRE_REQUIRE(options.min_width <= options.max_width, "width range inverted");
  util::Rng rng(seed);
  util::Rng mem_rng(util::derive_seed(seed, kMemoryStream));
  WorkflowBuilder builder("random_layered_" + std::to_string(seed));

  const std::uint32_t layers = static_cast<std::uint32_t>(
      rng.uniform_int(options.min_layers, options.max_layers));
  std::vector<TaskId> prev;
  for (std::uint32_t layer = 0; layer < layers; ++layer) {
    const StageId stage = builder.add_stage("layer" + std::to_string(layer));
    const std::uint32_t width = static_cast<std::uint32_t>(
        rng.uniform_int(options.min_width, options.max_width));
    std::vector<TaskId> current;
    current.reserve(width);
    for (std::uint32_t i = 0; i < width; ++i) {
      std::vector<TaskId> preds;
      if (!prev.empty()) {
        // Guarantee connectivity with one mandatory predecessor, then add
        // extras with the configured density.
        preds.push_back(prev[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(prev.size()) - 1))]);
        for (TaskId cand : prev) {
          if (cand != preds.front() && rng.bernoulli(options.edge_density)) {
            preds.push_back(cand);
          }
        }
      }
      const double exec =
          std::max(0.3, rng.lognormal_median(options.mean_exec_seconds, 0.4));
      const double input =
          std::max(0.01, rng.lognormal_median(options.mean_input_mb, 0.4));
      const double peak_mem =
          options.mean_peak_mem_mb > 0.0
              ? std::max(16.0, mem_rng.lognormal_median(
                                   options.mean_peak_mem_mb, 0.4))
              : 0.0;
      current.push_back(builder.add_task(
          stage, "r" + std::to_string(layer) + "_" + std::to_string(i), input,
          input * 0.5, exec, std::move(preds), peak_mem));
    }
    prev = std::move(current);
  }
  return builder.build();
}

}  // namespace wire::workload
