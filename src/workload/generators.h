// Workflow instantiation: turns declarative profiles into concrete DAGs with
// per-task execution-time skew and input sizes, plus the synthetic families
// used by the simulation studies (linear workflows of §III-E / Figs. 2–3 and
// random layered DAGs for property tests).
#pragma once

#include <cstdint>
#include <string>

#include "dag/workflow.h"
#include "workload/profiles.h"

namespace wire::workload {

/// Instantiates a concrete workflow from a Table-I style profile.
///
/// Per-task reference execution times are the stage mean multiplied by a
/// lognormal skew factor (normalized so the stage mean is preserved in
/// expectation) — the intra-stage load skew of Observation 1. Per-task input
/// sizes follow the same skew with extra decorrelating noise so that the
/// input-size feature of the OGD predictor carries signal without being a
/// perfect oracle. Deterministic in (profile, seed).
dag::Workflow make_workflow(const WorkflowProfile& profile,
                            std::uint64_t seed);

/// The idealized linear workflow of §III-E: `n_stages` stages of
/// `tasks_per_stage` tasks, every task a predecessor of every task in the
/// next stage, all tasks with identical execution time `exec_seconds` and no
/// data transfer. Used by the Figure 2/3 steering-policy studies.
dag::Workflow linear_workflow(std::uint32_t n_stages,
                              std::uint32_t tasks_per_stage,
                              double exec_seconds,
                              const std::string& name = "linear");

/// Options for random layered DAGs (property tests / fuzzing).
struct RandomDagOptions {
  std::uint32_t min_layers = 2;
  std::uint32_t max_layers = 6;
  std::uint32_t min_width = 1;
  std::uint32_t max_width = 12;
  /// Probability of each additional cross-layer edge beyond the one that
  /// guarantees connectivity.
  double edge_density = 0.3;
  double mean_exec_seconds = 8.0;
  double mean_input_mb = 16.0;
  /// Mean peak memory per task, MB (0 = no memory profile). Drawn from a
  /// separate RNG stream, so setting this never perturbs the exec/input
  /// draws of an existing (options, seed) pair.
  double mean_peak_mem_mb = 0.0;
};

/// Generates a random layered DAG: one stage per layer, every task wired to
/// at least one task of the previous layer. Deterministic in (options, seed).
dag::Workflow random_layered(const RandomDagOptions& options,
                             std::uint64_t seed);

}  // namespace wire::workload
