#include "workload/pegasus_extra.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace wire::workload {

namespace {

using dag::StageId;
using dag::TaskId;
using dag::WorkflowBuilder;

/// Small-residual noisy execution time around a stage mean (same model as
/// the Table I generators).
double noisy(util::Rng& rng, double mean, double sigma = 0.05) {
  const double factor =
      rng.lognormal_median(1.0, sigma) / std::exp(0.5 * sigma * sigma);
  return std::max(0.3, mean * factor);
}

}  // namespace

dag::Workflow montage(std::uint32_t tiles, std::uint64_t seed) {
  WIRE_REQUIRE(tiles >= 4, "montage needs at least 4 tiles");
  util::Rng rng(seed);
  WorkflowBuilder b("Montage-" + std::to_string(tiles));

  // mProject: one reprojection per input tile (wide, medium tasks).
  const StageId s_project = b.add_stage("mProject", "mProjectPP");
  std::vector<TaskId> project;
  for (std::uint32_t i = 0; i < tiles; ++i) {
    project.push_back(b.add_task(s_project, "mProject_" + std::to_string(i),
                                 4.0, 8.0, noisy(rng, 18.0), {}));
  }

  // mDiffFit: one task per overlapping pair; a tile overlaps its neighbours
  // in a rough grid (~2 overlaps per tile plus a diagonal band).
  const StageId s_diff = b.add_stage("mDiffFit", "mDiffFit");
  std::vector<TaskId> diffs;
  const std::uint32_t side = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::lround(std::sqrt(tiles))));
  std::uint32_t diff_index = 0;
  for (std::uint32_t i = 0; i < tiles; ++i) {
    const std::uint32_t right = i + 1;
    const std::uint32_t below = i + side;
    for (std::uint32_t j : {right, below}) {
      if (j < tiles && (j != right || right % side != 0)) {
        diffs.push_back(b.add_task(
            s_diff, "mDiffFit_" + std::to_string(diff_index++), 2.0, 0.5,
            noisy(rng, 4.0), {project[i], project[j]}));
      }
    }
  }

  // mConcatFit + mBgModel: the serial bottleneck (long tasks, all-to-all).
  const StageId s_concat = b.add_stage("mConcatFit", "mConcatFit");
  const TaskId concat = b.add_task(s_concat, "mConcatFit", 1.0, 0.5,
                                   noisy(rng, 45.0), diffs);
  const StageId s_bg_model = b.add_stage("mBgModel", "mBgModel");
  const TaskId bg_model = b.add_task(s_bg_model, "mBgModel", 0.5, 0.5,
                                     noisy(rng, 60.0), {concat});

  // mBackground: one correction per tile; cross-stage edges back to the
  // tile's projection plus the background model.
  const StageId s_background = b.add_stage("mBackground", "mBackground");
  std::vector<TaskId> background;
  for (std::uint32_t i = 0; i < tiles; ++i) {
    background.push_back(
        b.add_task(s_background, "mBackground_" + std::to_string(i), 4.0, 4.0,
                   noisy(rng, 6.0), {project[i], bg_model}));
  }

  // mImgtbl + tree-structured mAdd + mShrink/mJPEG tail.
  const StageId s_imgtbl = b.add_stage("mImgtbl", "mImgtbl");
  const TaskId imgtbl =
      b.add_task(s_imgtbl, "mImgtbl", 0.5, 0.5, noisy(rng, 8.0), background);
  const StageId s_add = b.add_stage("mAdd", "mAdd");
  // Binary combine tree over tile groups (one level, fan-in ~8 per adder).
  std::vector<TaskId> adders;
  const std::uint32_t group = 8;
  for (std::uint32_t start = 0; start < tiles; start += group) {
    std::vector<TaskId> deps{imgtbl};
    for (std::uint32_t i = start; i < std::min(tiles, start + group); ++i) {
      deps.push_back(background[i]);
    }
    adders.push_back(b.add_task(s_add,
                                "mAdd_" + std::to_string(start / group), 16.0,
                                32.0, noisy(rng, 35.0), std::move(deps)));
  }
  const StageId s_final = b.add_stage("mFinal", "mAdd");
  const TaskId final_add =
      b.add_task(s_final, "mAddFinal", 32.0, 64.0, noisy(rng, 50.0), adders);
  const StageId s_shrink = b.add_stage("mShrink", "mShrink");
  const TaskId shrink = b.add_task(s_shrink, "mShrink", 64.0, 8.0,
                                   noisy(rng, 12.0), {final_add});
  const StageId s_jpeg = b.add_stage("mJPEG", "mJPEG");
  b.add_task(s_jpeg, "mJPEG", 8.0, 2.0, noisy(rng, 5.0), {shrink});

  return b.build();
}

dag::Workflow cybershake(std::uint32_t variations, std::uint64_t seed) {
  WIRE_REQUIRE(variations >= 2, "cybershake needs at least 2 variations");
  util::Rng rng(seed);
  WorkflowBuilder b("CyberShake-" + std::to_string(variations));

  // Two strain-Green-tensor extraction masters (very long tasks).
  const StageId s_extract = b.add_stage("ExtractSGT", "extract_sgt");
  const TaskId sgt_x = b.add_task(s_extract, "ExtractSGT_X", 512.0, 256.0,
                                  noisy(rng, 220.0), {});
  const TaskId sgt_y = b.add_task(s_extract, "ExtractSGT_Y", 512.0, 256.0,
                                  noisy(rng, 200.0), {});

  // Seismogram synthesis: one medium task per rupture variation, each
  // reading both tensors.
  const StageId s_seis = b.add_stage("SeismogramSynthesis", "seismogram");
  std::vector<TaskId> seismograms;
  for (std::uint32_t i = 0; i < variations; ++i) {
    seismograms.push_back(
        b.add_task(s_seis, "Seismogram_" + std::to_string(i), 24.0, 0.5,
                   noisy(rng, 28.0, 0.12), {sgt_x, sgt_y}));
  }

  // Peak ground-motion calculation: a short task per seismogram (1:1).
  const StageId s_peak = b.add_stage("PeakValCalc", "peak_val");
  std::vector<TaskId> peaks;
  for (std::uint32_t i = 0; i < variations; ++i) {
    peaks.push_back(b.add_task(s_peak, "PeakVal_" + std::to_string(i), 0.5,
                               0.1, noisy(rng, 1.2), {seismograms[i]}));
  }

  // Hazard-curve aggregation.
  const StageId s_agg = b.add_stage("HazardCurve", "hazard_curve");
  b.add_task(s_agg, "HazardCurve", 4.0, 1.0, noisy(rng, 30.0), peaks);

  return b.build();
}

dag::Workflow ligo(std::uint32_t templates, std::uint32_t rounds,
                   std::uint64_t seed) {
  WIRE_REQUIRE(templates >= 2, "ligo needs at least 2 templates per round");
  WIRE_REQUIRE(rounds >= 1, "ligo needs at least one round");
  util::Rng rng(seed);
  WorkflowBuilder b("LIGO-" + std::to_string(templates) + "x" +
                    std::to_string(rounds));

  std::vector<TaskId> previous;  // thinca outputs gating the next round
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const std::string suffix = "_r" + std::to_string(r);
    const StageId s_bank = b.add_stage("TmpltBank" + suffix, "tmpltbank");
    const TaskId bank = b.add_task(s_bank, "TmpltBank" + suffix, 8.0, 2.0,
                                   noisy(rng, 55.0), previous);

    const StageId s_inspiral = b.add_stage("Inspiral" + suffix, "inspiral");
    std::vector<TaskId> inspirals;
    for (std::uint32_t i = 0; i < templates; ++i) {
      inspirals.push_back(b.add_task(
          s_inspiral, "Inspiral" + suffix + "_" + std::to_string(i), 12.0,
          1.0, noisy(rng, 90.0, 0.15), {bank}));
    }

    const StageId s_thinca = b.add_stage("Thinca" + suffix, "thinca");
    previous = {b.add_task(s_thinca, "Thinca" + suffix, 4.0, 1.0,
                           noisy(rng, 10.0), inspirals)};
  }

  // Trigbank/veto tail: a medium follow-up per surviving trigger batch.
  const StageId s_trig = b.add_stage("TrigBank", "trigbank");
  std::vector<TaskId> trigs;
  const std::uint32_t batches = std::max<std::uint32_t>(2, templates / 4);
  for (std::uint32_t i = 0; i < batches; ++i) {
    trigs.push_back(b.add_task(s_trig, "TrigBank_" + std::to_string(i), 2.0,
                               0.5, noisy(rng, 14.0), previous));
  }
  const StageId s_veto = b.add_stage("Veto", "veto");
  b.add_task(s_veto, "Veto", 1.0, 0.5, noisy(rng, 6.0), trigs);

  return b.build();
}

}  // namespace wire::workload
