// Deterministic discrete-event queue for the ground-truth simulator.
//
// Events are ordered by (time, sequence number); the sequence number makes
// tie-breaking deterministic, which in turn makes every run reproducible from
// its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/config.h"

namespace wire::sim {

enum class EventKind : std::uint8_t {
  /// A requested instance finished booting. payload = instance id.
  InstanceReady,
  /// A task finished transferring its input. payload = task id.
  TransferInDone,
  /// A task finished executing. payload = task id.
  ExecDone,
  /// A task finished writing its output (slot occupancy ends). payload = task.
  TransferOutDone,
  /// MAPE control interval boundary. payload unused.
  ControlTick,
  /// An instance ordered to drain reaches its charge boundary. payload =
  /// instance id.
  InstanceDrain,
  /// Earliest projected completion among the shared-bandwidth transfers
  /// (processor-sharing model). aux = transfer epoch; stale guards are
  /// ignored.
  TransferGuard,
  /// The per-dispatch scheduling overhead elapsed; the input transfer
  /// begins. payload = task id, aux = attempt.
  TransferStart,
  /// Fault injection: a Ready instance is reclaimed (spot-style revocation).
  /// payload = instance id. Ignored if the instance terminated earlier.
  InstanceCrash,
  /// Fault injection: a task attempt dies mid-execution. payload = task id,
  /// aux = attempt (stale guards are ignored, as for ExecDone).
  TaskFaulted,
  /// A failed task's retry backoff elapsed; it re-enters the ready queue.
  /// payload = task id, aux = the combined failure count (transient failures
  /// + OOM kills) the retry was scheduled for.
  TaskRetry,
  /// Memory dimension: a running attempt's footprint hit its reservation and
  /// the attempt is OOM-killed. payload = task id, aux = attempt (stale
  /// guards are ignored, as for ExecDone).
  TaskOom,
  /// Scheduled checkpointing: a running attempt reaches its next checkpoint
  /// instant, stalls execution, and starts a write on the shared checkpoint
  /// channel. payload = task id, aux = attempt (stale guards are ignored,
  /// as for ExecDone).
  TaskCheckpoint,
  /// Earliest projected completion among the shared-channel checkpoint
  /// writes (processor-sharing model, mirroring TransferGuard). aux =
  /// checkpoint epoch; stale guards are ignored.
  CheckpointGuard,
};

struct Event {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::ControlTick;
  std::uint32_t payload = 0;
  /// Guard value for stale-event detection: the task attempt number for task
  /// events (a resubmitted task invalidates events of its old attempt).
  std::uint32_t aux = 0;
};

/// Min-heap over (time, seq).
class EventQueue {
 public:
  /// Schedules an event; `time` must be >= the last popped time.
  void schedule(SimTime time, EventKind kind, std::uint32_t payload,
                std::uint32_t aux = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires non-empty.
  SimTime next_time() const;

  /// Pops the earliest event. Requires non-empty.
  Event pop();

  /// Marks a set of event kinds as "tracked" (bit i = kind with enum value
  /// i): the queue maintains a side min-heap of their pending times so
  /// next_tracked_time() answers "when is the next tracked event?" in O(1)
  /// without draining the heap. Must be set before any event of a tracked
  /// kind is scheduled.
  void set_tracked_kinds(std::uint32_t mask) { tracked_mask_ = mask; }

  /// Time of the earliest pending event of a tracked kind, or +infinity when
  /// none is pending.
  SimTime next_tracked_time() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  bool is_tracked(EventKind kind) const {
    return (tracked_mask_ & (1u << static_cast<std::uint32_t>(kind))) != 0;
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  /// Pending times of tracked-kind events, as an exact multiset mirror: the
  /// global (time, seq) pop order guarantees a popped tracked event's time
  /// equals this heap's minimum, so pop() can retire entries one-for-one.
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<SimTime>>
      tracked_;
  std::uint32_t tracked_mask_ = 0;
  std::uint64_t next_seq_ = 0;
  SimTime last_popped_ = 0.0;
};

}  // namespace wire::sim
