// Deterministic discrete-event queue for the ground-truth simulator.
//
// Events are ordered by (time, sequence number); the sequence number makes
// tie-breaking deterministic, which in turn makes every run reproducible from
// its seed.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/config.h"

namespace wire::sim {

enum class EventKind : std::uint8_t {
  /// A requested instance finished booting. payload = instance id.
  InstanceReady,
  /// A task finished transferring its input. payload = task id.
  TransferInDone,
  /// A task finished executing. payload = task id.
  ExecDone,
  /// A task finished writing its output (slot occupancy ends). payload = task.
  TransferOutDone,
  /// MAPE control interval boundary. payload unused.
  ControlTick,
  /// An instance ordered to drain reaches its charge boundary. payload =
  /// instance id.
  InstanceDrain,
  /// Earliest projected completion among the shared-bandwidth transfers
  /// (processor-sharing model). aux = transfer epoch; stale guards are
  /// ignored.
  TransferGuard,
  /// The per-dispatch scheduling overhead elapsed; the input transfer
  /// begins. payload = task id, aux = attempt.
  TransferStart,
  /// Fault injection: a Ready instance is reclaimed (spot-style revocation).
  /// payload = instance id. Ignored if the instance terminated earlier.
  InstanceCrash,
  /// Fault injection: a task attempt dies mid-execution. payload = task id,
  /// aux = attempt (stale guards are ignored, as for ExecDone).
  TaskFaulted,
  /// A failed task's retry backoff elapsed; it re-enters the ready queue.
  /// payload = task id, aux = the combined failure count (transient failures
  /// + OOM kills) the retry was scheduled for.
  TaskRetry,
  /// Memory dimension: a running attempt's footprint hit its reservation and
  /// the attempt is OOM-killed. payload = task id, aux = attempt (stale
  /// guards are ignored, as for ExecDone).
  TaskOom,
};

struct Event {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::ControlTick;
  std::uint32_t payload = 0;
  /// Guard value for stale-event detection: the task attempt number for task
  /// events (a resubmitted task invalidates events of its old attempt).
  std::uint32_t aux = 0;
};

/// Min-heap over (time, seq).
class EventQueue {
 public:
  /// Schedules an event; `time` must be >= the last popped time.
  void schedule(SimTime time, EventKind kind, std::uint32_t payload,
                std::uint32_t aux = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires non-empty.
  SimTime next_time() const;

  /// Pops the earliest event. Requires non-empty.
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime last_popped_ = 0.0;
};

}  // namespace wire::sim
